"""Setuptools shim enabling legacy editable installs in offline
environments that lack the `wheel` package (PEP 660 needs bdist_wheel)."""
from setuptools import setup

setup()
