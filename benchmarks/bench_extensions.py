"""Benchmarks for the repository's extension experiments: regeneration
(§III-D), the resilience-constraint ablation, branching workflows (§VII)
and the batching front end."""

from repro.experiments import (
    ablation_resilience,
    extension_batching,
    extension_dag,
    regeneration,
)

from .conftest import run_once


class TestRegeneration:
    def test_regeneration_loop(self, benchmark, bench_samples):
        result = run_once(
            benchmark, regeneration.run, n_requests=300, samples=bench_samples
        )
        print("\n" + regeneration.render(result))
        # Drift must trip the 1% threshold; regeneration must recover.
        assert result.miss_rate_under_drift > 0.01
        assert result.regeneration_triggered
        assert result.miss_rate_after_regen < result.miss_rate_under_drift
        assert result.violation_rate_after_regen <= 0.01 + 1e-9


class TestAblation:
    def test_resilience_constraint(self, benchmark, bench_samples):
        result = run_once(
            benchmark, ablation_resilience.run,
            n_requests=400, samples=bench_samples,
        )
        print("\n" + ablation_resilience.render(result))
        # Both variants stay within the P99 contract under the calibrated
        # profiles (the Eq. 4 objective self-regulates; see EXPERIMENTS.md),
        # and dropping Eq. 6 never *increases* consumption.
        by_variant = {(wf, v): (viol, cpu) for wf, v, viol, cpu in result.rows}
        for wf in ("IA", "VA"):
            viol_with, cpu_with = by_variant[(wf, "with Eq.6")]
            viol_without, cpu_without = by_variant[(wf, "without Eq.6")]
            assert viol_with <= 0.011
            assert cpu_without <= cpu_with + 1e-9


class TestDagExtension:
    def test_branching_workflow(self, benchmark, bench_samples):
        result = run_once(
            benchmark, extension_dag.run,
            n_requests=400, samples=bench_samples,
        )
        print("\n" + extension_dag.render(result))
        by_name = {name: (cpu, p99, viol) for name, cpu, p99, viol in result.rows}
        janus_cpu, _, janus_viol = by_name["Janus-DAG"]
        early_cpu, _, _ = by_name["GrandSLAM-DAG"]
        assert janus_cpu < early_cpu
        assert janus_viol <= 0.01 + 1e-9
        assert result.saving_pct > 5.0


class TestBatchingExtension:
    def test_batching_front_end(self, benchmark, bench_samples):
        result = run_once(
            benchmark, extension_batching.run,
            n_requests=300, samples=bench_samples,
        )
        print("\n" + extension_batching.render(result))
        janus_rows = [r for r in result.rows if r[0] == "Janus"]
        early_rows = [r for r in result.rows if r[0] == "GrandSLAM"]
        # Amortised CPU falls as the arrival rate (and batch size) grows...
        assert janus_rows[-1][3] < janus_rows[0][3]
        # ...and Janus stays cheaper than early binding at every rate.
        for j, e in zip(janus_rows, early_rows):
            assert j[3] < e[3]
            assert j[5] <= 0.03  # queue wait may eat into the P99 contract


class TestMultiTenant:
    def test_shared_cluster(self, benchmark, bench_samples):
        from repro.experiments import extension_multitenant

        result = run_once(
            benchmark, extension_multitenant.run,
            n_requests=200, samples=bench_samples,
        )
        print("\n" + extension_multitenant.render(result))
        assert {row[0] for row in result.rows} == {"tenant-ia", "tenant-va"}
        assert all(row[4] <= 0.10 for row in result.rows)
        assert result.cold_start_rate < 0.25


class TestStrictSlo:
    def test_p999_anchor(self, benchmark):
        from repro.experiments import extension_strict_slo

        result = run_once(
            benchmark, extension_strict_slo.run,
            n_requests=3000, samples=6000,
        )
        print("\n" + extension_strict_slo.render(result))
        by_anchor = {a: viol for a, viol, _, _ in result.rows}
        assert by_anchor["P99.9"] <= 0.001 + 1e-9
        assert by_anchor["P99.9"] <= by_anchor["P99"]


class TestKeepAlive:
    def test_caching_tradeoff(self, benchmark, bench_samples):
        from repro.experiments import extension_keepalive

        result = run_once(
            benchmark, extension_keepalive.run,
            n_requests=200, samples=bench_samples,
        )
        print("\n" + extension_keepalive.render(result))
        cold = [row[1] for row in result.rows]
        idle = [row[2] for row in result.rows]
        viol = [row[4] for row in result.rows]
        assert cold[0] > cold[-1]  # caching cuts cold starts
        assert idle[0] < idle[-1]  # at the price of idle reservations
        assert viol[-1] < viol[0]  # and cold starts were hurting the SLO
