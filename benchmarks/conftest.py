"""Benchmark-harness configuration.

Each ``bench_*`` module regenerates one paper artifact (table or figure),
prints the same rows/series the paper reports (run with ``-s`` to see
them), asserts the qualitative shape, and measures the end-to-end runtime
with pytest-benchmark.

Scale knobs: the environment variables ``JANUS_BENCH_REQUESTS`` (default
400) and ``JANUS_BENCH_SAMPLES`` (default 1500) trade fidelity for speed;
the paper-scale settings are 1000 requests / 2000 samples.
"""

from __future__ import annotations

import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def bench_requests() -> int:
    """Requests per policy run."""
    return _env_int("JANUS_BENCH_REQUESTS", 400)


@pytest.fixture(scope="session")
def bench_samples() -> int:
    """Profiling samples per grid point."""
    return _env_int("JANUS_BENCH_SAMPLES", 1500)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Paper experiments are seconds-long; pedantic single-round timing avoids
    pytest-benchmark's multi-round calibration re-running them dozens of
    times.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
