"""Benchmark regenerating Fig. 4 (E2E latency CDFs, all systems)."""

from repro.experiments import fig4_latency_cdf

from .conftest import run_once


def test_fig4_latency_cdfs(benchmark, bench_requests, bench_samples):
    result = run_once(
        benchmark,
        fig4_latency_cdf.run,
        n_requests=bench_requests,
        samples=bench_samples,
    )
    print("\n" + fig4_latency_cdf.render(result))
    # Paper: Janus fulfils the SLO in all four panels (P99 target -> at most
    # 1% violations) while running closer to the deadline than early binding.
    for panel, results in result.panels.items():
        slo = result.slos_ms[panel]
        janus_res = results["Janus"]
        assert janus_res.violation_rate <= 0.01 + 1e-9, panel
        assert janus_res.e2e_percentile(99) <= slo * 1.02, panel
        for early in ("GrandSLAM", "GrandSLAM+"):
            if early in results:
                assert (
                    janus_res.e2e_percentile(50)
                    >= results[early].e2e_percentile(50)
                ), panel
