"""Benchmark regenerating Fig. 8 (hints condensing effectiveness)."""

from repro.experiments import fig8_condensing

from .conftest import run_once


def test_fig8_condensing(benchmark, bench_samples):
    result = run_once(benchmark, fig8_condensing.run, samples=bench_samples)
    print("\n" + fig8_condensing.render(result))

    # Paper §V-F: compression ratios up to 99.6% (IA) / 98.2% (VA); every
    # configuration here must compress by at least 90%.
    for key, ratio in result.compression.items():
        assert ratio > 0.90, key

    # Table sizes shrink as the head weight grows (paper Fig. 8).
    weights = sorted({k[2] for k in result.counts})
    for wf, conc in {(k[0], k[1]) for k in result.counts}:
        counts = [result.counts[(wf, conc, w)] for w in weights]
        assert counts[-1] <= counts[0], (wf, conc)
