"""Benchmark harness regenerating every paper table and figure."""
