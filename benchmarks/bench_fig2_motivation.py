"""Benchmark regenerating Fig. 2 (early- vs late-binding motivation)."""

from repro.experiments import fig2_motivation

from .conftest import run_once


def test_fig2_motivation(benchmark, bench_samples):
    result = run_once(
        benchmark, fig2_motivation.run, n_requests=50, samples=bench_samples
    )
    print("\n" + fig2_motivation.render(result))
    # Paper: late binding cuts CPU by up to 42.2% with zero violations.
    assert result.max_cpu_reduction > 0.10
    assert result.late_violations <= 1
    # Late binding runs closer to (but within) the SLO.
    assert result.e2e_late_s.max() <= result.slo_s * 1.05
