"""Benchmark regenerating Fig. 9 (resource consumption vs SLO)."""

from repro.experiments import fig9_slo

from .conftest import run_once


def test_fig9_slo_sweep(benchmark, bench_requests, bench_samples):
    result = run_once(
        benchmark,
        fig9_slo.run,
        n_requests=min(bench_requests, 300),
        samples=bench_samples,
    )
    print("\n" + fig9_slo.render(result))
    for wf in ("IA", "VA"):
        series = result.series[wf]
        slos = sorted(series)
        # At the tightest SLO Janus clearly beats both baselines.
        tight = series[slos[0]]
        assert tight["Janus"] < tight["ORION"]
        assert tight["Janus"] < tight["GrandSLAM"]
        # Gains narrow as the SLO loosens (paper: marginal decrease, with
        # everything converging towards the 1000-millicore floor).
        loose = series[slos[-1]]
        tight_gain = tight["GrandSLAM"] - tight["Janus"]
        loose_gain = loose["GrandSLAM"] - loose["Janus"]
        assert loose_gain <= tight_gain + 1e-9
        assert result.mean_gain_pct(wf, "ORION") > 0
        assert result.mean_gain_pct(wf, "GrandSLAM") > 0
