"""Fail CI when a hot-path throughput headline regresses past tolerance.

Usage::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json

Compares the higher-is-better throughput keys of the guarded sections
(the DES kernel and the batched analytic executor — the two hot paths the
speedup refactor pinned) and exits non-zero when any current number falls
more than ``JANUS_BENCH_TOLERANCE`` (default 25%) below the committed
baseline. Wall-time sections (sweeps, caches) are deliberately not
guarded: they track runner hardware more than code, and the bit-identity
asserts inside the bench suite already cover their correctness.
"""

from __future__ import annotations

import json
import os
import sys

#: section -> higher-is-better keys guarded against regression.
GUARDED: dict[str, tuple[str, ...]] = {
    "sim_engine": ("timeout_loop_events_per_s", "fanout_events_per_s"),
    "analytic": (
        "grandslam_requests_per_s",
        "janus_requests_per_s",
        "batch_speedup",
    ),
    # Sleep-cell fabric speedup: machine-independent by construction (the
    # cells overlap regardless of core count), so it guards the scheduler
    # itself — real-cell distributed walls stay unguarded like the other
    # wall-time sections.
    "distributed": ("two_worker_speedup",),
    # remote_fraction is deterministic for the committed seed on the
    # fixed-size fleet bench matrix, so any movement is a routing
    # behaviour change, not noise; the router rate guards the per-arrival
    # hot path shared by the batch evaluator and the serving loop.
    "fleet": ("routed_requests_per_s", "remote_fraction"),
}


def check(baseline: dict, current: dict, tolerance: float) -> list[str]:
    failures: list[str] = []
    for section, keys in GUARDED.items():
        base_sec = baseline.get(section)
        cur_sec = current.get(section)
        if base_sec is None:
            continue  # section not in the committed baseline yet
        if cur_sec is None:
            failures.append(f"{section}: missing from current results")
            continue
        for key in keys:
            base = base_sec.get(key)
            cur = cur_sec.get(key)
            if base is None:
                continue
            if cur is None:
                failures.append(f"{section}.{key}: missing from current results")
                continue
            floor = base * (1.0 - tolerance)
            if cur < floor:
                failures.append(
                    f"{section}.{key}: {cur:,.0f} < {floor:,.0f} "
                    f"({tolerance:.0%} below baseline {base:,.0f})"
                )
    return failures


def main(argv: list[str]) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    with open(argv[1], encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(argv[2], encoding="utf-8") as fh:
        current = json.load(fh)
    tolerance = float(os.environ.get("JANUS_BENCH_TOLERANCE", "0.25"))
    failures = check(baseline, current, tolerance)
    if failures:
        print("benchmark regression guard FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"benchmark regression guard OK (tolerance {tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
