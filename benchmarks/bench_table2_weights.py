"""Benchmark regenerating Table II (+ §V-E weight sweep)."""

from repro.experiments import table2_weight

from .conftest import run_once


def test_table2_weight_impact(benchmark, bench_samples):
    result = run_once(
        benchmark, table2_weight.run, n_requests=200, samples=bench_samples
    )
    print("\n" + table2_weight.render(result))
    # Paper Table II: higher weight -> smaller head allocation and lower (or
    # equal) head percentile.
    assert result.head_cpu[3.0] <= result.head_cpu[1.0]
    assert result.head_percentile[3.0] <= result.head_percentile[1.0] + 1e-9
