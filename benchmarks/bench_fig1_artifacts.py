"""Benchmarks regenerating the three Fig. 1 motivation artifacts."""

from repro.experiments import fig1_interference, fig1_slack, fig1_worksets

from .conftest import run_once


class TestFig1a:
    def test_fig1a_slack_cdf(self, benchmark):
        result = run_once(
            benchmark, fig1_slack.run, n_functions=200, n_invocations=100_000
        )
        print("\n" + fig1_slack.render(result))
        # Paper: >60% of invocations with slack above 0.6.
        assert result.frac_all_above_060 > 0.6


class TestFig1b:
    def test_fig1b_workset_variance(self, benchmark, bench_samples):
        result = run_once(benchmark, fig1_worksets.run, samples=bench_samples)
        print("\n" + fig1_worksets.render(result))
        # Paper: up to ~3.8x spread across OD/QA/TS.
        assert 1.5 <= result.max_ratio <= 4.5


class TestFig1c:
    def test_fig1c_interference(self, benchmark):
        result = run_once(benchmark, fig1_interference.run, samples_per_level=200)
        print("\n" + fig1_interference.render(result))
        finals = {n: s[-1] for n, s in result.series.items()}
        # Paper: up to 8.1x at six instances; network worst, CPU mildest.
        assert 6.0 <= result.max_slowdown <= 10.0
        assert finals["SocketComm"] == max(finals.values())
        assert finals["AES"] == min(finals.values())
