"""Benchmark the scenario sweep path and record the perf trajectory.

Unlike the figure benchmarks (which regenerate paper artifacts), this
module tracks the *engine*: sim-kernel event throughput, hint-synthesis
memoisation, end-to-end sweep wall time serial vs process pool,
work-stealing vs static scheduling on a deliberately heterogeneous
matrix, and cold vs warm content-addressed cell caching. The headline
numbers are written to ``BENCH_scenarios.json`` (override the location
with ``JANUS_BENCH_OUT``) so successive PRs can compare.
"""

from __future__ import annotations

import json
import os
import time

from repro.scenarios import ScenarioMatrix, SweepRunner
from repro.sim.engine import Simulator
from repro.synthesis.generator import clear_hints_cache, synthesize_hints
from repro.synthesis.dp import clear_dp_cache
from repro.traces.workload import ArrivalSpec

from .conftest import run_once

OUT_PATH = os.environ.get("JANUS_BENCH_OUT", "BENCH_scenarios.json")

_RESULTS: dict[str, object] = {}


def _write_results() -> None:
    # Read-update-write: running a subset of these tests must refresh only
    # its own sections, not erase the other recorded ones.
    payload: dict[str, object] = {}
    try:
        with open(OUT_PATH, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError):
        pass
    payload.update(_RESULTS)
    with open(OUT_PATH, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def _timeout_worker(sim: Simulator, n: int):
    for _ in range(n):
        yield sim.timeout(1.0)


def _fanout_worker(sim: Simulator, n: int):
    for _ in range(n):
        yield sim.all_of([sim.timeout(0.5), sim.timeout(1.0), sim.timeout(1.5)])


def _events_per_sec(make, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        sim = Simulator()
        make(sim)
        start = time.perf_counter()
        sim.run()
        best = min(best, (time.perf_counter() - start) / sim.processed_events)
    return 1.0 / best


def test_sim_engine_throughput(benchmark):
    """Events/sec of the DES kernel on its two dominant shapes."""
    timeout_eps = run_once(
        benchmark,
        _events_per_sec,
        lambda sim: [sim.process(_timeout_worker(sim, 2000)) for _ in range(50)],
    )
    fanout_eps = _events_per_sec(
        lambda sim: [sim.process(_fanout_worker(sim, 500)) for _ in range(50)]
    )
    print(f"\nsim engine: timeout-loop {timeout_eps:,.0f} ev/s, "
          f"AllOf fan-out {fanout_eps:,.0f} ev/s")
    assert timeout_eps > 50_000  # sanity floor, an order below expectations
    _RESULTS["sim_engine"] = {
        "timeout_loop_events_per_s": timeout_eps,
        "fanout_events_per_s": fanout_eps,
    }
    _write_results()


def test_analytic_batch_throughput(benchmark, bench_requests, bench_samples):
    """Requests/s through the batched analytic executor, per policy.

    The vectorised ``AnalyticExecutor.run`` evaluates each stage across the
    whole request stream in one array pass; the scalar ``run_request`` loop
    is retained as the bit-identity reference. This section records both,
    so the speedup (and any regression in it) stays visible per PR.
    """
    from repro.experiments.common import ia_setup
    from repro.policies.early_binding import GrandSLAMPolicy
    from repro.policies.janus import janus
    from repro.runtime.executor import AnalyticExecutor
    from repro.traces.workload import WorkloadConfig, generate_requests

    wf, profiles, budget = ia_setup(samples=min(bench_samples, 1000), seed=5)
    n = max(10 * bench_requests, 2000)
    requests = generate_requests(wf, WorkloadConfig(n_requests=n), seed=99)
    executor = AnalyticExecutor(wf)

    def batched_rate(make_policy):
        policy = make_policy()
        start = time.perf_counter()
        result = executor.run(policy, requests)
        result.violation_rate  # force the summary math, not just dispatch
        return n / (time.perf_counter() - start)

    def scalar_rate(make_policy):
        policy = make_policy()
        start = time.perf_counter()
        for r in requests:
            executor.run_request(policy, r)
        return n / (time.perf_counter() - start)

    make_grandslam = lambda: GrandSLAMPolicy(wf, profiles)  # noqa: E731
    make_janus = lambda: janus(wf, profiles, budget=budget)  # noqa: E731
    grandslam_eps = run_once(benchmark, batched_rate, make_grandslam)
    janus_eps = batched_rate(make_janus)
    scalar_janus_eps = scalar_rate(make_janus)
    speedup = janus_eps / scalar_janus_eps
    print(f"\nanalytic executor ({n:,} requests): "
          f"GrandSLAM {grandslam_eps:,.0f} req/s, "
          f"Janus {janus_eps:,.0f} req/s batched vs "
          f"{scalar_janus_eps:,.0f} req/s scalar ({speedup:.1f}x)")
    assert speedup > 2.0  # sanity floor, well below the measured ~30-60x
    _RESULTS["analytic"] = {
        "requests": n,
        "grandslam_requests_per_s": grandslam_eps,
        "janus_requests_per_s": janus_eps,
        "janus_scalar_requests_per_s": scalar_janus_eps,
        "batch_speedup": speedup,
    }
    _write_results()


def test_synthesis_memoisation(benchmark, bench_samples):
    """Live vs memoised hint synthesis for the IA chain."""
    from repro.experiments.common import ia_setup

    wf, profiles, budget = ia_setup(samples=min(bench_samples, 1000), seed=5)
    clear_dp_cache()
    clear_hints_cache()

    def live():
        clear_dp_cache()
        clear_hints_cache()
        start = time.perf_counter()
        synthesize_hints(profiles, wf.chain, budget=budget, workflow_name="IA")
        return time.perf_counter() - start

    live_s = run_once(benchmark, live)
    start = time.perf_counter()
    synthesize_hints(profiles, wf.chain, budget=budget, workflow_name="IA")
    memo_s = time.perf_counter() - start
    print(f"\nsynthesis: live {live_s * 1000:.1f} ms, "
          f"memoised {memo_s * 1000:.3f} ms")
    assert memo_s < live_s
    _RESULTS["synthesis"] = {
        "live_ms": live_s * 1000.0,
        "memoised_ms": memo_s * 1000.0,
    }
    _write_results()


def test_scenario_sweep(benchmark, bench_requests, bench_samples):
    """End-to-end sweep wall time, serial vs process pool, bit-compared."""
    matrix = ScenarioMatrix(
        workflows=("IA", "VA"),
        arrivals=(
            ArrivalSpec(kind="constant"),
            ArrivalSpec(kind="poisson", rate_per_s=8.0),
            ArrivalSpec(kind="azure", rate_per_s=8.0),
        ),
        slo_scales=(1.0, 1.25),
        tenant_counts=(1,),
        n_requests=min(bench_requests, 150),
        samples=min(bench_samples, 800),
        seed=2025,
    )
    serial = run_once(benchmark, SweepRunner(max_workers=1).run, matrix)
    # At least two workers so the pool path (and its determinism) is
    # genuinely exercised even on single-core runners.
    workers = max(2, min(4, os.cpu_count() or 1))
    start = time.perf_counter()
    pooled = SweepRunner(max_workers=workers).run(matrix)
    pooled_s = time.perf_counter() - start
    assert pooled.to_json() == serial.to_json()
    assert serial.num_cells == len(matrix)
    print(f"\nsweep: {serial.num_cells} cells, "
          f"serial {serial.wall_seconds:.2f} s, "
          f"pooled({workers}) {pooled_s:.2f} s")
    print(serial.render())
    _RESULTS["sweep"] = {
        "cells": serial.num_cells,
        "n_requests": matrix.n_requests,
        "samples": matrix.samples,
        "serial_seconds": serial.wall_seconds,
        "pooled_seconds": pooled_s,
        "pool_workers": workers,
        "bit_identical": True,
    }
    _write_results()


def _heterogeneous_matrix(bench_requests: int, bench_samples: int) -> ScenarioMatrix:
    """Cell costs spanning ~6x: mixed tenant counts over two workflows.

    Expansion order interleaves cheap (1-tenant) and expensive (3-tenant)
    cells, so a static in-order dispatch regularly strands a long cell on
    a drained queue — the shape the work-stealing scheduler targets.
    """
    from repro.traces.workload import ArrivalSpec

    return ScenarioMatrix(
        workflows=("IA", "VA"),
        arrivals=(
            ArrivalSpec(kind="constant"),
            ArrivalSpec(kind="poisson", rate_per_s=8.0),
        ),
        slo_scales=(1.0, 1.25),
        tenant_counts=(1, 3),
        n_requests=min(bench_requests, 120),
        samples=min(bench_samples, 600),
        seed=7,
    )


def test_workstealing_vs_static(benchmark, bench_requests, bench_samples):
    """Wall time: cost-ordered work stealing vs the static pool map."""
    matrix = _heterogeneous_matrix(bench_requests, bench_samples)
    workers = max(2, min(4, os.cpu_count() or 1))
    costs = sorted(c.cost_estimate() for c in matrix.expand())
    stolen = run_once(
        benchmark, SweepRunner(max_workers=workers, backend="workstealing").run,
        matrix,
    )
    start = time.perf_counter()
    static = SweepRunner(max_workers=workers, backend="pool").run(matrix)
    static_s = time.perf_counter() - start
    assert stolen.to_json() == static.to_json()
    print(f"\nheterogeneous sweep ({len(matrix)} cells, "
          f"cost spread {costs[-1] / costs[0]:.1f}x, {workers} workers): "
          f"workstealing {stolen.wall_seconds:.2f} s, "
          f"static pool {static_s:.2f} s")
    _RESULTS["scheduler"] = {
        "cells": len(matrix),
        "cost_spread": costs[-1] / costs[0],
        "pool_workers": workers,
        "workstealing_seconds": stolen.wall_seconds,
        "static_pool_seconds": static_s,
        "bit_identical": True,
    }
    _write_results()


def test_trace_record_replay(benchmark, bench_requests, bench_samples, tmp_path):
    """Trace-file workloads: NHPP sampling rate, write/load, replay sweep."""
    from repro.traces.diurnal import DiurnalRate, nhpp_arrivals
    from repro.traces.trace_file import (
        generate_workload_trace, load_trace, save_trace,
    )
    from repro.rng import make_rng

    curve = DiurnalRate.sinusoid(100.0, amplitude=0.8, period_s=60.0)

    def sample():
        start = time.perf_counter()
        nhpp_arrivals(curve, 100_000, make_rng(3))
        return 100_000 / (time.perf_counter() - start)

    nhpp_per_s = run_once(benchmark, sample)

    trace = generate_workload_trace(
        ("IA", "VA"), 50_000,
        arrival=ArrivalSpec(kind="diurnal", rate_per_s=100.0, period_s=60.0),
        seed=7, name="bench",
    )
    path = tmp_path / "bench.jsonl"
    start = time.perf_counter()
    save_trace(trace, path)
    write_s = time.perf_counter() - start
    start = time.perf_counter()
    load_trace(path)
    load_s = time.perf_counter() - start

    small = tmp_path / "sweep-trace.jsonl"
    save_trace(
        generate_workload_trace(
            ("IA", "VA"), max(2 * min(bench_requests, 120), 100),
            arrival=ArrivalSpec(
                kind="diurnal", rate_per_s=10.0, period_s=10.0
            ),
            seed=11, name="sweep",
        ),
        small,
    )
    matrix = ScenarioMatrix(
        workflows=("IA", "VA"),
        arrivals=(),
        traces=(str(small),),
        slo_scales=(1.0, 1.25),
        n_requests=min(bench_requests, 120),
        samples=min(bench_samples, 600),
        seed=13,
    )
    start = time.perf_counter()
    report = SweepRunner(max_workers=1).run(matrix)
    replay_s = time.perf_counter() - start
    print(f"\ntrace workloads: NHPP {nhpp_per_s:,.0f} arrivals/s, "
          f"50k-record write {write_s * 1000:.0f} ms / load "
          f"{load_s * 1000:.0f} ms, {report.num_cells}-cell replay sweep "
          f"{replay_s:.2f} s")
    _RESULTS["trace_workloads"] = {
        "nhpp_arrivals_per_s": nhpp_per_s,
        "write_50k_ms": write_s * 1000.0,
        "load_50k_ms": load_s * 1000.0,
        "replay_sweep_cells": report.num_cells,
        "replay_sweep_seconds": replay_s,
    }
    _write_results()


def test_streaming_metrics_throughput(benchmark):
    """P2+Welford fold rate vs the exact retained-array baseline.

    The streaming path buys O(1) memory; this records what it costs (or
    saves) in samples/s against appending to a list and calling
    ``numpy.percentile`` once at the end.
    """
    import numpy as np

    from repro.metrics.stats import percentile_summary
    from repro.metrics.streaming import StreamingSummary

    n = 200_000
    samples = np.random.default_rng(3).lognormal(5.0, 0.6, size=n)
    values = [float(x) for x in samples]

    def stream():
        summary = StreamingSummary()
        start = time.perf_counter()
        for x in values:
            summary.add(x)
        summary.snapshot()
        return n / (time.perf_counter() - start)

    streaming_per_s = run_once(benchmark, stream)

    start = time.perf_counter()
    retained: list[float] = []
    for x in values:
        retained.append(x)
    exact = percentile_summary(np.asarray(retained))
    exact_s = time.perf_counter() - start
    exact_per_s = n / exact_s

    est = StreamingSummary()
    for x in values:
        est.add(x)
    p99_err = abs(est.percentile(99.0) - exact["p99"]) / exact["p99"]
    print(f"\nstreaming metrics ({n:,} samples): "
          f"P2+Welford {streaming_per_s:,.0f} samples/s, "
          f"exact-array {exact_per_s:,.0f} samples/s, "
          f"P99 rel err {p99_err:.4%}")
    assert p99_err < 0.01
    _RESULTS["serving"] = {
        "stream_samples": n,
        "streaming_samples_per_s": streaming_per_s,
        "exact_array_samples_per_s": exact_per_s,
        "p99_rel_error": p99_err,
    }
    _write_results()


def test_serving_loop_throughput(benchmark, bench_samples):
    """Requests/s through the full asyncio serving loop (unpaced)."""
    from repro.serving import ServingConfig, run_service

    config = ServingConfig(
        source=ArrivalSpec(kind="poisson", rate_per_s=200.0),
        max_requests=2000,
        samples=min(bench_samples, 600),
        metrics_every=500,
    )
    report = run_once(benchmark, run_service, config)
    req_per_s = report.completed / report.wall_seconds
    print(f"\nserving loop: {report.completed} requests in "
          f"{report.wall_seconds:.2f} s ({req_per_s:,.0f} req/s)")
    assert report.dropped == 0
    serving = dict(_RESULTS.get("serving", {}))
    serving.update({
        "loop_requests": report.completed,
        "loop_seconds": report.wall_seconds,
        "loop_requests_per_s": req_per_s,
    })
    _RESULTS["serving"] = serving
    _write_results()


def test_fault_injection(benchmark, bench_requests, bench_samples):
    """Fault-schedule compilation rate and faulted-vs-clean DES cell cost.

    Fault schedules are compiled per cell per run, so compilation must be
    cheap; the faulted-cell wall time records what the preemption race
    (AnyOf per invocation attempt plus retries) adds on top of a clean
    cluster cell.
    """
    from repro.cluster import ClusterConfig
    from repro.cluster.faults import FaultSpec, compile_fault_schedule
    from repro.scenarios import parse_fault

    spec = FaultSpec(kind="preempt", rate_per_min=120.0, recovery_ms=1000.0)

    def compile_rate():
        rounds = 200
        start = time.perf_counter()
        for i in range(rounds):
            compile_fault_schedule(spec, i, 8, 600_000.0)
        return rounds / (time.perf_counter() - start)

    schedules_per_s = run_once(benchmark, compile_rate)
    events = len(compile_fault_schedule(spec, 0, 8, 600_000.0))

    def cluster_matrix(faults):
        return ScenarioMatrix(
            workflows=("IA",),
            arrivals=(ArrivalSpec(kind="poisson", rate_per_s=8.0),),
            slo_scales=(1.0,),
            policies=("GrandSLAM", "Janus"),
            executors=("cluster",),
            cluster=ClusterConfig(n_vms=2, autoscale=False),
            faults=faults,
            n_requests=min(bench_requests, 120),
            samples=min(bench_samples, 600),
            seed=23,
        )

    start = time.perf_counter()
    SweepRunner(max_workers=1).run(cluster_matrix((None,)))
    clean_s = time.perf_counter() - start
    start = time.perf_counter()
    faulted_report = SweepRunner(max_workers=1).run(
        cluster_matrix((parse_fault("preempt@60:1000"),))
    )
    faulted_s = time.perf_counter() - start
    retries = faulted_report.results[0].extra("Janus", "retries")
    print(f"\nfault injection: {schedules_per_s:,.0f} schedules/s "
          f"({events} events over a 10 min horizon), DES cell clean "
          f"{clean_s:.2f} s vs faulted {faulted_s:.2f} s "
          f"({retries:.0f} retries)")
    _RESULTS["faults"] = {
        "schedules_per_s": schedules_per_s,
        "schedule_events_10min": events,
        "clean_cell_seconds": clean_s,
        "faulted_cell_seconds": faulted_s,
        "faulted_cell_retries": retries,
    }
    _write_results()


def test_fleet_sweep(benchmark):
    """Routing-engine throughput and the cost of a 3-region fleet cell.

    The :class:`StreamRouter` sits on the per-arrival hot path of both
    the batch fleet evaluator and the serving loop (one heap op per
    request), so its raw rate is worth pinning. The fleet matrix here is
    deliberately *fixed-size* (no env scaling): ``remote_fraction`` is
    then fully deterministic for the seed, and guarding it doubles as a
    routing behavioural-drift alarm, machine-independent by construction.
    """
    from repro.fleet import FleetConfig, StreamRouter
    from repro.scenarios import parse_fault

    fleet = FleetConfig(
        regions=("us-east", "eu-west", "ap-south"),
        routing="spillover",
        capacity=4,
    )

    def routing_rate():
        n = 50_000
        router = StreamRouter(fleet, hold_ms=250.0)
        start = time.perf_counter()
        for i in range(n):
            router.route(i % 3, i * 5.0)
        return n / (time.perf_counter() - start)

    routed_per_s = run_once(benchmark, routing_rate)

    def fleet_matrix(faults):
        return ScenarioMatrix(
            workflows=("IA",),
            arrivals=(
                ArrivalSpec(kind="diurnal", rate_per_s=20.0, period_s=10.0),
            ),
            slo_scales=(1.0,),
            policies=("Janus",),
            fleets=(fleet,),
            faults=faults,
            n_requests=120,
            samples=400,
            seed=23,
        )

    start = time.perf_counter()
    clean_report = SweepRunner(max_workers=1).run(fleet_matrix((None,)))
    clean_s = time.perf_counter() - start
    start = time.perf_counter()
    faulted_report = SweepRunner(max_workers=1).run(
        fleet_matrix((parse_fault("region-failover@2000"),))
    )
    faulted_s = time.perf_counter() - start
    remote = clean_report.results[0].extra("Janus", "fleet_remote_fraction")
    failovers = faulted_report.results[0].extra("Janus", "fleet_failovers")
    print(f"\nfleet: {routed_per_s:,.0f} routed req/s, 3-region cell "
          f"{clean_s:.2f} s clean vs {faulted_s:.2f} s failover "
          f"({remote:.1%} served remotely, {failovers:.0f} failovers)")
    _RESULTS["fleet"] = {
        "routed_requests_per_s": routed_per_s,
        "clean_cell_seconds": clean_s,
        "failover_cell_seconds": faulted_s,
        "remote_fraction": remote,
        "failover_cell_failovers": failovers,
    }
    _write_results()


class SleepCell:
    """Synthetic cell whose calibrated cost *is* its runtime.

    ``time.sleep`` releases the GIL and burns no CPU, so two workers
    overlap these cells fully even on a single-core runner — which makes
    the recorded fabric speedup a property of the scheduler, not of the
    machine CI happens to land on. Module-level so pickled references
    resolve on the worker side.
    """

    def __init__(self, value: int, sleep_s: float) -> None:
        self.value = value
        self.sleep_s = sleep_s

    def cost_estimate(self) -> float:
        return self.sleep_s


def eval_sleep_cell(cell: SleepCell) -> int:
    time.sleep(cell.sleep_s)
    return cell.value


def test_distributed_fabric(benchmark, bench_requests, bench_samples):
    """The distributed backend: bit-identity on real cells, then the
    guarded 1-worker vs 2-worker fabric speedup on sleep cells.

    Part one runs the heterogeneous matrix through two real socket-launched
    local workers and byte-compares the report against serial — the real
    walls (and the runner's core count) are recorded for the trajectory but
    deliberately not guarded, since real-cell overlap depends on CPUs.
    Part two reshapes the same matrix's calibrated cost spread into
    :class:`SleepCell` work and drives it through the full coordinator
    (wire protocol, LPT queues, stealing) with in-process workers; its
    ``two_worker_speedup`` is machine-independent and guarded by
    ``check_regression.py``.
    """
    import threading

    from repro.scenarios import DistributedBackend
    from repro.scenarios.worker import serve

    matrix = _heterogeneous_matrix(bench_requests, bench_samples)
    serial = run_once(
        benchmark, SweepRunner(max_workers=1, backend="serial").run, matrix
    )
    start = time.perf_counter()
    dist = SweepRunner(
        backend="distributed",
        backend_options={"hosts": "local:2", "connect_timeout": 60.0},
    ).run(matrix)
    dist_s = time.perf_counter() - start
    assert dist.to_json() == serial.to_json()
    host_stats = dist.backend_stats["hosts"]["local"]
    assert host_stats["workers"] == 2
    assert host_stats["completed"] == len(matrix)

    costs = [cell.cost_estimate() for cell in matrix.expand()]
    scale = 4.0 / sum(costs)
    cells = [SleepCell(i, c * scale) for i, c in enumerate(costs)]

    def fabric_wall(labels: list[str]) -> float:
        threads: list[threading.Thread] = []

        def on_listen(host: str, port: int) -> None:
            for label in labels:
                thread = threading.Thread(
                    target=serve, args=((host, port), label), daemon=True
                )
                thread.start()
                threads.append(thread)

        backend = DistributedBackend(
            hosts=",".join(labels), launch=False, bind="127.0.0.1",
            idle_delay=0.01, on_listen=on_listen,
        )
        start = time.perf_counter()
        out = backend.run(cells, eval_sleep_cell)
        wall = time.perf_counter() - start
        for thread in threads:
            thread.join(timeout=10.0)
        assert out == list(range(len(cells)))
        return wall

    one_worker_s = fabric_wall(["w1"])
    two_worker_s = fabric_wall(["w1", "w2"])
    speedup = one_worker_s / two_worker_s
    print(f"\ndistributed fabric: {len(matrix)} real cells on 2 local "
          f"workers {dist_s:.2f} s vs serial {serial.wall_seconds:.2f} s "
          f"({os.cpu_count()} CPU(s)); sleep-cell fabric 1 worker "
          f"{one_worker_s:.2f} s vs 2 workers {two_worker_s:.2f} s "
          f"({speedup:.2f}x)")
    assert speedup > 1.5
    _RESULTS["distributed"] = {
        "cells": len(matrix),
        "cpu_count": os.cpu_count(),
        "serial_seconds": serial.wall_seconds,
        "two_worker_real_seconds": dist_s,
        "one_worker_sleep_seconds": one_worker_s,
        "two_worker_sleep_seconds": two_worker_s,
        "two_worker_speedup": speedup,
        "bit_identical": True,
    }
    _write_results()


def test_cell_cache_warm_vs_cold(benchmark, bench_requests, bench_samples, tmp_path):
    """Cold sweep (populating the cache) vs fully warm replay."""
    matrix = _heterogeneous_matrix(bench_requests, bench_samples)
    cache_dir = tmp_path / "sweep-cache"
    clear_dp_cache()
    clear_hints_cache()

    def cold_run():
        return SweepRunner(max_workers=1, cache_dir=cache_dir).run(matrix)

    cold = run_once(benchmark, cold_run)
    start = time.perf_counter()
    warm = SweepRunner(max_workers=1, cache_dir=cache_dir).run(matrix)
    warm_s = time.perf_counter() - start
    assert warm.cell_cache == {"hits": len(matrix), "misses": 0}
    assert warm.to_json() == cold.to_json()
    speedup = cold.wall_seconds / warm_s if warm_s > 0 else float("inf")
    print(f"\ncell cache: cold {cold.wall_seconds:.2f} s, "
          f"warm {warm_s * 1000:.0f} ms ({speedup:.0f}x)")
    _RESULTS["cell_cache"] = {
        "cells": len(matrix),
        "cold_seconds": cold.wall_seconds,
        "warm_seconds": warm_s,
        "warm_hits": warm.cell_cache["hits"],
        "byte_identical": True,
    }
    _write_results()
