"""Benchmark regenerating Table I and Fig. 5a/5b (resource consumption)."""

from repro.experiments import fig5_resources

from .conftest import run_once

#: Paper Table I reductions (% of Optimal) used as shape anchors.
PAPER_TABLE1 = {
    "IA": {"ORION": 22.6, "GrandSLAM+": 31.3, "GrandSLAM": 31.3, "Janus-": 2.9},
    "VA": {"ORION": 26.9, "GrandSLAM+": 35.2, "GrandSLAM": 32.4, "Janus-": 4.7},
}


def test_table1_and_fig5(benchmark, bench_requests, bench_samples):
    result = run_once(
        benchmark,
        fig5_resources.run,
        n_requests=bench_requests,
        samples=bench_samples,
    )
    print("\n" + fig5_resources.render(result))

    for wf in ("IA", "VA"):
        reductions = result.reduction_table((wf, 1))
        paper = PAPER_TABLE1[wf]
        # Shape: every baseline consumes more than Janus, with the paper's
        # ordering (Janus- closest, early binders far) and the magnitudes
        # within a factor-of-two band of the published numbers.
        assert reductions["Janus-"] < reductions["ORION"]
        assert reductions["ORION"] < max(
            reductions["GrandSLAM"], reductions["GrandSLAM+"]
        )
        for base, target in paper.items():
            measured = reductions[base]
            assert 0.3 * target <= measured <= 2.2 * target, (
                f"{wf}/{base}: measured {measured:.1f}%, paper {target}%"
            )

    # Fig. 5b: at higher concurrency the early binders over-allocate more.
    for conc in (2, 3):
        panel = ("IA", conc)
        if panel in result.panels:
            norm = result.normalized(panel)
            assert norm["GrandSLAM"] > norm["Janus"]
            assert norm["Janus"] < 1.6
