"""Benchmark regenerating §V-H (system overhead) plus substrate
micro-benchmarks for the hot paths."""

import numpy as np
import pytest

from repro.adapter.adapter import JanusAdapter
from repro.experiments import overhead
from repro.experiments.common import ia_setup
from repro.sim import Simulator
from repro.synthesis.dp import ChainDP
from repro.synthesis.generator import synthesize_hints

from .conftest import run_once


class TestPaperOverhead:
    def test_overhead_experiment(self, benchmark, bench_samples):
        result = run_once(
            benchmark, overhead.run, n_requests=300, samples=bench_samples
        )
        print("\n" + overhead.render(result))
        # Paper: online adaptation stays under 3 ms; footprints ~MBs.
        for wf, stats in result.decision_ms.items():
            assert stats["max"] < 3.0, wf
        for wf, size in result.table_bytes.items():
            assert size < 12.1 * 1024 * 1024, wf


class TestMicroSubstrate:
    """Hot-path micro-benchmarks (not paper artifacts)."""

    @pytest.fixture(scope="class")
    def ia(self, bench_samples):
        return ia_setup(samples=bench_samples)

    def test_adapter_lookup_throughput(self, benchmark, ia):
        wf, profiles, budget = ia
        hints = synthesize_hints(profiles, wf.chain, budget)
        adapter = JanusAdapter(hints, wf.slo_ms)
        rng = np.random.default_rng(0)
        budgets = rng.uniform(0, 7500, size=1000)

        def thousand_lookups():
            for b in budgets:
                adapter.decide(0, float(b))

        benchmark(thousand_lookups)

    def test_suffix_dp_build(self, benchmark, ia):
        wf, profiles, _ = ia
        chain_profiles = profiles.for_chain(wf.chain)
        benchmark(lambda: ChainDP(chain_profiles, 7000))

    def test_full_synthesis(self, benchmark, ia):
        wf, profiles, budget = ia
        benchmark.pedantic(
            lambda: synthesize_hints(profiles, wf.chain, budget),
            rounds=3, iterations=1, warmup_rounds=1,
        )

    def test_des_event_throughput(self, benchmark):
        def run_10k_events():
            sim = Simulator()

            def ping():
                for _ in range(10_000):
                    yield sim.timeout(1.0)

            sim.run(until=sim.process(ping()))
            return sim.processed_events

        events = benchmark(run_10k_events)
        assert events >= 10_000
