"""Benchmark regenerating Fig. 6 (moderate percentile exploration)."""

from repro.experiments import fig6_percentile_exploration

from .conftest import run_once


def test_fig6_exploration_cost_benefit(benchmark, bench_samples):
    result = run_once(
        benchmark,
        fig6_percentile_exploration.run,
        n_requests=200,
        samples=bench_samples,
    )
    print("\n" + fig6_percentile_exploration.render(result))
    # Paper: Janus+ gains merely ~0.6% resources on average...
    assert -1.0 <= result.mean_cpu_gain_pct <= 5.0
    # ...but synthesis costs an order of magnitude more (up to 107x on the
    # paper's testbed; the vectorised implementation still pays the full
    # percentile-grid multiplier).
    assert result.max_time_ratio > 5.0
