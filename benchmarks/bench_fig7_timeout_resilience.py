"""Benchmark regenerating Fig. 7 (timeout and resilience of TS)."""

import numpy as np

from repro.experiments import fig7_timeout_resilience

from .conftest import run_once


def test_fig7_curves(benchmark, bench_samples):
    result = run_once(
        benchmark, fig7_timeout_resilience.run, samples=bench_samples
    )
    print("\n" + fig7_timeout_resilience.render(result))

    # Fig. 7a: timeout decreases with percentile and with CPU allocation.
    d25 = result.timeout_by_percentile[25]
    d75 = result.timeout_by_percentile[75]
    assert np.all(d25 >= d75 - 1e-9)
    assert d25[0] > d25[-1]  # more cores -> lower timeout

    # Fig. 7b: resilience shrinks with cores (diminishing returns) and grows
    # with concurrency (heavier batches are more resource-sensitive).
    r1 = result.resilience_by_concurrency[1]
    r3 = result.resilience_by_concurrency[3]
    assert np.all(np.diff(r1) <= 1e-9)
    assert r3[0] > r1[0]
    assert abs(r1[-1]) < 1e-9  # zero headroom at Kmax
