#!/usr/bin/env python3
"""Video Analytics SLO sweep (paper Fig. 9 right, as a library walkthrough).

Sweeps the VA workflow's SLO from 1.5 s to 2.0 s and prints the resource
consumption of Janus, ORION and GrandSLAM normalised by the clairvoyant
Optimal — showing how late binding's advantage narrows as the SLO loosens.
One profiling campaign is shared across the sweep by seeding each
`Session` with the same `ProfileSet`.

Run:  python examples/video_analytics_slo_sweep.py
"""

from repro import BudgetRange, Session, profile_workflow, video_analytics


def main() -> None:
    base = video_analytics()
    profiles = profile_workflow(base, seed=1, samples=2000)

    print("SLO (s)   Optimal     Janus     ORION  GrandSLAM   (norm. CPU)")
    for slo_s in (1.5, 1.6, 1.7, 1.8, 1.9, 2.0):
        report = Session.evaluate(
            base,
            slo_ms=slo_s * 1000.0,
            budget=BudgetRange(1500, int(slo_s * 1000)),
            profiles=profiles,
            requests=400,
            seed=int(slo_s * 10) - 1,
            include=["Optimal", "Janus", "ORION", "GrandSLAM"],
        )
        row = [f"{slo_s:7.1f}"]
        for name in ("Optimal", "Janus", "ORION", "GrandSLAM"):
            if name in report.results:
                row.append(f"{report.normalized_cpu(name):9.3f}")
            else:  # infeasible under this SLO — skipped by the suite builder
                row.append(f"{'n/a':>9s}")
        print("  ".join(row))

    print("\nThe gains taper towards loose SLOs: every system converges to")
    print("the 1000-millicore floor, as in the paper's Fig. 9.")


if __name__ == "__main__":
    main()
