#!/usr/bin/env python3
"""Video Analytics SLO sweep (paper Fig. 9 right, as a library walkthrough).

Sweeps the VA workflow's SLO from 1.5 s to 2.0 s and prints the resource
consumption of Janus, ORION and GrandSLAM normalised by the clairvoyant
Optimal — showing how late binding's advantage narrows as the SLO loosens.

Run:  python examples/video_analytics_slo_sweep.py
"""

from repro import (
    AnalyticExecutor,
    BudgetRange,
    WorkloadConfig,
    generate_requests,
    profile_workflow,
    video_analytics,
)
from repro.errors import PolicyError
from repro.policies import GrandSLAMPolicy, OraclePolicy, OrionPolicy, janus


def main() -> None:
    base = video_analytics()
    profiles = profile_workflow(base, seed=1, samples=2000)

    print("SLO (s)   Optimal     Janus     ORION  GrandSLAM   (norm. CPU)")
    for slo_s in (1.5, 1.6, 1.7, 1.8, 1.9, 2.0):
        workflow = base.with_slo(slo_s * 1000.0)
        requests = generate_requests(
            workflow, WorkloadConfig(n_requests=400), seed=int(slo_s * 10)
        )
        executor = AnalyticExecutor(workflow)
        optimal = executor.run(OraclePolicy(workflow), requests)

        row = [f"{slo_s:7.1f}", f"{1.0:9.3f}"]
        for build in (
            lambda: janus(workflow, profiles, budget=BudgetRange(1500, int(slo_s * 1000))),
            lambda: OrionPolicy(workflow, profiles),
            lambda: GrandSLAMPolicy(workflow, profiles),
        ):
            try:
                res = executor.run(build(), requests)
                row.append(f"{res.normalized_cpu(optimal):9.3f}")
            except PolicyError:
                row.append(f"{'n/a':>9s}")
        print("  ".join(row))

    print("\nThe gains taper towards loose SLOs: every system converges to")
    print("the 1000-millicore floor, as in the paper's Fig. 9.")


if __name__ == "__main__":
    main()
