#!/usr/bin/env python3
"""Bring your own workflow: JSON spec, custom models, drift + regeneration.

Walks the full developer workflow for an application this library does not
ship: a four-stage document-processing chain defined in the ASL-like JSON
dialect, with user-defined performance models. Then demonstrates the
§III-D feedback loop: the input distribution drifts, the adapter's
supervisor trips the 1% miss threshold, the developer re-profiles and
re-submits tables, and the miss rate recovers.

Run:  python examples/custom_workflow.py
"""


from repro import (
    FunctionModel,
    JanusPolicy,
    Profiler,
    ProfilerConfig,
    ProfileSet,
    Resource,
    Workflow,
    WorkloadConfig,
    generate_requests,
    parse_spec,
    resolve_executor,
    synthesize_hints,
)
from repro.adapter import AdapterService
from repro.functions import LogUniformWorkset
from repro.profiling.profiles import LatencyProfile
from repro.rng import RngFactory

SPEC = {
    "Comment": "Document processing pipeline",
    "StartAt": "Extract",
    "States": {
        "Extract": {"Type": "Task", "Next": "Translate"},
        "Translate": {"Type": "Task", "Next": "Summarize"},
        "Summarize": {"Type": "Task", "Next": "Index"},
        "Index": {"Type": "Task", "End": True},
    },
}


def build_workflow() -> Workflow:
    """DAG from the JSON spec + hand-written performance models."""
    dag = parse_spec(SPEC)
    pages = LogUniformWorkset(1.0, 80.0)  # pages per document
    functions = {
        "Extract": FunctionModel(
            name="Extract", serial_ms=60, parallel_ms=340, sigma=0.10,
            workset=pages, workset_gamma=0.35, dominant_resource=Resource.IO,
        ),
        "Translate": FunctionModel(
            name="Translate", serial_ms=90, parallel_ms=520, sigma=0.12,
            workset=pages, workset_gamma=0.40, dominant_resource=Resource.CPU,
        ),
        "Summarize": FunctionModel(
            name="Summarize", serial_ms=80, parallel_ms=420, sigma=0.10,
            workset=pages, workset_gamma=0.30, dominant_resource=Resource.MEMORY,
        ),
        "Index": FunctionModel(
            name="Index", serial_ms=40, parallel_ms=180, sigma=0.08,
            workset=pages, workset_gamma=0.20, dominant_resource=Resource.IO,
        ),
    }
    return Workflow(
        name="docs", dag=dag, functions=functions, slo_ms=2500.0
    )


def profile(workflow: Workflow, drift: float = 1.0) -> ProfileSet:
    """Profile the workflow; ``drift`` rescales inputs (re-profiling run)."""
    cfg = ProfilerConfig(limits=workflow.limits, samples=1500)
    profiler = Profiler(cfg)
    factory = RngFactory(3).fork("docs", f"drift={drift:g}")
    profiles = {}
    for name in workflow.chain:
        base = profiler.profile_function(
            workflow.model(name), factory.stream(name)
        )
        if drift != 1.0:
            gamma = workflow.model(name).workset_gamma
            base = LatencyProfile(
                function=base.function, percentiles=base.percentiles,
                limits=base.limits, concurrencies=base.concurrencies,
                table=base.table * drift**gamma,
            )
        profiles[name] = base
    return ProfileSet(profiles)


def serve(workflow, policy, n, scale, seed):
    requests = generate_requests(
        workflow,
        WorkloadConfig(n_requests=n, workset_scale=scale),
        seed=seed,
    )
    return resolve_executor(workflow).run(policy, requests)


def main() -> None:
    workflow = build_workflow()
    print(f"chain: {' -> '.join(workflow.chain)}  (SLO {workflow.slo_ms:g} ms)")

    # Developer: profile + synthesize; provider: deploy via the service.
    profiles = profile(workflow)
    hints = synthesize_hints(profiles, workflow.chain, workflow_name="docs")
    service = AdapterService(miss_threshold=0.01, min_samples=100)
    adapter = service.register("acme-corp", "docs", hints, workflow.slo_ms)
    policy = JanusPolicy(workflow, hints)
    policy.adapter = adapter

    result = serve(workflow, policy, 400, scale=1.0, seed=11)
    print(f"\nin-distribution:   viol={result.violation_rate:.1%}  "
          f"miss={adapter.supervisor.miss_rate:.2%}  "
          f"CPU={result.mean_allocated:.0f} mc")

    # Input drift: documents grow 2.5x.
    drifted = serve(workflow, policy, 400, scale=2.5, seed=12)
    print(f"after drift   :    viol={drifted.violation_rate:.1%}  "
          f"miss={adapter.supervisor.miss_rate:.2%}  "
          f"CPU={drifted.mean_allocated:.0f} mc")
    pending = service.pending_regenerations()
    print(f"regeneration requested for: {pending}")

    # Developer re-profiles on the new inputs and re-submits.
    new_hints = synthesize_hints(
        profile(workflow, drift=2.5), workflow.chain, workflow_name="docs"
    )
    service.register("acme-corp", "docs", new_hints, workflow.slo_ms)
    recovered = serve(workflow, policy, 400, scale=2.5, seed=13)
    print(f"after regen:       viol={recovered.violation_rate:.1%}  "
          f"miss={adapter.supervisor.miss_rate:.2%}  "
          f"CPU={recovered.mean_allocated:.0f} mc")


if __name__ == "__main__":
    main()
