#!/usr/bin/env python3
"""Branching workflows — the paper's §VII future work, implemented.

A media-processing diamond: ingest fans out into a heavy vision branch and
a light audio branch that join in a publish step. The same `Session` facade
that drives chains drives this DAG: `Workflow.topology` selects the
branch-parallel executor, hint tables are synthesized per function over
each function's downstream critical path, and the registry resolves
"Janus"/"GrandSLAM" to their DAG variants.

Run:  python examples/branching_workflow.py
"""

from repro import FunctionModel, Resource, Session, Workflow
from repro.functions import LogUniformWorkset
from repro.workflow import WorkflowDAG


def build_workflow() -> Workflow:
    dag = WorkflowDAG(
        ["Ingest", "Vision", "Audio", "Publish"],
        [
            ("Ingest", "Vision"),
            ("Ingest", "Audio"),
            ("Vision", "Publish"),
            ("Audio", "Publish"),
        ],
    )
    clips = LogUniformWorkset(5.0, 120.0)  # clip length, seconds
    functions = {
        "Ingest": FunctionModel(
            name="Ingest", serial_ms=50, parallel_ms=250, sigma=0.08,
            workset=clips, workset_gamma=0.25, dominant_resource=Resource.IO,
        ),
        "Vision": FunctionModel(  # the heavy branch
            name="Vision", serial_ms=120, parallel_ms=680, sigma=0.10,
            workset=clips, workset_gamma=0.35, dominant_resource=Resource.CPU,
        ),
        "Audio": FunctionModel(  # the light branch
            name="Audio", serial_ms=40, parallel_ms=180, sigma=0.08,
            workset=clips, workset_gamma=0.20, dominant_resource=Resource.CPU,
        ),
        "Publish": FunctionModel(
            name="Publish", serial_ms=60, parallel_ms=260, sigma=0.08,
            workset=clips, workset_gamma=0.15, dominant_resource=Resource.NETWORK,
        ),
    }
    return Workflow(name="media", dag=dag, functions=functions, slo_ms=2400.0)


def main() -> None:
    workflow = build_workflow()
    session = Session(workflow, seed=5)
    print(f"DAG: {workflow.dag.edges}  (topology: {workflow.topology})")
    print(f"critical path: {' -> '.join(workflow.chain)}  "
          f"(SLO {workflow.slo_ms:g} ms)\n")

    # Developer side: profile every function (including the
    # off-critical-path Audio branch) and synthesize per-function tables.
    hints = session.synthesize()
    for name, chain in hints.chains.items():
        print(f"  {name:8s} table over {' -> '.join(chain):28s} "
              f"({len(hints.table_for(name))} rows)")

    # Provider side: the DAG executor is auto-selected, and the registry
    # resolves the policy names to their DAG variants.
    requests = session.requests(500)
    janus = session.policy("Janus")
    early = session.policy("GrandSLAM")

    print(f"\n{'policy':14s}{'mean CPU':>10s}{'P99 E2E':>10s}{'viol':>8s}")
    for policy in (janus, early):
        result = session.run(policy, requests)
        print(f"{policy.name:14s}{result.mean_allocated:10.0f}"
              f"{result.e2e_percentile(99):10.0f}{result.violation_rate:8.1%}")
    print(f"\nJanus-DAG hit rate: {janus.hit_rate:.1%}. Parallel branches are "
          f"sized independently;\nthe light Audio branch rides at Kmin while "
          f"the Vision branch adapts to the budget.")


if __name__ == "__main__":
    main()
