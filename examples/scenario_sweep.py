#!/usr/bin/env python3
"""Scenario-matrix sweep: one declarative object, many workload shapes.

A `ScenarioMatrix` is the cartesian product of arrival process x workload
topology x SLO multiplier x tenant count, expanded into seeded scenarios
and served with the full policy suite through the `Session` pipeline. The
`SweepRunner` executes the cells on a process pool; thanks to per-scenario
RNG derivation the pooled run is bit-identical to a serial one.

Run:  python examples/scenario_sweep.py
"""

from repro import ArrivalSpec, ScenarioMatrix, SweepRunner


def main() -> None:
    # 16 cells: 2 workflows x 2 arrival shapes x 2 SLO scales x 2 tenant
    # counts, every cell served with all four headline systems on one
    # common request stream. (Kept small so the example runs in seconds —
    # scale n_requests/samples up for paper-grade numbers.)
    matrix = ScenarioMatrix(
        workflows=("IA", "VA"),
        arrivals=(
            ArrivalSpec(kind="poisson", rate_per_s=8.0),
            ArrivalSpec(kind="azure", rate_per_s=8.0),  # heavy-tailed replay
        ),
        slo_scales=(1.0, 1.25),
        tenant_counts=(1, 2),
        policies=("Optimal", "ORION", "GrandSLAM", "Janus"),
        n_requests=100,
        samples=600,
        seed=2025,
    )
    print(f"matrix: {len(matrix)} cells "
          f"({len(matrix.policies)} policies per cell)")

    serial = SweepRunner(max_workers=1).run(matrix)
    pooled = SweepRunner(max_workers=4).run(matrix)
    print(f"serial {serial.wall_seconds:.1f} s, "
          f"pooled {pooled.wall_seconds:.1f} s "
          f"({pooled.max_workers} workers)")
    print("pooled run bit-identical to serial:",
          pooled.to_json() == serial.to_json())
    print()
    print(pooled.render())

    # Per-policy aggregates are programmatically accessible too.
    janus_cpu = pooled.mean_normalized_cpu("Janus")
    grandslam_cpu = pooled.mean_normalized_cpu("GrandSLAM")
    print(f"\nacross the matrix, Janus uses {janus_cpu:.2f}x Optimal's CPU "
          f"vs {grandslam_cpu:.2f}x for early binding "
          f"({100 * (1 - janus_cpu / grandslam_cpu):.0f}% less), "
          f"at {pooled.attainment('Janus'):.1%} SLO attainment")


if __name__ == "__main__":
    main()
