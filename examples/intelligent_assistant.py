#!/usr/bin/env python3
"""Intelligent Assistant on the full DES cluster platform.

Runs the IA workflow (paper §V-A) open-loop on the simulated serverless
platform — warm pools, cold starts, horizontal autoscaling and co-location
interference included — comparing Janus with GrandSLAM under Poisson
arrivals.

The developer-side profiling here is *platform-aware*, as in the paper:
functions are profiled with the interference mix they will actually see
(via :meth:`InterferenceModel.profiling_sampler`), so the hint tables
already account for typical co-location and only the tail dynamics remain
for the adapter to absorb.

Run:  python examples/intelligent_assistant.py
"""

import numpy as np

from repro import (
    BudgetRange,
    ClusterConfig,
    InterferenceModel,
    ProfileSet,
    Profiler,
    ProfilerConfig,
    ServerlessPlatform,
    WorkloadConfig,
    generate_requests,
    intelligent_assistant,
)
from repro.policies import GrandSLAMPolicy, janus
from repro.rng import RngFactory

#: Expected co-location mix at the example's arrival rate (~1 req/s over
#: four VMs): instances mostly run alone, occasionally pairwise.
COLOCATION_MIX = {1: 0.70, 2: 0.25, 3: 0.05}


def platform_aware_profiles(workflow, interference: InterferenceModel):
    """Profile each function with its own dominant-resource slowdown mix."""
    profiles = {}
    factory = RngFactory(1).fork("example-ia")
    for name in workflow.chain:
        model = workflow.model(name)
        sampler = interference.profiling_sampler(
            model.dominant_resource, COLOCATION_MIX
        )
        cfg = ProfilerConfig(limits=workflow.limits, samples=2000)
        profiles[name] = Profiler(cfg, interference=sampler).profile_function(
            model, factory.stream(name)
        )
    return ProfileSet(profiles)


def main() -> None:
    workflow = intelligent_assistant()
    interference = InterferenceModel()
    profiles = platform_aware_profiles(workflow, interference)
    requests = generate_requests(
        workflow,
        WorkloadConfig(n_requests=300, arrival_rate_per_s=1.0),
        seed=7,
    )

    print("policy        p50(s)  p99(s)  viol   cold-rate  cluster-mc(avg)")
    for policy in (
        janus(workflow, profiles, budget=BudgetRange(2000, 8000)),
        GrandSLAMPolicy(workflow, profiles),
    ):
        # Fission PoolManager-style pre-provisioned warm pods (paper §V-A:
        # chosen "due to its excellent performance against cold starts").
        platform = ServerlessPlatform(
            workflow,
            ClusterConfig(
                n_vms=4,
                vm_capacity_millicores=13_000,
                warm_pool_size=4,
                autoscale=False,
            ),
            interference=interference,
        )
        result = platform.run(policy, requests)
        e2e = result.e2e_ms() / 1000.0
        print(
            f"{policy.name:12s}  {np.percentile(e2e, 50):6.2f}  "
            f"{np.percentile(e2e, 99):6.2f}  {result.violation_rate:5.1%}  "
            f"{result.extras['cold_start_rate']:9.1%}  "
            f"{result.extras['mean_cluster_allocated']:15.0f}"
        )

    print(
        "\nWith platform-aware profiles the hint tables absorb typical\n"
        "co-location, and Janus serves the same load with roughly a third\n"
        "less CPU than GrandSLAM. Residual violations stem from cold starts\n"
        "and rare interference spikes — runtime dynamics outside the\n"
        "profiled distribution, which the adapter counters by scaling\n"
        "misses to Kmax (and, when they persist, by triggering hints\n"
        "regeneration; see examples/custom_workflow.py)."
    )


if __name__ == "__main__":
    main()
