#!/usr/bin/env python3
"""Quickstart: the full Janus pipeline in ~40 lines.

Profiles the Intelligent Assistant workflow, synthesizes hint tables,
deploys them behind the provider-side adapter, serves 500 requests, and
compares resource consumption against a worst-case early-binding plan.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticExecutor,
    BudgetRange,
    JanusPolicy,
    WorkloadConfig,
    generate_requests,
    intelligent_assistant,
    profile_workflow,
    synthesize_hints,
)
from repro.policies import GrandSLAMPolicy


def main() -> None:
    # 1. The application: OD -> QA -> TS with a 3 s end-to-end P99 SLO.
    workflow = intelligent_assistant()
    print(f"workflow: {' -> '.join(workflow.chain)}  (SLO {workflow.slo_ms:g} ms)")

    # 2. Developer side (offline): profile and synthesize hints.
    profiles = profile_workflow(workflow, seed=1, samples=2000)
    hints = synthesize_hints(
        profiles, workflow.chain, budget=BudgetRange(2000, 7000),
        workflow_name=workflow.name,
    )
    print(
        f"hints: {hints.condensed_hint_count} rows "
        f"(from {hints.raw_hint_count} raw, "
        f"{hints.compression_ratio:.1%} compressed) "
        f"in {hints.synthesis_seconds:.2f} s"
    )

    # 3. Provider side (online): serve requests with runtime adaptation.
    janus = JanusPolicy(workflow, hints)
    requests = generate_requests(workflow, WorkloadConfig(n_requests=500), seed=42)
    executor = AnalyticExecutor(workflow)
    adaptive = executor.run(janus, requests)

    # 4. Compare with an early-binding baseline on the same requests.
    early = executor.run(GrandSLAMPolicy(workflow, profiles), requests)

    print(f"\n{'':16s}{'early binding':>16s}{'Janus':>16s}")
    print(f"{'mean CPU (mc)':16s}{early.mean_allocated:16.0f}"
          f"{adaptive.mean_allocated:16.0f}")
    print(f"{'P99 E2E (ms)':16s}{early.e2e_percentile(99):16.0f}"
          f"{adaptive.e2e_percentile(99):16.0f}")
    print(f"{'violations':16s}{early.violation_rate:16.1%}"
          f"{adaptive.violation_rate:16.1%}")
    saving = 1 - adaptive.mean_allocated / early.mean_allocated
    print(f"\nJanus saves {saving:.1%} CPU while keeping the P99 SLO "
          f"(hit rate {janus.hit_rate:.1%}).")


if __name__ == "__main__":
    main()
