#!/usr/bin/env python3
"""Quickstart: the full Janus pipeline through the `Session` facade.

One `Session` owns the whole developer/provider pipeline — profiling,
hint synthesis, policy construction, and serving — and the same code path
drives chains and branching DAGs. Here it profiles the Intelligent
Assistant workflow, deploys Janus behind the provider-side adapter, serves
500 requests, and compares against an early-binding baseline.

Run:  python examples/quickstart.py
"""

from repro import Session, intelligent_assistant


def main() -> None:
    # 1. The application: OD -> QA -> TS with a 3 s end-to-end P99 SLO.
    session = Session(intelligent_assistant(), seed=1)
    workflow = session.workflow
    print(f"workflow: {' -> '.join(workflow.chain)}  (SLO {workflow.slo_ms:g} ms)")

    # 2. Developer side (offline): profile and synthesize hints (memoised —
    #    every later step reuses them).
    hints = session.synthesize()
    print(
        f"hints: {hints.condensed_hint_count} rows "
        f"(from {hints.raw_hint_count} raw, "
        f"{hints.compression_ratio:.1%} compressed) "
        f"in {hints.synthesis_seconds:.2f} s"
    )

    # 3. Provider side (online): serve the same 500 requests with runtime
    #    adaptation and with an early-binding baseline.
    requests = session.requests(500)
    janus = session.policy("Janus")
    adaptive = session.run(janus, requests)
    early = session.run("GrandSLAM", requests)

    print(f"\n{'':16s}{'early binding':>16s}{'Janus':>16s}")
    print(f"{'mean CPU (mc)':16s}{early.mean_allocated:16.0f}"
          f"{adaptive.mean_allocated:16.0f}")
    print(f"{'P99 E2E (ms)':16s}{early.e2e_percentile(99):16.0f}"
          f"{adaptive.e2e_percentile(99):16.0f}")
    print(f"{'violations':16s}{early.violation_rate:16.1%}"
          f"{adaptive.violation_rate:16.1%}")
    saving = 1 - adaptive.mean_allocated / early.mean_allocated
    print(f"\nJanus saves {saving:.1%} CPU while keeping the P99 SLO "
          f"(hit rate {janus.hit_rate:.1%}).")

    # 4. Or do all of the above in one call (reusing this session's
    #    profiling campaign instead of running a second one):
    report = Session.evaluate(
        intelligent_assistant(), slo_ms=3000, profiles=session.profile(),
        include=["Optimal", "Janus", "GrandSLAM"], requests=500, seed=1,
    )
    print(f"\n{report}")


if __name__ == "__main__":
    main()
