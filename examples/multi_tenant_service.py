#!/usr/bin/env python3
"""Multi-tenant adapter service (paper §III-A).

Hints are managed separately per tenant and workflow: two tenants deploy IA
and VA side by side, the provider serves both through one
:class:`AdapterService`, and per-tenant hit/miss statistics stay isolated.
Also measures the service's decision latency across tenants (§V-H).

Run:  python examples/multi_tenant_service.py
"""

import time

import numpy as np

from repro import (
    BudgetRange,
    JanusPolicy,
    WorkloadConfig,
    generate_requests,
    intelligent_assistant,
    profile_workflow,
    resolve_executor,
    synthesize_hints,
    video_analytics,
)
from repro.adapter import AdapterService


def main() -> None:
    service = AdapterService(miss_threshold=0.01)

    deployments = []
    for tenant, workflow, budget in (
        ("tenant-ia", intelligent_assistant(), BudgetRange(2000, 7000)),
        ("tenant-va", video_analytics(), BudgetRange(1500, 2000)),
    ):
        profiles = profile_workflow(workflow, seed=1, samples=2000)
        hints = synthesize_hints(
            profiles, workflow.chain, budget, workflow_name=workflow.name
        )
        adapter = service.register(tenant, workflow.name, hints, workflow.slo_ms)
        policy = JanusPolicy(workflow, hints)
        policy.adapter = adapter  # serve through the shared service
        deployments.append((tenant, workflow, policy))
        print(
            f"deployed {workflow.name} for {tenant}: "
            f"{hints.condensed_hint_count} hint rows, "
            f"{hints.memory_bytes() / 1024:.1f} KiB"
        )

    print("\ntenant      workflow  requests  viol    hit-rate  mean-CPU")
    for tenant, workflow, policy in deployments:
        requests = generate_requests(
            workflow, WorkloadConfig(n_requests=400), seed=17
        )
        result = resolve_executor(workflow).run(policy, requests)
        stats = service.stats()[(tenant, workflow.name)]
        hit_rate = 1.0 - stats["miss_rate"]
        print(
            f"{tenant:10s}  {workflow.name:8s}  {len(requests):8d}  "
            f"{result.violation_rate:5.1%}  {hit_rate:8.1%}  "
            f"{result.mean_allocated:8.0f}"
        )

    # §V-H: decision latency through the service layer.
    t0 = time.perf_counter()
    n = 10_000
    rng = np.random.default_rng(0)
    for _ in range(n):
        service.decide("tenant-ia", "IA", 0, float(rng.uniform(2000, 7000)))
    per_decision_ms = (time.perf_counter() - t0) / n * 1e3
    print(f"\nservice decision latency: {per_decision_ms * 1e3:.1f} us/decision "
          f"(paper bound: 3 ms)")


if __name__ == "__main__":
    main()
