"""Metrics: stats, slack, SLO, reporting."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.metrics.report import format_kv, format_table
from repro.metrics.slack import slack, slack_cdf, slacks
from repro.metrics.slo import (
    e2e_percentile,
    meets_p99_slo,
    violation_count,
    violation_rate,
)
from repro.metrics.stats import empirical_cdf, percentile_summary
from repro.workflow.request import RequestOutcome, StageRecord


def outcome(latency, slo=1000.0, rid=0):
    return RequestOutcome(
        request_id=rid, arrival_ms=0.0, slo_ms=slo,
        stages=[StageRecord("F", 1000, 0.0, latency)],
    )


class TestStats:
    def test_empirical_cdf_endpoints(self):
        x, f = empirical_cdf([1.0, 2.0, 3.0], grid=np.array([0.5, 2.0, 5.0]))
        np.testing.assert_allclose(f, [0.0, 2 / 3, 1.0])

    def test_empirical_cdf_default_grid(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert f[-1] == 1.0

    def test_empirical_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_percentile_summary(self):
        summary = percentile_summary(np.arange(101))
        assert summary["p50"] == pytest.approx(50.0)
        assert summary["min"] == 0.0 and summary["max"] == 100.0

    def test_percentile_summary_empty_rejected(self):
        with pytest.raises(ExperimentError, match="at least one sample"):
            percentile_summary([])

    def test_percentile_summary_single_sample_degenerate(self):
        summary = percentile_summary([42.0])
        assert summary["p1"] == summary["p99"] == 42.0
        assert summary["mean"] == summary["min"] == summary["max"] == 42.0


class TestSlack:
    def test_slack_formula(self):
        assert slack(400.0, 1000.0) == pytest.approx(0.6)
        assert slack(1200.0, 1000.0) == pytest.approx(-0.2)

    def test_slack_invalid_slo(self):
        with pytest.raises(ValueError):
            slack(1.0, 0.0)

    def test_slacks_vector(self):
        outs = [outcome(200), outcome(800)]
        np.testing.assert_allclose(slacks(outs), [0.8, 0.2])

    def test_slack_cdf(self):
        outs = [outcome(l) for l in (100, 500, 900)]
        grid, cdf = slack_cdf(outs)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == 1.0


class TestSLO:
    def test_violation_counts(self):
        outs = [outcome(500), outcome(1500), outcome(900)]
        assert violation_count(outs) == 1
        assert violation_rate(outs) == pytest.approx(1 / 3)

    def test_meets_p99(self):
        outs = [outcome(500) for _ in range(99)] + [outcome(2000)]
        assert meets_p99_slo(outs)  # exactly 1% violations
        outs += [outcome(2000)]
        assert not meets_p99_slo(outs)

    def test_e2e_percentile(self):
        outs = [outcome(l) for l in range(1, 101)]
        assert e2e_percentile(outs, 50) == pytest.approx(50.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            violation_rate([])
        with pytest.raises(ValueError):
            e2e_percentile([], 50)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"], [("a", 1.5), ("long-name", 2.25)], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "---" in lines[2]
        assert len(lines) == 5

    def test_format_table_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_format_table_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_format_table_no_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_format_kv(self):
        text = format_kv({"alpha": 1.23456, "b": "x"}, title="K")
        assert text.startswith("K")
        assert "alpha" in text and "1.235" in text
