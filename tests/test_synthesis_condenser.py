"""Condensing (Algorithm 2) and the condensed-table structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.synthesis.condenser import condense
from repro.synthesis.hints import CondensedHintsTable, RawHints, WorkflowHints


def make_raw(sizes, tmin=100):
    sizes = np.asarray(sizes, dtype=np.int32)
    n = sizes.size
    feasible = sizes >= 0
    return RawHints(
        suffix_index=0,
        head_function="F",
        tmin_ms=tmin,
        tmax_ms=tmin + n - 1,
        head_sizes=sizes,
        head_percentiles=np.where(feasible, 99.0, np.nan).astype(np.float32),
        expected_cost=np.where(feasible, sizes.astype(float), np.inf),
        planned_total=np.where(feasible, sizes.astype(float), np.inf),
    )


class TestCondense:
    def test_runs_fuse(self):
        raw = make_raw([3000, 3000, 2000, 2000, 2000, 1000])
        table = condense(raw, kmax=3000)
        assert table.rows() == [
            (100, 101, 3000), (102, 104, 2000), (105, 105, 1000),
        ]

    def test_leading_infeasible_region_excluded(self):
        raw = make_raw([-1, -1, 2000, 1000])
        table = condense(raw, kmax=3000)
        assert table.tmin_ms == 102
        assert table.lookup(101).hit is False

    def test_all_infeasible_rejected(self):
        with pytest.raises(SynthesisError):
            condense(make_raw([-1, -1, -1]), kmax=3000)

    def test_hole_in_feasible_region_rejected(self):
        with pytest.raises(SynthesisError):
            condense(make_raw([2000, -1, 1000]), kmax=3000)

    def test_single_budget(self):
        table = condense(make_raw([1500]), kmax=3000)
        assert table.rows() == [(100, 100, 1500)]

    @given(
        st.lists(
            st.sampled_from([1000, 1500, 2000, 2500, 3000]),
            min_size=1, max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_lookup_matches_raw_everywhere(self, sizes):
        """Property: condensing is lossless — every budget resolves to the
        same head size the raw table held (Insight-5/6 preserve accuracy)."""
        raw = make_raw(sizes)
        table = condense(raw, kmax=3000)
        for offset, size in enumerate(sizes):
            budget = raw.tmin_ms + offset
            result = table.lookup(budget)
            assert result.hit and result.size == size

    @given(
        st.lists(
            st.sampled_from([1000, 1100, 1200, 3000]),
            min_size=1, max_size=150,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_are_contiguous_and_minimal(self, sizes):
        table = condense(make_raw(sizes), kmax=3000)
        rows = table.rows()
        for (s1, e1, k1), (s2, e2, k2) in zip(rows, rows[1:]):
            assert s2 == e1 + 1
            assert k1 != k2  # maximal fusion: adjacent rows differ


class TestCondensedTable:
    def make(self):
        return CondensedHintsTable(
            suffix_index=0, head_function="F",
            starts=np.array([100, 200]), ends=np.array([199, 300]),
            sizes=np.array([3000, 1000]), kmax=3000,
        )

    def test_lookup_hit(self):
        t = self.make()
        assert t.lookup(150) == t.lookup(100)
        assert t.lookup(150).size == 3000
        assert t.lookup(250).size == 1000

    def test_lookup_boundaries(self):
        t = self.make()
        assert t.lookup(199).size == 3000
        assert t.lookup(200).size == 1000

    def test_miss_below_scales_to_kmax(self):
        t = self.make()
        res = t.lookup(50)
        assert not res.hit and res.size == 3000

    def test_clamp_above(self):
        t = self.make()
        res = t.lookup(10_000)
        assert res.hit and res.size == 1000

    def test_strict_above_is_miss(self):
        t = CondensedHintsTable(
            suffix_index=0, head_function="F",
            starts=np.array([100]), ends=np.array([200]),
            sizes=np.array([1500]), kmax=3000, clamp_above=False,
        )
        assert not t.lookup(201).hit

    def test_validation(self):
        with pytest.raises(SynthesisError):
            CondensedHintsTable(
                0, "F", np.array([100, 150]), np.array([160, 200]),
                np.array([1, 2]), kmax=3000,
            )  # overlapping / non-contiguous
        with pytest.raises(SynthesisError):
            CondensedHintsTable(
                0, "F", np.array([100]), np.array([50]),
                np.array([1]), kmax=3000,
            )  # end before start
        with pytest.raises(SynthesisError):
            CondensedHintsTable(
                0, "F", np.array([], dtype=int), np.array([], dtype=int),
                np.array([], dtype=int), kmax=3000,
            )  # empty

    def test_serialization_roundtrip(self):
        t = self.make()
        clone = CondensedHintsTable.from_dict(t.to_dict())
        assert clone.rows() == t.rows()
        assert clone.kmax == t.kmax

    def test_memory_bytes(self):
        assert self.make().memory_bytes() > 0


class TestWorkflowHints:
    def make(self):
        tables = [
            CondensedHintsTable(
                i, f"F{i}", np.array([100]), np.array([200]),
                np.array([1000]), kmax=3000,
            )
            for i in range(3)
        ]
        return WorkflowHints(
            workflow_name="w", concurrency=1, weight=1.0, tables=tables,
            raw_hint_count=300, condensed_hint_count=3,
        )

    def test_stage_lookup(self):
        hints = self.make()
        assert hints.table_for_stage(1).head_function == "F1"
        with pytest.raises(SynthesisError):
            hints.table_for_stage(9)

    def test_compression_ratio(self):
        assert self.make().compression_ratio == pytest.approx(0.99)

    def test_json_roundtrip(self):
        hints = self.make()
        clone = WorkflowHints.from_json(hints.to_json())
        assert clone.workflow_name == "w"
        assert clone.num_stages == 3
        assert clone.tables[2].rows() == hints.tables[2].rows()

    def test_suffix_ordering_enforced(self):
        tables = self.make().tables
        with pytest.raises(SynthesisError):
            WorkflowHints(
                workflow_name="w", concurrency=1, weight=1.0,
                tables=list(reversed(tables)),
            )

    def test_empty_rejected(self):
        with pytest.raises(SynthesisError):
            WorkflowHints(workflow_name="w", concurrency=1, weight=1.0, tables=[])
