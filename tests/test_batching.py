"""The batching front end: batch formation, timing, amortisation."""

import pytest

from repro.errors import ExperimentError
from repro.policies.early_binding import FixedPlanPolicy
from repro.policies.janus import janus
from repro.runtime.batching import BatchingExecutor
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.workflow.catalog import intelligent_assistant, video_analytics
from tests.conftest import make_chain_workflow


@pytest.fixture(scope="module")
def batch_workflow():
    wf = make_chain_workflow(slo_ms=4000.0)
    # All functions in the synthetic chain are batchable by default.
    return wf.with_concurrency(3)


class TestBatchFormation:
    def test_size_rule(self, batch_workflow):
        executor = BatchingExecutor(batch_workflow, max_batch=3, max_wait_ms=1e9)
        requests = generate_requests(
            batch_workflow,
            WorkloadConfig(n_requests=7, arrival_rate_per_s=1000.0),
            seed=1,
        )
        batches = executor.form_batches(requests)
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_timeout_rule(self, batch_workflow):
        executor = BatchingExecutor(batch_workflow, max_batch=3, max_wait_ms=10.0)
        requests = generate_requests(
            batch_workflow,
            WorkloadConfig(n_requests=5, arrival_rate_per_s=1.0),  # ~1000 ms gaps
            seed=1,
        )
        batches = executor.form_batches(requests)
        assert all(len(b) == 1 for b in batches)  # gaps exceed the window

    def test_batches_preserve_arrival_order(self, batch_workflow):
        executor = BatchingExecutor(batch_workflow, max_batch=2, max_wait_ms=50.0)
        requests = generate_requests(
            batch_workflow,
            WorkloadConfig(n_requests=10, arrival_rate_per_s=100.0),
            seed=2,
        )
        batches = executor.form_batches(requests)
        flat = [r.request_id for b in batches for r in b]
        assert flat == sorted(flat)


class TestBatchExecution:
    def test_wait_counts_toward_latency(self, batch_workflow):
        requests = generate_requests(
            batch_workflow,
            WorkloadConfig(n_requests=6, arrival_rate_per_s=50.0),
            seed=3,
        )
        policy = FixedPlanPolicy("fixed", [2000, 2000, 2000])
        batched = BatchingExecutor(
            batch_workflow, max_batch=3, max_wait_ms=300.0
        ).run(policy, requests)
        from repro.runtime.executor import AnalyticExecutor

        solo = AnalyticExecutor(batch_workflow).run(policy, requests)
        # Batched requests wait and share slower (batch-factor) stages.
        assert batched.e2e_ms().mean() > solo.e2e_ms().mean()

    def test_amortized_resources_cheaper(self, batch_workflow):
        requests = generate_requests(
            batch_workflow,
            WorkloadConfig(n_requests=30, arrival_rate_per_s=1000.0),
            seed=4,
        )
        policy = FixedPlanPolicy("fixed", [2000, 2000, 2000])
        result = BatchingExecutor(
            batch_workflow, max_batch=3, max_wait_ms=100.0
        ).run(policy, requests)
        assert result.extras["mean_batch_size"] > 2.0
        # Amortised per-request CPU is the batch allocation / batch size.
        assert (
            result.extras["mean_amortized_millicores"]
            < result.mean_allocated / 2.0
        )

    def test_batch_members_share_stage_records(self, batch_workflow):
        requests = generate_requests(
            batch_workflow,
            WorkloadConfig(n_requests=3, arrival_rate_per_s=1000.0),
            seed=5,
        )
        result = BatchingExecutor(
            batch_workflow, max_batch=3, max_wait_ms=100.0
        ).run(policy := FixedPlanPolicy("f", [1500, 1500, 1500]), requests)
        ends = {tuple(s.end_ms for s in o.stages) for o in result.outcomes}
        assert len(ends) == 1  # one shared pipeline

    def test_janus_with_batching_meets_slo(self):
        # IA at concurrency 2 with SLO 4 s (paper Fig. 4 second panel) under
        # an actual queueing front end.
        from repro.profiling.profiler import profile_workflow

        wf = intelligent_assistant(slo_ms=4000.0, concurrency=2)
        profiles = profile_workflow(
            wf, seed=5, samples=600, concurrencies=(1, 2)
        )
        policy = janus(wf, profiles, concurrency=2)
        requests = generate_requests(
            wf,
            WorkloadConfig(n_requests=200, arrival_rate_per_s=20.0,
                           concurrency=2),
            seed=6,
        )
        result = BatchingExecutor(wf, max_batch=2, max_wait_ms=150.0).run(
            policy, requests
        )
        # Queue wait eats budget; Janus adapts the remaining stages.
        assert result.violation_rate <= 0.03
        assert result.extras["mean_batch_size"] > 1.5

    def test_non_batchable_rejected(self):
        wf = video_analytics()
        with pytest.raises(ExperimentError):
            BatchingExecutor(wf, max_batch=2)

    def test_invalid_params(self, batch_workflow):
        with pytest.raises(ExperimentError):
            BatchingExecutor(batch_workflow, max_batch=0)
        with pytest.raises(ExperimentError):
            BatchingExecutor(batch_workflow, max_wait_ms=-1.0)

    def test_empty_stream_rejected(self, batch_workflow):
        with pytest.raises(ExperimentError):
            BatchingExecutor(batch_workflow).run(
                FixedPlanPolicy("f", [1000] * 3), []
            )
