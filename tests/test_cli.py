"""The janus-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_knobs(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--requests", "100", "--samples", "500"]
        )
        assert args.experiment == "fig5"
        assert args.requests == 100 and args.samples == 500

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "overhead" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig1b", "--samples", "600"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1b" in out and "took" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "fig1a", "--seed", "3"]) == 0
        assert "slack" in capsys.readouterr().out


class TestSweep:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.workflows == "IA,VA"
        assert args.jobs is None

    def test_parser_knobs(self):
        args = build_parser().parse_args(
            ["sweep", "--workflows", "IA", "--arrivals", "poisson@4",
             "--slo-scales", "1.0,1.5", "--tenants", "1",
             "--requests", "25", "--samples", "300", "--jobs", "2"]
        )
        assert args.arrivals == "poisson@4"
        assert args.requests == 25 and args.jobs == 2

    def test_small_sweep_end_to_end(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--workflows", "IA",
             "--arrivals", "constant,poisson@8",
             "--slo-scales", "1.0", "--tenants", "1",
             "--policies", "Optimal,Janus",
             "--requests", "20", "--samples", "300", "--seed", "9",
             "--jobs", "1",
             "--csv", str(csv_path), "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "sweeping 2 scenario cells" in out
        assert "Scenario sweep" in out and "Janus" in out
        assert csv_path.exists() and json_path.exists()
        import json as json_mod

        payload = json_mod.loads(json_path.read_text())
        assert payload["num_cells"] == 2

    def test_parser_cluster_knobs(self):
        args = build_parser().parse_args(
            ["sweep", "--executor", "auto,cluster",
             "--cluster-config", "n_vms=2,autoscale=false"]
        )
        assert args.executor == "auto,cluster"
        assert args.cluster_config == "n_vms=2,autoscale=false"

    def test_cluster_sweep_end_to_end(self, capsys, tmp_path):
        csv_path = tmp_path / "cluster.csv"
        assert main(
            ["sweep", "--workflows", "IA",
             "--arrivals", "poisson@4",
             "--slo-scales", "2.0", "--tenants", "1",
             "--policies", "GrandSLAM,Janus",
             "--executor", "cluster",
             "--cluster-config", "n_vms=2,warm_pool_size=2,autoscale=false",
             "--requests", "10", "--samples", "300", "--seed", "3",
             "--jobs", "1", "--csv", str(csv_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "sweeping 1 scenario cells" in out
        lines = csv_path.read_text().splitlines()
        header = lines[0].split(",")
        cold = lines[1].split(",")[header.index("cold_start_rate")]
        assert cold != "" and 0.0 < float(cold) <= 1.0
        assert "exec cluster" in lines[1]


class TestSweepBackendsAndCache:
    def test_parser_backend_and_cache_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--backend", "workstealing",
             "--cache-dir", "/tmp/x", "--progress"]
        )
        assert args.backend == "workstealing"
        assert args.cache_dir == "/tmp/x"
        assert args.progress is True and args.no_cache is False

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--backend", "quantum"])

    def test_cache_dir_env_default(self, monkeypatch):
        monkeypatch.setenv("JANUS_SWEEP_CACHE", "/tmp/from-env")
        args = build_parser().parse_args(["sweep"])
        assert args.cache_dir == "/tmp/from-env"

    def test_cold_then_warm_sweep_round_trip(self, capsys, tmp_path):
        # The CI smoke in miniature: same cache dir, byte-identical JSON,
        # second run fully served from cache with per-cell progress lines.
        cache = tmp_path / "cache"
        base = ["sweep", "--workflows", "IA", "--arrivals", "constant",
                "--slo-scales", "1.0", "--tenants", "1,2",
                "--policies", "Optimal,Janus",
                "--requests", "15", "--samples", "300", "--seed", "11",
                "--jobs", "2", "--cache-dir", str(cache), "--progress"]
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        assert main(base + ["--backend", "workstealing",
                            "--json", str(cold_json)]) == 0
        cold_out = capsys.readouterr().out
        assert "workstealing backend" in cold_out
        assert "cell cache: 0 hit(s), 2 miss(es)" in cold_out
        assert main(base + ["--json", str(warm_json)]) == 0
        warm_out = capsys.readouterr().out
        assert "cell cache: 2 hit(s), 0 miss(es)" in warm_out
        assert warm_out.count("cache hit") == 2
        assert cold_json.read_bytes() == warm_json.read_bytes()

    def test_no_cache_disables_env_and_flag(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        assert main(
            ["sweep", "--workflows", "IA", "--arrivals", "constant",
             "--slo-scales", "1.0", "--tenants", "1",
             "--policies", "Janus", "--requests", "10",
             "--samples", "300", "--jobs", "1",
             "--cache-dir", str(cache), "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "cell cache" not in out
        assert not cache.exists()


class TestTraceCommands:
    def test_generate_summarize_replay_round_trip(self, capsys, tmp_path):
        out = tmp_path / "day.jsonl"
        assert main(
            ["trace", "generate", "--workflows", "IA,VA", "--n", "150",
             "--arrival", "diurnal@10", "--period-s", "10",
             "--amplitude", "0.8", "--zipf", "1.0", "--seed", "7",
             "--out", str(out)]
        ) == 0
        gen_out = capsys.readouterr().out
        assert "generated 150 records" in gen_out
        assert "content digest: " in gen_out
        assert out.exists()

        assert main(["trace", "summarize", str(out)]) == 0
        sum_out = capsys.readouterr().out
        assert "records:   150" in sum_out
        assert "IA" in sum_out and "VA" in sum_out
        # The digest printed at generation matches the summary's.
        digest = gen_out.split("content digest: ")[1].strip()
        assert digest in sum_out

        assert main(["trace", "replay", str(out)]) == 0
        assert "replayed 150 arrivals" in capsys.readouterr().out
        assert main(
            ["trace", "replay", str(out), "--workflow", "IA",
             "--requests", "20"]
        ) == 0
        assert "replayed 20 IA requests" in capsys.readouterr().out

    def test_generate_csv_encoding(self, capsys, tmp_path):
        out = tmp_path / "day.csv"
        assert main(
            ["trace", "generate", "--workflows", "IA", "--n", "30",
             "--arrival", "poisson@5", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert out.read_text().startswith("#janus-trace=1\n")

    def test_shape_flags_rejected_for_non_diurnal(self, tmp_path):
        with pytest.raises(SystemExit, match="diurnal"):
            main(
                ["trace", "generate", "--workflows", "IA", "--n", "10",
                 "--arrival", "poisson@5", "--amplitude", "0.5",
                 "--out", str(tmp_path / "x.jsonl")]
            )

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_sweep_traces_flag_end_to_end(self, capsys, tmp_path):
        trace_path = tmp_path / "day.jsonl"
        assert main(
            ["trace", "generate", "--workflows", "IA", "--n", "80",
             "--arrival", "diurnal@10", "--period-s", "5",
             "--seed", "3", "--out", str(trace_path)]
        ) == 0
        capsys.readouterr()
        json_path = tmp_path / "sweep.json"
        assert main(
            ["sweep", "--workflows", "IA", "--arrivals", "constant",
             "--traces", str(trace_path),
             "--slo-scales", "1.0", "--tenants", "1",
             "--policies", "Optimal,Janus",
             "--requests", "15", "--samples", "300", "--seed", "9",
             "--jobs", "1", "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "sweeping 2 scenario cells" in out
        import json as json_mod

        payload = json_mod.loads(json_path.read_text())
        arrivals = {r["arrival"] for r in payload["results"]}
        assert arrivals == {"constant@0ms", f"replay@{trace_path}"}

    def test_sweep_replay_arrival_token(self, capsys, tmp_path):
        trace_path = tmp_path / "day.jsonl"
        assert main(
            ["trace", "generate", "--workflows", "IA", "--n", "60",
             "--arrival", "poisson@10", "--seed", "3",
             "--out", str(trace_path)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["sweep", "--workflows", "IA",
             "--arrivals", f"replay@{trace_path}",
             "--slo-scales", "1.0", "--tenants", "1",
             "--policies", "Janus",
             "--requests", "10", "--samples", "300", "--jobs", "1"]
        ) == 0
        assert "sweeping 1 scenario cells" in capsys.readouterr().out


class TestServe:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.source == "diurnal@8" and args.policy == "Janus"
        assert args.max_requests is None and args.time_scale == 0.0

    def test_unbounded_run_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="unbounded"):
            main(["serve"])  # no --max-requests / --max-seconds

    def test_bad_drift_token_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--max-requests", "10", "--drift", "nope"])

    def test_serve_end_to_end(self, capsys, tmp_path):
        snap_path = tmp_path / "snapshot.json"
        events_path = tmp_path / "events.jsonl"
        assert main(
            ["serve", "--source", "poisson@50", "--max-requests", "120",
             "--samples", "300", "--metrics-every", "60",
             "--snapshot-out", str(snap_path),
             "--event-log", str(events_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "served 120/120 requests (0 dropped)" in out
        assert "P50" in out and "SLO" in out
        import json as json_mod

        snap = json_mod.loads(snap_path.read_text())
        for key in ("p50", "p95", "p99", "slo_attainment", "miss_rate",
                    "mean_allocated_millicores"):
            assert key in snap
        from repro.serving import read_events

        assert len(read_events(events_path, kind="decision")) == 120

    def test_serve_with_drift_reports_swaps(self, capsys):
        assert main(
            ["serve", "--source", "poisson@50", "--max-requests", "700",
             "--samples", "300", "--drift", "300:4.0",
             "--miss-threshold", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "hint swap(s)" in out
        swaps = int(out.split("hint swap(s)")[0].strip().split()[-1])
        assert swaps >= 1


class TestSweepStreaming:
    def test_flag_reaches_the_matrix(self, capsys):
        assert main(
            ["sweep", "--workflows", "IA", "--arrivals", "poisson@8",
             "--slo-scales", "1.0", "--tenants", "1",
             "--policies", "Optimal,Janus", "--requests", "25",
             "--samples", "300", "--jobs", "1", "--streaming"]
        ) == 0
        out = capsys.readouterr().out
        assert "sweeping 1 scenario cells" in out and "Janus" in out


class TestFaultFlags:
    def test_sweep_faults_parser(self):
        args = build_parser().parse_args(
            ["sweep", "--faults", "none,preempt@30"]
        )
        assert args.faults == "none,preempt@30"

    def test_sweep_faults_end_to_end(self, capsys, tmp_path):
        csv_path = tmp_path / "cells.csv"
        assert main(
            ["sweep", "--workflows", "IA", "--arrivals", "poisson@8",
             "--slo-scales", "1.0", "--tenants", "1", "--policies", "Janus",
             "--requests", "30", "--samples", "120", "--jobs", "1",
             "--executor", "cluster",
             "--cluster-config", "n_vms=2,autoscale=false",
             "--faults", "none,preempt@30",
             "--csv", str(csv_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "sweeping 2 scenario cells" in out
        lines = csv_path.read_text().splitlines()
        header = lines[0].split(",")
        assert {"preemptions", "evictions", "retries",
                "straggler_exposure"} <= set(header)
        idx = header.index("preemptions")
        cells = [line.split(",")[idx] for line in lines[1:]]
        assert "" in cells  # the clean cell leaves fault counters blank

    def test_sweep_bad_fault_token_rejected(self):
        from repro.errors import ClusterError

        with pytest.raises(ClusterError, match="unknown fault kind"):
            main(["sweep", "--workflows", "IA", "--arrivals", "poisson@8",
                  "--faults", "meteor@9"])

    def test_serve_faults_parser(self):
        args = build_parser().parse_args(
            ["serve", "--max-requests", "10", "--faults", "storm@6"]
        )
        assert args.faults == "storm@6"

    def test_serve_storm_end_to_end(self, capsys, tmp_path):
        events_path = tmp_path / "events.jsonl"
        assert main(
            ["serve", "--source", "diurnal@50", "--max-requests", "120",
             "--samples", "300", "--faults", "storm@6",
             "--event-log", str(events_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "served 120/120 requests" in out
        from repro.serving import read_events

        (fault,) = read_events(events_path, kind="fault")
        assert fault["fault_kind"] == "storm"
        assert fault["effective_source"].startswith("storm@")

    def test_serve_cluster_fault_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="arrival-side"):
            main(["serve", "--max-requests", "10", "--faults", "preempt@2"])
