"""The janus-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_knobs(self):
        args = build_parser().parse_args(
            ["run", "fig5", "--requests", "100", "--samples", "500"]
        )
        assert args.experiment == "fig5"
        assert args.requests == 100 and args.samples == 500

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_output(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "overhead" in out

    def test_run_fast_experiment(self, capsys):
        assert main(["run", "fig1b", "--samples", "600"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1b" in out and "took" in out

    def test_run_with_seed(self, capsys):
        assert main(["run", "fig1a", "--seed", "3"]) == 0
        assert "slack" in capsys.readouterr().out
