"""Property-based tests of the simulation kernel and cluster invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CapacityResource, Simulator
from repro.synthesis.budget import BudgetRange
from repro.synthesis.generator import HintSynthesizer
from repro.synthesis.dp import ChainDP
from repro.errors import SynthesisError


class TestSimulatorProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1,
                    max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_process_in_time_order(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.timeout(d).add_callback(lambda ev, d=d: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert sim.processed_events == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4), min_size=1,
                    max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        stamps = []

        def chained():
            for d in delays:
                yield sim.timeout(d)
                stamps.append(sim.now)

        sim.run(until=sim.process(chained()))
        assert stamps == sorted(stamps)
        assert sim.now == pytest.approx(sum(delays))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=5.0),  # amount
                st.floats(min_value=1.0, max_value=50.0),  # hold time
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_capacity_never_exceeded(self, jobs):
        sim = Simulator()
        res = CapacityResource(sim, 10.0)
        peaks = []

        def worker(amount, hold):
            yield res.acquire(amount)
            peaks.append(res.in_use)
            yield sim.timeout(hold)
            res.release(amount)

        for amount, hold in jobs:
            sim.process(worker(amount, hold))
        sim.run()
        assert all(p <= 10.0 + 1e-9 for p in peaks)
        assert res.in_use == pytest.approx(0.0)
        assert res.queue_length == 0


class TestBudgetGridGuard:
    def test_coarse_grid_rejected(self, small_profiles):
        synth = HintSynthesizer(small_profiles, ["F0", "F1", "F2"])
        budget = BudgetRange(1000, 2000, step_ms=10)
        dp = ChainDP(
            [small_profiles[f] for f in ("F0", "F1", "F2")], budget.tmax_ms
        )
        with pytest.raises(SynthesisError, match="1 ms budget grid"):
            synth.synthesize_suffix(0, dp, budget)
