"""Chaos tests for the fault-injection subsystem.

The subsystem's headline claims, pinned here:

* ``(spec, seed, n_vms, horizon) -> schedule`` is a pure function — the
  bit-identical tuple from every process and backend (hypothesis).
* A faulted sweep stays bit-identical across serial / pool / workstealing
  backends and replays byte-identically from a warm :class:`CellCache`.
* Adding a ``faults=`` axis leaves fault-free cells' cache keys unchanged,
  and changing a fault spec cold-starts exactly the faulted cells.
* The DES platform realises each cluster-side kind deterministically and
  surfaces its accounting as per-policy extras; clean runs carry none of
  the fault keys, so pre-existing payloads stay byte-identical.
"""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.cluster.faults import (
    CLUSTER_FAULT_KINDS,
    FAULT_KINDS,
    FaultSpec,
    compile_fault_schedule,
    parse_fault,
)
from repro.cluster.platform import ServerlessPlatform
from repro.errors import ClusterError, ExperimentError
from repro.policies.early_binding import FixedPlanPolicy
from repro.scenarios import (
    CellCache,
    ScenarioMatrix,
    SweepRunner,
    scenario_digest,
    storm_arrival,
)
from repro.traces.workload import ArrivalSpec, WorkloadConfig, generate_requests
from tests.conftest import make_chain_workflow

seeds = st.integers(min_value=0, max_value=2**31 - 1)
fleet_sizes = st.integers(min_value=1, max_value=12)
horizons = st.floats(min_value=5_000.0, max_value=180_000.0,
                     allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# Spec parsing and validation
# ---------------------------------------------------------------------------
class TestFaultSpec:
    @pytest.mark.parametrize("token, kind, field, value", [
        ("preempt@2", "preempt", "rate_per_min", 2.0),
        ("preempt@2:750", "preempt", "recovery_ms", 750.0),
        ("crash@9000", "crash", "at_ms", 9000.0),
        ("storm@6", "storm", "multiplier", 6.0),
        ("storm@4:0.3", "storm", "window_fraction", 0.3),
        ("straggler@0.25:3", "straggler", "slowdown", 3.0),
        ("contention", "contention", "scale", 0.5),
        ("contention@0.8", "contention", "scale", 0.8),
    ])
    def test_parse_tokens(self, token, kind, field, value):
        spec = parse_fault(token)
        assert spec.kind == kind
        assert getattr(spec, field) == value

    @pytest.mark.parametrize("token", [
        "bogus@1",                # unknown kind
        "preempt@nope",           # non-numeric operand
        "preempt@0",              # rate must be > 0
        "preempt@2:-5",           # recovery must be > 0
        "crash@-1",               # crash time must be >= 0
        "storm@1",                # multiplier must be > 1
        "storm@6:1.5",            # window fraction in (0, 1]
        "straggler@0.25",         # wants FRACTION:SLOWDOWN
        "straggler@2:3",          # fraction in (0, 1]
        "straggler@0.25:1",       # slowdown must be > 1
        "contention@-0.5",        # scale must be >= 0
    ])
    def test_bad_tokens_rejected(self, token):
        with pytest.raises(ClusterError):
            parse_fault(token)

    def test_every_kind_has_a_stable_label(self):
        for kind in FAULT_KINDS:
            spec = FaultSpec(kind=kind)
            assert spec.label.startswith(kind)
            # Labels key fault-seed derivation: equal specs, equal labels.
            assert spec.label == FaultSpec(kind=kind).label

    def test_unknown_kind_rejected(self):
        with pytest.raises(ClusterError, match="unknown fault kind"):
            FaultSpec(kind="meteor")


# ---------------------------------------------------------------------------
# Schedule compilation (hypothesis)
# ---------------------------------------------------------------------------
class TestScheduleProperties:
    @settings(max_examples=40, deadline=None)
    @given(seed=seeds, n_vms=fleet_sizes, horizon=horizons,
           rate=st.floats(min_value=1.0, max_value=120.0),
           recovery=st.floats(min_value=100.0, max_value=20_000.0))
    def test_preempt_schedule_is_pure_and_well_formed(
        self, seed, n_vms, horizon, rate, recovery
    ):
        spec = FaultSpec(kind="preempt", rate_per_min=rate,
                         recovery_ms=recovery)
        schedule = compile_fault_schedule(spec, seed, n_vms, horizon)
        # Purity: recompiling yields the bit-identical tuple.
        assert schedule == compile_fault_schedule(spec, seed, n_vms, horizon)
        keys = [(ev.at_ms, ev.vm_id, ev.action) for ev in schedule]
        assert keys == sorted(keys)
        per_vm: dict[int, list] = {}
        for ev in schedule:
            assert 0 <= ev.vm_id < n_vms
            assert ev.cause == "preempt"
            per_vm.setdefault(ev.vm_id, []).append(ev)
        for events in per_vm.values():
            events.sort(key=lambda ev: (ev.at_ms, ev.action != "down"))
            # Clean alternation: every down is followed by its up exactly
            # recovery later, and the next down never lands inside it.
            assert [ev.action for ev in events] == (
                ["down", "up"] * (len(events) // 2)
            )
            for down, up in zip(events[::2], events[1::2]):
                assert up.at_ms == pytest.approx(down.at_ms + recovery)
            for up, nxt in zip(events[1::2], events[2::2]):
                assert nxt.at_ms >= up.at_ms
        assert all(
            ev.at_ms < horizon for ev in schedule if ev.action == "down"
        )

    @settings(max_examples=40, deadline=None)
    @given(seed=seeds, n_vms=fleet_sizes, horizon=horizons,
           at_ms=st.floats(min_value=0.0, max_value=240_000.0))
    def test_crash_schedule_is_one_event_or_none(
        self, seed, n_vms, horizon, at_ms
    ):
        spec = FaultSpec(kind="crash", at_ms=at_ms)
        schedule = compile_fault_schedule(spec, seed, n_vms, horizon)
        assert schedule == compile_fault_schedule(spec, seed, n_vms, horizon)
        if at_ms < horizon:
            (ev,) = schedule
            assert ev.action == "down" and ev.cause == "crash"
            assert ev.at_ms == at_ms and 0 <= ev.vm_id < n_vms
        else:
            assert schedule == ()

    @settings(max_examples=40, deadline=None)
    @given(seed=seeds, n_vms=fleet_sizes, horizon=horizons,
           fraction=st.floats(min_value=0.05, max_value=1.0),
           slowdown=st.floats(min_value=1.5, max_value=10.0))
    def test_straggler_schedule_is_correlated_and_paired(
        self, seed, n_vms, horizon, fraction, slowdown
    ):
        spec = FaultSpec(kind="straggler", fraction=fraction,
                         slowdown=slowdown, duration_ms=3000.0,
                         interval_ms=8000.0)
        schedule = compile_fault_schedule(spec, seed, n_vms, horizon)
        assert schedule == compile_fault_schedule(spec, seed, n_vms, horizon)
        affected = {ev.vm_id for ev in schedule}
        if schedule:
            assert len(affected) == max(1, math.ceil(fraction * n_vms))
        slows = [ev for ev in schedule if ev.action == "slow"]
        unslows = [ev for ev in schedule if ev.action == "unslow"]
        assert len(slows) == len(unslows) == len(schedule) / 2
        assert all(ev.slowdown == slowdown for ev in slows)
        # Correlated: every episode hits every affected VM at the same
        # instant.
        episodes = {ev.at_ms for ev in slows}
        for start in episodes:
            assert {
                ev.vm_id for ev in slows if ev.at_ms == start
            } == affected

    @pytest.mark.parametrize("kind", ["contention", "storm"])
    def test_eventless_kinds_compile_empty(self, kind):
        spec = FaultSpec(kind=kind)
        assert compile_fault_schedule(spec, 7, 4, 60_000.0) == ()

    def test_degenerate_inputs_rejected(self):
        spec = FaultSpec(kind="preempt")
        with pytest.raises(ClusterError):
            compile_fault_schedule(spec, 0, 0, 60_000.0)
        with pytest.raises(ClusterError):
            compile_fault_schedule(spec, 0, 4, 0.0)


# ---------------------------------------------------------------------------
# Platform realisation of each cluster-side kind
# ---------------------------------------------------------------------------
def _faulted_run(faults, fault_seed=3, n_requests=40, rate=10.0, **config):
    wf = make_chain_workflow(slo_ms=8000.0)
    platform = ServerlessPlatform(
        wf,
        ClusterConfig(n_vms=2, vm_capacity_millicores=20_000,
                      autoscale=False, **config),
        faults=faults,
        fault_seed=fault_seed,
    )
    requests = generate_requests(
        wf, WorkloadConfig(n_requests=n_requests, arrival_rate_per_s=rate),
        seed=6,
    )
    policy = FixedPlanPolicy("fp", [1500, 1500, 1500])
    return platform, platform.run(policy, requests)


class TestPlatformFaults:
    def test_clean_run_carries_no_fault_extras(self):
        _, result = _faulted_run(None)
        assert not set(result.extras) & {
            "preemptions", "evictions", "retries", "straggler_exposure"
        }

    def test_preempt_counts_and_retries(self):
        spec = FaultSpec(kind="preempt", rate_per_min=240.0,
                         recovery_ms=500.0)
        platform, result = _faulted_run(spec)
        assert result.extras["preemptions"] > 0
        assert result.extras["retries"] > 0
        # Every outcome completed despite mid-flight kills.
        assert len(result.outcomes) == 40
        # Deterministic replay, stats included.
        _, again = _faulted_run(spec)
        assert result.extras == again.extras
        assert [o.e2e_ms for o in result.outcomes] == [
            o.e2e_ms for o in again.outcomes
        ]

    def test_preempted_invocations_pay_latency(self):
        spec = FaultSpec(kind="preempt", rate_per_min=240.0,
                         recovery_ms=500.0)
        _, clean = _faulted_run(None)
        _, faulted = _faulted_run(spec)
        mean = lambda res: sum(o.e2e_ms for o in res.outcomes) / len(res.outcomes)  # noqa: E731
        assert mean(faulted) > mean(clean)

    def test_crash_downs_one_vm_permanently(self):
        spec = FaultSpec(kind="crash", at_ms=500.0)
        platform, result = _faulted_run(spec)
        assert platform.fault_stats.crashes == 1
        assert len(result.outcomes) == 40  # the fleet's survivor absorbs it
        assert sum(1 for vm in platform.vms if not vm.up) == 1

    def test_crash_needs_a_survivor(self):
        wf = make_chain_workflow()
        with pytest.raises(ClusterError, match="survivor|n_vms|>= 2"):
            ServerlessPlatform(
                wf, ClusterConfig(n_vms=1), faults=FaultSpec(kind="crash")
            )

    def test_straggler_slows_exposed_invocations(self):
        spec = FaultSpec(kind="straggler", fraction=0.5, slowdown=3.0,
                         duration_ms=4000.0, interval_ms=2000.0)
        platform, result = _faulted_run(spec)
        assert result.extras["straggler_exposure"] > 0
        assert result.extras["preemptions"] == 0.0
        _, clean = _faulted_run(None)
        mean = lambda res: sum(o.e2e_ms for o in res.outcomes) / len(res.outcomes)  # noqa: E731
        assert mean(result) > mean(clean)
        _, again = _faulted_run(spec)
        assert result.extras == again.extras

    def test_contention_perturbs_colocated_functions(self):
        spec = FaultSpec(kind="contention", scale=1.0)
        _, clean = _faulted_run(None, rate=40.0)
        _, faulted = _faulted_run(spec, rate=40.0)
        mean = lambda res: sum(o.e2e_ms for o in res.outcomes) / len(res.outcomes)  # noqa: E731
        assert mean(faulted) > mean(clean)
        _, again = _faulted_run(spec, rate=40.0)
        assert [o.e2e_ms for o in faulted.outcomes] == [
            o.e2e_ms for o in again.outcomes
        ]

    def test_storm_is_not_a_platform_kind(self):
        wf = make_chain_workflow()
        with pytest.raises(ClusterError, match="arrival-side"):
            ServerlessPlatform(
                wf, ClusterConfig(n_vms=2), faults=FaultSpec(kind="storm")
            )


# ---------------------------------------------------------------------------
# Scenario axis: validation, CRN seeds, digest separation
# ---------------------------------------------------------------------------
CLUSTER = ClusterConfig(n_vms=2, autoscale=False)


def _matrix(**kwargs):
    base = dict(
        workflows=("IA",),
        arrivals=(ArrivalSpec("poisson", 8.0),),
        slo_scales=(1.0,),
        policies=("GrandSLAM", "Janus"),
        executors=("cluster",),
        cluster=CLUSTER,
        n_requests=30,
        samples=120,
        seed=17,
    )
    base.update(kwargs)
    return ScenarioMatrix(**base)


class TestFaultAxis:
    def test_len_multiplies_and_ids_are_suffixed(self):
        matrix = _matrix(faults=(None, parse_fault("preempt@30")))
        assert len(matrix) == 2 * len(_matrix())
        ids = [s.scenario_id for s in matrix.expand()]
        assert sum("/faults preempt@" in sid for sid in ids) == 1

    def test_fault_axis_shares_workload_seeds(self):
        # Common random numbers: the faulted cell replays its clean
        # sibling's exact request stream, so differences are the fault's.
        cells = _matrix(faults=(None, parse_fault("preempt@30"))).expand()
        assert cells[0].seed == cells[1].seed
        assert cells[0].profile_seed == cells[1].profile_seed

    def test_clean_cell_digest_unchanged_by_axis(self):
        without = _matrix().expand()[0]
        with_axis = _matrix(
            faults=(None, parse_fault("preempt@30"))
        ).expand()[0]
        assert with_axis.faults is None
        assert scenario_digest(without) == scenario_digest(with_axis)

    def test_fault_digests_are_distinct(self):
        cells = _matrix(faults=(
            None,
            parse_fault("preempt@30"),
            parse_fault("preempt@30:2000"),
            parse_fault("straggler@0.5:3"),
        )).expand()
        digests = [scenario_digest(c) for c in cells]
        assert len(set(digests)) == len(digests)

    def test_cluster_kind_needs_cluster_executor(self):
        with pytest.raises(ExperimentError, match="faults"):
            ScenarioMatrix(
                workflows=("IA",),
                arrivals=(ArrivalSpec("poisson", 8.0),),
                policies=("Janus",),
                faults=(parse_fault("preempt@30"),),
                n_requests=30,
                samples=120,
            )

    def test_crash_needs_two_vms_at_matrix_level(self):
        with pytest.raises((ExperimentError, ClusterError)):
            _matrix(
                cluster=ClusterConfig(n_vms=1, autoscale=False),
                faults=(parse_fault("crash@500"),),
            )

    def test_storm_runs_on_analytic_cells(self):
        matrix = ScenarioMatrix(
            workflows=("IA",),
            arrivals=(ArrivalSpec("poisson", 8.0),),
            policies=("Janus",),
            faults=(parse_fault("storm@6"),),
            n_requests=30,
            samples=120,
        )
        (cell,) = matrix.expand()
        assert cell.effective_arrival().kind == "storm"
        assert cell.arrival.kind == "poisson"

    def test_storm_needs_a_rate_shaped_base(self):
        with pytest.raises(ExperimentError):
            storm_arrival(ArrivalSpec("constant"), parse_fault("storm@6"))
        with pytest.raises(ExperimentError):
            ScenarioMatrix(
                workflows=("IA",),
                arrivals=(ArrivalSpec("constant"),),
                policies=("Janus",),
                faults=(parse_fault("storm@6"),),
                n_requests=30,
                samples=120,
            )

    def test_empty_fault_axis_rejected(self):
        with pytest.raises(ExperimentError):
            _matrix(faults=())


# ---------------------------------------------------------------------------
# Sweep determinism and cache behaviour (the acceptance criteria)
# ---------------------------------------------------------------------------
FAULTS_AXIS = (
    None,
    parse_fault("preempt@60:1000"),
    parse_fault("straggler@0.5:3"),
)


@pytest.fixture(scope="module")
def faulted_matrix():
    return _matrix(
        arrivals=(ArrivalSpec("poisson", 8.0), ArrivalSpec("poisson", 20.0)),
        faults=FAULTS_AXIS,
    )


@pytest.fixture(scope="module")
def serial_report(faulted_matrix):
    return SweepRunner(max_workers=1, backend="serial").run(faulted_matrix)


class TestFaultedSweep:
    def test_three_axis_sweep_shape(self, faulted_matrix, serial_report):
        assert len(faulted_matrix) == 6  # 2 arrivals x 3 faults
        assert serial_report.num_cells == 6

    def test_bit_identical_across_all_backends(
        self, faulted_matrix, serial_report
    ):
        pooled = SweepRunner(max_workers=2, backend="pool").run(faulted_matrix)
        stealing = SweepRunner(
            max_workers=2, backend="workstealing"
        ).run(faulted_matrix)
        assert pooled.to_json() == serial_report.to_json()
        assert stealing.to_json() == serial_report.to_json()

    def test_faulted_extras_deterministic_and_clean_cells_bare(
        self, faulted_matrix, serial_report
    ):
        again = SweepRunner(max_workers=1, backend="serial").run(faulted_matrix)
        assert again.to_json() == serial_report.to_json()
        for res in serial_report.results:
            has_fault_keys = {
                "preemptions", "retries", "straggler_exposure"
            } <= set(res.extras["Janus"])
            assert has_fault_keys == ("/faults " in res.scenario_id)

    def test_faults_change_results(self, serial_report):
        by_id = {r.scenario_id: r for r in serial_report.results}
        clean = next(
            r for sid, r in by_id.items() if "/faults" not in sid
        )
        preempted = next(
            r for sid, r in by_id.items()
            if "/faults preempt" in sid and r.arrival == clean.arrival
        )
        assert preempted.table != clean.table

    def test_warm_cache_replay_is_byte_identical(
        self, faulted_matrix, serial_report, tmp_path
    ):
        cold = SweepRunner(
            max_workers=1, backend="serial", cache_dir=tmp_path
        ).run(faulted_matrix)
        assert cold.cell_cache == {"hits": 0, "misses": 6}
        warm = SweepRunner(
            max_workers=1, backend="serial", cache_dir=tmp_path
        ).run(faulted_matrix)
        assert warm.cell_cache == {"hits": 6, "misses": 0}
        assert warm.to_json() == cold.to_json() == serial_report.to_json()

    def test_fault_spec_change_cold_starts_only_faulted_cells(
        self, faulted_matrix, tmp_path
    ):
        SweepRunner(
            max_workers=1, backend="serial", cache_dir=tmp_path
        ).run(faulted_matrix)
        changed = _matrix(
            arrivals=(ArrivalSpec("poisson", 8.0),
                      ArrivalSpec("poisson", 20.0)),
            faults=(
                None,
                parse_fault("preempt@60:2000"),  # recovery changed
                parse_fault("straggler@0.5:3"),  # unchanged
            ),
        )
        report = SweepRunner(
            max_workers=1, backend="serial", cache_dir=tmp_path
        ).run(changed)
        # 2 clean + 2 straggler cells stay warm; 2 preempt cells re-run.
        assert report.cell_cache == {"hits": 4, "misses": 2}

    def test_cache_lookup_discriminates_fault_cells(
        self, faulted_matrix, tmp_path
    ):
        cache = CellCache(tmp_path)
        cells = faulted_matrix.expand()
        assert all(cache.lookup(cell) is None for cell in cells)
