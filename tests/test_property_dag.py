"""Property-based tests for the DAG extension on random layered DAGs."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PolicyError
from repro.policies.dag import DagFixedPolicy
from repro.runtime.dag_executor import DagAnalyticExecutor
from repro.synthesis.dag import downstream_chain
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.workflow.catalog import Workflow
from repro.workflow.dag import WorkflowDAG
from tests.conftest import make_function, small_limits


@st.composite
def layered_dags(draw):
    """A random layered DAG: 2-4 layers of 1-3 nodes, edges between
    consecutive layers (every node reachable, no orphans)."""
    n_layers = draw(st.integers(min_value=2, max_value=4))
    layers = [
        [f"L{i}N{j}" for j in range(draw(st.integers(min_value=1, max_value=3)))]
        for i in range(n_layers)
    ]
    nodes = [n for layer in layers for n in layer]
    edges = []
    for upper, lower in zip(layers, layers[1:]):
        # Every lower node gets at least one parent; every upper node at
        # least one child (choose uniformly).
        for child in lower:
            parent = draw(st.sampled_from(upper))
            edges.append((parent, child))
        for parent in upper:
            if not any(e[0] == parent for e in edges):
                child = draw(st.sampled_from(lower))
                edges.append((parent, child))
    return WorkflowDAG(nodes, sorted(set(edges)))


def brute_force_heaviest_path(dag, start, weights):
    """Enumerate all paths from `start`; return the max total weight."""
    best = 0.0

    def walk(node, acc):
        nonlocal best
        acc += weights[node]
        succs = dag.successors(node)
        if not succs:
            best = max(best, acc)
        for s in succs:
            walk(s, acc)

    walk(start, 0.0)
    return best


class TestDownstreamChainProperties:
    @given(layered_dags())
    @settings(max_examples=40, deadline=None)
    def test_chain_is_heaviest_path(self, dag):
        weights = {n: 10.0 + 7.0 * i for i, n in enumerate(dag.nodes)}
        for start in dag.nodes:
            chain = downstream_chain(dag, start, weights)
            assert chain[0] == start
            # It is a real path in the DAG...
            for a, b in zip(chain, chain[1:]):
                assert b in dag.successors(a)
            # ...and its weight equals the brute-force maximum.
            total = sum(weights[n] for n in chain)
            assert total == pytest.approx(
                brute_force_heaviest_path(dag, start, weights)
            )

    @given(layered_dags())
    @settings(max_examples=20, deadline=None)
    def test_sink_chains_are_singletons(self, dag):
        weights = {n: 1.0 for n in dag.nodes}
        for sink in dag.sinks():
            assert downstream_chain(dag, sink, weights) == [sink]


class TestDagExecutorProperties:
    def _workflow(self, dag):
        functions = {
            n: make_function(n, serial=20 + 5 * i, parallel=100 + 10 * i,
                             sigma=0.05, gamma=0.0)
            for i, n in enumerate(dag.nodes)
        }
        return Workflow(
            name="rand", dag=dag, functions=functions,
            slo_ms=60_000.0, limits=small_limits(),
        )

    @given(layered_dags())
    @settings(max_examples=25, deadline=None)
    def test_start_times_respect_dependencies(self, dag):
        wf = self._workflow(dag)
        request = generate_requests(wf, WorkloadConfig(n_requests=1), seed=3)[0]
        policy = DagFixedPolicy("f", {n: 1500 for n in dag.nodes})
        outcome = DagAnalyticExecutor(wf).run_request(policy, request)
        by_name = outcome.stage_map()
        for u, v in dag.edges:
            assert by_name[v].start_ms >= by_name[u].end_ms - 1e-9

    @given(layered_dags())
    @settings(max_examples=25, deadline=None)
    def test_e2e_equals_latest_sink(self, dag):
        wf = self._workflow(dag)
        request = generate_requests(wf, WorkloadConfig(n_requests=1), seed=5)[0]
        policy = DagFixedPolicy("f", {n: 2000 for n in dag.nodes})
        outcome = DagAnalyticExecutor(wf).run_request(policy, request)
        by_name = outcome.stage_map()
        latest_sink = max(by_name[s].end_ms for s in dag.sinks())
        assert outcome.e2e_ms == pytest.approx(
            latest_sink - outcome.arrival_ms
        )

    @given(layered_dags())
    @settings(max_examples=15, deadline=None)
    def test_more_cores_never_slower_on_dags(self, dag):
        wf = self._workflow(dag)
        request = generate_requests(wf, WorkloadConfig(n_requests=1), seed=7)[0]
        executor = DagAnalyticExecutor(wf)
        slow = executor.run_request(
            DagFixedPolicy("s", {n: 1000 for n in dag.nodes}), request
        )
        fast = executor.run_request(
            DagFixedPolicy("b", {n: 3000 for n in dag.nodes}), request
        )
        assert fast.e2e_ms <= slow.e2e_ms + 1e-9
