"""Cluster substrate: VMs, pods, pools, interference, platform DES."""

import numpy as np
import pytest

from repro.cluster.accounting import ClusterAccounting
from repro.cluster.autoscaler import HorizontalAutoscaler
from repro.cluster.interference import DEFAULT_COEFFICIENTS, InterferenceModel
from repro.cluster.platform import (
    ClusterConfig,
    ServerlessPlatform,
    cluster_executor,
)
from repro.cluster.pod import Pod, PodState
from repro.cluster.pool import PoolManager
from repro.cluster.vm import VirtualMachine
from repro.errors import ClusterError
from repro.functions.model import Resource
from repro.policies.base import SizingPolicy
from repro.policies.early_binding import FixedPlanPolicy
from repro.sim import Simulator
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.workflow.catalog import Workflow
from repro.workflow.dag import WorkflowDAG
from tests.conftest import make_chain_workflow, make_function, small_limits


class UniformNodePolicy(SizingPolicy):
    """Node-keyed fixed size — covers every DAG node, not just the chain."""

    def __init__(self, size=2000, name="uniform-node"):
        self.name = name
        self.size = size

    def size_for_node(self, node, request, elapsed_ms):
        return self.size


def make_diamond_workflow(slo_ms: float = 8000.0) -> Workflow:
    """A -> (B heavy | C light) -> D; critical path is A, B, D."""
    models = {
        "A": make_function("A", serial=40, parallel=200, sigma=0.0),
        "B": make_function("B", serial=80, parallel=600, sigma=0.0),
        "C": make_function("C", serial=30, parallel=120, sigma=0.0),
        "D": make_function("D", serial=40, parallel=200, sigma=0.0),
    }
    dag = WorkflowDAG(
        ["A", "B", "C", "D"],
        [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
    )
    return Workflow(
        name="diamond", dag=dag, functions=models, slo_ms=slo_ms,
        limits=small_limits(),
    )


class TestVM:
    def test_capacity_accounting(self):
        vm = VirtualMachine(0, 10_000)
        pod = Pod("F", 4000, vm)
        vm.place(pod)
        assert vm.allocated == 4000 and vm.free == 6000
        vm.evict(pod)
        assert vm.allocated == 0

    def test_overcommit_rejected(self):
        vm = VirtualMachine(0, 3000)
        vm.place(Pod("F", 2000, vm))
        with pytest.raises(ClusterError):
            vm.place(Pod("F", 2000, vm))

    def test_resize(self):
        vm = VirtualMachine(0, 5000)
        pod = Pod("F", 1000, vm)
        vm.place(pod)
        vm.resize_pod(pod, 3000)
        assert pod.size == 3000 and vm.free == 2000
        with pytest.raises(ClusterError):
            vm.resize_pod(pod, 9000)

    def test_colocation_counts_busy_only(self):
        vm = VirtualMachine(0, 10_000)
        pods = [Pod("F", 1000, vm) for _ in range(3)]
        for p in pods:
            vm.place(p)
            p.warm_up()
        pods[0].start_invocation()
        pods[1].start_invocation()
        assert vm.colocated_count("F", busy_only=True) == 2
        assert vm.colocated_count("F", busy_only=False) == 3
        assert vm.colocated_count("G") == 0

    def test_double_place_rejected(self):
        vm = VirtualMachine(0, 10_000)
        pod = Pod("F", 1000, vm)
        vm.place(pod)
        with pytest.raises(ClusterError):
            vm.place(pod)

    def test_evict_unknown_rejected(self):
        vm = VirtualMachine(0, 10_000)
        with pytest.raises(ClusterError):
            vm.evict(Pod("F", 1000, vm))


class TestPod:
    def test_lifecycle(self):
        vm = VirtualMachine(0, 10_000)
        pod = Pod("F", 1000, vm)
        assert pod.state is PodState.COLD
        pod.warm_up()
        pod.start_invocation()
        assert pod.busy
        pod.finish_invocation()
        assert pod.invocations_served == 1
        pod.kill()
        assert not pod.alive

    def test_invalid_transitions(self):
        vm = VirtualMachine(0, 10_000)
        pod = Pod("F", 1000, vm)
        with pytest.raises(ClusterError):
            pod.start_invocation()  # still cold
        pod.warm_up()
        pod.start_invocation()
        with pytest.raises(ClusterError):
            pod.kill()  # busy pods cannot be reclaimed

    def test_invalid_size(self):
        with pytest.raises(ClusterError):
            Pod("F", 0, VirtualMachine(0, 1000))


class TestInterferenceModel:
    def test_alone_means_no_slowdown(self):
        model = InterferenceModel()
        for r in Resource:
            assert model.slowdown(r, 1) == 1.0

    def test_monotone_in_colocation(self):
        model = InterferenceModel()
        for r in Resource:
            curve = model.curve(r, 6)
            assert all(a <= b for a, b in zip(curve, curve[1:]))

    def test_paper_ordering_at_six(self):
        # Fig 1c: CPU < memory < IO < network at n = 6.
        model = InterferenceModel()
        at6 = {r: model.slowdown(r, 6) for r in Resource}
        assert (at6[Resource.CPU] < at6[Resource.MEMORY]
                < at6[Resource.IO] < at6[Resource.NETWORK])
        assert at6[Resource.NETWORK] == pytest.approx(8.1, abs=0.2)

    def test_invalid_count(self):
        with pytest.raises(ClusterError):
            InterferenceModel().slowdown(Resource.CPU, 0)

    def test_default_coefficients_cover_all_resources(self):
        assert set(DEFAULT_COEFFICIENTS) == set(Resource)


class TestPoolManager:
    def make_pool(self, warm=1):
        sim = Simulator()
        vms = [VirtualMachine(i, 10_000) for i in range(2)]
        fn = make_function("F", sigma=0.0)
        pool = PoolManager(sim, vms, {"F": fn}, warm_pool_size=warm)
        return sim, pool

    def test_cold_start_pays_delay(self):
        sim, pool = self.make_pool()

        def proc():
            pod = yield from pool.acquire("F", 2000)
            return pod

        p = sim.process(proc())
        pod = sim.run(until=p)
        assert sim.now == pytest.approx(pod and make_function("F").cold_start_ms)
        assert pool.cold_starts == 1

    def test_warm_reuse_is_instant(self):
        sim, pool = self.make_pool(warm=1)

        def proc():
            pod = yield from pool.acquire("F", 2000)
            pod.start_invocation()
            pod.finish_invocation()
            pool.release(pod)
            t_release = sim.now
            pod2 = yield from pool.acquire("F", 1000)
            return (pod, pod2, t_release)

        p = sim.process(proc())
        pod, pod2, t_release = sim.run(until=p)
        assert pod is pod2  # same instance, resized
        assert pod2.size == 1000
        assert sim.now == t_release  # no extra delay
        assert pool.warm_hits == 1

    def test_pool_overflow_reclaims(self):
        sim, pool = self.make_pool(warm=0)

        def proc():
            pod = yield from pool.acquire("F", 1000)
            pod.start_invocation()
            pod.finish_invocation()
            pool.release(pod)
            return pod

        p = sim.process(proc())
        pod = sim.run(until=p)
        assert not pod.alive  # warm_pool_size=0: immediately reclaimed
        assert pool.warm_count("F") == 0

    def test_unknown_function_rejected(self):
        sim, pool = self.make_pool()
        with pytest.raises(ClusterError):
            # generator raises on first advance
            sim.run(until=sim.process(pool.acquire("Z", 1000)))

    def test_release_requires_warm(self):
        sim, pool = self.make_pool()

        def proc():
            pod = yield from pool.acquire("F", 1000)
            pod.start_invocation()  # busy
            return pod

        pod = sim.run(until=sim.process(proc()))
        with pytest.raises(ClusterError):
            pool.release(pod)

    def test_cold_start_rate(self):
        sim, pool = self.make_pool()
        assert pool.cold_start_rate == 0.0


class TestPlatform:
    def test_end_to_end_run(self):
        wf = make_chain_workflow(slo_ms=3000.0)
        platform = ServerlessPlatform(
            wf, ClusterConfig(n_vms=2, vm_capacity_millicores=20_000)
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=40, arrival_rate_per_s=5.0), seed=3
        )
        policy = FixedPlanPolicy("fixed", [2000, 2000, 2000])
        result = platform.run(policy, requests)
        assert len(result.outcomes) == 40
        assert result.extras["events_processed"] > 0
        # Outcomes keep request order.
        assert [o.request_id for o in result.outcomes] == list(range(40))

    def test_sequential_load_has_no_interference(self):
        # One request at a time: colocated busy count is 1 -> no slowdown.
        wf = make_chain_workflow(slo_ms=10_000.0)
        platform = ServerlessPlatform(
            wf, ClusterConfig(n_vms=1, vm_capacity_millicores=30_000,
                              autoscale=False)
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=5, arrival_rate_per_s=0.01), seed=3
        )
        policy = FixedPlanPolicy("fixed", [2000, 2000, 2000])
        result = platform.run(policy, requests)
        # Compare with the analytic backend (interference-free by default).
        from repro.runtime.executor import AnalyticExecutor

        analytic = AnalyticExecutor(wf).run(policy, requests)
        for a, b in zip(result.outcomes, analytic.outcomes):
            # Platform adds cold starts; execution portions match.
            exec_platform = sum(
                s.execution_ms - s.cold_start_ms for s in a.stages
            )
            exec_analytic = sum(s.execution_ms for s in b.stages)
            assert exec_platform == pytest.approx(exec_analytic, rel=1e-9)

    def test_concurrent_load_suffers_interference(self):
        wf = make_chain_workflow(slo_ms=10_000.0)
        mk = lambda: generate_requests(
            wf, WorkloadConfig(n_requests=30, arrival_rate_per_s=200.0), seed=3
        )
        policy = FixedPlanPolicy("fixed", [1000, 1000, 1000])
        open_loop = ServerlessPlatform(
            wf, ClusterConfig(n_vms=1, vm_capacity_millicores=40_000)
        ).run(policy, mk())
        sequential = generate_requests(
            wf, WorkloadConfig(n_requests=30, arrival_rate_per_s=0.01), seed=3
        )
        closed = ServerlessPlatform(
            wf, ClusterConfig(n_vms=1, vm_capacity_millicores=40_000)
        ).run(policy, sequential)
        assert open_loop.e2e_ms().mean() > closed.e2e_ms().mean()

    def test_accounting_tracks_allocation(self):
        wf = make_chain_workflow(slo_ms=5000.0)
        platform = ServerlessPlatform(
            wf, ClusterConfig(n_vms=2, vm_capacity_millicores=20_000)
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=10, arrival_rate_per_s=2.0), seed=4
        )
        platform.run(FixedPlanPolicy("f", [2000] * 3), requests)
        assert platform.accounting.millicore_ms() > 0

    def test_empty_stream_rejected(self):
        wf = make_chain_workflow()
        with pytest.raises(ClusterError):
            ServerlessPlatform(wf).run(FixedPlanPolicy("f", [1000] * 3), [])

    def test_colocation_experiment_scales(self, rng):
        wf = make_chain_workflow()
        platform = ServerlessPlatform(wf)
        t1 = np.mean(platform.colocation_experiment("F0", 1, 1000, 50, rng))
        t6 = np.mean(platform.colocation_experiment("F0", 6, 1000, 50, rng))
        assert t6 > t1


class TestRunLifecycle:
    """Regression: each run() serves on fresh simulator/pool/autoscaler
    state — previously the clock, counters and EWMA leaked across calls."""

    def _platform(self):
        wf = make_chain_workflow(slo_ms=5000.0)
        platform = ServerlessPlatform(
            wf, ClusterConfig(n_vms=2, vm_capacity_millicores=20_000)
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=20, arrival_rate_per_s=5.0), seed=9
        )
        return platform, FixedPlanPolicy("fixed", [2000, 2000, 2000]), requests

    def test_repeated_run_is_identical(self):
        platform, policy, requests = self._platform()
        first = platform.run(policy, requests)
        second = platform.run(policy, requests)
        assert [o.e2e_ms for o in first.outcomes] == [
            o.e2e_ms for o in second.outcomes
        ]
        assert [s.cold_start_ms for o in first.outcomes for s in o.stages] == [
            s.cold_start_ms for o in second.outcomes for s in o.stages
        ]
        assert first.extras == second.extras

    def test_second_run_starts_at_time_zero(self):
        platform, policy, requests = self._platform()
        platform.run(policy, requests)
        t_end_first = platform.sim.now
        second = platform.run(policy, requests)
        # Fresh clock: the first outcome of the second run is served at its
        # arrival time, not appended after the first run's horizon.
        assert second.outcomes[0].arrival_ms == requests[0].arrival_ms
        assert platform.sim.now <= t_end_first + 1e-9

    def test_cold_start_rate_not_cumulative(self):
        platform, policy, requests = self._platform()
        first = platform.run(policy, requests)
        second = platform.run(policy, requests)
        # With leaked pool state the second run would report warm hits from
        # the first run's parked pods (a lower cumulative rate).
        assert second.extras["cold_start_rate"] == pytest.approx(
            first.extras["cold_start_rate"]
        )
        assert platform.pool.cold_starts + platform.pool.warm_hits == len(
            requests
        ) * len(policy.plan)

    def test_multi_tenant_autoscale_config_is_honoured(self):
        # Regression: autoscale=True was silently ignored on the shared
        # platform; the shared substrate now wires the same autoscaler as
        # the single-tenant platform, fed per-namespaced-function.
        from repro.cluster.multi import MultiTenantPlatform, TenantJob

        wf = make_chain_workflow(slo_ms=30_000.0)
        platform = MultiTenantPlatform(
            {"a": wf},
            ClusterConfig(n_vms=2, vm_capacity_millicores=40_000,
                          warm_pool_size=1, autoscale=True,
                          autoscaler_interval_ms=100.0),
        )
        jobs = [TenantJob(
            tenant="a",
            policy=FixedPlanPolicy("fa", [1000, 1000, 1000]),
            requests=tuple(generate_requests(
                wf, WorkloadConfig(n_requests=40, arrival_rate_per_s=100.0),
                seed=8,
            )),
        )]
        result = platform.run(jobs)["a"]
        assert result.extras["autoscaler_adjustments"] > 0
        assert platform.pool.warm_pool_size > 1  # scaled with the burst

    def test_multi_tenant_run_reuse_is_identical(self):
        from repro.cluster.multi import MultiTenantPlatform, TenantJob

        wf = make_chain_workflow(slo_ms=8000.0)
        platform = MultiTenantPlatform(
            {"a": wf},
            ClusterConfig(n_vms=2, vm_capacity_millicores=20_000,
                          autoscale=False),
        )
        jobs = [TenantJob(
            tenant="a",
            policy=FixedPlanPolicy("fa", [1500, 1500, 1500]),
            requests=tuple(generate_requests(
                wf, WorkloadConfig(n_requests=15, arrival_rate_per_s=3.0),
                seed=4,
            )),
        )]
        first = platform.run(jobs)["a"]
        second = platform.run(jobs)["a"]
        assert [o.e2e_ms for o in first.outcomes] == [
            o.e2e_ms for o in second.outcomes
        ]
        assert first.extras == second.extras


class TestDagServing:
    """Regression: branching workflows execute *every* DAG node as
    concurrent sim processes — previously `_serve` walked `workflow.chain`,
    silently dropping non-critical-path nodes."""

    def _run_one(self, n_requests=5, rate=0.01, **config):
        wf = make_diamond_workflow()
        platform = ServerlessPlatform(
            wf,
            ClusterConfig(n_vms=2, vm_capacity_millicores=20_000,
                          autoscale=False, **config),
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests, arrival_rate_per_s=rate),
            seed=6,
        )
        return wf, platform.run(UniformNodePolicy(), requests)

    def test_stage_records_cover_every_dag_node(self):
        wf, result = self._run_one()
        assert wf.topology == "dag"
        assert wf.chain == ["A", "B", "D"]  # what the old code served
        for outcome in result.outcomes:
            assert {s.function for s in outcome.stages} == {"A", "B", "C", "D"}

    def test_sibling_branches_overlap_in_sim_time(self):
        _, result = self._run_one(warm_pool_size=4)
        for outcome in result.outcomes:
            stages = outcome.stage_map()
            b, c = stages["B"], stages["C"]
            assert b.start_ms < c.end_ms and c.start_ms < b.end_ms
            # The join waits for *all* predecessors.
            assert stages["D"].start_ms >= max(b.end_ms, c.end_ms) - 1e-9
            # Stage records are end-time ordered so e2e_ms sees the sink.
            assert outcome.stages[-1].function == "D"
            assert outcome.e2e_ms == stages["D"].end_ms - outcome.arrival_ms

    def test_dag_e2e_is_critical_path_not_sum(self):
        _, result = self._run_one(warm_pool_size=4)
        for outcome in result.outcomes:
            total = sum(s.execution_ms for s in outcome.stages)
            assert outcome.e2e_ms < total  # C ran in B's shadow

    def test_dag_node_failure_surfaces(self):
        wf = make_diamond_workflow()
        platform = ServerlessPlatform(
            wf, ClusterConfig(n_vms=2, vm_capacity_millicores=20_000)
        )

        class ExplodeOffPath(UniformNodePolicy):
            def size_for_node(self, node, request, elapsed_ms):
                if node == "C":  # not on the critical path
                    raise RuntimeError("off-path node exploded")
                return self.size

        requests = generate_requests(wf, WorkloadConfig(n_requests=2), seed=1)
        with pytest.raises(RuntimeError, match="off-path node exploded"):
            platform.run(ExplodeOffPath(), requests)

    def test_dag_run_reuse_is_identical(self):
        wf = make_diamond_workflow()
        platform = ServerlessPlatform(
            wf, ClusterConfig(n_vms=2, vm_capacity_millicores=20_000)
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=8, arrival_rate_per_s=4.0), seed=2
        )
        policy = UniformNodePolicy()
        first = platform.run(policy, requests)
        second = platform.run(policy, requests)
        assert [o.e2e_ms for o in first.outcomes] == [
            o.e2e_ms for o in second.outcomes
        ]
        assert first.extras == second.extras


class TestClusterExecutorRegistration:
    def test_registered_under_cluster(self):
        from repro.runtime.registry import executor_names, get_executor

        assert "cluster" in executor_names()
        wf = make_chain_workflow()
        backend = get_executor("cluster", wf, n_vms=2, autoscale=False)
        assert isinstance(backend, ServerlessPlatform)
        assert backend.config.n_vms == 2 and backend.config.autoscale is False

    def test_factory_merges_config_and_overrides(self):
        wf = make_chain_workflow()
        base = ClusterConfig(n_vms=3, warm_pool_size=5)
        backend = cluster_executor(wf, config=base, keepalive_ms=250.0)
        assert backend.config.n_vms == 3
        assert backend.config.warm_pool_size == 5
        assert backend.config.keepalive_ms == 250.0

    def test_unknown_config_field_rejected(self):
        wf = make_chain_workflow()
        with pytest.raises(ClusterError, match="unknown ClusterConfig"):
            cluster_executor(wf, n_vmz=2)

    def test_count_fields_require_integers(self):
        # Genuine-integer validation: floats fail fast (no mid-sweep range()
        # crash, no silent warm_pool_size truncation), while integer-like
        # numpy values keep working.
        assert ClusterConfig(n_vms=np.int64(3)).n_vms == 3
        for bad in (dict(n_vms=4.0), dict(warm_pool_size=2.5),
                    dict(min_warm=1.5), dict(n_vms=True)):
            with pytest.raises(ClusterError, match="must be an integer"):
                ClusterConfig(**bad)

    def test_min_warm_reaches_the_autoscaler(self):
        wf = make_chain_workflow()
        backend = cluster_executor(wf, min_warm=0)
        assert backend.autoscaler.min_warm == 0
        with pytest.raises(ClusterError, match="min_warm"):
            cluster_executor(wf, min_warm=-1)

    def test_satisfies_executor_protocol(self):
        from repro.runtime.registry import Executor

        platform = ServerlessPlatform(make_chain_workflow())
        assert isinstance(platform, Executor)


class TestAutoscaler:
    def test_scales_with_demand(self):
        sim = Simulator()
        vms = [VirtualMachine(0, 50_000)]
        fn = make_function("F")
        pool = PoolManager(sim, vms, {"F": fn}, warm_pool_size=1)
        scaler = HorizontalAutoscaler(sim, pool, interval_ms=100.0)
        scaler.start()
        for _ in range(8):
            scaler.invocation_started("F")
        sim.run(until=500.0)
        assert pool.warm_pool_size > 1
        for _ in range(8):
            scaler.invocation_finished("F")
        assert scaler.in_flight("F") == 0

    def test_underflow_rejected(self):
        sim = Simulator()
        pool = PoolManager(
            sim, [VirtualMachine(0, 1000)], {"F": make_function("F")}
        )
        scaler = HorizontalAutoscaler(sim, pool)
        with pytest.raises(ClusterError):
            scaler.invocation_finished("F")

    def test_double_start_rejected(self):
        sim = Simulator()
        pool = PoolManager(
            sim, [VirtualMachine(0, 1000)], {"F": make_function("F")}
        )
        scaler = HorizontalAutoscaler(sim, pool)
        scaler.start()
        with pytest.raises(ClusterError):
            scaler.start()

    def test_invalid_params(self):
        sim = Simulator()
        pool = PoolManager(
            sim, [VirtualMachine(0, 1000)], {"F": make_function("F")}
        )
        with pytest.raises(ClusterError):
            HorizontalAutoscaler(sim, pool, interval_ms=0)
        with pytest.raises(ClusterError):
            HorizontalAutoscaler(sim, pool, headroom=0.5)
        with pytest.raises(ClusterError):
            HorizontalAutoscaler(sim, pool, min_warm=-1)

    def test_scales_down_to_floor_when_idle(self):
        # Regression: the per-function target flooring at 2 (vs the empty
        # fallback of 1) pinned warm targets at 2 forever; idle functions
        # must decay to min_warm so keep-alive sweeps see true idle cost.
        sim = Simulator()
        pool = PoolManager(
            sim, [VirtualMachine(0, 50_000)], {"F": make_function("F")},
            warm_pool_size=1,
        )
        scaler = HorizontalAutoscaler(sim, pool, interval_ms=100.0)
        scaler.start()
        for _ in range(8):
            scaler.invocation_started("F")
        sim.run(until=500.0)
        assert pool.warm_pool_size > 2
        for _ in range(8):
            scaler.invocation_finished("F")
        sim.run(until=5000.0)  # EWMA decays over many idle intervals
        assert pool.warm_pool_size == scaler.min_warm == 1

    def test_min_warm_zero_allows_scale_to_zero(self):
        sim = Simulator()
        pool = PoolManager(
            sim, [VirtualMachine(0, 50_000)], {"F": make_function("F")},
            warm_pool_size=3,
        )
        scaler = HorizontalAutoscaler(sim, pool, interval_ms=100.0, min_warm=0)
        scaler.start()
        sim.run(until=300.0)  # zero demand from the start
        assert pool.warm_pool_size == 0

    def test_min_warm_zero_reachable_after_demand(self):
        # The EWMA decays geometrically and never hits exact zero; without
        # the negligible-demand snap, ceil() of the residue pins the target
        # at 1 forever once a function has served traffic.
        sim = Simulator()
        pool = PoolManager(
            sim, [VirtualMachine(0, 50_000)], {"F": make_function("F")},
            warm_pool_size=1,
        )
        scaler = HorizontalAutoscaler(sim, pool, interval_ms=100.0, min_warm=0)
        scaler.start()
        for _ in range(8):
            scaler.invocation_started("F")
        sim.run(until=500.0)
        assert pool.warm_pool_size > 1
        for _ in range(8):
            scaler.invocation_finished("F")
        sim.run(until=10_000.0)
        assert pool.warm_pool_size == 0

    def test_floor_consistent_with_empty_pool_fallback(self):
        # No registered functions: the fallback target equals min_warm, the
        # same floor the per-function branch uses.
        sim = Simulator()
        pool = PoolManager(
            sim, [VirtualMachine(0, 1000)], {"F": make_function("F")},
            warm_pool_size=4,
        )
        scaler = HorizontalAutoscaler(sim, pool, min_warm=1)
        pool.functions = {}
        scaler._rescale()
        assert pool.warm_pool_size == 1


class TestAccounting:
    def test_snapshot_series(self):
        sim = Simulator()
        vms = [VirtualMachine(0, 10_000)]
        acct = ClusterAccounting(sim, vms)
        acct.snapshot()
        pod = Pod("F", 3000, vms[0])
        vms[0].place(pod)
        sim.timeout(10.0)
        sim.run()
        acct.snapshot()
        assert acct.total_allocated() == 3000
        assert acct.mean_allocated() >= 0


class TestSaturation:
    def test_pending_pods_queue_instead_of_failing(self):
        # A cluster too small for the instantaneous load must queue pending
        # pods (and reclaim idle ones), not error out.
        wf = make_chain_workflow(slo_ms=60_000.0)
        platform = ServerlessPlatform(
            wf,
            ClusterConfig(n_vms=1, vm_capacity_millicores=4000,
                          warm_pool_size=2, autoscale=False),
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=25, arrival_rate_per_s=500.0), seed=5
        )
        result = platform.run(
            FixedPlanPolicy("fat", [2000, 2000, 2000]), requests
        )
        assert len(result.outcomes) == 25
        assert platform.pool.throttled > 0  # someone had to wait

    def test_idle_reclamation_frees_capacity(self):
        sim = Simulator()
        vms = [VirtualMachine(0, 3000)]
        fns = {"A": make_function("A"), "B": make_function("B")}
        pool = PoolManager(sim, vms, fns, warm_pool_size=2)

        def fill_and_switch():
            # Park two warm A pods filling the VM, then ask for a large B pod.
            a1 = yield from pool.acquire("A", 1500)
            a2 = yield from pool.acquire("A", 1500)
            for pod in (a1, a2):
                pod.start_invocation()
                pod.finish_invocation()
                pool.release(pod)
            b = yield from pool.acquire("B", 2000)
            return b

        b = sim.run(until=sim.process(fill_and_switch()))
        assert b.function == "B"
        assert pool.reclaimed >= 1  # parked A pods were evicted

    def test_throttled_wait_reclaims_pod_parked_mid_wait(self):
        # The pending-pod loop must re-run idle reclamation on every retry:
        # a pod parked *after* the contender started waiting is reclaimed
        # from inside the loop, releasing the capacity the contender needs.
        sim = Simulator()
        vms = [VirtualMachine(0, 3000)]
        fns = {"A": make_function("A", sigma=0.0),
               "B": make_function("B", sigma=0.0)}
        pool = PoolManager(sim, vms, fns, warm_pool_size=2)

        def holder():
            pod = yield from pool.acquire("A", 2000)
            pod.start_invocation()
            yield sim.timeout(200.0)
            pod.finish_invocation()
            pool.release(pod)  # parks; the 2000 mc reservation persists

        def contender():
            yield from pool.acquire("B", 2000)
            return sim.now

        sim.process(holder())
        contender_proc = sim.process(contender())
        t_acquired = sim.run(until=contender_proc)
        assert pool.throttled > 0  # had to poll while the VM was full
        assert pool.reclaimed == 1  # parked A pod evicted mid-wait
        # Acquired only after the holder released (500 ms cold start +
        # 200 ms execution) plus B's own cold start.
        assert t_acquired >= 700.0

    def test_failed_request_process_surfaces(self):
        # Platform.run must propagate process failures, not drop requests.
        wf = make_chain_workflow()
        platform = ServerlessPlatform(wf)

        class ExplodingPolicy(FixedPlanPolicy):
            def size_for_stage(self, stage_index, request, elapsed_ms):
                raise RuntimeError("policy exploded")

        requests = generate_requests(wf, WorkloadConfig(n_requests=2), seed=1)
        with pytest.raises(RuntimeError, match="policy exploded"):
            platform.run(ExplodingPolicy("boom", [1000] * 3), requests)


class TestMultiTenantPlatform:
    def _setup(self, n=25, rate=2.0):
        from repro.cluster.multi import MultiTenantPlatform, TenantJob

        wf_a = make_chain_workflow(slo_ms=8000.0)
        # Second tenant gets structurally distinct function names.
        from repro.workflow.catalog import Workflow
        from repro.workflow.chain import chain_dag

        models = {f"G{i}": make_function(f"G{i}", serial=30, parallel=150,
                                         sigma=0.06, gamma=0.1)
                  for i in range(2)}
        wf_b = Workflow(
            name="chainB", dag=chain_dag(list(models)), functions=models,
            slo_ms=5000.0, limits=wf_a.limits,
        )
        platform = MultiTenantPlatform(
            {"a": wf_a, "b": wf_b},
            ClusterConfig(n_vms=2, vm_capacity_millicores=20_000,
                          warm_pool_size=2, autoscale=False),
        )
        jobs = [
            TenantJob(
                tenant="a",
                policy=FixedPlanPolicy("fa", [1500, 1500, 1500]),
                requests=tuple(generate_requests(
                    wf_a, WorkloadConfig(n_requests=n, arrival_rate_per_s=rate),
                    seed=1,
                )),
            ),
            TenantJob(
                tenant="b",
                policy=FixedPlanPolicy("fb", [1000, 1000]),
                requests=tuple(generate_requests(
                    wf_b, WorkloadConfig(n_requests=n, arrival_rate_per_s=rate),
                    seed=2,
                )),
            ),
        ]
        return platform, jobs

    def test_both_tenants_complete(self):
        platform, jobs = self._setup()
        results = platform.run(jobs)
        assert set(results) == {"a", "b"}
        assert len(results["a"].outcomes) == 25
        assert len(results["b"].outcomes) == 25

    def test_tenant_isolation_of_functions(self):
        platform, jobs = self._setup()
        platform.run(jobs)
        # Namespaced pools: tenant a's functions never share warm pods with b.
        assert set(platform.pool.functions) == {
            "a:F0", "a:F1", "a:F2", "b:G0", "b:G1",
        }

    def test_duplicate_tenant_rejected(self):
        from repro.cluster.multi import MultiTenantPlatform, TenantJob
        from repro.errors import ClusterError as CE

        platform, jobs = self._setup()
        with pytest.raises(CE):
            platform.run([jobs[0], jobs[0]])

    def test_unknown_tenant_rejected(self):
        from repro.cluster.multi import TenantJob
        from repro.errors import ClusterError as CE

        platform, jobs = self._setup()
        rogue = TenantJob(tenant="ghost", policy=jobs[0].policy,
                          requests=jobs[0].requests)
        with pytest.raises(CE):
            platform.run([rogue])

    def test_empty_jobs_rejected(self):
        from repro.errors import ClusterError as CE

        platform, _ = self._setup()
        with pytest.raises(CE):
            platform.run([])

    def test_warm_pod_unusable_when_vm_full(self):
        # Regression: a parked pod whose VM lacks resize headroom must be
        # skipped (cold-start elsewhere), not crash the acquisition.
        sim = Simulator()
        vms = [VirtualMachine(0, 2500), VirtualMachine(1, 10_000)]
        fn = make_function("F", sigma=0.0)
        blocker = make_function("B", sigma=0.0)
        pool = PoolManager(sim, vms, {"F": fn, "B": blocker},
                           warm_pool_size=2, colocate_same_function=True)

        def scenario():
            # Park a 1000mc F pod on VM0, then fill VM0 with a busy B pod.
            f1 = yield from pool.acquire("F", 1000)
            f1.start_invocation(); f1.finish_invocation()
            pool.release(f1)
            b = yield from pool.acquire("B", 1500)
            b.start_invocation()
            # VM0 free = 0; upsizing the parked F pod to 2500 is impossible
            # there, so the pool must cold-start on VM1.
            f2 = yield from pool.acquire("F", 2500)
            return (f1, f2)

        f1, f2 = sim.run(until=sim.process(scenario()))
        assert f2.vm.vm_id == 1
        assert f1 is not f2


class TestKeepAlive:
    def _pool(self, keepalive_ms):
        sim = Simulator()
        vms = [VirtualMachine(0, 10_000)]
        fn = make_function("F", sigma=0.0)
        pool = PoolManager(sim, vms, {"F": fn}, warm_pool_size=3,
                           keepalive_ms=keepalive_ms)
        return sim, pool

    def _use_once(self, sim, pool, size=1000):
        def proc():
            pod = yield from pool.acquire("F", size)
            pod.start_invocation()
            pod.finish_invocation()
            pool.release(pod)
            return pod

        return sim.run(until=sim.process(proc()))

    def test_ttl_zero_never_parks(self):
        sim, pool = self._pool(keepalive_ms=0.0)
        pod = self._use_once(sim, pool)
        assert not pod.alive
        assert pool.warm_count("F") == 0

    def test_expired_pod_forces_cold_start(self):
        sim, pool = self._pool(keepalive_ms=100.0)
        self._use_once(sim, pool)
        assert pool.warm_count("F") == 1
        sim.timeout(500.0)
        sim.run()  # idle beyond the TTL
        pod2 = self._use_once(sim, pool)
        assert pool.expired == 1
        assert pool.cold_starts == 2  # second acquisition was cold again

    def test_within_ttl_reuses(self):
        sim, pool = self._pool(keepalive_ms=10_000.0)
        first = self._use_once(sim, pool)
        second = self._use_once(sim, pool)
        assert first is second
        assert pool.warm_hits == 1

    def test_idle_accounting_grows_with_park_time(self):
        sim, pool = self._pool(keepalive_ms=None)
        self._use_once(sim, pool, size=2000)
        sim.timeout(1000.0)
        sim.run()
        self._use_once(sim, pool, size=2000)
        # Parked 2000 mc for ~1000 ms -> ~2e6 millicore-ms.
        assert pool.idle_millicore_ms == pytest.approx(2_000 * 1000.0, rel=0.05)

    def test_negative_ttl_rejected(self):
        with pytest.raises(ClusterError):
            self._pool(keepalive_ms=-1.0)

    def test_infinite_ttl_default_parks_forever(self):
        sim, pool = self._pool(keepalive_ms=None)
        self._use_once(sim, pool)
        sim.timeout(1e9)
        sim.run()
        assert pool.warm_count("F") == 1


class TestInterferenceCalibration:
    """Fig 1c endpoints at n = 6, pinned numerically (not just ordered)."""

    def test_fig1c_endpoints_at_six(self):
        model = InterferenceModel()
        expected = {
            Resource.CPU: 1.60,
            Resource.MEMORY: 3.50,
            Resource.IO: 5.50,
            Resource.NETWORK: 8.10,
        }
        for resource, value in expected.items():
            assert model.slowdown(resource, 6) == pytest.approx(value)

    def test_cross_reduces_to_same_function_curve(self):
        model = InterferenceModel()
        for resource in Resource:
            for n in range(1, 7):
                assert model.cross_slowdown(resource, n, 0) == pytest.approx(
                    model.slowdown(resource, n)
                )

    def test_cross_monotone_in_neighbours_and_scale(self):
        model = InterferenceModel()
        for resource in Resource:
            curve = [model.cross_slowdown(resource, 2, o) for o in range(5)]
            assert all(a < b for a, b in zip(curve, curve[1:]))
            by_scale = [
                model.cross_slowdown(resource, 2, 2, scale=s)
                for s in (0.0, 0.25, 0.5, 1.0)
            ]
            assert all(a < b for a, b in zip(by_scale, by_scale[1:]))

    def test_cross_neighbour_weighs_scale_of_a_same_function_one(self):
        model = InterferenceModel()
        # One other-function neighbour at scale=1 contends exactly like a
        # same-function one; at scale=0.5 it sits strictly between.
        for resource in Resource:
            full = model.cross_slowdown(resource, 1, 1, scale=1.0)
            assert full == pytest.approx(model.slowdown(resource, 2))
            half = model.cross_slowdown(resource, 1, 1, scale=0.5)
            assert model.slowdown(resource, 1) < half < full

    def test_cross_validation(self):
        model = InterferenceModel()
        with pytest.raises(ClusterError):
            model.cross_slowdown(Resource.CPU, 0, 1)
        with pytest.raises(ClusterError):
            model.cross_slowdown(Resource.CPU, 1, -1)
        with pytest.raises(ClusterError):
            model.cross_slowdown(Resource.CPU, 1, 1, scale=-0.1)


class TestVMFaultSurface:
    def test_down_vm_refuses_placement(self):
        vm = VirtualMachine(0, 10_000)
        assert vm.fits(1000)
        vm.up = False
        assert not vm.fits(1000)
        vm.up = True
        assert vm.fits(1000)

    def test_capacity_accounting_across_failure_cycles(self):
        vm = VirtualMachine(0, 10_000)
        for _ in range(3):
            pod = Pod("F", 4000, vm)
            vm.place(pod)
            vm.up = False  # eviction off a downed VM must still free cores
            vm.evict(pod)
            assert vm.allocated == 0 and vm.free == 10_000
            vm.up = True

    def test_slowdown_defaults_to_unity(self):
        vm = VirtualMachine(0, 10_000)
        assert vm.up and vm.slowdown == 1.0


class TestPodPreempt:
    def _busy_pod(self):
        vm = VirtualMachine(0, 10_000)
        pod = Pod("F", 1000, vm)
        vm.place(pod)
        pod.warm_up()
        pod.start_invocation()
        return pod

    def test_busy_to_dead(self):
        pod = self._busy_pod()
        pod.preempt()
        assert pod.state is PodState.DEAD and not pod.alive

    def test_preempt_requires_busy(self):
        vm = VirtualMachine(0, 10_000)
        pod = Pod("F", 1000, vm)
        pod.warm_up()
        with pytest.raises(ClusterError):
            pod.preempt()

    def test_kill_still_refuses_busy(self):
        # `preempt` is the only sanctioned way to lose in-flight work.
        with pytest.raises(ClusterError):
            self._busy_pod().kill()


class TestPoolFaultPaths:
    def _park_one(self, warm=2):
        sim = Simulator()
        vms = [VirtualMachine(i, 10_000) for i in range(2)]
        fn = make_function("F", sigma=0.0)
        pool = PoolManager(sim, vms, {"F": fn}, warm_pool_size=warm)
        parked = []

        def proc():
            pod = yield from pool.acquire("F", 2000)
            pod.start_invocation()
            yield sim.timeout(10.0)
            pod.finish_invocation()
            pool.release(pod)
            parked.append(pod)

        sim.process(proc())
        sim.run()
        return sim, pool, parked[0]

    def test_evict_parked_on_clears_and_frees(self):
        sim, pool, pod = self._park_one()
        vm = pod.vm
        assert pool.warm_count("F") == 1 and vm.allocated == pod.size
        assert pool.evict_parked_on(vm) == 1
        assert pool.warm_count("F") == 0 and vm.allocated == 0
        assert pod.state is PodState.DEAD
        # Idempotent: nothing left to evict.
        assert pool.evict_parked_on(vm) == 0

    def test_parked_pod_on_down_vm_never_reused(self):
        sim, pool, pod = self._park_one()
        pod.vm.up = False
        acquired = []

        def proc():
            fresh = yield from pool.acquire("F", 2000)
            acquired.append(fresh)

        sim.process(proc())
        sim.run()
        assert acquired[0].vm is not pod.vm
        assert pool.cold_starts == 2  # the down VM's warm pod was skipped

    def test_release_onto_down_vm_evicts_instead_of_parking(self):
        from repro.cluster.faults import FaultStats

        sim = Simulator()
        vms = [VirtualMachine(i, 10_000) for i in range(2)]
        fn = make_function("F", sigma=0.0)
        pool = PoolManager(sim, vms, {"F": fn}, warm_pool_size=2)
        pool.fault_stats = FaultStats()

        def proc():
            pod = yield from pool.acquire("F", 2000)
            pod.start_invocation()
            yield sim.timeout(10.0)
            pod.finish_invocation()
            pod.vm.up = False  # fails in the same instant the work finishes
            pool.release(pod)
            assert pod.state is PodState.DEAD
            assert pod.vm.allocated == 0

        sim.process(proc())
        sim.run()
        assert pool.warm_count("F") == 0
        assert pool.fault_stats.evictions == 1

    def test_boot_interrupted_by_vm_failure_restarts_elsewhere(self):
        from repro.cluster.faults import FaultStats

        sim = Simulator()
        vms = [VirtualMachine(i, 10_000) for i in range(2)]
        fn = make_function("F", sigma=0.0)  # cold_start_ms > 0
        pool = PoolManager(sim, vms, {"F": fn}, warm_pool_size=1)
        pool.fault_stats = FaultStats()
        acquired = []

        def boot():
            pod = yield from pool.acquire("F", 2000)
            acquired.append(pod)

        def failer():
            # Down the booting pod's VM mid-cold-start.
            yield sim.timeout(fn.cold_start_ms / 2)
            booting = next(vm for vm in vms if vm.allocated > 0)
            booting.up = False
            yield sim.timeout(fn.cold_start_ms * 2)
            booting.up = True

        sim.process(boot())
        sim.process(failer())
        sim.run()
        assert acquired and acquired[0].state is PodState.WARM
        assert acquired[0].vm.up
        assert pool.fault_stats.evictions == 1
