"""Workflow DAGs, specs, catalog, sub-workflows, requests."""

import json

import pytest

from repro.errors import WorkflowError
from repro.functions.model import InvocationDynamics
from repro.workflow.catalog import Workflow, intelligent_assistant, video_analytics
from repro.workflow.chain import chain_dag
from repro.workflow.dag import WorkflowDAG
from repro.workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from repro.workflow.spec import chain_spec, parse_spec
from repro.workflow.subworkflow import (
    chain_suffixes,
    remaining_after,
    suffix_for_stage,
)
from tests.conftest import make_function


class TestDAG:
    def test_chain_properties(self):
        dag = chain_dag(["A", "B", "C"])
        assert dag.is_chain
        assert dag.as_chain() == ["A", "B", "C"]
        assert dag.sources() == ["A"] and dag.sinks() == ["C"]

    def test_single_node_is_chain(self):
        assert WorkflowDAG(["X"]).is_chain

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowError, match="cycle"):
            WorkflowDAG(["A", "B"], [("A", "B"), ("B", "A")])

    def test_self_loop_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowDAG(["A"], [("A", "A")])

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowDAG(["A", "A"])

    def test_empty_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowDAG([])

    def test_unknown_edge_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowDAG(["A"], [("A", "B")])

    def test_diamond_not_chain(self):
        dag = WorkflowDAG(
            ["A", "B", "C", "D"],
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
        )
        assert not dag.is_chain
        with pytest.raises(WorkflowError):
            dag.as_chain()

    def test_critical_path_picks_heavier_branch(self):
        dag = WorkflowDAG(
            ["A", "B", "C", "D"],
            [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
        )
        weights = {"A": 1.0, "B": 10.0, "C": 2.0, "D": 1.0}
        assert dag.critical_path(weights) == ["A", "B", "D"]

    def test_critical_path_missing_weight(self):
        dag = chain_dag(["A", "B"])
        with pytest.raises(WorkflowError):
            dag.critical_path({"A": 1.0})

    def test_topological_order(self):
        dag = WorkflowDAG(["C", "A", "B"], [("A", "B"), ("B", "C")])
        assert dag.nodes == ["A", "B", "C"]

    def test_successors_predecessors(self):
        dag = chain_dag(["A", "B", "C"])
        assert dag.successors("A") == ["B"]
        assert dag.predecessors("C") == ["B"]
        with pytest.raises(WorkflowError):
            dag.successors("Z")

    def test_subgraph(self):
        dag = chain_dag(["A", "B", "C"])
        sub = dag.subgraph(["B", "C"])
        assert sub.nodes == ["B", "C"] and sub.edges == [("B", "C")]

    def test_equality_and_hash(self):
        a, b = chain_dag(["A", "B"]), chain_dag(["A", "B"])
        assert a == b and hash(a) == hash(b)
        assert a != chain_dag(["A", "C"])

    def test_contains(self):
        assert "A" in chain_dag(["A"])


class TestSpec:
    def test_chain_roundtrip(self):
        doc = chain_spec(["OD", "QA", "TS"], comment="IA")
        dag = parse_spec(doc)
        assert dag.as_chain() == ["OD", "QA", "TS"]

    def test_parse_json_text(self):
        dag = parse_spec(json.dumps(chain_spec(["A", "B"])))
        assert dag.as_chain() == ["A", "B"]

    def test_invalid_json_rejected(self):
        with pytest.raises(WorkflowError, match="invalid JSON"):
            parse_spec("{not json")

    def test_missing_states_rejected(self):
        with pytest.raises(WorkflowError):
            parse_spec({"StartAt": "A"})

    def test_bad_startat_rejected(self):
        with pytest.raises(WorkflowError):
            parse_spec({"StartAt": "Z", "States": {"A": {"Type": "Task", "End": True}}})

    def test_dangling_next_rejected(self):
        with pytest.raises(WorkflowError):
            parse_spec(
                {"StartAt": "A",
                 "States": {"A": {"Type": "Task", "Next": "Missing"}}}
            )

    def test_state_without_next_or_end_rejected(self):
        with pytest.raises(WorkflowError):
            parse_spec({"StartAt": "A", "States": {"A": {"Type": "Task"}}})

    def test_parallel_fan_out_fan_in(self):
        doc = {
            "StartAt": "P",
            "States": {
                "P": {
                    "Type": "Parallel",
                    "Branches": [
                        {"StartAt": "B1",
                         "States": {"B1": {"Type": "Task", "End": True}}},
                        {"StartAt": "B2",
                         "States": {"B2": {"Type": "Task", "End": True}}},
                    ],
                    "Next": "Join",
                },
                "Join": {"Type": "Task", "End": True},
            },
        }
        dag = parse_spec(doc)
        assert set(dag.nodes) == {"B1", "B2", "Join"}
        assert ("B1", "Join") in dag.edges and ("B2", "Join") in dag.edges

    def test_empty_chain_spec_rejected(self):
        with pytest.raises(WorkflowError):
            chain_spec([])


class TestCatalog:
    def test_ia_defaults(self):
        wf = intelligent_assistant()
        assert wf.chain == ["OD", "QA", "TS"]
        assert wf.slo_ms == 3000.0
        assert wf.limits.kmin == 1000 and wf.limits.kmax == 3000

    def test_va_defaults(self):
        wf = video_analytics()
        assert wf.chain == ["FE", "ICL", "ICO"]
        assert wf.slo_ms == 1500.0
        assert wf.max_concurrency == 1

    def test_ia_concurrency_variant(self):
        wf = intelligent_assistant(slo_ms=4000.0, concurrency=2)
        assert wf.max_concurrency == 2

    def test_va_rejects_concurrency(self):
        # FE/ICO are not batchable.
        wf = video_analytics()
        with pytest.raises(WorkflowError):
            wf.with_concurrency(2)

    def test_with_slo(self):
        wf = intelligent_assistant().with_slo(5000.0)
        assert wf.slo_ms == 5000.0

    def test_missing_model_rejected(self):
        m = make_function("A")
        with pytest.raises(WorkflowError):
            Workflow(
                name="w", dag=chain_dag(["A", "B"]),
                functions={"A": m}, slo_ms=1000.0,
            )

    def test_extra_model_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow(
                name="w", dag=chain_dag(["A"]),
                functions={"A": make_function("A"), "B": make_function("B")},
                slo_ms=1000.0,
            )

    def test_model_lookup(self):
        wf = intelligent_assistant()
        assert wf.model("OD").name == "OD"
        with pytest.raises(WorkflowError):
            wf.model("nope")


class TestSubworkflows:
    def test_chain_suffixes(self):
        assert chain_suffixes(["A", "B", "C"]) == [
            ("A", "B", "C"), ("B", "C"), ("C",),
        ]

    def test_suffix_for_stage(self):
        assert suffix_for_stage(["A", "B", "C"], 1) == ("B", "C")
        with pytest.raises(WorkflowError):
            suffix_for_stage(["A"], 5)

    def test_empty_chain_rejected(self):
        with pytest.raises(WorkflowError):
            chain_suffixes([])

    def test_remaining_after_prefix(self):
        dag = chain_dag(["A", "B", "C"])
        rest = remaining_after(dag, ["A"])
        assert rest is not None and rest.nodes == ["B", "C"]

    def test_remaining_after_all(self):
        dag = chain_dag(["A", "B"])
        assert remaining_after(dag, ["A", "B"]) is None

    def test_remaining_after_non_prefix_rejected(self):
        dag = chain_dag(["A", "B", "C"])
        with pytest.raises(WorkflowError):
            remaining_after(dag, ["B"])  # A unfinished but B done

    def test_remaining_after_unknown_rejected(self):
        with pytest.raises(WorkflowError):
            remaining_after(chain_dag(["A"]), ["Z"])


class TestRequests:
    def _dyn(self):
        return InvocationDynamics(workset=1.0, noise_z=0.0)

    def test_stage_record_duration(self):
        rec = StageRecord("F", 1000, 10.0, 25.0)
        assert rec.execution_ms == 15.0

    def test_stage_record_invalid(self):
        with pytest.raises(WorkflowError):
            StageRecord("F", 1000, 10.0, 5.0)

    def test_request_validation(self):
        with pytest.raises(WorkflowError):
            WorkflowRequest(0, 0.0, -1.0, {"F": self._dyn()})
        with pytest.raises(WorkflowError):
            WorkflowRequest(0, 0.0, 100.0, {})
        with pytest.raises(WorkflowError):
            WorkflowRequest(0, 0.0, 100.0, {"F": self._dyn()}, concurrency=0)

    def test_dynamics_lookup(self):
        req = WorkflowRequest(0, 0.0, 100.0, {"F": self._dyn()})
        assert req.dynamics_for("F") == self._dyn()
        with pytest.raises(WorkflowError):
            req.dynamics_for("G")

    def test_outcome_metrics(self):
        out = RequestOutcome(
            request_id=1, arrival_ms=100.0, slo_ms=1000.0,
            stages=[
                StageRecord("A", 1000, 100.0, 400.0),
                StageRecord("B", 2000, 400.0, 900.0),
            ],
        )
        assert out.e2e_ms == 800.0
        assert out.slo_met
        assert out.slack == pytest.approx(0.2)
        assert out.allocated_millicores == 3000
        assert out.millicore_ms == pytest.approx(1000 * 300 + 2000 * 500)
        assert out.sizes() == [1000, 2000]
        assert set(out.stage_map()) == {"A", "B"}

    def test_outcome_violation(self):
        out = RequestOutcome(
            request_id=1, arrival_ms=0.0, slo_ms=100.0,
            stages=[StageRecord("A", 1000, 0.0, 150.0)],
        )
        assert not out.slo_met and out.slack < 0

    def test_empty_outcome(self):
        out = RequestOutcome(request_id=1, arrival_ms=0.0, slo_ms=100.0)
        assert out.e2e_ms == 0.0
