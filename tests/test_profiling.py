"""Profiler and latency-profile tables, timeout/resilience metrics."""

import numpy as np
import pytest

from repro.errors import ProfileError
from repro.profiling.metrics import (
    resilience,
    resilience_curve,
    timeout,
    timeout_curve,
    total_resilience,
)
from repro.profiling.profiler import Profiler, ProfilerConfig
from repro.profiling.profiles import LatencyProfile, ProfileSet
from repro.rng import RngFactory
from repro.types import PercentileGrid, ResourceLimits
from tests.conftest import make_function, small_limits, tiny_percentiles


def make_profile(
    name: str = "F",
    limits: ResourceLimits | None = None,
    percentiles: PercentileGrid | None = None,
    concurrencies: tuple[int, ...] = (1,),
) -> LatencyProfile:
    limits = limits or small_limits()
    percentiles = percentiles or tiny_percentiles()
    k = limits.grid().astype(float)
    p = percentiles.as_array()
    # Synthetic monotone table: decreasing in k, increasing in p.
    base = 100.0 + 1000.0 * (1000.0 / k)[None, :]
    spread = (1.0 + p / 100.0)[:, None]
    plane = base * spread
    table = np.stack([plane * (1.0 + 0.3 * c) for c in range(len(concurrencies))])
    return LatencyProfile(
        function=name,
        percentiles=percentiles,
        limits=limits,
        concurrencies=concurrencies,
        table=table,
    )


class TestLatencyProfile:
    def test_lookup_exact(self):
        prof = make_profile()
        assert prof.latency(99, 1000) > prof.latency(1, 1000)
        assert prof.latency(99, 1000) > prof.latency(99, 3000)

    def test_off_grid_size_rejected(self):
        prof = make_profile()
        with pytest.raises(ProfileError):
            prof.latency(99, 1234)

    def test_unknown_concurrency_rejected(self):
        prof = make_profile()
        with pytest.raises(ProfileError):
            prof.latency(99, 1000, concurrency=2)

    def test_shape_mismatch_rejected(self):
        limits, grid = small_limits(), tiny_percentiles()
        with pytest.raises(ProfileError):
            LatencyProfile(
                function="F", percentiles=grid, limits=limits,
                concurrencies=(1,), table=np.ones((1, 2, 2)),
            )

    def test_non_positive_table_rejected(self):
        limits, grid = small_limits(), tiny_percentiles()
        shape = (1, len(grid), limits.num_options)
        with pytest.raises(ProfileError):
            LatencyProfile(
                function="F", percentiles=grid, limits=limits,
                concurrencies=(1,), table=np.zeros(shape),
            )

    def test_concurrency_must_start_at_one(self):
        limits, grid = small_limits(), tiny_percentiles()
        shape = (1, len(grid), limits.num_options)
        with pytest.raises(ProfileError):
            LatencyProfile(
                function="F", percentiles=grid, limits=limits,
                concurrencies=(2,), table=np.ones(shape),
            )

    def test_timeout_definition(self):
        prof = make_profile()
        # D(p, k) = L(99, k) - L(p, k)
        assert prof.timeout(50, 1500) == pytest.approx(
            prof.latency(99, 1500) - prof.latency(50, 1500)
        )
        assert prof.timeout(99, 1500) == 0.0

    def test_timeout_non_negative_everywhere(self):
        prof = make_profile()
        for p in prof.percentiles:
            assert np.all(prof.timeout_row(p) >= -1e-9)

    def test_resilience_definition(self):
        prof = make_profile()
        # R(p, k) = L(p, k) - L(p, Kmax), prose sign convention
        assert prof.resilience(50, 1000) == pytest.approx(
            prof.latency(50, 1000) - prof.latency(50, 3000)
        )
        assert prof.resilience(50, prof.limits.kmax) == 0.0

    def test_resilience_non_negative(self):
        prof = make_profile()
        for p in prof.percentiles:
            assert np.all(prof.resilience_row(p) >= -1e-9)

    def test_bounds(self):
        prof = make_profile()
        assert prof.min_latency() == prof.latency(1, 3000)
        assert prof.max_latency() == prof.latency(99, 1000)

    def test_monotone_check_and_projection(self):
        prof = make_profile()
        assert prof.is_monotone()
        # Corrupt the table, then project back.
        bad_table = prof.table.copy()
        bad_table[0, 0, 0], bad_table[0, 0, 1] = bad_table[0, 0, 1], bad_table[0, 0, 0] * 0.5
        bad = LatencyProfile(
            function="F", percentiles=prof.percentiles, limits=prof.limits,
            concurrencies=prof.concurrencies, table=bad_table,
        )
        fixed = bad.enforce_monotone()
        assert fixed.is_monotone()

    def test_memory_bytes(self):
        prof = make_profile()
        assert prof.memory_bytes() == prof.table.nbytes

    def test_higher_concurrency_slower(self):
        prof = make_profile(concurrencies=(1, 2))
        assert prof.latency(50, 2000, concurrency=2) > prof.latency(
            50, 2000, concurrency=1
        )


class TestProfileSet:
    def test_basic(self):
        ps = ProfileSet({"A": make_profile("A"), "B": make_profile("B")})
        assert len(ps) == 2 and "A" in ps
        assert ps["A"].function == "A"
        assert set(ps.functions()) == {"A", "B"}

    def test_unknown_function_rejected(self):
        ps = ProfileSet({"A": make_profile("A")})
        with pytest.raises(ProfileError):
            ps["Z"]

    def test_mismatched_limits_rejected(self):
        other = ResourceLimits(1000, 2000, 500)
        with pytest.raises(ProfileError):
            ProfileSet({
                "A": make_profile("A"),
                "B": make_profile("B", limits=other),
            })

    def test_empty_rejected(self):
        with pytest.raises(ProfileError):
            ProfileSet({})

    def test_for_chain_orders(self):
        ps = ProfileSet({"A": make_profile("A"), "B": make_profile("B")})
        assert [p.function for p in ps.for_chain(["B", "A"])] == ["B", "A"]

    def test_memory_bytes_sums(self):
        ps = ProfileSet({"A": make_profile("A"), "B": make_profile("B")})
        assert ps.memory_bytes() == ps["A"].memory_bytes() + ps["B"].memory_bytes()


class TestProfiler:
    def test_campaign_produces_monotone_tables(self):
        cfg = ProfilerConfig(
            limits=small_limits(), percentiles=tiny_percentiles(), samples=400
        )
        prof = Profiler(cfg).profile_function(
            make_function(gamma=0.3, sigma=0.15), RngFactory(1).stream("p")
        )
        assert prof.is_monotone()

    def test_campaign_reproducible(self):
        cfg = ProfilerConfig(
            limits=small_limits(), percentiles=tiny_percentiles(), samples=300
        )
        a = Profiler(cfg).profile_function(make_function(), RngFactory(2).stream("x"))
        b = Profiler(cfg).profile_function(make_function(), RngFactory(2).stream("x"))
        np.testing.assert_array_equal(a.table, b.table)

    def test_non_batchable_profiles_reuse_c1(self):
        cfg = ProfilerConfig(
            limits=small_limits(), percentiles=tiny_percentiles(),
            concurrencies=(1, 2), samples=300,
        )
        prof = Profiler(cfg).profile_function(
            make_function(batchable=False, batch_eta=0.0),
            RngFactory(3).stream("x"),
        )
        # Same distribution sampled independently: medians close.
        mid = len(tiny_percentiles()) // 2
        np.testing.assert_allclose(
            prof.table[0, mid], prof.table[1, mid], rtol=0.1
        )

    def test_batchable_profiles_scale_with_concurrency(self):
        cfg = ProfilerConfig(
            limits=small_limits(), percentiles=tiny_percentiles(),
            concurrencies=(1, 2), samples=400,
        )
        prof = Profiler(cfg).profile_function(
            make_function(batch_eta=0.5), RngFactory(4).stream("x")
        )
        assert prof.latency(50, 2000, 2) > 1.3 * prof.latency(50, 2000, 1)

    def test_interference_sampler_shifts_distribution(self):
        cfg = ProfilerConfig(
            limits=small_limits(), percentiles=tiny_percentiles(), samples=400
        )
        base = Profiler(cfg).profile_function(
            make_function(), RngFactory(5).stream("x")
        )
        noisy = Profiler(
            cfg, interference=lambda rng, n: 1.0 + rng.random(n)
        ).profile_function(make_function(), RngFactory(5).stream("x"))
        assert noisy.latency(50, 2000) > base.latency(50, 2000)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ProfileError):
            ProfilerConfig(samples=10)

    def test_concurrencies_must_start_at_one(self):
        with pytest.raises(ProfileError):
            ProfilerConfig(concurrencies=(2, 3))


class TestMetricHelpers:
    def test_functional_wrappers(self):
        prof = make_profile()
        assert timeout(prof, 50, 1500) == prof.timeout(50, 1500)
        assert resilience(prof, 50, 1500) == prof.resilience(50, 1500)

    def test_curves_cover_grid(self):
        prof = make_profile()
        ks, ds = timeout_curve(prof, 25)
        assert len(ks) == len(ds) == prof.limits.num_options
        ks2, rs = resilience_curve(prof)
        assert rs[-1] == pytest.approx(0.0)

    def test_timeout_decreases_with_percentile(self):
        # Fig 7a: higher percentile -> smaller timeout.
        prof = make_profile()
        _, d25 = timeout_curve(prof, 25)
        _, d75 = timeout_curve(prof, 75)
        assert np.all(d25 >= d75)

    def test_resilience_decreases_with_cores(self):
        # Fig 7b: more cores -> less headroom left.
        prof = make_profile()
        _, r = resilience_curve(prof)
        assert np.all(np.diff(r) <= 1e-9)

    def test_total_resilience(self):
        prof = make_profile()
        val = total_resilience([prof, prof], [1000, 3000])
        assert val == pytest.approx(prof.resilience(99, 1000))

    def test_total_resilience_length_mismatch(self):
        prof = make_profile()
        with pytest.raises(ValueError):
            total_resilience([prof], [1000, 2000])
