"""Experiment registry and reduced-scale integration runs.

Every registered experiment must run end-to-end at a small scale and
reproduce its paper artifact's qualitative claim.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import list_experiments, run_experiment
from repro.experiments import (
    ablation_resilience,
    fig1_interference,
    fig1_slack,
    fig1_worksets,
    fig2_motivation,
    fig5_resources,
    fig8_condensing,
    overhead,
    regeneration,
)

SAMPLES = 600  # reduced profiling scale for tests


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = {e for e, _ in list_experiments()}
        assert {"fig1a", "fig1b", "fig1c", "fig2", "fig4", "fig5", "fig6",
                "fig7", "table2", "fig8", "fig9", "overhead"} <= ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_run_experiment_renders_text(self):
        text = run_experiment("fig1b", samples=SAMPLES)
        assert "Fig 1b" in text


class TestFig1a:
    def test_shape(self):
        result = fig1_slack.run(n_functions=50, n_invocations=20_000)
        # Paper: >60% of invocations with slack above 0.6.
        assert result.frac_all_above_060 > 0.6
        assert 0 <= result.frac_popular_below_040 <= 0.5
        text = fig1_slack.render(result)
        assert "slack" in text


class TestFig1b:
    def test_variance_band(self):
        result = fig1_worksets.run(samples=SAMPLES)
        assert 1.5 <= result.max_ratio <= 4.5


class TestFig1c:
    def test_interference_ordering(self):
        result = fig1_interference.run(samples_per_level=60)
        finals = {name: series[-1] for name, series in result.series.items()}
        # Network-dominant worst, CPU-dominant best (paper Fig. 1c).
        assert finals["SocketComm"] == max(finals.values())
        assert finals["AES"] == min(finals.values())
        assert result.max_slowdown > 5.0

    def test_series_start_at_one(self):
        result = fig1_interference.run(max_colocated=3, samples_per_level=40)
        for series in result.series.values():
            assert series[0] == pytest.approx(1.0)


class TestFig2:
    def test_late_binding_saves_and_meets_slo(self):
        result = fig2_motivation.run(n_requests=40, samples=SAMPLES)
        assert result.max_cpu_reduction > 0.10
        assert result.late_violations <= 1


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_resources.run(
            n_requests=250, samples=SAMPLES, concurrencies=(1,)
        )

    def test_policy_ordering_matches_table1(self, result):
        # Core Table I shape: Optimal <= Janus+ ~ Janus <= Janus- <= ORION
        # <= GrandSLAM family.
        for wf in ("IA", "VA"):
            norm = result.normalized((wf, 1))
            assert norm["Optimal"] == pytest.approx(1.0)
            assert norm["Janus"] <= norm["Janus-"] + 0.02
            assert norm["Janus-"] < norm["ORION"]
            assert norm["ORION"] < max(norm["GrandSLAM"], norm["GrandSLAM+"])

    def test_reductions_positive(self, result):
        for wf in ("IA", "VA"):
            reductions = result.reduction_table((wf, 1))
            for base in ("ORION", "GrandSLAM", "GrandSLAM+"):
                assert reductions[base] > 5.0  # percent of Optimal

    def test_janus_slo_compliance(self, result):
        for wf in ("IA", "VA"):
            res = result.panels[(wf, 1)]["Janus"]
            assert res.violation_rate <= 0.01 + 1e-9

    def test_render(self, result):
        text = fig5_resources.render(result)
        assert "Table I" in text and "Fig 5" in text


class TestFig8:
    def test_compression_and_weight_trend(self):
        result = fig8_condensing.run(
            weights=(1.0, 3.0), ia_concurrencies=(1,), samples=SAMPLES
        )
        for key, ratio in result.compression.items():
            assert ratio > 0.9, key
        assert result.counts[("IA", 1, 3.0)] <= result.counts[("IA", 1, 1.0)]
        assert result.counts[("VA", 1, 3.0)] <= result.counts[("VA", 1, 1.0)]


class TestOverhead:
    def test_decision_latency_under_paper_bound(self):
        result = overhead.run(n_requests=150, samples=SAMPLES)
        for wf, stats in result.decision_ms.items():
            assert stats["max"] < 3.0, wf  # paper §V-H bound
        assert all(v > 0 for v in result.table_bytes.values())

    def test_hit_rates_high(self):
        result = overhead.run(n_requests=150, samples=SAMPLES)
        assert all(rate >= 0.95 for rate in result.hit_rates.values())


class TestRegeneration:
    def test_drift_triggers_and_recovery(self):
        result = regeneration.run(
            workset_scale=4.0, n_requests=250, samples=SAMPLES
        )
        assert result.miss_rate_under_drift > result.miss_rate_before_drift
        assert result.regeneration_triggered
        assert result.miss_rate_after_regen < result.miss_rate_under_drift


class TestAblation:
    def test_runs_and_reports_both_variants(self):
        result = ablation_resilience.run(n_requests=150, samples=SAMPLES)
        variants = {(wf, v) for wf, v, _, _ in result.rows}
        assert ("IA", "with Eq.6") in variants
        assert ("VA", "without Eq.6") in variants


class TestExtensionExperiments:
    def test_dag_extension(self):
        from repro.experiments import extension_dag

        result = extension_dag.run(n_requests=150, samples=SAMPLES)
        by_name = {n: (cpu, viol) for n, cpu, _, viol in result.rows}
        assert by_name["Janus-DAG"][0] < by_name["GrandSLAM-DAG"][0]
        assert by_name["Janus-DAG"][1] <= 0.02
        assert "critical path" in extension_dag.render(result)

    def test_batching_extension(self):
        from repro.experiments import extension_batching

        result = extension_batching.run(
            rates_per_s=(5.0, 50.0), n_requests=120, samples=SAMPLES
        )
        janus_rows = [r for r in result.rows if r[0] == "Janus"]
        assert janus_rows[-1][2] > janus_rows[0][2]  # batches grow with rate
        assert "batching" in extension_batching.render(result)

    def test_registry_knows_extensions(self):
        ids = {e for e, _ in list_experiments()}
        assert {"ext-dag", "ext-batching", "regeneration",
                "ablation-resilience"} <= ids

    def test_strict_slo_extension(self):
        from repro.experiments import extension_strict_slo

        result = extension_strict_slo.run(n_requests=1500, samples=3000)
        by_anchor = {a: (viol, cpu) for a, viol, _, cpu in result.rows}
        # A stricter anchor trades some CPU for fewer violations.
        assert by_anchor["P99.9"][0] <= by_anchor["P99"][0]
        assert by_anchor["P99.9"][0] <= 0.001 + 1e-9  # P99.9 contract
        assert by_anchor["P99.9"][1] >= by_anchor["P99"][1] * 0.99

    def test_multitenant_extension(self):
        from repro.experiments import extension_multitenant

        result = extension_multitenant.run(n_requests=80, samples=SAMPLES)
        assert len(result.rows) == 2
        tenants = {row[0] for row in result.rows}
        assert tenants == {"tenant-ia", "tenant-va"}
        # Shared-cluster dynamics allow some tail violations, but the bulk
        # of traffic must meet the (loosened) SLOs.
        assert all(row[4] <= 0.10 for row in result.rows)

    def test_keepalive_extension(self):
        from repro.experiments import extension_keepalive

        result = extension_keepalive.run(
            ttls_ms=(0.0, 5000.0, None), n_requests=60, samples=SAMPLES
        )
        cold = [row[1] for row in result.rows]
        idle = [row[2] for row in result.rows]
        # Longer TTL: cold starts fall, idle reservation cost grows.
        assert cold[0] > cold[1] > cold[2]
        assert idle[0] <= idle[1] <= idle[2]
        assert "keep-alive" in extension_keepalive.render(result)


class TestRemainingArtifacts:
    """Reduced-scale smoke + shape for fig4/fig6/fig7/fig9/table2."""

    def test_fig4_all_panels_compliant(self):
        from repro.experiments import fig4_latency_cdf

        result = fig4_latency_cdf.run(
            n_requests=120, samples=SAMPLES, panels=[("IA", 1), ("VA", 1)]
        )
        for panel, results in result.panels.items():
            assert results["Janus"].violation_rate <= 0.02, panel
        assert "Fig 4" in fig4_latency_cdf.render(result)

    def test_fig6_janus_plus_tradeoff(self):
        from repro.experiments import fig6_percentile_exploration

        result = fig6_percentile_exploration.run(
            slos_s=(3.0, 4.0), n_requests=80, samples=SAMPLES
        )
        assert result.max_time_ratio > 2.0
        assert -5.0 <= result.mean_cpu_gain_pct <= 10.0  # small-sample noise

    def test_fig7_monotonicities(self):
        import numpy as np

        from repro.experiments import fig7_timeout_resilience

        result = fig7_timeout_resilience.run(samples=SAMPLES)
        d25 = result.timeout_by_percentile[25]
        d75 = result.timeout_by_percentile[75]
        assert np.all(d25 >= d75 - 1e-9)
        r1 = result.resilience_by_concurrency[1]
        assert abs(r1[-1]) < 1e-9

    def test_fig9_tight_slo_gains(self):
        from repro.experiments import fig9_slo

        result = fig9_slo.run(
            ia_slos_s=(3.0,), va_slos_s=(1.5,),
            n_requests=150, samples=SAMPLES,
        )
        for wf in ("IA", "VA"):
            tight = result.series[wf][min(result.series[wf])]
            assert tight["Janus"] < tight["GrandSLAM"]

    def test_table2_weight_direction(self):
        from repro.experiments import table2_weight

        result = table2_weight.run(
            slos_s=(3.0, 3.4, 3.8), n_requests=60, samples=SAMPLES
        )
        assert result.head_cpu[3.0] <= result.head_cpu[1.0] + 1e-9


class TestFaultedExperiments:
    """The fig7/ablation fault knobs, pinned against pre-refactor outputs.

    The parity goldens were captured on the commit *before* the faults
    knob existed, at exactly these arguments — the refactor must keep the
    default (fault-free) paths bit-identical.
    """

    FIG7_GOLDEN = (
        "f10ec4eb836183dc01fc3156831cab8ee8ac4bd54174aa3aeeed6af6cebf35b7"
    )
    ABLATION_GOLDEN = [
        ("IA", "with Eq.6", 0.006666666666666667, 3471.3333333333335),
        ("IA", "without Eq.6", 0.006666666666666667, 3468.6666666666665),
        ("VA", "with Eq.6", 0.0, 3414.0),
        ("VA", "without Eq.6", 0.0, 3414.0),
    ]

    @staticmethod
    def _fig7_digest(result):
        import hashlib
        import json

        payload = json.dumps({
            "k": [float(k) for k in result.k_grid],
            "t": {str(p): [float(x) for x in curve]
                  for p, curve in sorted(result.timeout_by_percentile.items())},
            "r": {str(c): [float(x) for x in curve]
                  for c, curve
                  in sorted(result.resilience_by_concurrency.items())},
        }, sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def test_fig7_default_parity(self):
        from repro.experiments import fig7_timeout_resilience

        result = fig7_timeout_resilience.run(samples=SAMPLES)
        assert result.fault is None
        assert self._fig7_digest(result) == self.FIG7_GOLDEN

    def test_ablation_default_parity(self):
        result = ablation_resilience.run(n_requests=150, samples=SAMPLES)
        assert result.fault is None
        assert [tuple(row) for row in result.rows] == self.ABLATION_GOLDEN

    def test_fig7_straggler_scales_both_curve_families(self):
        import numpy as np

        from repro.experiments import fig7_timeout_resilience

        clean = fig7_timeout_resilience.run(samples=SAMPLES)
        slow = fig7_timeout_resilience.run(
            samples=SAMPLES, faults="straggler@0.25:3"
        )
        assert slow.fault == "straggler@0.25x3~5000/20000ms"
        for p, curve in clean.timeout_by_percentile.items():
            assert np.allclose(slow.timeout_by_percentile[p], curve * 3.0)
        for c, curve in clean.resilience_by_concurrency.items():
            assert np.allclose(slow.resilience_by_concurrency[c], curve * 3.0)
        assert "straggler" in fig7_timeout_resilience.render(slow)

    def test_fig7_contention_scales_by_cross_interference(self):
        import numpy as np

        from repro.cluster.interference import InterferenceModel
        from repro.experiments import fig7_timeout_resilience
        from repro.experiments.common import ia_setup

        clean = fig7_timeout_resilience.run(samples=SAMPLES)
        contended = fig7_timeout_resilience.run(
            samples=SAMPLES, faults="contention@0.5"
        )
        wf, _, _ = ia_setup(samples=SAMPLES)
        factor = InterferenceModel().cross_slowdown(
            wf.model("TS").dominant_resource, 1, 1, scale=0.5
        )
        assert factor > 1.0
        assert np.allclose(
            contended.timeout_by_percentile[50],
            clean.timeout_by_percentile[50] * factor,
        )

    def test_fig7_rejects_event_level_faults(self):
        from repro.experiments import fig7_timeout_resilience

        with pytest.raises(ExperimentError, match="event-level"):
            fig7_timeout_resilience.run(samples=SAMPLES, faults="preempt@2")

    def test_ablation_under_cluster_faults(self):
        from repro.cluster import ClusterConfig

        faulted = ablation_resilience.run(
            n_requests=60, samples=SAMPLES, faults="preempt@60:1000",
            cluster=ClusterConfig(n_vms=2, autoscale=False),
        )
        assert faulted.fault == "preempt@60/min~1000ms"
        assert [tuple(r) for r in faulted.rows] != self.ABLATION_GOLDEN
        again = ablation_resilience.run(
            n_requests=60, samples=SAMPLES, faults="preempt@60:1000",
            cluster=ClusterConfig(n_vms=2, autoscale=False),
        )
        assert faulted == again
        assert "under preempt" in ablation_resilience.render(faulted)

    def test_ablation_rejects_arrival_side_faults(self):
        with pytest.raises(ExperimentError, match="arrival"):
            ablation_resilience.run(
                n_requests=60, samples=SAMPLES, faults="storm@6"
            )
