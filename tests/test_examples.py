"""Smoke tests: the shipped examples must run end to end.

Each example is executed as a subprocess (its own interpreter, like a user
would run it) and its headline output asserted. The DES cluster example is
the slowest and is exercised at reduced scale through its importable
helpers instead of the full script.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExampleScripts:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Janus saves" in out
        assert "hit rate" in out

    def test_video_analytics_slo_sweep(self):
        out = run_example("video_analytics_slo_sweep.py")
        assert "SLO (s)" in out and "GrandSLAM" in out

    def test_custom_workflow(self):
        out = run_example("custom_workflow.py")
        assert "regeneration requested for: [('acme-corp', 'docs')]" in out
        assert "after regen" in out

    def test_multi_tenant_service(self):
        out = run_example("multi_tenant_service.py")
        assert "tenant-ia" in out and "tenant-va" in out
        assert "decision latency" in out

    def test_branching_workflow(self):
        out = run_example("branching_workflow.py")
        assert "critical path: Ingest -> Vision -> Publish" in out
        assert "Janus-DAG" in out

    def test_scenario_sweep(self):
        out = run_example("scenario_sweep.py")
        assert "Scenario sweep: 16 cells" in out
        assert "bit-identical to serial: True" in out
        assert "SLO attainment" in out


class TestClusterExampleHelpers:
    def test_platform_aware_profiling_helper(self):
        # The heavy DES example exposes its profiling helper; exercise it at
        # the library level instead of re-running the whole script.
        sys.path.insert(0, str(EXAMPLES.parent))
        try:
            from examples.intelligent_assistant import (
                COLOCATION_MIX,
                platform_aware_profiles,
            )
        finally:
            sys.path.pop(0)
        from repro import InterferenceModel, intelligent_assistant

        assert abs(sum(COLOCATION_MIX.values()) - 1.0) < 1e-9
        wf = intelligent_assistant()
        profiles = platform_aware_profiles(wf, InterferenceModel())
        # Platform-aware profiles are strictly slower than clean ones.
        from repro import profile_workflow

        clean = profile_workflow(wf, seed=1, samples=800)
        for name in wf.chain:
            assert profiles[name].latency(50, 2000) > clean[name].latency(
                50, 2000
            )
