"""The unified Session facade, executor/policy registries, and the
compatibility surface of the chain/DAG API unification."""

import warnings

import numpy as np
import pytest

import repro
from repro.api import ComparisonReport, Session
from repro.errors import ExperimentError, PolicyError
from repro.policies import POLICIES, PolicyRegistry, SizingPolicy
from repro.policies.dag import DagJanusPolicy, DagSizingPolicy
from repro.policies.early_binding import FixedPlanPolicy
from repro.profiling.profiler import profile_workflow
from repro.runtime import (
    AnalyticExecutor,
    BatchingExecutor,
    DagAnalyticExecutor,
    build_policy_suite,
    executor_names,
    get_executor,
    resolve_executor,
    run_policies,
)
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.workflow.chain import chain_dag

SAMPLES = 600
SEED = 11


@pytest.fixture(scope="module")
def chain_session(small_workflow):
    return Session(small_workflow, samples=SAMPLES, seed=SEED)


@pytest.fixture(scope="module")
def diamond_workflow():
    from repro.experiments.extension_dag import diamond_workflow as build

    return build(slo_ms=2200.0)


class TestWorkflowTopology:
    def test_chain(self, small_workflow):
        assert small_workflow.topology == "chain"
        assert small_workflow.dag == chain_dag(small_workflow.chain)

    def test_dag(self, diamond_workflow):
        assert diamond_workflow.topology == "dag"


class TestExecutorRegistry:
    def test_builtins_registered(self):
        assert {"analytic", "dag", "batching", "cluster"} <= set(
            executor_names()
        )

    def test_get_by_name(self, small_workflow):
        assert isinstance(
            get_executor("analytic", small_workflow), AnalyticExecutor
        )
        assert isinstance(get_executor("dag", small_workflow), DagAnalyticExecutor)
        assert isinstance(
            get_executor("batching", small_workflow), BatchingExecutor
        )

    def test_unknown_name_rejected(self, small_workflow):
        with pytest.raises(ExperimentError, match="unknown executor"):
            get_executor("quantum", small_workflow)

    def test_auto_selection_by_topology(self, small_workflow, diamond_workflow):
        assert isinstance(resolve_executor(small_workflow), AnalyticExecutor)
        assert isinstance(resolve_executor(diamond_workflow), DagAnalyticExecutor)

    def test_prebuilt_executor_passes_through(self, small_workflow):
        executor = AnalyticExecutor(small_workflow)
        assert resolve_executor(small_workflow, executor) is executor

    def test_prebuilt_executor_rejects_options(self, small_workflow):
        with pytest.raises(ExperimentError, match="already-built"):
            resolve_executor(
                small_workflow, AnalyticExecutor(small_workflow), clamp_sizes=False
            )

    def test_backend_option_mismatch_raises_named_error(self, small_workflow):
        # Cluster knobs on a session with an auto-selected analytic default
        # must fail with an error naming the backend and options, not an
        # opaque TypeError from inside the factory.
        session = Session(small_workflow, executor_kwargs={"n_vms": 2})
        with pytest.raises(
            ExperimentError, match=r"'analytic' rejected options \['n_vms'\]"
        ):
            session.executor()

    def test_cluster_backend_resolves_with_kwargs(self, small_workflow):
        from repro.cluster.platform import ServerlessPlatform

        backend = get_executor(
            "cluster", small_workflow, n_vms=2, autoscale=False
        )
        assert isinstance(backend, ServerlessPlatform)
        assert backend.config.n_vms == 2

    def test_session_executor_kwargs_reach_named_backend(self, small_workflow):
        session = Session(
            small_workflow,
            executor="cluster",
            executor_kwargs={"n_vms": 2, "autoscale": False},
        )
        backend = session.executor()
        assert backend.config.n_vms == 2 and backend.config.autoscale is False
        # Call-site kwargs override the session defaults.
        assert session.executor(n_vms=3).config.n_vms == 3
        # Overriding the backend per call must NOT drag the session's
        # cluster knobs onto an executor that cannot take them.
        assert isinstance(session.executor("analytic"), AnalyticExecutor)
        # A prebuilt executor still passes through untouched.
        prebuilt = AnalyticExecutor(small_workflow)
        assert session.executor(prebuilt) is prebuilt

    def test_session_serves_on_cluster_backend(
        self, small_workflow, small_profiles
    ):
        session = Session(
            small_workflow,
            slo_ms=8000.0,
            profiles=small_profiles,
            executor="cluster",
            executor_kwargs={"n_vms": 2, "vm_capacity_millicores": 20_000,
                             "autoscale": False},
        )
        result = session.run("GrandSLAM", 10)
        assert result.extras["cold_start_rate"] > 0
        assert any(
            s.cold_start_ms > 0 for o in result.outcomes for s in o.stages
        )
        report = session.compare(include=("GrandSLAM", "Janus"), requests=10)
        assert report.executor == "ServerlessPlatform"
        assert set(report.table) == {"GrandSLAM", "Janus"}


class TestPolicyRegistry:
    def test_standard_suite_registered(self):
        assert {"Optimal", "ORION", "Janus", "Janus-", "Janus+",
                "GrandSLAM", "GrandSLAM+"} <= set(POLICIES.names())

    def test_unknown_name_rejected(self, small_workflow, small_profiles):
        with pytest.raises(ExperimentError, match="unknown policy"):
            POLICIES.build("Nope", small_workflow, small_profiles)

    def test_custom_registration_flows_into_suite(
        self, small_workflow, small_profiles
    ):
        registry = PolicyRegistry()
        registry.register(
            "Fixed2k",
            lambda wf, profiles, **kw: FixedPlanPolicy(
                "Fixed2k", [2000] * wf.num_functions
            ),
        )
        suite = build_policy_suite(
            small_workflow, small_profiles,
            include=["Fixed2k"], registry=registry,
        )
        assert set(suite) == {"Fixed2k"}
        assert suite["Fixed2k"].plan == [2000, 2000, 2000]

    def test_topology_dispatch(self, diamond_workflow):
        profiles = profile_workflow(diamond_workflow, seed=SEED, samples=SAMPLES)
        policy = POLICIES.build("Janus", diamond_workflow, profiles)
        assert isinstance(policy, DagJanusPolicy)

    def test_enforce_resilience_reaches_builder(
        self, small_workflow, small_profiles, small_budget
    ):
        on = POLICIES.build(
            "Janus", small_workflow, small_profiles, budget=small_budget
        )
        off = POLICIES.build(
            "Janus", small_workflow, small_profiles, budget=small_budget,
            enforce_resilience=False,
        )
        # Dropping Eq. 6 admits cheaper plans — the tables must differ.
        assert off.hints.condensed_hint_count != on.hints.condensed_hint_count \
            or off.hints.raw_hint_count != on.hints.raw_hint_count

    def test_chain_only_policies_reject_dags(self, diamond_workflow):
        profiles = profile_workflow(diamond_workflow, seed=SEED, samples=SAMPLES)
        for name in ("Optimal", "ORION", "GrandSLAM+"):
            with pytest.raises(PolicyError, match="chain workflows only"):
                POLICIES.build(name, diamond_workflow, profiles)


class TestUnifiedSizingPolicy:
    def test_stage_indexed_policy_answers_by_node(self, small_workflow):
        policy = FixedPlanPolicy("fixed", [1000, 1500, 2000])
        policy.bind(small_workflow)
        req = generate_requests(small_workflow, WorkloadConfig(n_requests=1))[0]
        assert policy.size_for_node("F0", req, 0.0) == 1000
        assert policy.size_for_node("F2", req, 50.0) == 2000
        # The historical index-keyed shim still answers identically.
        assert policy.size_for_stage(2, req, 50.0) == 2000

    def test_unknown_node_rejected(self, small_workflow):
        policy = FixedPlanPolicy("fixed", [1000] * 3)
        policy.bind(small_workflow)
        req = generate_requests(small_workflow, WorkloadConfig(n_requests=1))[0]
        with pytest.raises(PolicyError, match="not in stage order"):
            policy.size_for_node("F9", req, 0.0)

    def test_unbound_policy_rejected(self, small_workflow):
        policy = FixedPlanPolicy("fixed", [1000] * 3)
        req = generate_requests(small_workflow, WorkloadConfig(n_requests=1))[0]
        assert policy.stage_order is None
        with pytest.raises(PolicyError, match="no stage order bound"):
            policy.size_for_node("F0", req, 0.0)

    def test_legacy_dag_policy_dispatches(self, small_workflow):
        class LegacyDag(DagSizingPolicy):
            name = "legacy"

            def size_for_function(self, function, request, elapsed_ms):
                return 1500

        req = generate_requests(small_workflow, WorkloadConfig(n_requests=1))[0]
        assert LegacyDag().size_for_node("F0", req, 0.0) == 1500
        result = AnalyticExecutor(small_workflow).run(LegacyDag(), [req])
        assert result.outcomes[0].stages[0].size == 1500

    def test_worstcase_serves_dag_branches(self, diamond_workflow):
        from repro.policies.early_binding import WorstCasePolicy

        policy = WorstCasePolicy(diamond_workflow)
        requests = generate_requests(
            diamond_workflow, WorkloadConfig(n_requests=3), seed=1
        )
        result = DagAnalyticExecutor(diamond_workflow).run(policy, requests)
        kmax = diamond_workflow.limits.kmax
        # Every node — including off-critical-path Audio — rides at Kmax.
        assert all(
            s.size == kmax for o in result.outcomes for s in o.stages
        )

    def test_bind_is_identity_cached(self, small_workflow):
        policy = FixedPlanPolicy("fixed", [1000] * 3)
        policy.bind(small_workflow)
        order = policy.stage_order
        policy.bind(small_workflow)  # same workflow: early-out, no recompute
        assert policy.stage_order is order
        other = Session(small_workflow, slo_ms=999.0).workflow
        policy.bind(other)
        assert policy.stage_order == order  # same chain, freshly derived
        assert policy._bound_workflow is other

    def test_policy_without_any_override_rejected(self, small_workflow):
        class Empty(SizingPolicy):
            name = "empty"

        req = generate_requests(small_workflow, WorkloadConfig(n_requests=1))[0]
        with pytest.raises(PolicyError, match="overrides none"):
            Empty().size_for_node("F0", req, 0.0)


class TestChainDagParity:
    """A chain is a degenerate DAG: both executors and both synthesis paths
    must produce byte-identical results on it."""

    def test_dag_executor_reproduces_analytic_results(
        self, small_workflow, small_profiles, small_budget
    ):
        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=60), seed=3
        )
        suite = build_policy_suite(
            small_workflow, small_profiles, budget=small_budget,
            include=["Optimal", "Janus", "GrandSLAM"],
        )
        for name in suite:
            analytic = AnalyticExecutor(small_workflow).run(
                build_policy_suite(
                    small_workflow, small_profiles, budget=small_budget,
                    include=[name],
                )[name],
                requests,
            )
            via_dag = DagAnalyticExecutor(small_workflow).run(
                suite[name], requests
            )
            np.testing.assert_array_equal(analytic.e2e_ms(), via_dag.e2e_ms())
            np.testing.assert_array_equal(
                analytic.allocated(), via_dag.allocated()
            )

    def test_session_evaluate_matches_manual_pipeline(self, small_workflow):
        report = Session.evaluate(
            small_workflow, samples=SAMPLES, seed=SEED,
            include=["Optimal", "Janus", "GrandSLAM"], requests=60,
        )
        # The old six-step hand-wired pipeline, reproduced exactly.
        profiles = profile_workflow(small_workflow, seed=SEED, samples=SAMPLES)
        suite = build_policy_suite(
            small_workflow, profiles, include=["Optimal", "Janus", "GrandSLAM"]
        )
        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=60), seed=SEED + 1
        )
        manual = run_policies(small_workflow, suite, requests)
        assert set(report.results) == set(manual)
        for name, expected in manual.items():
            np.testing.assert_array_equal(
                report.result_for(name).e2e_ms(), expected.e2e_ms()
            )
            np.testing.assert_array_equal(
                report.result_for(name).allocated(), expected.allocated()
            )

    def test_session_dag_backend_on_chain_matches_analytic(self, small_workflow):
        kwargs = dict(
            samples=SAMPLES, seed=SEED, requests=60,
            include=["Optimal", "Janus", "GrandSLAM"],
        )
        via_dag = Session.evaluate(small_workflow, executor="dag", **kwargs)
        via_chain = Session.evaluate(small_workflow, **kwargs)
        assert via_dag.executor == "DagAnalyticExecutor"
        assert via_chain.executor == "AnalyticExecutor"
        for name in via_chain.results:
            np.testing.assert_array_equal(
                via_dag.result_for(name).e2e_ms(),
                via_chain.result_for(name).e2e_ms(),
            )


class TestSession:
    def test_profile_memoised(self, chain_session):
        assert chain_session.profile() is chain_session.profile()

    def test_synthesize_topology_dispatch(self, chain_session, diamond_workflow):
        from repro.synthesis.dag import DagWorkflowHints
        from repro.synthesis.hints import WorkflowHints

        assert isinstance(chain_session.synthesize(), WorkflowHints)
        dag_session = Session(diamond_workflow, samples=SAMPLES, seed=SEED)
        assert isinstance(dag_session.synthesize(), DagWorkflowHints)

    def test_requests_specs(self, chain_session):
        default = chain_session.requests()
        assert len(default) == 1000
        assert len(chain_session.requests(25)) == 25
        cfg = WorkloadConfig(n_requests=10)
        assert len(chain_session.requests(cfg)) == 10
        explicit = chain_session.requests(default[:5])
        assert explicit == default[:5]

    def test_run_accepts_policy_name_or_instance(self, chain_session):
        requests = chain_session.requests(20)
        by_name = chain_session.run("GrandSLAM", requests)
        by_instance = chain_session.run(
            chain_session.policy("GrandSLAM"), requests
        )
        np.testing.assert_array_equal(by_name.e2e_ms(), by_instance.e2e_ms())

    def test_unknown_policy_rejected(self, chain_session):
        with pytest.raises(ExperimentError, match="unknown policy"):
            chain_session.run("Nope", 5)

    def test_unknown_executor_rejected(self, chain_session):
        with pytest.raises(ExperimentError, match="unknown executor"):
            chain_session.run("GrandSLAM", 5, executor="quantum")

    def test_batching_backend_keeps_policy_diagnostics(self, chain_session):
        result = chain_session.run("Janus", 30, executor="batching")
        assert "hit_rate" in result.extras  # like the other backends
        assert "mean_batch_size" in result.extras

    def test_injected_profiles_skip_campaign(self, small_workflow, small_profiles):
        session = Session(small_workflow, profiles=small_profiles)
        assert session.profile() is small_profiles

    def test_slo_override(self, small_workflow):
        session = Session(small_workflow, slo_ms=1234.0)
        assert session.slo_ms == 1234.0
        assert small_workflow.slo_ms != 1234.0  # original untouched

    def test_policy_redeploys_memoised_hints(self, small_workflow):
        session = Session(small_workflow, samples=SAMPLES, seed=SEED)
        hints = session.synthesize()
        policy = session.policy("Janus")
        assert policy.hints is hints  # inspect-then-deploy: one synthesis
        # Serving the same variant twice reuses the same tables too.
        assert session.policy("Janus").hints is hints
        # A different variant needs different tables — freshly synthesized.
        assert session.policy("Janus-").hints is not hints

    def test_synthesize_memo_keyed_by_parameters(self, small_workflow):
        session = Session(small_workflow, samples=SAMPLES, seed=SEED)
        default = session.synthesize()
        heavier = session.synthesize(weight=2.0)
        assert heavier is not default and heavier.weight == 2.0
        assert session.synthesize() is default  # keyed, not clobbered

    def test_policy_weight_override_honoured(self, small_workflow):
        session = Session(small_workflow, samples=SAMPLES, seed=SEED)
        session.synthesize()  # default-weight tables in the memo
        policy = session.policy("Janus", weight=2.0)
        assert policy.hints.weight == 2.0  # override not shadowed by memo

    def test_policy_exploration_override_rejected(self, small_workflow):
        from repro.synthesis.generator import HeadExploration

        session = Session(small_workflow, samples=SAMPLES, seed=SEED)
        with pytest.raises(ExperimentError, match="determined by the policy"):
            session.policy("Janus", exploration=HeadExploration.HEAD_PLUS_NEXT)
        # A matching mode is redundant, not a conflict — both surfaces agree.
        policy = session.policy("Janus", exploration=HeadExploration.HEAD_ONLY)
        assert policy.hints is session.synthesize()

    def test_dag_policy_redeploys_memoised_hints(self, diamond_workflow):
        session = Session(diamond_workflow, samples=SAMPLES, seed=SEED)
        hints = session.synthesize()
        assert session.policy("Janus").hints is hints

    def test_policy_concurrency_override_bypasses_memo(self, small_workflow):
        from repro.errors import ProfileError

        session = Session(small_workflow, samples=SAMPLES, seed=SEED)
        session.synthesize()  # concurrency-1 tables in the memo
        # The override must reach the builder (which rejects it because
        # concurrency 2 was never profiled), not silently serve stale tables.
        with pytest.raises(ProfileError, match="concurrency 2"):
            session.policy("Janus", concurrency=2)

    def test_profiles_resolved_lazily(self, small_workflow):
        session = Session(small_workflow, samples=SAMPLES, seed=SEED)
        session.policy("Optimal")  # the oracle never consumes profiles
        assert session._profiles is None

    def test_suite_reuses_memoised_hints(self, small_workflow):
        session = Session(small_workflow, samples=SAMPLES, seed=SEED)
        hints = session.synthesize()
        suite = session.suite(include=["Optimal", "Janus"])
        assert suite["Janus"].hints is hints


class TestSessionEvaluateDag:
    def test_same_code_path_drives_dag(self, diamond_workflow):
        report = Session.evaluate(
            diamond_workflow, samples=SAMPLES, seed=SEED, requests=40
        )
        assert report.topology == "dag"
        assert report.executor == "DagAnalyticExecutor"
        # Chain-only systems were skipped; the registry dispatched the rest.
        assert "Optimal" not in report.results
        assert {"Janus", "GrandSLAM"} <= set(report.results)
        assert report.baseline in report.results
        assert report.normalized_cpu(report.baseline) == pytest.approx(1.0)
        # Suite keys and served policy names agree on DAGs too.
        for key, res in report.results.items():
            assert res.policy_name == key

    def test_explicit_missing_baseline_rejected(self, diamond_workflow):
        with pytest.raises(ExperimentError, match="baseline"):
            Session.evaluate(
                diamond_workflow, samples=SAMPLES, seed=SEED, requests=10,
                baseline="Optimal",
            )


class TestComparisonReport:
    @pytest.fixture(scope="class")
    def report(self, small_workflow):
        return Session.evaluate(
            small_workflow, samples=SAMPLES, seed=SEED,
            include=["Optimal", "Janus", "GrandSLAM"], requests=40,
        )

    def test_baseline_normalisation(self, report):
        assert report.baseline == "Optimal"
        assert report.normalized_cpu("Optimal") == pytest.approx(1.0)
        assert report.normalized_cpu("GrandSLAM") >= 1.0

    def test_table_matches_results(self, report):
        for name, row in report.table.items():
            assert row["normalized_cpu"] == pytest.approx(
                report.normalized_cpu(name)
            )

    def test_render_mentions_every_policy(self, report):
        text = str(report)
        for name in report.policies:
            assert name in text

    def test_missing_policy_rejected(self, report):
        with pytest.raises(ExperimentError, match="no result"):
            report.result_for("Nope")

    def test_saving_vs(self, report):
        saving = report.saving_vs("Janus", "GrandSLAM")
        assert saving == pytest.approx(
            1.0
            - report.result_for("Janus").mean_allocated
            / report.result_for("GrandSLAM").mean_allocated
        )

    def test_empty_results_rejected(self):
        with pytest.raises(ExperimentError):
            ComparisonReport(
                workflow_name="x", topology="chain", slo_ms=1.0,
                executor="AnalyticExecutor", baseline="a", results={},
            )


#: Every public name the seed release exported from `repro` — the
#: unification must keep them importable.
_SEED_PUBLIC_NAMES = [
    "ReproError", "Workflow", "WorkflowDAG", "chain_dag", "parse_spec",
    "intelligent_assistant", "video_analytics", "WorkflowRequest",
    "RequestOutcome", "FunctionModel", "InvocationDynamics", "Resource",
    "LatencyProfile", "ProfileSet", "Profiler", "ProfilerConfig",
    "profile_workflow", "save_profile_set", "load_profile_set",
    "BudgetRange", "HintSynthesizer", "SynthesisConfig", "HeadExploration",
    "WorkflowHints", "CondensedHintsTable", "synthesize_hints",
    "DagWorkflowHints", "synthesize_dag_hints", "JanusAdapter",
    "AdapterService", "HitMissSupervisor", "SizingPolicy", "JanusPolicy",
    "janus", "janus_minus", "janus_plus", "OraclePolicy", "OrionPolicy",
    "DagSizingPolicy", "DagJanusPolicy", "DagGrandSLAMPolicy",
    "GrandSLAMPolicy", "GrandSLAMPlusPolicy", "AnalyticExecutor",
    "DagAnalyticExecutor", "BatchingExecutor", "RunResult",
    "build_policy_suite", "run_policies", "compare", "ServerlessPlatform",
    "MultiTenantPlatform", "TenantJob", "ClusterConfig", "InterferenceModel",
    "generate_requests", "WorkloadConfig", "ResourceLimits", "PercentileGrid",
]


class TestBackwardCompatibility:
    def test_all_seed_imports_resolve(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for name in _SEED_PUBLIC_NAMES:
                assert getattr(repro, name) is not None, name

    @pytest.mark.parametrize(
        "name,canonical",
        [
            ("DagAnalyticExecutor", "repro.runtime.dag_executor"),
            ("DagSizingPolicy", "repro.policies.dag"),
            ("DagJanusPolicy", "repro.policies.dag"),
            ("DagGrandSLAMPolicy", "repro.policies.dag"),
            ("DagWorkflowHints", "repro.synthesis.dag"),
            ("synthesize_dag_hints", "repro.synthesis.dag"),
        ],
    )
    def test_deprecated_aliases_warn_and_resolve(self, name, canonical):
        import importlib

        module = importlib.import_module(canonical)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            alias = getattr(repro, name)
        assert alias is getattr(module, name)

    def test_canonical_submodule_imports_stay_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.runtime.dag_executor import DagAnalyticExecutor  # noqa: F401
            from repro.synthesis.dag import synthesize_dag_hints  # noqa: F401

    def test_star_import_stays_warning_free(self):
        # Deprecated aliases live outside __all__, so `from repro import *`
        # must not trip warnings-as-errors configurations.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            namespace: dict = {}
            exec("from repro import *", namespace)
        assert "Session" in namespace
        assert "DagAnalyticExecutor" not in namespace

    def test_alias_access_raises_under_suite_warning_policy(self):
        # pyproject escalates the package's own DeprecationWarnings to
        # errors suite-wide: plain alias access must raise, not warn.
        with pytest.raises(DeprecationWarning, match="deprecated"):
            repro.DagJanusPolicy

    def test_deprecated_aliases_fixture_restores_warning(self, deprecated_aliases):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", DeprecationWarning)
            assert repro.DagJanusPolicy is not None
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )

    def test_registry_exploration_override_rejected(
        self, small_workflow, small_profiles
    ):
        from repro.synthesis.generator import HeadExploration

        with pytest.raises(ExperimentError, match="determined by the policy"):
            POLICIES.build(
                "Janus-", small_workflow, small_profiles,
                exploration=HeadExploration.HEAD_PLUS_NEXT,
            )
        # The matching mode is not a conflict.
        policy = POLICIES.build(
            "Janus-", small_workflow, small_profiles,
            exploration=HeadExploration.NONE,
        )
        assert policy.name == "Janus-"


class TestCliIntrospection:
    def test_new_experiments_get_request_knob_for_free(self):
        # ext-dag was missing from the old hardcoded table; introspection
        # discovers its n_requests parameter.
        import argparse

        from repro.cli import _params_for

        args = argparse.Namespace(requests=7, samples=None, seed=None)
        assert _params_for("ext-dag", args) == {"n_requests": 7}

    def test_unsupported_knob_is_dropped(self):
        import argparse

        from repro.cli import _params_for

        # fig1a's run() takes no samples parameter.
        args = argparse.Namespace(requests=None, samples=500, seed=4)
        assert _params_for("fig1a", args) == {"seed": 4}

    def test_fig1c_samples_knob_stays_unmapped(self):
        # fig1c's repetition count is samples_per_level, deliberately not
        # reachable via --samples (which means profiling-campaign size).
        import argparse

        from repro.cli import _params_for

        args = argparse.Namespace(requests=None, samples=2000, seed=None)
        assert _params_for("fig1c", args) == {}
