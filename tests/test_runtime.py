"""Runtime: analytic executor, run results, drivers."""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.policies.early_binding import FixedPlanPolicy
from repro.runtime.driver import build_policy_suite, compare, run_policies
from repro.runtime.executor import AnalyticExecutor
from repro.runtime.results import RunResult
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.workflow.request import RequestOutcome, StageRecord


@pytest.fixture(scope="module")
def requests_small(request):
    wf = request.getfixturevalue("small_workflow")
    return generate_requests(wf, WorkloadConfig(n_requests=80), seed=21)


class TestAnalyticExecutor:
    def test_outcome_bookkeeping(self, small_workflow, requests_small):
        policy = FixedPlanPolicy("fixed", [2000, 2000, 2000])
        executor = AnalyticExecutor(small_workflow)
        outcome = executor.run_request(policy, requests_small[0])
        assert len(outcome.stages) == 3
        assert outcome.allocated_millicores == 6000
        # Stages are back-to-back.
        for a, b in zip(outcome.stages, outcome.stages[1:]):
            assert b.start_ms == pytest.approx(a.end_ms)

    def test_deterministic_replay(self, small_workflow, requests_small):
        policy = FixedPlanPolicy("fixed", [1500, 1500, 1500])
        executor = AnalyticExecutor(small_workflow)
        a = executor.run(policy, requests_small)
        b = executor.run(policy, requests_small)
        np.testing.assert_array_equal(a.e2e_ms(), b.e2e_ms())

    def test_common_random_numbers_across_policies(
        self, small_workflow, requests_small
    ):
        # Same request under more cores is never slower — only meaningful
        # because both policies see identical dynamics.
        executor = AnalyticExecutor(small_workflow)
        small = executor.run(
            FixedPlanPolicy("s", [1000, 1000, 1000]), requests_small
        )
        big = executor.run(
            FixedPlanPolicy("b", [3000, 3000, 3000]), requests_small
        )
        assert np.all(big.e2e_ms() <= small.e2e_ms() + 1e-9)

    def test_off_grid_size_clamped(self, small_workflow, requests_small):
        policy = FixedPlanPolicy("odd", [1234, 1234, 1234])
        executor = AnalyticExecutor(small_workflow)
        outcome = executor.run_request(policy, requests_small[0])
        assert all(
            small_workflow.limits.contains(s.size) for s in outcome.stages
        )

    def test_off_grid_size_rejected_when_strict(
        self, small_workflow, requests_small
    ):
        policy = FixedPlanPolicy("odd", [1234, 1234, 1234])
        executor = AnalyticExecutor(small_workflow, clamp_sizes=False)
        with pytest.raises(ExperimentError):
            executor.run_request(policy, requests_small[0])

    def test_empty_stream_rejected(self, small_workflow):
        with pytest.raises(ExperimentError):
            AnalyticExecutor(small_workflow).run(
                FixedPlanPolicy("x", [1000] * 3), []
            )


class TestRunResult:
    def make(self, latencies, slo=1000.0, sizes=2000):
        outcomes = [
            RequestOutcome(
                request_id=i, arrival_ms=0.0, slo_ms=slo,
                stages=[StageRecord("F", sizes, 0.0, lat)],
            )
            for i, lat in enumerate(latencies)
        ]
        return RunResult(policy_name="p", outcomes=outcomes)

    def test_percentiles_and_violations(self):
        res = self.make([100, 200, 2000])
        assert res.violation_rate == pytest.approx(1 / 3)
        assert res.e2e_percentile(50) == 200.0

    def test_mean_allocated(self):
        res = self.make([100, 100])
        assert res.mean_allocated == 2000.0

    def test_normalized_cpu(self):
        a = self.make([100], sizes=3000)
        b = self.make([100], sizes=1500)
        assert a.normalized_cpu(b) == pytest.approx(2.0)

    def test_reduction_vs(self):
        janus_r = self.make([100], sizes=1500)
        base = self.make([100], sizes=2000)
        optimal = self.make([100], sizes=1000)
        # (2000 - 1500) / 1000 = 50%
        assert janus_r.reduction_vs(base, optimal) == pytest.approx(0.5)

    def test_summary_keys(self):
        summary = self.make([100]).summary()
        assert {"mean_allocated_millicores", "p99_e2e_ms",
                "violation_rate"} <= set(summary)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            RunResult(policy_name="p", outcomes=[])


class TestDriver:
    def test_build_full_suite(self, small_workflow, small_profiles):
        suite = build_policy_suite(small_workflow, small_profiles)
        assert {"Optimal", "ORION", "Janus", "Janus-", "Janus+",
                "GrandSLAM", "GrandSLAM+"} == set(suite)

    def test_subset(self, small_workflow, small_profiles):
        suite = build_policy_suite(
            small_workflow, small_profiles, include=["Optimal", "Janus"]
        )
        assert set(suite) == {"Optimal", "Janus"}

    def test_unknown_policy_rejected(self, small_workflow, small_profiles):
        with pytest.raises(ExperimentError):
            build_policy_suite(small_workflow, small_profiles, include=["Nope"])

    def test_infeasible_baselines_skipped(self, small_workflow, small_profiles):
        # A tight SLO may knock out early binders, but late binding and the
        # oracle always build.
        suite = build_policy_suite(
            small_workflow, small_profiles, slo_ms=5.0,
            include=["Optimal", "GrandSLAM"],
        )
        assert "Optimal" in suite and "GrandSLAM" not in suite

    def test_run_and_compare(self, small_workflow, small_profiles, requests_small):
        suite = build_policy_suite(
            small_workflow, small_profiles, include=["Optimal", "GrandSLAM"]
        )
        results = run_policies(small_workflow, suite, requests_small)
        table = compare(results)
        assert table["Optimal"]["normalized_cpu"] == pytest.approx(1.0)
        assert table["GrandSLAM"]["normalized_cpu"] >= 1.0

    def test_compare_missing_baseline(self, small_workflow, small_profiles,
                                      requests_small):
        suite = build_policy_suite(
            small_workflow, small_profiles, include=["GrandSLAM"]
        )
        results = run_policies(small_workflow, suite, requests_small)
        with pytest.raises(ExperimentError):
            compare(results, baseline="Optimal")
