"""Property-based tests of the synthesis pipeline on randomised profiles.

Hypothesis generates random (but physically valid) latency tables; the
properties pin the pipeline's core invariants end to end:

* the suffix DP equals brute force on every budget,
* raw hints always satisfy the latency and resilience constraints,
* condensing is lossless and lookups match the raw decision,
* the adapter's decision never exceeds Kmax and always answers.
"""

import itertools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapter.adapter import JanusAdapter
from repro.profiling.profiles import LatencyProfile, ProfileSet
from repro.synthesis.budget import budget_range_for_chain
from repro.synthesis.condenser import condense
from repro.synthesis.dp import ChainDP
from repro.synthesis.generator import HintSynthesizer, synthesize_hints
from repro.types import PercentileGrid, ResourceLimits

LIMITS = ResourceLimits(kmin=1000, kmax=2000, step=500)  # 3 sizes
GRID = PercentileGrid(percentiles=(1.0, 50.0, 99.0), anchor=99.0)


@st.composite
def latency_profiles(draw, name="F"):
    """A random valid profile: monotone in k (dec) and p (inc)."""
    k_opts = LIMITS.num_options
    p_opts = len(GRID)
    # Base latencies per size (descending in k by construction).
    base = draw(
        st.lists(
            st.floats(min_value=20.0, max_value=400.0),
            min_size=k_opts, max_size=k_opts,
        )
    )
    base = np.sort(np.asarray(base))[::-1] + np.arange(k_opts, 0, -1)
    # Percentile spreads (ascending in p).
    spreads = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=2.5),
            min_size=p_opts, max_size=p_opts,
        )
    )
    spreads = np.sort(np.asarray(spreads))
    table = (spreads[:, None] * base[None, :])[None, :, :]
    return LatencyProfile(
        function=name,
        percentiles=GRID,
        limits=LIMITS,
        concurrencies=(1,),
        table=table,
    )


@st.composite
def profile_chains(draw, n=3):
    profs = [draw(latency_profiles(name=f"F{i}")) for i in range(n)]
    return profs


def brute_force(profiles, budget):
    grids = [p.limits.grid() for p in profiles]
    best = None
    for combo in itertools.product(*grids):
        t = sum(
            int(np.ceil(p.latency(99, int(k)))) for p, k in zip(profiles, combo)
        )
        if t <= budget:
            total = sum(int(k) for k in combo)
            best = total if best is None else min(best, total)
    return best


class TestDPProperties:
    @given(profile_chains())
    @settings(max_examples=25, deadline=None)
    def test_dp_equals_brute_force(self, profiles):
        tmax = int(sum(p.latency(99, 1000) for p in profiles)) + 10
        dp = ChainDP(profiles, tmax)
        rng = np.random.default_rng(0)
        for budget in rng.integers(0, tmax + 1, size=8):
            expected = brute_force(profiles, int(budget))
            got = dp.min_total_cores(0, int(budget))
            if expected is None:
                assert not np.isfinite(got)
            else:
                assert got == expected

    @given(profile_chains())
    @settings(max_examples=25, deadline=None)
    def test_allocation_meets_budget(self, profiles):
        tmax = int(sum(p.latency(99, 1000) for p in profiles)) + 10
        dp = ChainDP(profiles, tmax)
        for budget in (tmax // 2, tmax):
            alloc = dp.allocation(0, budget)
            if alloc is not None:
                total = sum(
                    int(np.ceil(p.latency(99, k)))
                    for p, k in zip(profiles, alloc)
                )
                assert total <= budget


class TestGeneratorProperties:
    @given(profile_chains())
    @settings(max_examples=20, deadline=None)
    def test_raw_hints_respect_constraints(self, profiles):
        ps = ProfileSet({p.function: p for p in profiles})
        chain = [p.function for p in profiles]
        budget = budget_range_for_chain(profiles)
        synth = HintSynthesizer(ps, chain)
        dp = ChainDP(profiles, budget.tmax_ms)
        raw = synth.synthesize_suffix(0, dp, budget)
        head = profiles[0]
        idx = np.flatnonzero(raw.feasible_mask)
        step = max(1, idx.size // 20)
        for i in idx[::step]:
            t = raw.tmin_ms + int(i)
            k = int(raw.head_sizes[i])
            p = float(raw.head_percentiles[i])
            d = int(np.ceil(head.latency(p, k)))
            # Eq. 5: head + anchored downstream fit in the budget.
            rest = dp.min_total_cores(1, t - d)
            assert np.isfinite(rest)
            # Eq. 6: head timeout within downstream resilience.
            assert head.timeout(p, k) <= dp.total_resilience(1, t - d) + 1e-6

    @given(profile_chains())
    @settings(max_examples=20, deadline=None)
    def test_condense_lossless_and_adapter_total(self, profiles):
        ps = ProfileSet({p.function: p for p in profiles})
        chain = [p.function for p in profiles]
        hints = synthesize_hints(ps, chain)
        adapter = JanusAdapter(hints, slo_ms=hints.tables[0].tmax_ms)
        rng = np.random.default_rng(1)
        for _ in range(30):
            stage = int(rng.integers(0, len(chain)))
            budget = float(rng.uniform(0, hints.tables[0].tmax_ms * 1.2))
            decision = adapter.decide(stage, budget)
            # Total: the adapter always answers with a grid-valid size.
            assert LIMITS.kmin <= decision.size <= LIMITS.kmax
            assert LIMITS.contains(decision.size)
            table = hints.tables[stage]
            if table.tmin_ms <= budget <= table.tmax_ms:
                assert decision.hit

    @given(profile_chains(), st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=15, deadline=None)
    def test_weight_monotone_head_size(self, profiles, weight):
        # Higher head weight never increases the head allocation at any
        # budget (the head term dominates more).
        from repro.synthesis.generator import SynthesisConfig

        ps = ProfileSet({p.function: p for p in profiles})
        chain = [p.function for p in profiles]
        budget = budget_range_for_chain(profiles)
        dp = ChainDP(profiles, budget.tmax_ms)
        raw1 = HintSynthesizer(ps, chain).synthesize_suffix(0, dp, budget)
        raww = HintSynthesizer(
            ps, chain, SynthesisConfig(weight=weight)
        ).synthesize_suffix(0, dp, budget)
        both = raw1.feasible_mask & raww.feasible_mask
        assert np.all(raww.head_sizes[both] <= raw1.head_sizes[both] + 1e-9)


class TestCondenserProperties:
    @given(profile_chains())
    @settings(max_examples=20, deadline=None)
    def test_condensed_matches_raw_on_every_budget(self, profiles):
        ps = ProfileSet({p.function: p for p in profiles})
        chain = [p.function for p in profiles]
        budget = budget_range_for_chain(profiles)
        synth = HintSynthesizer(ps, chain)
        dp = ChainDP(profiles, budget.tmax_ms)
        raw = synth.synthesize_suffix(0, dp, budget)
        table = condense(raw, LIMITS.kmax)
        idx = np.flatnonzero(raw.feasible_mask)
        step = max(1, idx.size // 40)
        for i in idx[::step]:
            budget_ms = raw.tmin_ms + int(i)
            assert table.lookup(budget_ms).size == int(raw.head_sizes[i])
