"""Edge-path coverage: CLI failure modes, config corners, result extras."""

import numpy as np
import pytest

from repro.cli import main
from repro.errors import SynthesisError
from repro.policies.janus import janus
from repro.runtime.batching import BatchingExecutor
from repro.runtime.executor import AnalyticExecutor
from repro.synthesis.generator import SynthesisConfig, HintSynthesizer
from repro.synthesis.budget import budget_range_for_chain
from repro.synthesis.dp import ChainDP
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.workflow.catalog import Workflow
from repro.workflow.dag import WorkflowDAG
from tests.conftest import make_chain_workflow, make_function, small_limits


class TestCliFailureModes:
    def test_synthesize_missing_profile_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main([
                "synthesize", str(tmp_path / "nope.json"),
                "--out", str(tmp_path / "h.json"),
            ])

    def test_inspect_missing_hints_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["inspect", str(tmp_path / "nope.json")])

    def test_synthesize_unknown_chain_function(self, tmp_path):
        from repro.profiling.io import save_profile_set

        prof = tmp_path / "p.json"
        from tests.test_profiling import make_profile
        from repro.profiling.profiles import ProfileSet

        save_profile_set(ProfileSet({"A": make_profile("A")}), str(prof))
        from repro.errors import ProfileError

        with pytest.raises(ProfileError):
            main([
                "synthesize", str(prof), "--chain", "A,Missing",
                "--out", str(tmp_path / "h.json"),
            ])


class TestClampAboveConfig:
    def test_strict_tables_miss_above_range(self, small_profiles):
        chain = ["F0", "F1", "F2"]
        budget = budget_range_for_chain([small_profiles[f] for f in chain])
        synth = HintSynthesizer(
            small_profiles, chain, SynthesisConfig(clamp_above=False)
        )
        hints = synth.synthesize(budget)
        table = hints.tables[0]
        assert not table.lookup(table.tmax_ms + 1).hit
        # Default configuration clamps instead.
        default = HintSynthesizer(small_profiles, chain).synthesize(budget)
        assert default.tables[0].lookup(table.tmax_ms + 1).hit


class TestCriticalPathChain:
    def test_non_chain_workflow_chain_property(self):
        dag = WorkflowDAG(
            ["A", "B", "C"], [("A", "B"), ("A", "C")]
        )
        functions = {
            "A": make_function("A", serial=10, parallel=100),
            "B": make_function("B", serial=10, parallel=900),  # heavy
            "C": make_function("C", serial=10, parallel=50),
        }
        wf = Workflow(
            name="fanout", dag=dag, functions=functions,
            slo_ms=10_000.0, limits=small_limits(),
        )
        assert wf.chain == ["A", "B"]  # latency-dominant branch


class TestBatchBoundary:
    def test_arrival_exactly_at_window_close_joins(self):
        wf = make_chain_workflow(slo_ms=5000.0).with_concurrency(2)
        executor = BatchingExecutor(wf, max_batch=2, max_wait_ms=100.0)
        reqs = generate_requests(wf, WorkloadConfig(n_requests=2), seed=1)
        # Force arrivals: second exactly at the first's window close.
        reqs[0].arrival_ms = 0.0
        reqs[1].arrival_ms = 100.0
        batches = executor.form_batches(reqs)
        assert [len(b) for b in batches] == [2]

    def test_arrival_after_window_close_splits(self):
        wf = make_chain_workflow(slo_ms=5000.0).with_concurrency(2)
        executor = BatchingExecutor(wf, max_batch=2, max_wait_ms=100.0)
        reqs = generate_requests(wf, WorkloadConfig(n_requests=2), seed=1)
        reqs[0].arrival_ms = 0.0
        reqs[1].arrival_ms = 100.1
        batches = executor.form_batches(reqs)
        assert [len(b) for b in batches] == [1, 1]


class TestRunResultExtras:
    def test_janus_extras_propagate(self, small_workflow, small_profiles):
        policy = janus(small_workflow, small_profiles)
        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=30), seed=2
        )
        result = AnalyticExecutor(small_workflow).run(policy, requests)
        assert "hit_rate" in result.extras
        assert "synthesis_seconds" in result.extras
        assert 0.0 <= result.extras["hit_rate"] <= 1.0

    def test_slacks_match_outcomes(self, small_workflow, small_profiles):
        policy = janus(small_workflow, small_profiles)
        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=20), seed=3
        )
        result = AnalyticExecutor(small_workflow).run(policy, requests)
        np.testing.assert_allclose(
            result.slacks(), 1.0 - result.e2e_ms() / small_workflow.slo_ms
        )


class TestSynthesisConfigEdges:
    def test_head_only_on_two_function_chain(self, small_profiles):
        # Janus+ on a 2-chain degenerates to head-only (next is the last
        # function and must stay anchored).
        from repro.synthesis.generator import HeadExploration, synthesize_hints

        chain = ["F0", "F1"]
        j = synthesize_hints(
            small_profiles, chain, exploration=HeadExploration.HEAD_ONLY
        )
        jp = synthesize_hints(
            small_profiles, chain, exploration=HeadExploration.HEAD_PLUS_NEXT
        )
        for ta, tb in zip(j.tables, jp.tables):
            assert ta.rows() == tb.rows()

    def test_single_stage_workflow_hints(self, small_profiles):
        from repro.synthesis.generator import synthesize_hints

        hints = synthesize_hints(small_profiles, ["F1"])
        assert hints.num_stages == 1
        assert hints.compression_ratio > 0.5
