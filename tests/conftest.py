"""Shared fixtures: small, fast workflows and profile sets.

Profiling campaigns are the slowest setup step, so session-scoped fixtures
share them across test modules. Tests needing custom profiles build their
own with reduced sample counts.

Warnings policy: ``pyproject.toml`` escalates the package's own
DeprecationWarnings (the 1.1.0 top-level ``Dag*`` aliases) to errors for
the whole suite, so nothing new can lean on deprecated names. Tests that
exercise the aliases on purpose use :func:`deprecated_aliases` (or
``pytest.warns``, which locally overrides the error filter).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.functions.model import FunctionModel, Resource
from repro.functions.worksets import FixedWorkset, LogUniformWorkset
from repro.profiling.profiler import Profiler, ProfilerConfig, profile_workflow
from repro.rng import RngFactory
from repro.synthesis.budget import BudgetRange
from repro.types import PercentileGrid, ResourceLimits
from repro.workflow.catalog import Workflow, intelligent_assistant, video_analytics
from repro.workflow.chain import chain_dag


def small_limits() -> ResourceLimits:
    return ResourceLimits(kmin=1000, kmax=3000, step=500)


def tiny_percentiles() -> PercentileGrid:
    return PercentileGrid(percentiles=(1.0, 25.0, 50.0, 75.0, 99.0), anchor=99.0)


def make_function(
    name: str = "F",
    serial: float = 50.0,
    parallel: float = 250.0,
    sigma: float = 0.1,
    gamma: float = 0.0,
    **kwargs,
) -> FunctionModel:
    workset = kwargs.pop("workset", None)
    if workset is None:
        workset = (
            LogUniformWorkset(10.0, 100.0) if gamma > 0 else FixedWorkset(1.0)
        )
    return FunctionModel(
        name=name,
        serial_ms=serial,
        parallel_ms=parallel,
        sigma=sigma,
        workset=workset,
        workset_gamma=gamma,
        **kwargs,
    )


def make_chain_workflow(
    n: int = 3, slo_ms: float = 1500.0, limits: ResourceLimits | None = None
) -> Workflow:
    models = [
        make_function(f"F{i}", serial=40 + 10 * i, parallel=200 + 20 * i,
                      sigma=0.08, gamma=0.2)
        for i in range(n)
    ]
    return Workflow(
        name=f"chain{n}",
        dag=chain_dag([m.name for m in models]),
        functions={m.name: m for m in models},
        slo_ms=slo_ms,
        limits=limits or small_limits(),
    )


@pytest.fixture(scope="session")
def small_workflow() -> Workflow:
    """A 3-function chain on a coarse grid (fast to profile/synthesize)."""
    return make_chain_workflow()


@pytest.fixture(scope="session")
def small_profiles(small_workflow):
    """Profiles for the small workflow (coarse grids, 600 samples)."""
    cfg = ProfilerConfig(
        limits=small_workflow.limits,
        percentiles=tiny_percentiles(),
        concurrencies=(1,),
        samples=600,
    )
    return Profiler(cfg).profile_models(
        small_workflow.models_in_order(), RngFactory(11).fork("tests")
    )


@pytest.fixture(scope="session")
def small_budget(small_profiles) -> BudgetRange:
    from repro.synthesis.budget import budget_range_for_chain

    return budget_range_for_chain(
        [small_profiles[f] for f in ("F0", "F1", "F2")]
    )


@pytest.fixture(scope="session")
def ia_workflow() -> Workflow:
    return intelligent_assistant()


@pytest.fixture(scope="session")
def ia_profiles(ia_workflow):
    """Full-grid IA profiles at a reduced sample count (shared)."""
    return profile_workflow(ia_workflow, seed=5, samples=800)


@pytest.fixture(scope="session")
def va_workflow() -> Workflow:
    return video_analytics()


@pytest.fixture(scope="session")
def va_profiles(va_workflow):
    return profile_workflow(va_workflow, seed=5, samples=800)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def deprecated_aliases():
    """Opt one test back into the deprecated top-level aliases.

    Inside the fixture the suite-wide warnings-as-errors filter is
    suspended, so alias access warns instead of raising.
    """
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("always", DeprecationWarning)
        yield
