"""Scenario matrix, sweep runner, and the cross-process determinism claim."""

import json

import pytest

from repro.cluster.platform import ClusterConfig
from repro.errors import ClusterError, ExperimentError
from repro.scenarios import (
    SCENARIO_WORKFLOWS,
    ScenarioMatrix,
    SweepRunner,
    parse_arrival,
    parse_cluster_config,
    register_workflow,
    run_scenario,
)
from repro.scenarios.runner import merge_tenant_streams
from repro.traces.workload import ArrivalSpec, WorkloadConfig, generate_requests

#: One small, fast matrix shared by the runner tests (profiles are cached
#: per process, so repeated runs only pay the serving cost).
SMALL_MATRIX = ScenarioMatrix(
    workflows=("IA",),
    arrivals=(ArrivalSpec("constant"), ArrivalSpec("poisson", rate_per_s=8.0)),
    slo_scales=(1.0, 1.2),
    tenant_counts=(1, 2),
    policies=("Optimal", "GrandSLAM", "Janus"),
    n_requests=30,
    samples=300,
    seed=17,
)


class TestMatrix:
    def test_len_is_product_of_axes(self):
        assert len(SMALL_MATRIX) == 1 * 2 * 2 * 2

    def test_expand_covers_every_cell_once(self):
        cells = SMALL_MATRIX.expand()
        assert len(cells) == len(SMALL_MATRIX)
        assert len({c.scenario_id for c in cells}) == len(cells)

    def test_seeds_differ_per_cell_but_profile_seed_shared(self):
        cells = SMALL_MATRIX.expand()
        assert len({c.seed for c in cells}) == len(cells)
        assert len({c.profile_seed for c in cells}) == 1  # one workflow

    def test_seed_stability_under_axis_growth(self):
        # Adding an axis value must not shift existing cells' seeds.
        import dataclasses

        grown = dataclasses.replace(
            SMALL_MATRIX, slo_scales=(1.0, 1.2, 1.5)
        )
        base = {c.scenario_id: c.seed for c in SMALL_MATRIX.expand()}
        grown_seeds = {c.scenario_id: c.seed for c in grown.expand()}
        for sid, seed in base.items():
            assert grown_seeds[sid] == seed

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError, match="axis"):
            ScenarioMatrix(workflows=())

    def test_unknown_workflow_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workflows"):
            ScenarioMatrix(workflows=("NOPE",))

    def test_unknown_policy_rejected_at_construction(self):
        with pytest.raises(ExperimentError, match="unknown policies"):
            ScenarioMatrix(policies=("Janus", "Jannus"))

    def test_baseline_outside_suite_rejected_at_construction(self):
        with pytest.raises(ExperimentError, match="baseline"):
            ScenarioMatrix(policies=("Janus", "GrandSLAM"), baseline="Optimal")

    def test_bare_scenario_rejects_policy_typo(self):
        # Scenarios built without a matrix validate too, so run_scenario's
        # dead-cell handling can never mask a misspelt name.
        import dataclasses

        cell = SMALL_MATRIX.expand()[0]
        with pytest.raises(ExperimentError, match="unknown policies"):
            dataclasses.replace(cell, policies=("Jannus",))

    def test_budgets_attached_per_workflow(self):
        import dataclasses

        matrix = dataclasses.replace(
            SMALL_MATRIX, budgets={"IA": (2000, 7000)}
        )
        for cell in matrix.expand():
            assert cell.budget_ms == (2000, 7000)
        assert SMALL_MATRIX.expand()[0].budget_ms is None

    def test_invalid_budget_range_rejected(self):
        import dataclasses

        with pytest.raises(ExperimentError, match="invalid budget range"):
            dataclasses.replace(SMALL_MATRIX, budgets={"IA": (7000, 2000)})

    def test_registry_extension(self):
        from repro.workflow.catalog import intelligent_assistant

        register_workflow("IA-copy", intelligent_assistant)
        try:
            matrix = ScenarioMatrix(workflows=("IA-copy",))
            assert matrix.expand()[0].workflow == "IA-copy"
        finally:
            SCENARIO_WORKFLOWS.pop("IA-copy")

    def test_with_scale(self):
        scaled = SMALL_MATRIX.with_scale(n_requests=5, samples=100)
        assert scaled.n_requests == 5 and scaled.samples == 100
        assert scaled.seed == SMALL_MATRIX.seed


class TestParseArrival:
    @pytest.mark.parametrize(
        "token,kind,rate",
        [
            ("constant", "constant", None),
            ("poisson@8", "poisson", 8.0),
            ("burst@5", "burst", 5.0),
            ("azure@2.5", "azure", 2.5),
        ],
    )
    def test_tokens(self, token, kind, rate):
        spec = parse_arrival(token)
        assert spec.kind == kind
        if rate is not None:
            assert spec.rate_per_s == rate

    def test_constant_interval(self):
        assert parse_arrival("constant@50").interval_ms == 50.0

    def test_bad_kind(self):
        with pytest.raises(ExperimentError, match="unknown arrival kind"):
            parse_arrival("weibull@3")

    def test_bad_rate(self):
        with pytest.raises(ExperimentError, match="invalid arrival rate"):
            parse_arrival("poisson@fast")

    def test_zero_rate_rejected_at_parse_time(self):
        from repro.errors import TraceError

        # Spec construction validates shape parameters, so a bad token
        # fails before any cell (or profiling campaign) runs.
        with pytest.raises(TraceError, match="rate must be > 0"):
            parse_arrival("poisson@0")

    def test_invalid_spec_values_rejected(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError, match="interval"):
            ArrivalSpec(kind="constant", interval_ms=-5.0)
        with pytest.raises(TraceError, match="burst fraction"):
            ArrivalSpec(kind="burst", rate_per_s=5.0, burst_fraction=1.5)
        with pytest.raises(TraceError, match="sigma"):
            ArrivalSpec(kind="azure", rate_per_s=5.0, sigma=-0.1)


class TestTenantMerge:
    def test_merge_orders_by_arrival_and_renumbers(self, small_workflow):
        streams = [
            generate_requests(
                small_workflow,
                WorkloadConfig(n_requests=10, arrival_rate_per_s=20.0),
                seed=s,
            )
            for s in (1, 2)
        ]
        merged = merge_tenant_streams(streams)
        assert len(merged) == 20
        arrivals = [r.arrival_ms for r in merged]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in merged] == list(range(20))

    def test_merge_is_stable_for_tied_arrivals(self, small_workflow):
        streams = [
            generate_requests(
                small_workflow, WorkloadConfig(n_requests=3), seed=s
            )
            for s in (1, 2)
        ]
        merged = merge_tenant_streams(streams)
        # Constant back-to-back arrivals all tie at 0 ms; tenant order and
        # in-stream order must break the tie deterministically.
        assert [r.stage_dynamics for r in merged] == [
            r.stage_dynamics for r in streams[0] + streams[1]
        ]


class TestSweepRunner:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return SweepRunner(max_workers=1).run(SMALL_MATRIX)

    def test_all_cells_evaluated(self, serial_report):
        assert serial_report.num_cells == len(SMALL_MATRIX)
        assert serial_report.skipped == {}

    def test_janus_beats_grandslam_on_aggregate(self, serial_report):
        assert serial_report.mean_normalized_cpu(
            "Janus"
        ) < serial_report.mean_normalized_cpu("GrandSLAM")
        assert serial_report.attainment("Janus") >= 0.95

    def test_rerun_is_bit_identical(self, serial_report):
        again = SweepRunner(max_workers=1).run(SMALL_MATRIX)
        assert again.to_json() == serial_report.to_json()

    def test_pooled_run_bit_identical_to_serial(self, serial_report):
        # The documented bit-reproducibility claim, asserted across real
        # process boundaries: two workers, same master seed.
        pooled = SweepRunner(max_workers=2).run(SMALL_MATRIX)
        assert pooled.max_workers == 2
        assert pooled.to_json() == serial_report.to_json()

    def test_tenant_axis_changes_results(self, serial_report):
        by_id = {r.scenario_id: r for r in serial_report.results}
        single = [r for r in serial_report.results if r.tenants == 1]
        for res in single:
            twin_id = res.scenario_id.replace("tenants 1", "tenants 2")
            assert by_id[twin_id].table != res.table

    def test_json_round_trip(self, serial_report):
        payload = json.loads(serial_report.to_json())
        assert payload["num_cells"] == serial_report.num_cells
        assert len(payload["results"]) == serial_report.num_cells

    def test_csv_has_row_per_cell_policy(self, serial_report):
        lines = serial_report.to_csv().strip().splitlines()
        expected = sum(len(r.table) for r in serial_report.results)
        assert len(lines) == expected + 1  # + header
        assert lines[0].startswith("scenario_id,workflow,arrival")

    def test_render_mentions_cells_and_policies(self, serial_report):
        text = serial_report.render()
        assert f"{serial_report.num_cells} cells" in text
        assert "Janus" in text and "SLO att." in text


class TestScenarioExecution:
    def test_dag_cells_skip_chain_only_policies(self):
        matrix = ScenarioMatrix(
            workflows=("media",),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "ORION", "Janus", "GrandSLAM"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        sid = report.results[0].scenario_id
        assert set(report.skipped[sid]) == {"Optimal", "ORION"}
        assert set(report.results[0].table) == {"Janus", "GrandSLAM"}

    def test_dead_cells_skipped_not_fatal(self):
        # A cell where *no* requested policy is buildable (chain-only suite
        # on a DAG topology) must not abort the sweep: the IA cell survives
        # and the media cell lands fully in `skipped`.
        matrix = ScenarioMatrix(
            workflows=("IA", "media"),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "ORION"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        assert report.num_cells == 1
        assert report.results[0].workflow == "IA"
        [(sid, missing)] = report.skipped.items()
        assert sid.startswith("media/") and missing == ["Optimal", "ORION"]

    def test_infeasible_pinned_baseline_kills_cell_not_sweep(self):
        # Janus/GrandSLAM build fine on the DAG, but the pinned baseline
        # cannot: the cell must die (no silent renormalisation) while the
        # chain cell survives.
        matrix = ScenarioMatrix(
            workflows=("IA", "media"),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "Janus", "GrandSLAM"),
            baseline="Optimal",
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        assert [r.workflow for r in report.results] == ["IA"]
        assert report.results[0].baseline == "Optimal"
        [(sid, _)] = report.skipped.items()
        assert sid.startswith("media/")

    def test_reregistration_gets_fresh_profiles(self):
        from repro.scenarios.registry import workflow_epoch
        from repro.workflow.catalog import intelligent_assistant, video_analytics

        register_workflow("swap", intelligent_assistant)
        try:
            epoch0 = workflow_epoch("swap")
            register_workflow("swap", video_analytics)
            assert workflow_epoch("swap") == epoch0 + 1
            # The epoch feeds the profile-cache key, so the swapped factory
            # cannot be served the old factory's campaign.
            from repro.scenarios.runner import _profiles_for

            profiles = _profiles_for(
                "swap", 200, 1, workflow_epoch("swap")
            )
            assert set(profiles.functions()) == {"FE", "ICL", "ICO"}  # VA
        finally:
            SCENARIO_WORKFLOWS.pop("swap")

    def test_all_cells_dead_raises_with_context(self):
        matrix = ScenarioMatrix(
            workflows=("media",),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "ORION"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        with pytest.raises(ExperimentError, match="every cell was skipped"):
            SweepRunner(max_workers=1).run(matrix)

    def test_run_scenario_result_shape(self):
        scenario = SMALL_MATRIX.expand()[0]
        result = run_scenario(scenario)
        assert result.workflow == "IA"
        assert result.slo_ms == pytest.approx(3000.0)
        assert set(result.table) == set(scenario.policies)
        for row in result.table.values():
            assert {"normalized_cpu", "violation_rate"} <= set(row)

    def test_slo_scale_round_trips_absolute_slos(self):
        import dataclasses

        # 3130/3000 does not round-trip in floating point; the runner must
        # still evaluate at exactly 3130 ms (and feed the DP the intended
        # budget grid), or fig9-style sweeps drift by an epsilon.
        cell = dataclasses.replace(
            SMALL_MATRIX.expand()[0], slo_scale=3130.0 / 3000.0,
            n_requests=5,
        )
        result = run_scenario(cell)
        assert result.slo_ms == 3130.0

    def test_mixed_baselines_flagged_in_render(self):
        matrix = ScenarioMatrix(
            workflows=("IA", "media"),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "Janus", "GrandSLAM"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        # IA normalises by Optimal, the DAG cell falls back to the first
        # built policy — the aggregate must say so instead of silently
        # averaging incompatible ratios.
        assert len(report.baselines()) == 2
        assert "mixes per-cell baselines" in report.render()
        assert (
            ",baseline,executor,policy,"
            in report.to_csv().splitlines()[0].replace("slo_ms,", "")
        )

    def test_baseline_override(self):
        import dataclasses

        matrix = dataclasses.replace(
            SMALL_MATRIX,
            slo_scales=(1.0,),
            tenant_counts=(1,),
            arrivals=(ArrivalSpec("constant"),),
            baseline="GrandSLAM",
        )
        report = SweepRunner(max_workers=1).run(matrix)
        res = report.results[0]
        assert res.baseline == "GrandSLAM"
        assert res.metric("GrandSLAM", "normalized_cpu") == pytest.approx(1.0)


#: A matrix pairing analytic and cluster cells on one workload family.
CLUSTER_MATRIX = ScenarioMatrix(
    workflows=("IA",),
    arrivals=(ArrivalSpec("poisson", rate_per_s=4.0),),
    slo_scales=(2.0,),
    policies=("GrandSLAM", "Janus"),
    executors=(None, "cluster"),
    cluster=ClusterConfig(n_vms=2, warm_pool_size=2, autoscale=False),
    n_requests=12,
    samples=300,
    seed=23,
)


class TestExecutorAxis:
    def test_len_includes_executor_axis(self):
        assert len(CLUSTER_MATRIX) == 2

    def test_cells_share_request_seed_across_backends(self):
        analytic, cluster = CLUSTER_MATRIX.expand()
        assert analytic.executor is None and cluster.executor == "cluster"
        # The same workload replays on both backends...
        assert analytic.seed == cluster.seed
        # ...under distinct identifiers (only explicit backends get a
        # suffix, so pre-existing cell ids and derived seeds are stable).
        assert analytic.scenario_id + "/exec cluster" == cluster.scenario_id

    def test_cluster_config_reaches_only_cluster_cells(self):
        analytic, cluster = CLUSTER_MATRIX.expand()
        assert analytic.cluster is None
        assert cluster.cluster == CLUSTER_MATRIX.cluster

    def test_unknown_executor_rejected_at_construction(self):
        import dataclasses

        with pytest.raises(ExperimentError, match="unknown executor"):
            dataclasses.replace(CLUSTER_MATRIX, executors=("quantum",))

    def test_empty_executor_axis_rejected(self):
        import dataclasses

        with pytest.raises(ExperimentError, match="axis"):
            dataclasses.replace(CLUSTER_MATRIX, executors=())

    def test_cluster_config_without_cluster_executor_rejected(self):
        # A config that no cell would consume must fail loudly, not let the
        # sweep run on the analytic backend with the knobs ignored.
        import dataclasses

        with pytest.raises(ExperimentError, match="silently ignored"):
            dataclasses.replace(CLUSTER_MATRIX, executors=(None,))

    def test_bare_scenario_rejects_cluster_on_non_cluster_executor(self):
        # Analytic backends take no config kwarg — this must fail at
        # construction, not as a TypeError from a pool worker mid-sweep.
        import dataclasses

        cell = CLUSTER_MATRIX.expand()[1]
        for executor in (None, "analytic", "batching"):
            with pytest.raises(
                ExperimentError, match="cluster config requires"
            ):
                dataclasses.replace(cell, executor=executor)


class TestClusterCells:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return SweepRunner(max_workers=1).run(CLUSTER_MATRIX)

    def test_cluster_cell_serves_on_the_platform(self, serial_report):
        by_exec = {r.executor: r for r in serial_report.results}
        assert set(by_exec) == {"AnalyticExecutor", "ServerlessPlatform"}

    def test_cluster_cell_reports_platform_extras(self, serial_report):
        cluster = next(
            r for r in serial_report.results
            if r.executor == "ServerlessPlatform"
        )
        analytic = next(
            r for r in serial_report.results
            if r.executor == "AnalyticExecutor"
        )
        for policy in ("GrandSLAM", "Janus"):
            assert 0.0 < cluster.extra(policy, "cold_start_rate") <= 1.0
            assert cluster.extra(policy, "mean_cluster_allocated") > 0
            assert cluster.extra(policy, "throttled") >= 0
            assert analytic.extra(policy, "cold_start_rate") is None
        # Mean-over-cluster-cells aggregate ignores analytic cells.
        assert serial_report.mean_extra(
            "Janus", "cold_start_rate"
        ) == cluster.extra("Janus", "cold_start_rate")
        with pytest.raises(ExperimentError, match="no cell reports"):
            serial_report.mean_extra("Janus", "nonexistent_extra")

    def test_extras_exported_to_json_and_csv(self, serial_report):
        payload = json.loads(serial_report.to_json())
        cluster_rows = [
            r for r in payload["results"]
            if r["executor"] == "ServerlessPlatform"
        ]
        assert cluster_rows and all(
            "cold_start_rate" in r["extras"]["Janus"] for r in cluster_rows
        )
        lines = serial_report.to_csv().splitlines()
        header = lines[0].split(",")
        for column in ("cold_start_rate", "mean_cluster_allocated",
                       "throttled"):
            assert column in header
        idx = header.index("cold_start_rate")
        cells = {line.split(",")[idx] for line in lines[1:]}
        assert "" in cells  # analytic rows leave platform extras blank
        assert any(c not in ("", "0.0") for c in cells)  # cluster rows don't

    def test_cluster_cells_pooled_bit_identical_to_serial(self, serial_report):
        # The sweep engine's headline determinism claim must hold for DES
        # cluster cells exactly as for analytic ones, across real process
        # boundaries.
        pooled = SweepRunner(max_workers=2).run(CLUSTER_MATRIX)
        assert pooled.to_json() == serial_report.to_json()

    def test_cluster_dag_cell_serves_every_node(self):
        matrix = ScenarioMatrix(
            workflows=("media",),
            arrivals=(ArrivalSpec("constant"),),
            slo_scales=(3.0,),
            policies=("Janus",),
            executors=("cluster",),
            cluster=ClusterConfig(n_vms=2, warm_pool_size=4, autoscale=False),
            n_requests=6,
            samples=300,
            seed=5,
        )
        scenario = matrix.expand()[0]
        result = run_scenario(scenario)
        assert result.executor == "ServerlessPlatform"
        # The diamond has 4 nodes but a 3-node critical path; a platform
        # that served only workflow.chain would allocate 3 stages/request.
        from repro.scenarios.registry import scenario_workflow

        media = scenario_workflow("media")
        assert media.dag.num_nodes == 4 and len(media.chain) == 3
        mean_stages = result.metric("Janus", "mean_allocated_millicores")
        # Every stage allocates >= kmin, so 4 served nodes put the mean
        # strictly above the 3-node critical-path ceiling... conservatively:
        kmin = media.limits.kmin
        assert mean_stages >= 4 * kmin


class TestParseClusterConfig:
    def test_full_grammar(self):
        config = parse_cluster_config(
            "n_vms=2, warm_pool_size=4, autoscale=false, keepalive_ms=500"
        )
        assert config == ClusterConfig(
            n_vms=2, warm_pool_size=4, autoscale=False, keepalive_ms=500
        )

    def test_none_and_bool_tokens(self):
        config = parse_cluster_config(
            "keepalive_ms=none,colocate_same_function=true"
        )
        assert config.keepalive_ms is None
        assert config.colocate_same_function is True

    def test_empty_text_gives_defaults(self):
        assert parse_cluster_config("") == ClusterConfig()

    def test_unknown_field_rejected(self):
        with pytest.raises(ClusterError, match="unknown ClusterConfig"):
            parse_cluster_config("n_vmz=2")

    def test_missing_value_rejected(self):
        with pytest.raises(ExperimentError, match="field=value"):
            parse_cluster_config("n_vms")

    def test_invalid_value_rejected(self):
        with pytest.raises(ExperimentError, match="invalid value"):
            parse_cluster_config("n_vms=lots")

    def test_float_for_int_field_rejected_at_parse_time(self):
        # 'n_vms=4.0' parses as a float; ClusterConfig must reject it here,
        # not crash range() inside a pool worker (and 'warm_pool_size=2.5'
        # must not silently truncate).
        for knob in ("n_vms=4.0", "warm_pool_size=2.5", "min_warm=1.5"):
            with pytest.raises(ClusterError, match="must be an integer"):
                parse_cluster_config(knob)


class TestExecutorConfigCapability:
    def test_probe_matches_factories(self):
        from repro.runtime.registry import executor_accepts_option

        assert executor_accepts_option("cluster", "config") is True
        assert executor_accepts_option("analytic", "config") is False
        with pytest.raises(ExperimentError, match="unknown executor"):
            executor_accepts_option("quantum", "config")

    def test_custom_config_taking_executor_receives_cluster(self):
        # The matrix asks the registry which backends take a config instead
        # of hard-coding the name "cluster" — a custom cluster-like backend
        # must receive the ClusterConfig through expand().
        from repro.runtime.registry import _EXECUTORS, register_executor
        from repro.cluster.platform import ServerlessPlatform

        @register_executor("cluster-copy")
        def _copy(workflow, *, config=None):
            return ServerlessPlatform(workflow, config=config)

        try:
            matrix = ScenarioMatrix(
                workflows=("IA",), policies=("Janus",),
                executors=("cluster-copy",),
                cluster=ClusterConfig(n_vms=2),
                n_requests=5, samples=300,
            )
            cell = matrix.expand()[0]
            assert cell.cluster == ClusterConfig(n_vms=2)
        finally:
            _EXECUTORS.pop("cluster-copy")


class TestBackends:
    def test_registry_names(self):
        from repro.scenarios import backend_names

        assert {"serial", "pool", "workstealing"} <= set(backend_names())

    def test_unknown_backend_rejected_with_known_names(self):
        from repro.scenarios import get_backend

        with pytest.raises(ExperimentError, match="unknown sweep backend"):
            get_backend("quantum")
        with pytest.raises(ExperimentError, match="workstealing"):
            SweepRunner(backend="quantum").run(SMALL_MATRIX)

    def test_resolve_default_keeps_historical_rule(self):
        from repro.scenarios.backends import resolve_backend

        assert resolve_backend(None, max_workers=1).name == "serial"
        assert resolve_backend(None, max_workers=4).name == "pool"
        assert resolve_backend("workstealing", max_workers=4).name == (
            "workstealing"
        )

    def test_backend_instance_passes_through(self):
        from repro.scenarios import SerialBackend
        from repro.scenarios.backends import resolve_backend

        instance = SerialBackend()
        assert resolve_backend(instance, max_workers=8) is instance

    def test_custom_backend_registration(self):
        from repro.scenarios import SerialBackend, register_backend
        from repro.scenarios.backends import _BACKENDS, get_backend

        @register_backend("serial-copy")
        class _Copy(SerialBackend):
            name = "serial-copy"

        try:
            assert isinstance(get_backend("serial-copy"), _Copy)
        finally:
            _BACKENDS.pop("serial-copy")

    def test_workstealing_dispatches_expensive_first(self):
        # The dispatch order (not completion order) is descending cost,
        # ties broken by position — observable through a single-worker
        # workstealing run's completion callbacks.
        import dataclasses

        from repro.scenarios import WorkStealingBackend

        cells = dataclasses.replace(
            SMALL_MATRIX, tenant_counts=(1, 3), n_requests=4, samples=300
        ).expand()
        costs = [c.cost_estimate() for c in cells]
        seen = []
        WorkStealingBackend(max_workers=1).run(
            cells, _cost_probe, on_complete=lambda pos, out: seen.append(pos)
        )
        expected = sorted(
            range(len(cells)), key=lambda pos: (-costs[pos], pos)
        )
        assert seen == expected


def _cost_probe(scenario):
    """Top-level (picklable) no-op cell function for scheduling tests."""
    return scenario.scenario_id


class TestCostEstimate:
    def test_scales_with_requests_and_tenants(self):
        import dataclasses

        cell = SMALL_MATRIX.expand()[0]
        assert dataclasses.replace(
            cell, n_requests=2 * cell.n_requests
        ).cost_estimate() == pytest.approx(2 * cell.cost_estimate())
        assert dataclasses.replace(
            cell, tenants=3
        ).cost_estimate() == pytest.approx(3 * cell.cost_estimate())

    def test_cluster_cells_cost_more_than_analytic(self):
        analytic, cluster = CLUSTER_MATRIX.expand()
        assert cluster.cost_estimate() > 4 * analytic.cost_estimate()

    def test_dag_workflow_counts_all_nodes(self):
        # The media diamond has 4 nodes but a 3-node critical path; the
        # estimate must weigh the full served DAG.
        matrix = ScenarioMatrix(
            workflows=("media",), policies=("Janus",), n_requests=10,
        )
        ia = ScenarioMatrix(
            workflows=("IA",), policies=("Janus",), n_requests=10,
        )
        assert matrix.expand()[0].cost_estimate() > (
            ia.expand()[0].cost_estimate()
        )

    def test_matrix_total_is_sum_of_cells(self):
        total = sum(c.cost_estimate() for c in SMALL_MATRIX.expand())
        assert SMALL_MATRIX.cost_estimate() == pytest.approx(total)


class TestDeterminismAcrossBackends:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return SweepRunner(max_workers=1).run(SMALL_MATRIX)

    def test_workstealing_bit_identical_to_serial(self, serial_report):
        # The third backend joins the documented claim, across real
        # process boundaries: per-cell submission in cost order, results
        # reassembled in expansion order.
        stolen = SweepRunner(max_workers=2, backend="workstealing").run(
            SMALL_MATRIX
        )
        assert stolen.backend == "workstealing"
        assert stolen.max_workers == 2
        assert stolen.to_json() == serial_report.to_json()

    def test_explicit_pool_backend_bit_identical(self, serial_report):
        pooled = SweepRunner(max_workers=2, backend="pool").run(SMALL_MATRIX)
        assert pooled.backend == "pool"
        assert pooled.to_json() == serial_report.to_json()

    def test_explicit_serial_backend_matches_default(self, serial_report):
        explicit = SweepRunner(max_workers=4, backend="serial").run(
            SMALL_MATRIX
        )
        assert explicit.backend == "serial"
        assert explicit.max_workers == 1
        assert explicit.to_json() == serial_report.to_json()


class TestScenarioDigest:
    def test_digest_is_stable_and_field_sensitive(self):
        import dataclasses

        from repro.scenarios import scenario_digest

        cell = SMALL_MATRIX.expand()[0]
        assert scenario_digest(cell) == scenario_digest(cell)
        for change in (
            {"n_requests": cell.n_requests + 1},
            {"samples": cell.samples + 1},
            {"seed": cell.seed + 1},
            {"slo_scale": cell.slo_scale * 2},
            {"policies": cell.policies[:-1]},
        ):
            assert scenario_digest(
                dataclasses.replace(cell, **change)
            ) != scenario_digest(cell)

    def test_version_and_epoch_invalidate(self, monkeypatch):
        from repro.scenarios import scenario_digest
        from repro.workflow.catalog import intelligent_assistant

        register_workflow("digest-wf", intelligent_assistant)
        try:
            matrix = ScenarioMatrix(
                workflows=("digest-wf",), policies=("Janus",), n_requests=5
            )
            cell = matrix.expand()[0]
            base = scenario_digest(cell)
            import repro

            monkeypatch.setattr(repro, "__version__", "0.0.0-test")
            assert scenario_digest(cell) != base
            monkeypatch.undo()
            assert scenario_digest(cell) == base
            # Re-registering the factory bumps the epoch -> new digest.
            register_workflow("digest-wf", intelligent_assistant)
            assert scenario_digest(cell) != base
        finally:
            SCENARIO_WORKFLOWS.pop("digest-wf")
            from repro.scenarios.registry import _EPOCHS

            _EPOCHS.pop("digest-wf", None)


class TestCellCache:
    @pytest.fixture()
    def cached_run(self, tmp_path):
        # Cold memory memos make the cold-run counter assertions
        # deterministic regardless of which tests ran before.
        from repro.synthesis.dp import clear_dp_cache
        from repro.synthesis.generator import clear_hints_cache

        clear_dp_cache()
        clear_hints_cache()
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path).run(SMALL_MATRIX)
        return tmp_path, cold

    def test_cold_run_populates_and_counts_misses(self, cached_run):
        cache_dir, cold = cached_run
        assert cold.cell_cache == {
            "hits": 0, "misses": len(SMALL_MATRIX)
        }
        assert len(list((cache_dir / "cells").iterdir())) == len(SMALL_MATRIX)
        assert cold.synthesis_cache["dp"]["solves"] >= 1
        assert cold.synthesis_cache["hints"]["syntheses"] >= 1

    def test_warm_run_performs_zero_evaluations(self, cached_run, monkeypatch):
        # The acceptance claim: a fully warm sweep never evaluates a cell.
        import repro.scenarios.runner as runner_mod

        cache_dir, cold = cached_run

        def _forbidden(scenario):
            raise AssertionError(
                f"cell {scenario.scenario_id} was evaluated on a warm cache"
            )

        monkeypatch.setattr(runner_mod, "run_scenario", _forbidden)
        warm = SweepRunner(max_workers=1, cache_dir=cache_dir).run(SMALL_MATRIX)
        assert warm.cell_cache == {"hits": len(SMALL_MATRIX), "misses": 0}
        assert warm.to_json() == cold.to_json()

    def test_warm_run_byte_identical_on_every_backend(self, cached_run):
        cache_dir, cold = cached_run
        for backend in ("serial", "pool", "workstealing"):
            warm = SweepRunner(
                max_workers=2, backend=backend, cache_dir=cache_dir
            ).run(SMALL_MATRIX)
            assert warm.to_json() == cold.to_json()

    def test_overlapping_sweep_reuses_shared_cells(self, cached_run):
        # A grown matrix re-runs only the new cells.
        import dataclasses

        cache_dir, _ = cached_run
        grown = dataclasses.replace(SMALL_MATRIX, slo_scales=(1.0, 1.2, 1.4))
        report = SweepRunner(max_workers=1, cache_dir=cache_dir).run(grown)
        assert report.cell_cache["hits"] == len(SMALL_MATRIX)
        assert report.cell_cache["misses"] == len(grown) - len(SMALL_MATRIX)

    def test_corrupt_entry_is_a_miss_and_heals(self, cached_run):
        cache_dir, cold = cached_run
        victim = sorted((cache_dir / "cells").iterdir())[0]
        victim.write_text("{not json")
        healed = SweepRunner(max_workers=1, cache_dir=cache_dir).run(
            SMALL_MATRIX
        )
        assert healed.cell_cache == {
            "hits": len(SMALL_MATRIX) - 1, "misses": 1
        }
        assert healed.to_json() == cold.to_json()

    def test_dead_cells_are_cached_too(self, tmp_path, monkeypatch):
        # A cell with no buildable policy is cached as skipped, so warm
        # re-runs of mixed matrices still evaluate nothing.
        import repro.scenarios.runner as runner_mod

        matrix = ScenarioMatrix(
            workflows=("IA", "media"),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "ORION"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path).run(matrix)
        monkeypatch.setattr(
            runner_mod, "run_scenario",
            lambda s: (_ for _ in ()).throw(AssertionError("evaluated")),
        )
        warm = SweepRunner(max_workers=1, cache_dir=tmp_path).run(matrix)
        assert warm.skipped == cold.skipped
        assert warm.to_json() == cold.to_json()

    def test_persistent_synthesis_caches_hit_across_cold_memos(self, cached_run):
        # Drop the cells (forcing re-evaluation) and the in-memory memos:
        # the DP/hints disk layers must serve the re-run.
        import shutil

        from repro.synthesis.dp import clear_dp_cache
        from repro.synthesis.generator import clear_hints_cache

        cache_dir, cold = cached_run
        shutil.rmtree(cache_dir / "cells")
        clear_dp_cache()
        clear_hints_cache()
        rerun = SweepRunner(max_workers=1, cache_dir=cache_dir).run(
            SMALL_MATRIX
        )
        assert rerun.to_json() == cold.to_json()
        synth = rerun.synthesis_cache
        assert synth["hints"]["disk_hits"] >= 1
        assert synth["hints"]["syntheses"] == 0

    def test_no_cache_dir_reports_empty_counters(self):
        report = SweepRunner(max_workers=1).run(SMALL_MATRIX)
        assert report.cell_cache == {}


class TestProgressAndAttribution:
    def test_progress_lines_cover_every_cell(self, tmp_path):
        lines: list[str] = []
        SweepRunner(
            max_workers=1, cache_dir=tmp_path, progress=lines.append
        ).run(SMALL_MATRIX)
        assert len(lines) == len(SMALL_MATRIX)
        assert all(" s" in line for line in lines)
        lines.clear()
        SweepRunner(
            max_workers=1, cache_dir=tmp_path, progress=lines.append
        ).run(SMALL_MATRIX)
        assert len(lines) == len(SMALL_MATRIX)
        assert all("cache hit" in line for line in lines)
        assert lines[0].startswith(f"[1/{len(SMALL_MATRIX)}] IA/")

    def test_worker_error_names_the_cell_serial(self):
        register_workflow("boom", _exploding_factory)
        try:
            matrix = ScenarioMatrix(
                workflows=("boom",), policies=("Janus",), n_requests=5
            )
            with pytest.raises(
                ExperimentError,
                match=r"scenario boom/.* failed \(RuntimeError: kaboom",
            ):
                SweepRunner(max_workers=1).run(matrix)
        finally:
            SCENARIO_WORKFLOWS.pop("boom")

    def test_worker_error_names_the_cell_across_processes(self):
        # The same attribution must survive the pickle boundary of a
        # pooled backend (chained causes do not; the message carries it).
        register_workflow("boom", _exploding_factory)
        try:
            matrix = ScenarioMatrix(
                workflows=("IA", "boom"), policies=("Janus",), n_requests=5,
                samples=300,
            )
            with pytest.raises(
                ExperimentError, match="scenario boom/.* failed"
            ):
                SweepRunner(max_workers=2, backend="workstealing").run(matrix)
        finally:
            SCENARIO_WORKFLOWS.pop("boom")


def _exploding_factory():
    """Top-level so fork/spawn pool workers can resolve the registration."""
    raise RuntimeError("kaboom: flaky workflow factory")


@pytest.fixture()
def recorded_trace(tmp_path):
    """A small diurnal+Zipf trace covering both catalog chain workflows."""
    from repro.traces.trace_file import generate_workload_trace, save_trace
    from repro.traces.workload import ArrivalSpec as Spec

    path = tmp_path / "day.jsonl"
    trace = generate_workload_trace(
        ("IA", "VA"), 120,
        arrival=Spec(kind="diurnal", rate_per_s=12.0, period_s=5.0),
        zipf_s=1.0, seed=41, name="day",
    )
    save_trace(trace, path)
    return path


def _trace_matrix(path):
    return ScenarioMatrix(
        workflows=("IA",),
        arrivals=(ArrivalSpec("constant"),),
        traces=(str(path),),
        policies=("Optimal", "Janus"),
        n_requests=25,
        samples=300,
        seed=19,
    )


class TestTraceAxis:
    def test_traces_extend_the_arrivals_axis(self, recorded_trace):
        matrix = _trace_matrix(recorded_trace)
        assert len(matrix) == 2
        labels = [c.arrival.label for c in matrix.expand()]
        assert labels == ["constant@0ms", f"replay@{recorded_trace}"]

    def test_missing_trace_fails_at_construction(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot read trace file"):
            _trace_matrix(tmp_path / "nope.jsonl")

    def test_trace_without_the_workflow_fails_at_construction(
        self, tmp_path
    ):
        from repro.traces.trace_file import generate_workload_trace, save_trace

        path = tmp_path / "va-only.jsonl"
        save_trace(
            generate_workload_trace(("VA",), 30, seed=1, name="va"), path
        )
        with pytest.raises(ExperimentError, match="no records for workflows"):
            _trace_matrix(path)

    def test_zero_record_catalog_workflow_fails_at_construction(
        self, tmp_path
    ):
        # A workflow can sit in the trace's catalog with zero records
        # (extreme Zipf skew); its replay cells are just as unservable as
        # for a missing workflow, and must fail here, not mid-sweep in a
        # pool worker.
        import numpy as np

        from repro.traces.trace_file import WorkloadTrace, save_trace

        path = tmp_path / "skewed.jsonl"
        save_trace(
            WorkloadTrace(
                name="skewed",
                arrival_ms=np.array([0.0, 10.0, 20.0]),
                workflow_ids=np.array([0, 0, 0]),
                workflows=("VA", "IA"),  # IA listed, zero records
            ),
            path,
        )
        with pytest.raises(ExperimentError, match="no records for workflows"):
            _trace_matrix(path)

    def test_single_record_substream_fails_at_construction(self, tmp_path):
        # Wrap-around replay needs >= 2 records per served workflow when
        # n_requests exceeds the sub-stream; this must fail here, not as
        # a TraceError from a pool worker mid-sweep.
        import numpy as np

        from repro.traces.trace_file import WorkloadTrace, save_trace

        path = tmp_path / "thin.jsonl"
        save_trace(
            WorkloadTrace(
                name="thin",
                arrival_ms=np.array([0.0, 5.0, 10.0]),
                workflow_ids=np.array([1, 0, 1]),
                workflows=("IA", "VA"),  # IA has exactly one record
            ),
            path,
        )
        with pytest.raises(ExperimentError, match="single record"):
            _trace_matrix(path)

    def test_replay_parse_token(self):
        spec = parse_arrival("replay@/tmp/some-trace.jsonl")
        assert spec.kind == "replay"
        assert spec.trace == "/tmp/some-trace.jsonl"
        from repro.errors import TraceError

        with pytest.raises(TraceError, match="replay arrivals require"):
            parse_arrival("replay@")

    def test_diurnal_parse_token(self):
        spec = parse_arrival("diurnal@6")
        assert spec.kind == "diurnal" and spec.rate_per_s == 6.0

    def test_replay_sweep_bit_identical_across_backends(self, recorded_trace):
        # Acceptance: a recorded trace replayed through the sweep engine
        # is bit-identical on every backend, across real process
        # boundaries.
        matrix = _trace_matrix(recorded_trace)
        serial = SweepRunner(max_workers=1, backend="serial").run(matrix)
        for backend in ("pool", "workstealing"):
            other = SweepRunner(max_workers=2, backend=backend).run(matrix)
            assert other.to_json() == serial.to_json()
        # The replay cell genuinely served the trace's IA sub-stream, not
        # the synthetic arrivals.
        replay_cells = [
            r for r in serial.results if r.arrival.startswith("replay@")
        ]
        assert len(replay_cells) == 1

    def test_editing_the_trace_cold_starts_only_replay_cells(
        self, recorded_trace, tmp_path
    ):
        # Acceptance: an untouched trace is a full cache hit; editing the
        # file changes the cell-cache key of exactly the cells replaying
        # it (the constant-arrival cell stays warm). Asserted on the
        # cache keys and the regenerated arrivals, not report-JSON
        # inequality — analytic per-request latencies are
        # arrival-independent, so the aggregate metrics can coincide to
        # the last ulp and a JSON comparison would be flaky.
        from repro.scenarios import scenario_digest
        from repro.scenarios.runner import scenario_requests
        from repro.scenarios.registry import scenario_workflow
        from repro.traces.trace_file import generate_workload_trace, save_trace
        from repro.traces.workload import ArrivalSpec as Spec

        matrix = _trace_matrix(recorded_trace)
        constant_cell, replay_cell = matrix.expand()
        cold_digests = (
            scenario_digest(constant_cell), scenario_digest(replay_cell)
        )
        workflow = scenario_workflow(replay_cell.workflow)
        cold_arrivals = [
            r.arrival_ms
            for r in scenario_requests(workflow, replay_cell, 3000.0)
        ]

        cache_dir = tmp_path / "cache"
        cold = SweepRunner(max_workers=1, cache_dir=cache_dir).run(matrix)
        assert cold.cell_cache == {"hits": 0, "misses": 2}
        warm = SweepRunner(max_workers=1, cache_dir=cache_dir).run(matrix)
        assert warm.cell_cache == {"hits": 2, "misses": 0}
        assert warm.to_json() == cold.to_json()

        save_trace(
            generate_workload_trace(
                ("IA", "VA"), 120,
                arrival=Spec(kind="poisson", rate_per_s=30.0),
                seed=4242, name="edited",
            ),
            recorded_trace,
        )
        # Exactly the replay cell's cache key changes...
        assert scenario_digest(constant_cell) == cold_digests[0]
        assert scenario_digest(replay_cell) != cold_digests[1]
        # ...its regenerated workload serves the edited arrivals...
        edited_arrivals = [
            r.arrival_ms
            for r in scenario_requests(workflow, replay_cell, 3000.0)
        ]
        assert edited_arrivals != cold_arrivals
        # ...and the sweep re-evaluates it while the constant cell stays
        # warm.
        edited = SweepRunner(max_workers=1, cache_dir=cache_dir).run(matrix)
        assert edited.cell_cache == {"hits": 1, "misses": 1}

    def test_replay_cells_keep_dynamics_streams(self, recorded_trace):
        # Replay pins arrivals to the file; the per-request dynamics stay
        # on the cell's derived seed (common random numbers), so the seed
        # labels — which embed the trace *path*, not its content — are
        # stable across file edits.
        matrix = _trace_matrix(recorded_trace)
        constant, replay = matrix.expand()
        assert replay.seed != constant.seed
        again = _trace_matrix(recorded_trace).expand()[1]
        assert again.seed == replay.seed


class TestDagHintsCache:
    def test_dag_cells_hit_the_disk_layer(self, tmp_path):
        import shutil

        from repro.synthesis.dag import clear_dag_hints_cache
        from repro.synthesis.dp import clear_dp_cache
        from repro.synthesis.generator import clear_hints_cache

        matrix = ScenarioMatrix(
            workflows=("media",),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Janus",),
            n_requests=8,
            samples=300,
            seed=5,
        )
        clear_dp_cache()
        clear_hints_cache()
        clear_dag_hints_cache()
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path).run(matrix)
        assert cold.synthesis_cache["dag_hints"]["syntheses"] >= 1
        assert (tmp_path / "dag-hints").is_dir()
        # Cold memos + dropped cells: the rerun must be served from the
        # DAG-hints disk layer without re-running the suffix sweeps.
        shutil.rmtree(tmp_path / "cells")
        clear_dp_cache()
        clear_hints_cache()
        clear_dag_hints_cache()
        rerun = SweepRunner(max_workers=1, cache_dir=tmp_path).run(matrix)
        assert rerun.synthesis_cache["dag_hints"]["disk_hits"] >= 1
        assert rerun.synthesis_cache["dag_hints"]["syntheses"] == 0
        assert rerun.to_json() == cold.to_json()
        assert "dag_hints[" in rerun.render()

    def test_sweep_restores_caller_configured_dag_hints_layer(self, tmp_path):
        from repro.synthesis.dag import (
            dag_hints_cache_dir,
            set_dag_hints_cache_dir,
        )

        set_dag_hints_cache_dir(tmp_path / "my-dag-hints")
        try:
            SweepRunner(max_workers=1, cache_dir=tmp_path / "sweep").run(
                SMALL_MATRIX
            )
            assert dag_hints_cache_dir() == str(tmp_path / "my-dag-hints")
        finally:
            set_dag_hints_cache_dir(None)


class TestCalibratedCosts:
    def test_no_history_degenerates_to_static_heuristic(self, tmp_path):
        from repro.scenarios.costs import CellCostModel

        cells = SMALL_MATRIX.expand()
        model = CellCostModel(tmp_path / "costs")
        costs = model.estimate_all(cells)
        assert costs == [c.cost_estimate() for c in cells]
        assert model.stats() == {"calibrated": 0, "fallbacks": len(cells)}

    def test_recorded_walls_feed_later_estimates(self, tmp_path):
        from repro.scenarios.costs import CellCostModel

        cells = SMALL_MATRIX.expand()
        model = CellCostModel(tmp_path / "costs")
        model.record(cells[0], 2.0)
        model.record(cells[0], 4.0)
        fresh = CellCostModel(tmp_path / "costs")  # re-read from disk
        costs = fresh.estimate_all(cells[:1])
        assert costs[0] == pytest.approx(3.0)  # mean of the history
        assert fresh.stats()["calibrated"] == 1

    def test_cost_families_pool_across_seeds_and_slo_scales(self, tmp_path):
        import dataclasses

        from repro.scenarios.costs import CellCostModel

        cell = SMALL_MATRIX.expand()[0]
        twin = dataclasses.replace(
            cell, slo_scale=cell.slo_scale * 1.5, seed=cell.seed + 99
        )
        model = CellCostModel(tmp_path / "costs")
        model.record(cell, 5.0)
        assert CellCostModel(tmp_path / "costs").estimate_all(
            [twin]
        ) == [pytest.approx(5.0)]

    def test_uncovered_cells_bridge_through_scaled_static(self, tmp_path):
        import dataclasses

        from repro.scenarios.costs import CellCostModel

        cell = SMALL_MATRIX.expand()[0]
        bigger = dataclasses.replace(cell, n_requests=3 * cell.n_requests)
        model = CellCostModel(tmp_path / "costs")
        model.record(cell, 2.0)
        fresh = CellCostModel(tmp_path / "costs")
        calibrated, bridged = fresh.estimate_all([cell, bigger])
        # History serves the known family; the unknown one scales the
        # static heuristic by the observed seconds-per-unit, so the 3x
        # bigger cell costs 3x the calibrated wall.
        assert calibrated == pytest.approx(2.0)
        assert bridged == pytest.approx(6.0)

    def test_corrupt_history_is_ignored(self, tmp_path):
        from repro.scenarios.costs import CellCostModel

        cells = SMALL_MATRIX.expand()
        model = CellCostModel(tmp_path / "costs")
        model.record(cells[0], 1.0)
        victim = next((tmp_path / "costs").iterdir())
        victim.write_text("{not json")
        fresh = CellCostModel(tmp_path / "costs")
        assert fresh.estimate_all(cells[:1]) == [cells[0].cost_estimate()]

    def test_workstealing_dispatch_follows_calibrated_costs(self, tmp_path):
        # Invert the static order via recorded history: the scheduler must
        # follow the calibration, and the results must not change.
        from repro.scenarios import WorkStealingBackend
        from repro.scenarios.costs import CellCostModel

        import dataclasses

        cells = dataclasses.replace(
            SMALL_MATRIX, tenant_counts=(1, 3), n_requests=4, samples=300
        ).expand()
        model = CellCostModel(tmp_path / "costs")
        # Calibrate the two cost families (tenants=1 / tenants=3) upside
        # down relative to the static heuristic: the single-tenant family
        # measured an order of magnitude slower.
        by_tenants = {cell.tenants: cell for cell in cells}
        model.record(by_tenants[1], 10.0)
        model.record(by_tenants[3], 0.5)
        calibrated_model = CellCostModel(tmp_path / "costs")
        seen: list[int] = []
        out = WorkStealingBackend(
            max_workers=1, cost_model=calibrated_model
        ).run(cells, _cost_probe, on_complete=lambda pos, _: seen.append(pos))
        walls = calibrated_model.estimate_all(cells)
        expected = sorted(
            range(len(cells)), key=lambda pos: (-walls[pos], pos)
        )
        assert seen == expected
        assert seen != sorted(
            range(len(cells)),
            key=lambda pos: (-cells[pos].cost_estimate(), pos),
        )
        assert out == [c.scenario_id for c in cells]  # order preserved

    def test_sweep_records_walls_under_the_cache_dir(self, tmp_path):
        import json as json_mod

        matrix = ScenarioMatrix(
            workflows=("IA",), policies=("Janus",), n_requests=5,
            samples=300, seed=37,
        )
        SweepRunner(max_workers=1, cache_dir=tmp_path).run(matrix)
        files = list((tmp_path / "costs").iterdir())
        assert len(files) == 1
        doc = json_mod.loads(files[0].read_text())
        assert doc["schema"] == 1
        assert len(doc["walls"]) == 1 and doc["walls"][0] > 0
        # A warm re-run resolves cells from the cache, so no new walls.
        SweepRunner(max_workers=1, cache_dir=tmp_path).run(matrix)
        doc = json_mod.loads(files[0].read_text())
        assert len(doc["walls"]) == 1


class TestReviewHardening:
    """Regression pins for the post-review fixes."""

    def test_warm_replay_reproduces_csv_and_render_verbatim(self, tmp_path):
        # The cell store must not reorder per-policy tables: a warm
        # replay's CSV and rendered table match the cold run's exactly
        # (not just the key-sorted JSON). "Optimal" sorts before
        # "GrandSLAM" alphabetically but is evaluated first, so a
        # sort_keys store would flip the row order.
        cold = SweepRunner(max_workers=1, cache_dir=tmp_path).run(SMALL_MATRIX)
        warm = SweepRunner(max_workers=1, cache_dir=tmp_path).run(SMALL_MATRIX)
        assert warm.to_csv() == cold.to_csv()
        assert [list(r.table) for r in warm.results] == [
            list(r.table) for r in cold.results
        ]

    def test_sweep_restores_caller_configured_disk_layers(self, tmp_path):
        from repro.synthesis.dp import dp_cache_dir, set_dp_cache_dir
        from repro.synthesis.generator import (
            hints_cache_dir,
            set_hints_cache_dir,
        )

        set_dp_cache_dir(tmp_path / "my-dp")
        set_hints_cache_dir(tmp_path / "my-hints")
        try:
            # Without a cache_dir the sweep must leave the layers alone...
            SweepRunner(max_workers=1).run(SMALL_MATRIX)
            assert dp_cache_dir() == str(tmp_path / "my-dp")
            # ...and with one it must restore them afterwards.
            SweepRunner(max_workers=1, cache_dir=tmp_path / "sweep").run(
                SMALL_MATRIX
            )
            assert dp_cache_dir() == str(tmp_path / "my-dp")
            assert hints_cache_dir() == str(tmp_path / "my-hints")
        finally:
            set_dp_cache_dir(None)
            set_hints_cache_dir(None)

    def test_completed_cells_survive_a_failing_cell(self, tmp_path):
        # One broken cell must not discard the finished cells' cache
        # entries: stores happen per completion, not after the run.
        register_workflow("boom2", _exploding_factory)
        try:
            matrix = ScenarioMatrix(
                workflows=("IA", "boom2"), policies=("Janus",),
                n_requests=5, samples=300,
            )
            with pytest.raises(ExperimentError, match="scenario boom2/"):
                SweepRunner(max_workers=1, cache_dir=tmp_path).run(matrix)
        finally:
            SCENARIO_WORKFLOWS.pop("boom2")
        stored = list((tmp_path / "cells").iterdir())
        assert len(stored) == 1  # the IA cell completed before the crash

    def test_single_pending_cell_resolves_serial_by_default(self):
        # min(jobs, pending cells) drives the default rule, so a 1-cell
        # dispatch never pays a process-pool spawn for zero parallelism.
        matrix = ScenarioMatrix(
            workflows=("IA",), policies=("Janus",), n_requests=5,
            samples=300, seed=29,
        )
        report = SweepRunner(max_workers=8).run(matrix)
        assert report.backend == "serial"
        assert report.max_workers == 1

    def test_plain_init_custom_backend_resolves(self):
        # The documented register_backend idiom: a factory that declares
        # no pool knobs still resolves (options are signature-filtered).
        from repro.scenarios.backends import _BACKENDS, register_backend

        @register_backend("inline")
        class _Inline:
            name = "inline"

            def workers_for(self, n_tasks):
                return 1

            def run(self, scenarios, fn, on_complete=None,
                    initializer=None, initargs=()):
                if initializer is not None:
                    initializer(*initargs)
                out = []
                for pos, s in enumerate(scenarios):
                    out.append(fn(s))
                    if on_complete is not None:
                        on_complete(pos, out[-1])
                return out

        try:
            matrix = ScenarioMatrix(
                workflows=("IA",), policies=("Janus",), n_requests=5,
                samples=300, seed=31,
            )
            report = SweepRunner(max_workers=4, backend="inline").run(matrix)
            assert report.backend == "inline"
        finally:
            _BACKENDS.pop("inline")


class TestStreamingCells:
    """The opt-in bounded-memory sweep path (Scenario.streaming)."""

    MATRIX = ScenarioMatrix(
        workflows=("IA",),
        arrivals=(ArrivalSpec("poisson", rate_per_s=20.0),),
        slo_scales=(1.0,),
        tenant_counts=(1, 2),
        policies=("Optimal", "Janus"),
        n_requests=120,
        samples=300,
        seed=13,
        streaming=True,
    )

    def test_cell_id_and_executor_are_marked(self):
        cell = self.MATRIX.expand()[0]
        assert cell.streaming
        assert cell.scenario_id.endswith("/streaming")
        result = run_scenario(cell)
        assert result.executor.endswith("[streaming]")

    def test_digest_differs_from_exact_cell(self):
        import dataclasses

        from repro.scenarios.cache import scenario_digest

        streaming_cell = self.MATRIX.expand()[0]
        exact_cell = dataclasses.replace(streaming_cell, streaming=False)
        assert scenario_digest(streaming_cell) != scenario_digest(exact_cell)

    def test_table_matches_exact_cell_closely(self):
        import dataclasses

        streaming_cell = self.MATRIX.expand()[0]
        exact_cell = dataclasses.replace(streaming_cell, streaming=False)
        s_result = run_scenario(streaming_cell)
        e_result = run_scenario(exact_cell)
        s_table, e_table = s_result.table, e_result.table
        assert set(s_table) == set(e_table)
        for policy in s_table:
            s_row, e_row = s_table[policy], e_table[policy]
            # Means are exact aggregates: identical stream, identical math.
            assert s_row["mean_allocated_millicores"] == pytest.approx(
                e_row["mean_allocated_millicores"], rel=1e-12
            )
            assert s_row["violation_rate"] == pytest.approx(
                e_row["violation_rate"]
            )
            # Percentiles are P2 estimates; tight but not exact.
            assert s_row["p50_e2e_ms"] == pytest.approx(
                e_row["p50_e2e_ms"], rel=0.05
            )
        # Policy extras still carried, matching the exact path.
        assert "hit_rate" in s_result.extras["Janus"]
        assert s_result.extras["Janus"]["hit_rate"] == pytest.approx(
            e_result.extras["Janus"]["hit_rate"]
        )

    def test_lazy_merge_equals_eager_merge(self):
        from repro.scenarios.registry import scenario_workflow
        from repro.scenarios.runner import (
            iter_scenario_requests,
            scenario_requests,
        )

        cell = next(
            c for c in self.MATRIX.expand() if c.tenants == 2
        )
        workflow = scenario_workflow(cell.workflow)
        slo_ms = workflow.slo_ms * cell.slo_scale
        lazy = list(iter_scenario_requests(workflow, cell, slo_ms))
        eager = scenario_requests(workflow, cell, slo_ms)
        assert len(lazy) == len(eager) == 240
        for a, b in zip(lazy, eager):
            assert a.request_id == b.request_id
            assert a.arrival_ms == b.arrival_ms
            assert a.stage_dynamics == b.stage_dynamics

    def test_streaming_requires_analytic_executor(self):
        with pytest.raises(ExperimentError, match="streaming"):
            ScenarioMatrix(
                workflows=("IA",), policies=("Janus",),
                executors=("cluster",), streaming=True,
                n_requests=10, samples=300,
            )
