"""Scenario matrix, sweep runner, and the cross-process determinism claim."""

import json

import pytest

from repro.errors import ExperimentError
from repro.scenarios import (
    SCENARIO_WORKFLOWS,
    ScenarioMatrix,
    SweepRunner,
    parse_arrival,
    register_workflow,
    run_scenario,
)
from repro.scenarios.runner import merge_tenant_streams
from repro.traces.workload import ArrivalSpec, WorkloadConfig, generate_requests

#: One small, fast matrix shared by the runner tests (profiles are cached
#: per process, so repeated runs only pay the serving cost).
SMALL_MATRIX = ScenarioMatrix(
    workflows=("IA",),
    arrivals=(ArrivalSpec("constant"), ArrivalSpec("poisson", rate_per_s=8.0)),
    slo_scales=(1.0, 1.2),
    tenant_counts=(1, 2),
    policies=("Optimal", "GrandSLAM", "Janus"),
    n_requests=30,
    samples=300,
    seed=17,
)


class TestMatrix:
    def test_len_is_product_of_axes(self):
        assert len(SMALL_MATRIX) == 1 * 2 * 2 * 2

    def test_expand_covers_every_cell_once(self):
        cells = SMALL_MATRIX.expand()
        assert len(cells) == len(SMALL_MATRIX)
        assert len({c.scenario_id for c in cells}) == len(cells)

    def test_seeds_differ_per_cell_but_profile_seed_shared(self):
        cells = SMALL_MATRIX.expand()
        assert len({c.seed for c in cells}) == len(cells)
        assert len({c.profile_seed for c in cells}) == 1  # one workflow

    def test_seed_stability_under_axis_growth(self):
        # Adding an axis value must not shift existing cells' seeds.
        import dataclasses

        grown = dataclasses.replace(
            SMALL_MATRIX, slo_scales=(1.0, 1.2, 1.5)
        )
        base = {c.scenario_id: c.seed for c in SMALL_MATRIX.expand()}
        grown_seeds = {c.scenario_id: c.seed for c in grown.expand()}
        for sid, seed in base.items():
            assert grown_seeds[sid] == seed

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError, match="axis"):
            ScenarioMatrix(workflows=())

    def test_unknown_workflow_rejected(self):
        with pytest.raises(ExperimentError, match="unknown workflows"):
            ScenarioMatrix(workflows=("NOPE",))

    def test_unknown_policy_rejected_at_construction(self):
        with pytest.raises(ExperimentError, match="unknown policies"):
            ScenarioMatrix(policies=("Janus", "Jannus"))

    def test_baseline_outside_suite_rejected_at_construction(self):
        with pytest.raises(ExperimentError, match="baseline"):
            ScenarioMatrix(policies=("Janus", "GrandSLAM"), baseline="Optimal")

    def test_bare_scenario_rejects_policy_typo(self):
        # Scenarios built without a matrix validate too, so run_scenario's
        # dead-cell handling can never mask a misspelt name.
        import dataclasses

        cell = SMALL_MATRIX.expand()[0]
        with pytest.raises(ExperimentError, match="unknown policies"):
            dataclasses.replace(cell, policies=("Jannus",))

    def test_budgets_attached_per_workflow(self):
        import dataclasses

        matrix = dataclasses.replace(
            SMALL_MATRIX, budgets={"IA": (2000, 7000)}
        )
        for cell in matrix.expand():
            assert cell.budget_ms == (2000, 7000)
        assert SMALL_MATRIX.expand()[0].budget_ms is None

    def test_invalid_budget_range_rejected(self):
        import dataclasses

        with pytest.raises(ExperimentError, match="invalid budget range"):
            dataclasses.replace(SMALL_MATRIX, budgets={"IA": (7000, 2000)})

    def test_registry_extension(self):
        from repro.workflow.catalog import intelligent_assistant

        register_workflow("IA-copy", intelligent_assistant)
        try:
            matrix = ScenarioMatrix(workflows=("IA-copy",))
            assert matrix.expand()[0].workflow == "IA-copy"
        finally:
            SCENARIO_WORKFLOWS.pop("IA-copy")

    def test_with_scale(self):
        scaled = SMALL_MATRIX.with_scale(n_requests=5, samples=100)
        assert scaled.n_requests == 5 and scaled.samples == 100
        assert scaled.seed == SMALL_MATRIX.seed


class TestParseArrival:
    @pytest.mark.parametrize(
        "token,kind,rate",
        [
            ("constant", "constant", None),
            ("poisson@8", "poisson", 8.0),
            ("burst@5", "burst", 5.0),
            ("azure@2.5", "azure", 2.5),
        ],
    )
    def test_tokens(self, token, kind, rate):
        spec = parse_arrival(token)
        assert spec.kind == kind
        if rate is not None:
            assert spec.rate_per_s == rate

    def test_constant_interval(self):
        assert parse_arrival("constant@50").interval_ms == 50.0

    def test_bad_kind(self):
        with pytest.raises(ExperimentError, match="unknown arrival kind"):
            parse_arrival("weibull@3")

    def test_bad_rate(self):
        with pytest.raises(ExperimentError, match="invalid arrival rate"):
            parse_arrival("poisson@fast")

    def test_zero_rate_rejected_at_parse_time(self):
        from repro.errors import TraceError

        # Spec construction validates shape parameters, so a bad token
        # fails before any cell (or profiling campaign) runs.
        with pytest.raises(TraceError, match="rate must be > 0"):
            parse_arrival("poisson@0")

    def test_invalid_spec_values_rejected(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError, match="interval"):
            ArrivalSpec(kind="constant", interval_ms=-5.0)
        with pytest.raises(TraceError, match="burst fraction"):
            ArrivalSpec(kind="burst", rate_per_s=5.0, burst_fraction=1.5)
        with pytest.raises(TraceError, match="sigma"):
            ArrivalSpec(kind="azure", rate_per_s=5.0, sigma=-0.1)


class TestTenantMerge:
    def test_merge_orders_by_arrival_and_renumbers(self, small_workflow):
        streams = [
            generate_requests(
                small_workflow,
                WorkloadConfig(n_requests=10, arrival_rate_per_s=20.0),
                seed=s,
            )
            for s in (1, 2)
        ]
        merged = merge_tenant_streams(streams)
        assert len(merged) == 20
        arrivals = [r.arrival_ms for r in merged]
        assert arrivals == sorted(arrivals)
        assert [r.request_id for r in merged] == list(range(20))

    def test_merge_is_stable_for_tied_arrivals(self, small_workflow):
        streams = [
            generate_requests(
                small_workflow, WorkloadConfig(n_requests=3), seed=s
            )
            for s in (1, 2)
        ]
        merged = merge_tenant_streams(streams)
        # Constant back-to-back arrivals all tie at 0 ms; tenant order and
        # in-stream order must break the tie deterministically.
        assert [r.stage_dynamics for r in merged] == [
            r.stage_dynamics for r in streams[0] + streams[1]
        ]


class TestSweepRunner:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return SweepRunner(max_workers=1).run(SMALL_MATRIX)

    def test_all_cells_evaluated(self, serial_report):
        assert serial_report.num_cells == len(SMALL_MATRIX)
        assert serial_report.skipped == {}

    def test_janus_beats_grandslam_on_aggregate(self, serial_report):
        assert serial_report.mean_normalized_cpu(
            "Janus"
        ) < serial_report.mean_normalized_cpu("GrandSLAM")
        assert serial_report.attainment("Janus") >= 0.95

    def test_rerun_is_bit_identical(self, serial_report):
        again = SweepRunner(max_workers=1).run(SMALL_MATRIX)
        assert again.to_json() == serial_report.to_json()

    def test_pooled_run_bit_identical_to_serial(self, serial_report):
        # The documented bit-reproducibility claim, asserted across real
        # process boundaries: two workers, same master seed.
        pooled = SweepRunner(max_workers=2).run(SMALL_MATRIX)
        assert pooled.max_workers == 2
        assert pooled.to_json() == serial_report.to_json()

    def test_tenant_axis_changes_results(self, serial_report):
        by_id = {r.scenario_id: r for r in serial_report.results}
        single = [r for r in serial_report.results if r.tenants == 1]
        for res in single:
            twin_id = res.scenario_id.replace("tenants 1", "tenants 2")
            assert by_id[twin_id].table != res.table

    def test_json_round_trip(self, serial_report):
        payload = json.loads(serial_report.to_json())
        assert payload["num_cells"] == serial_report.num_cells
        assert len(payload["results"]) == serial_report.num_cells

    def test_csv_has_row_per_cell_policy(self, serial_report):
        lines = serial_report.to_csv().strip().splitlines()
        expected = sum(len(r.table) for r in serial_report.results)
        assert len(lines) == expected + 1  # + header
        assert lines[0].startswith("scenario_id,workflow,arrival")

    def test_render_mentions_cells_and_policies(self, serial_report):
        text = serial_report.render()
        assert f"{serial_report.num_cells} cells" in text
        assert "Janus" in text and "SLO att." in text


class TestScenarioExecution:
    def test_dag_cells_skip_chain_only_policies(self):
        matrix = ScenarioMatrix(
            workflows=("media",),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "ORION", "Janus", "GrandSLAM"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        sid = report.results[0].scenario_id
        assert set(report.skipped[sid]) == {"Optimal", "ORION"}
        assert set(report.results[0].table) == {"Janus", "GrandSLAM"}

    def test_dead_cells_skipped_not_fatal(self):
        # A cell where *no* requested policy is buildable (chain-only suite
        # on a DAG topology) must not abort the sweep: the IA cell survives
        # and the media cell lands fully in `skipped`.
        matrix = ScenarioMatrix(
            workflows=("IA", "media"),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "ORION"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        assert report.num_cells == 1
        assert report.results[0].workflow == "IA"
        [(sid, missing)] = report.skipped.items()
        assert sid.startswith("media/") and missing == ["Optimal", "ORION"]

    def test_infeasible_pinned_baseline_kills_cell_not_sweep(self):
        # Janus/GrandSLAM build fine on the DAG, but the pinned baseline
        # cannot: the cell must die (no silent renormalisation) while the
        # chain cell survives.
        matrix = ScenarioMatrix(
            workflows=("IA", "media"),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "Janus", "GrandSLAM"),
            baseline="Optimal",
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        assert [r.workflow for r in report.results] == ["IA"]
        assert report.results[0].baseline == "Optimal"
        [(sid, _)] = report.skipped.items()
        assert sid.startswith("media/")

    def test_reregistration_gets_fresh_profiles(self):
        from repro.scenarios.registry import workflow_epoch
        from repro.workflow.catalog import intelligent_assistant, video_analytics

        register_workflow("swap", intelligent_assistant)
        try:
            epoch0 = workflow_epoch("swap")
            register_workflow("swap", video_analytics)
            assert workflow_epoch("swap") == epoch0 + 1
            # The epoch feeds the profile-cache key, so the swapped factory
            # cannot be served the old factory's campaign.
            from repro.scenarios.runner import _profiles_for

            profiles = _profiles_for(
                "swap", 200, 1, workflow_epoch("swap")
            )
            assert set(profiles.functions()) == {"FE", "ICL", "ICO"}  # VA
        finally:
            SCENARIO_WORKFLOWS.pop("swap")

    def test_all_cells_dead_raises_with_context(self):
        matrix = ScenarioMatrix(
            workflows=("media",),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "ORION"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        with pytest.raises(ExperimentError, match="every cell was skipped"):
            SweepRunner(max_workers=1).run(matrix)

    def test_run_scenario_result_shape(self):
        scenario = SMALL_MATRIX.expand()[0]
        result = run_scenario(scenario)
        assert result.workflow == "IA"
        assert result.slo_ms == pytest.approx(3000.0)
        assert set(result.table) == set(scenario.policies)
        for row in result.table.values():
            assert {"normalized_cpu", "violation_rate"} <= set(row)

    def test_slo_scale_round_trips_absolute_slos(self):
        import dataclasses

        # 3130/3000 does not round-trip in floating point; the runner must
        # still evaluate at exactly 3130 ms (and feed the DP the intended
        # budget grid), or fig9-style sweeps drift by an epsilon.
        cell = dataclasses.replace(
            SMALL_MATRIX.expand()[0], slo_scale=3130.0 / 3000.0,
            n_requests=5,
        )
        result = run_scenario(cell)
        assert result.slo_ms == 3130.0

    def test_mixed_baselines_flagged_in_render(self):
        matrix = ScenarioMatrix(
            workflows=("IA", "media"),
            arrivals=(ArrivalSpec("constant"),),
            policies=("Optimal", "Janus", "GrandSLAM"),
            n_requests=20,
            samples=300,
            seed=3,
        )
        report = SweepRunner(max_workers=1).run(matrix)
        # IA normalises by Optimal, the DAG cell falls back to the first
        # built policy — the aggregate must say so instead of silently
        # averaging incompatible ratios.
        assert len(report.baselines()) == 2
        assert "mixes per-cell baselines" in report.render()
        assert ",baseline,policy," in report.to_csv().splitlines()[0].replace(
            "slo_ms,", ""
        )

    def test_baseline_override(self):
        import dataclasses

        matrix = dataclasses.replace(
            SMALL_MATRIX,
            slo_scales=(1.0,),
            tenant_counts=(1,),
            arrivals=(ArrivalSpec("constant"),),
            baseline="GrandSLAM",
        )
        report = SweepRunner(max_workers=1).run(matrix)
        res = report.results[0]
        assert res.baseline == "GrandSLAM"
        assert res.metric("GrandSLAM", "normalized_cpu") == pytest.approx(1.0)
