"""Simulation resources and monitors."""

import pytest

from repro.errors import SimulationError
from repro.sim import CapacityResource, Counter, Simulator, Store, TimeSeries


class TestCapacityResource:
    def test_immediate_grant(self):
        sim = Simulator()
        res = CapacityResource(sim, 10.0)
        ev = res.acquire(4.0)
        sim.run()
        assert ev.processed
        assert res.in_use == 4.0 and res.available == 6.0

    def test_fifo_blocking(self):
        sim = Simulator()
        res = CapacityResource(sim, 10.0)
        grants = []

        def worker(name, amount, hold_ms):
            yield res.acquire(amount)
            grants.append((name, sim.now))
            yield sim.timeout(hold_ms)
            res.release(amount)

        sim.process(worker("a", 8.0, 10.0))
        sim.process(worker("b", 5.0, 10.0))  # must wait for a's release
        sim.run()
        assert grants == [("a", 0.0), ("b", 10.0)]

    def test_head_of_line_blocking(self):
        # A small request behind a large one must wait (kubelet-style FIFO):
        # occupy 5 first, then queue big (9) then small (1).
        sim2 = Simulator()
        res2 = CapacityResource(sim2, 10.0)
        order2 = []

        def w2(name, amount):
            yield res2.acquire(amount)
            order2.append((name, sim2.now))

        def holder():
            yield res2.acquire(5.0)
            yield sim2.timeout(5.0)
            res2.release(5.0)

        sim2.process(holder())
        sim2.process(w2("big", 9.0))
        sim2.process(w2("small", 1.0))
        sim2.run()
        assert order2[0][0] == "big"  # small never jumps the queue

    def test_over_capacity_request_rejected(self):
        sim = Simulator()
        res = CapacityResource(sim, 10.0)
        with pytest.raises(SimulationError):
            res.acquire(11.0)

    def test_invalid_amounts_rejected(self):
        sim = Simulator()
        res = CapacityResource(sim, 10.0)
        with pytest.raises(SimulationError):
            res.acquire(0)
        with pytest.raises(SimulationError):
            res.release(0)

    def test_release_more_than_in_use_rejected(self):
        sim = Simulator()
        res = CapacityResource(sim, 10.0)
        res.acquire(3.0)
        sim.run()
        with pytest.raises(SimulationError):
            res.release(5.0)

    def test_queue_length(self):
        sim = Simulator()
        res = CapacityResource(sim, 2.0)
        res.acquire(2.0)
        res.acquire(1.0)
        assert res.queue_length == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            CapacityResource(Simulator(), 0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        ev = store.get()
        sim.run()
        assert ev.value == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(7.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 7.0)]

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        a, b = store.get(), store.get()
        sim.run()
        assert (a.value, b.value) == (1, 2)

    def test_try_get(self):
        store = Store(Simulator())
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert len(store) == 0


class TestTimeSeries:
    def test_integral_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 2.0)
        ts.record(10.0, 4.0)
        # 2.0 for 10 units, then 4.0 until t=20
        assert ts.integral(until=20.0) == pytest.approx(2 * 10 + 4 * 10)

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)
        ts.record(10.0, 10.0)
        assert ts.time_weighted_mean(until=20.0) == pytest.approx(5.0)

    def test_empty_series(self):
        ts = TimeSeries()
        assert ts.integral() == 0.0
        assert ts.time_weighted_mean() == 0.0

    def test_non_monotonic_rejected(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(SimulationError):
            ts.record(4.0, 1.0)

    def test_until_before_first_sample(self):
        ts = TimeSeries()
        ts.record(10.0, 3.0)
        assert ts.integral(until=5.0) == 0.0

    def test_arrays(self):
        ts = TimeSeries()
        ts.record(1.0, 2.0)
        assert list(ts.times()) == [1.0]
        assert list(ts.values()) == [2.0]
        assert len(ts) == 1


class TestCounter:
    def test_increment_and_rate(self):
        c = Counter("events")
        c.increment()
        c.increment(4)
        assert c.count == 5
        assert c.rate(10.0) == pytest.approx(0.5)

    def test_rate_zero_elapsed(self):
        assert Counter("x").rate(0.0) == 0.0

    def test_non_positive_increment_rejected(self):
        with pytest.raises(SimulationError):
            Counter("x").increment(0)
