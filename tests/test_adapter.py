"""Provider-side adapter: decisions, supervision, service registry."""

import numpy as np
import pytest

from repro.adapter.adapter import JanusAdapter
from repro.adapter.service import AdapterService
from repro.adapter.supervisor import HitMissSupervisor
from repro.errors import AdapterError
from repro.synthesis.hints import CondensedHintsTable, WorkflowHints


def make_hints(n_stages=3, tmin=500, tmax=3000):
    tables = []
    for i in range(n_stages):
        # Coarse synthetic tables: generous budgets -> small sizes.
        starts = np.array([tmin, tmin + 500, tmin + 1500])
        ends = np.array([tmin + 499, tmin + 1499, tmax])
        sizes = np.array([3000, 2000, 1000])
        tables.append(
            CondensedHintsTable(i, f"F{i}", starts, ends, sizes, kmax=3000)
        )
    return WorkflowHints(
        workflow_name="w", concurrency=1, weight=1.0, tables=tables,
        raw_hint_count=100, condensed_hint_count=9,
    )


class TestSupervisor:
    def test_counts_and_rates(self):
        sup = HitMissSupervisor(min_samples=5)
        for hit in (True, True, False, True):
            sup.record(hit)
        assert sup.hits == 3 and sup.misses == 1
        assert sup.miss_rate == pytest.approx(0.25)
        assert sup.hit_rate == pytest.approx(0.75)

    def test_no_lookups_yet(self):
        sup = HitMissSupervisor()
        assert sup.miss_rate == 0.0 and sup.hit_rate == 0.0

    def test_trigger_requires_min_samples(self):
        sup = HitMissSupervisor(miss_threshold=0.1, min_samples=10)
        fired = []
        sup.on_regenerate(lambda s: fired.append(s.miss_rate))
        for _ in range(5):
            sup.record(False)
        assert not fired  # below min_samples despite 100% misses
        for _ in range(5):
            sup.record(False)
        assert len(fired) == 1

    def test_trigger_fires_once_until_reset(self):
        sup = HitMissSupervisor(miss_threshold=0.01, min_samples=2)
        fired = []
        sup.on_regenerate(lambda s: fired.append(1))
        for _ in range(10):
            sup.record(False)
        assert len(fired) == 1
        sup.reset()
        assert sup.total == 0
        for _ in range(10):
            sup.record(False)
        assert len(fired) == 2

    def test_threshold_validation(self):
        with pytest.raises(AdapterError):
            HitMissSupervisor(miss_threshold=0.0)
        with pytest.raises(AdapterError):
            HitMissSupervisor(min_samples=0)

    def test_snapshot(self):
        sup = HitMissSupervisor()
        sup.record(True)
        snap = sup.snapshot()
        assert snap == {"hits": 1, "misses": 0, "miss_rate": 0.0}


class TestWindowedSupervisor:
    def test_window_validation(self):
        with pytest.raises(AdapterError):
            HitMissSupervisor(window=0)
        with pytest.raises(AdapterError, match="cannot exceed"):
            HitMissSupervisor(min_samples=50, window=10)

    def test_misses_roll_off_the_window(self):
        sup = HitMissSupervisor(min_samples=1, window=4)
        for _ in range(4):
            sup.record(False)
        assert sup.miss_rate == 1.0
        for _ in range(4):
            sup.record(True)
        # All misses have left the window; all-time accounting remembers.
        assert sup.miss_rate == 0.0
        assert sup.cumulative_miss_rate == pytest.approx(0.5)
        assert sup.window_total == 4 and sup.total == 8

    def test_boundary_exact_eviction(self):
        # The rate at the window boundary counts exactly the last N
        # outcomes: N-1 hits then 1 miss then N-1 hits -> one miss inside.
        sup = HitMissSupervisor(min_samples=1, window=8)
        for _ in range(7):
            sup.record(True)
        sup.record(False)
        assert sup.miss_rate == pytest.approx(1 / 8)
        for _ in range(7):
            sup.record(True)
        assert sup.miss_rate == pytest.approx(1 / 8)  # miss now oldest
        sup.record(True)
        assert sup.miss_rate == 0.0  # miss evicted

    def test_windowed_trigger_reacts_to_recent_drift(self):
        # A long healthy history must not dilute the trigger: cumulative
        # rate stays under threshold while the windowed rate fires.
        sup = HitMissSupervisor(
            miss_threshold=0.1, min_samples=10, window=20
        )
        fired = []
        sup.on_regenerate(lambda s: fired.append(s.miss_rate))
        for _ in range(1000):
            sup.record(True)
        for _ in range(5):
            sup.record(False)
        assert fired and fired[0] > 0.1
        assert sup.cumulative_miss_rate < 0.01

    def test_reset_clears_the_window(self):
        sup = HitMissSupervisor(min_samples=1, window=4)
        for _ in range(4):
            sup.record(False)
        sup.reset()
        assert sup.window_total == 0 and sup.miss_rate == 0.0
        sup.record(True)
        assert sup.miss_rate == 0.0

    def test_snapshot_gains_window_keys(self):
        sup = HitMissSupervisor(min_samples=1, window=4)
        sup.record(False)
        snap = sup.snapshot()
        assert snap["window"] == 4.0 and snap["window_total"] == 1.0
        assert snap["miss_rate"] == 1.0
        assert snap["cumulative_miss_rate"] == 1.0


class TestJanusAdapter:
    def test_initial_decision_uses_full_slo(self):
        adapter = JanusAdapter(make_hints(), slo_ms=3000.0)
        d = adapter.initial_decision()
        assert d.stage_index == 0 and d.budget_ms == 3000.0
        assert d.hit and d.size == 1000  # generous budget -> smallest size

    def test_budget_derivation(self):
        adapter = JanusAdapter(make_hints(), slo_ms=3000.0)
        d = adapter.on_stage_complete(0, elapsed_ms=2400.0)
        assert d.stage_index == 1
        assert d.budget_ms == pytest.approx(600.0)

    def test_workflow_completion_returns_none(self):
        adapter = JanusAdapter(make_hints(n_stages=2), slo_ms=3000.0)
        assert adapter.on_stage_complete(1, 100.0) is None

    def test_miss_scales_to_kmax(self):
        adapter = JanusAdapter(make_hints(tmin=1000), slo_ms=3000.0)
        d = adapter.decide(0, 200.0)  # below table coverage
        assert not d.hit and d.size == 3000
        assert adapter.supervisor.misses == 1

    def test_negative_elapsed_rejected(self):
        adapter = JanusAdapter(make_hints(), slo_ms=3000.0)
        with pytest.raises(AdapterError):
            adapter.on_stage_complete(0, -5.0)

    def test_decision_latencies_recorded(self):
        adapter = JanusAdapter(make_hints(), slo_ms=3000.0)
        for _ in range(20):
            adapter.initial_decision()
        lats = adapter.decision_latencies_ms()
        assert len(lats) == 20
        # Paper §V-H: decisions stay well under 3 ms.
        assert max(lats) < 3.0

    def test_replace_hints_resets_supervisor(self):
        adapter = JanusAdapter(make_hints(), slo_ms=3000.0)
        adapter.decide(0, 100.0)  # miss
        assert adapter.supervisor.misses == 1
        adapter.replace_hints(make_hints())
        assert adapter.supervisor.total == 0

    def test_replace_hints_stage_mismatch_rejected(self):
        adapter = JanusAdapter(make_hints(n_stages=3), slo_ms=3000.0)
        with pytest.raises(AdapterError):
            adapter.replace_hints(make_hints(n_stages=2))

    def test_invalid_slo_rejected(self):
        with pytest.raises(AdapterError):
            JanusAdapter(make_hints(), slo_ms=0.0)


class TestAdapterService:
    def test_register_and_decide(self):
        svc = AdapterService()
        svc.register("t1", "wf", make_hints(), slo_ms=3000.0)
        d = svc.decide("t1", "wf", 0, 2500.0)
        assert d.hit

    def test_tenant_isolation(self):
        svc = AdapterService()
        svc.register("t1", "wf", make_hints(), slo_ms=3000.0)
        svc.register("t2", "wf", make_hints(), slo_ms=3000.0)
        svc.decide("t1", "wf", 0, 100.0)  # miss for t1 only
        stats = svc.stats()
        assert stats[("t1", "wf")]["misses"] == 1
        assert stats[("t2", "wf")]["misses"] == 0

    def test_unknown_workflow_rejected(self):
        svc = AdapterService()
        with pytest.raises(AdapterError):
            svc.decide("t", "missing", 0, 100.0)
        with pytest.raises(AdapterError):
            svc.unregister("t", "missing")

    def test_reregister_swaps_hints(self):
        svc = AdapterService()
        a1 = svc.register("t", "wf", make_hints(), slo_ms=3000.0)
        a2 = svc.register("t", "wf", make_hints(), slo_ms=3000.0)
        assert a1 is a2  # same adapter, refreshed tables

    def test_regeneration_queue(self):
        svc = AdapterService(miss_threshold=0.01, min_samples=3)
        svc.register("t", "wf", make_hints(), slo_ms=3000.0)
        for _ in range(5):
            svc.decide("t", "wf", 0, 10.0)  # all misses
        pending = svc.pending_regenerations()
        assert pending == [("t", "wf")]
        assert svc.pending_regenerations() == []  # drained

    def test_workflows_listing(self):
        svc = AdapterService()
        svc.register("t", "a", make_hints(), 1000.0)
        svc.register("t", "b", make_hints(), 1000.0)
        assert set(svc.workflows()) == {("t", "a"), ("t", "b")}
        svc.unregister("t", "a")
        assert svc.workflows() == [("t", "b")]


class TestSupervisorEdges:
    """ROADMAP-named thin spot: the supervisor's boundary behaviour."""

    def test_rate_exactly_at_threshold_does_not_trigger(self):
        # should_regenerate uses a strict comparison: 1 miss in 10 at a
        # 10% threshold is "within tolerance", not a regeneration.
        sup = HitMissSupervisor(miss_threshold=0.1, min_samples=10)
        for hit in [False] + [True] * 9:
            sup.record(hit)
        assert sup.miss_rate == pytest.approx(0.1)
        assert not sup.should_regenerate
        sup.record(False)  # 2/11 > 10% -> now over
        assert sup.should_regenerate

    def test_threshold_of_one_is_valid_but_unreachable(self):
        sup = HitMissSupervisor(miss_threshold=1.0, min_samples=1)
        for _ in range(50):
            sup.record(False)
        assert sup.miss_rate == 1.0
        assert not sup.should_regenerate  # rate can never exceed 1.0

    def test_multiple_callbacks_fire_in_registration_order(self):
        sup = HitMissSupervisor(miss_threshold=0.01, min_samples=2)
        fired: list[str] = []
        sup.on_regenerate(lambda s: fired.append("first"))
        sup.on_regenerate(lambda s: fired.append("second"))
        sup.record(False)
        sup.record(False)
        assert fired == ["first", "second"]

    def test_callback_registered_after_trigger_waits_for_reset(self):
        sup = HitMissSupervisor(miss_threshold=0.01, min_samples=2)
        sup.record(False)
        sup.record(False)
        late: list[int] = []
        sup.on_regenerate(lambda s: late.append(1))
        sup.record(False)  # already notified this cycle
        assert late == []
        sup.reset()
        sup.record(False)
        sup.record(False)
        assert late == [1]

    def test_hit_dominated_stream_never_triggers(self):
        sup = HitMissSupervisor(miss_threshold=0.05, min_samples=10)
        fired: list[int] = []
        sup.on_regenerate(lambda s: fired.append(1))
        for i in range(1000):
            sup.record((i + 1) % 100 != 0)  # 1% misses, under the threshold
        assert not fired and not sup.should_regenerate

    def test_snapshot_tracks_miss_rate(self):
        sup = HitMissSupervisor()
        for hit in (True, False, False, True):
            sup.record(hit)
        assert sup.snapshot() == {
            "hits": 2, "misses": 2, "miss_rate": pytest.approx(0.5)
        }

    def test_min_samples_of_one_triggers_immediately(self):
        sup = HitMissSupervisor(miss_threshold=0.5, min_samples=1)
        fired: list[int] = []
        sup.on_regenerate(lambda s: fired.append(1))
        sup.record(False)
        assert fired == [1]


class TestServiceSupervision:
    def test_stats_reflect_per_workflow_counters(self):
        service = AdapterService(miss_threshold=0.5, min_samples=5)
        hints = make_hints()
        service.register("acme", "IA", hints, slo_ms=3000)
        service.register("globex", "IA", hints, slo_ms=3000)
        service.decide("acme", "IA", 0, budget_ms=3000)
        stats = service.stats()
        assert set(stats) == {("acme", "IA"), ("globex", "IA")}
        assert stats[("acme", "IA")]["hits"] + stats[("acme", "IA")][
            "misses"
        ] == 1
        assert stats[("globex", "IA")] == {
            "hits": 0, "misses": 0, "miss_rate": 0.0
        }

    def test_unregister_then_decide_rejected(self):
        service = AdapterService()
        service.register("acme", "IA", make_hints(), slo_ms=3000)
        service.unregister("acme", "IA")
        with pytest.raises(AdapterError, match="unknown workflow"):
            service.decide("acme", "IA", 0, budget_ms=3000)
        with pytest.raises(AdapterError, match="unknown workflow"):
            service.unregister("acme", "IA")
