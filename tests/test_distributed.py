"""Distributed sweep fabric: wire framing, host parsing, the coordinator
backend (in-thread and real subprocess workers), worker-side cache modes,
loss re-dispatch, 4-way bit-identity, and resume-after-kill."""

from __future__ import annotations

import json
import os
import pickle
import queue as queue_mod
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

import distfab_helpers as helpers
from repro.cli import main
from repro.errors import ExperimentError
from repro.scenarios import (
    DistributedBackend,
    HostSpec,
    ScenarioMatrix,
    SweepRunner,
    WorkStealingBackend,
    get_backend,
    parse_hosts,
    scenario_digest,
)
from repro.scenarios.cache import CellCache
from repro.scenarios.matrix import parse_fault
from repro.scenarios.runner import evaluate_cell
from repro.scenarios.wire import (
    AUTH_ENV,
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    auth_digest,
    connect_with_retry,
    recv_msg,
    send_msg,
)
from repro.scenarios.worker import serve
from repro.traces.workload import ArrivalSpec

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(TESTS_DIR), "src")

#: PYTHONPATH subprocess worker agents need: the repro package plus this
#: directory, so pickled references to ``distfab_helpers`` resolve.
WORKER_PYTHONPATH = os.pathsep.join((SRC_DIR, TESTS_DIR))


# ---------------------------------------------------------------------------
# wire framing


class TestWire:
    def _pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_roundtrip_preserves_objects(self):
        a, b = self._pair()
        try:
            for obj in (
                ("task", 3, {"nested": [1.5, None]}),
                ("blob", b"x" * 100_000),
                ("hello", WIRE_VERSION, "local", 1234),
            ):
                send_msg(a, obj)
                assert recv_msg(b) == obj
        finally:
            a.close()
            b.close()

    def test_eof_between_frames_returns_none(self):
        a, b = self._pair()
        send_msg(a, ("one",))
        a.close()
        assert recv_msg(b) == ("one",)
        assert recv_msg(b) is None
        b.close()

    def test_torn_header_raises(self):
        a, b = self._pair()
        a.sendall(b"\x00\x00")  # half a length prefix
        a.close()
        with pytest.raises(ConnectionError, match="mid-frame"):
            recv_msg(b)
        b.close()

    def test_header_without_payload_raises(self):
        a, b = self._pair()
        a.sendall(struct.pack(">I", 10))
        a.close()
        with pytest.raises(ConnectionError, match="between header and payload"):
            recv_msg(b)
        b.close()

    def test_oversized_frame_rejected(self):
        a, b = self._pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ExperimentError, match="exceeds"):
            recv_msg(b)
        a.close()
        b.close()

    def test_connect_with_retry_gives_up(self):
        # Grab a free port, release it, and connect to the now-dead
        # address with a tiny window: refusals exhaust the deadline.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        start = time.monotonic()
        with pytest.raises(OSError):
            connect_with_retry("127.0.0.1", port, timeout=0.3, interval=0.05)
        assert time.monotonic() - start < 5.0


# ---------------------------------------------------------------------------
# host specs


class TestParseHosts:
    def test_string_and_sequence_forms(self):
        assert parse_hosts("local:2") == (
            HostSpec(label="local", host="local", nproc=2),
        )
        assert parse_hosts(["alpha", "beta:3"]) == (
            HostSpec(label="alpha", host="alpha", nproc=1),
            HostSpec(label="beta", host="beta", nproc=3),
        )

    def test_duplicate_hosts_get_distinct_labels(self):
        labels = [s.label for s in parse_hosts("big:2,small,big,big:4")]
        assert labels == ["big", "small", "big#2", "big#3"]

    def test_local_aliases(self):
        for name in ("local", "localhost", "127.0.0.1"):
            (spec,) = parse_hosts(name)
            assert spec.is_local
        (remote,) = parse_hosts("rack-7:8")
        assert not remote.is_local

    @pytest.mark.parametrize(
        "bad", ["", "  , ", ":2", "host:x", "host:0", "host:-1"]
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ExperimentError):
            parse_hosts(bad)


# ---------------------------------------------------------------------------
# backend unit surface (no sockets)


class TestBackendUnit:
    def test_workers_for_sums_host_slots(self):
        backend = DistributedBackend(hosts="local:2,rack:3")
        assert backend.workers_for(1) == 1
        assert backend.workers_for(4) == 4
        assert backend.workers_for(100) == 5
        assert backend.workers_for(0) == 1

    def test_registered_and_constructible_through_registry(self):
        backend = get_backend(
            "distributed", hosts="local:2", max_workers=7, mp_context=object()
        )
        assert backend.name == "distributed"
        assert backend.workers_for(99) == 2  # hosts, not max_workers, cap it

    def test_launch_argv_local_vs_ssh(self):
        backend = DistributedBackend(
            hosts="local:2,rack-7:4", advertise="coord.example"
        )
        local, rack = backend.specs
        local_argv = backend.launch_argv(local, 9999)
        assert local_argv[0] == sys.executable
        assert local_argv[1:3] == ["-m", "repro.scenarios.worker"]
        assert "127.0.0.1:9999" in local_argv
        assert ["--nproc", "2"] == local_argv[
            local_argv.index("--nproc"):local_argv.index("--nproc") + 2
        ]
        rack_argv = backend.launch_argv(rack, 9999)
        assert rack_argv[:2] == ["ssh", "rack-7"]
        assert "python3" in rack_argv
        assert "coord.example:9999" in rack_argv
        assert "--label" in rack_argv and "rack-7" in rack_argv

    def test_bad_cache_mode_rejected(self):
        with pytest.raises(ExperimentError, match="cache mode"):
            DistributedBackend(hosts="local", cache_mode="nfs")

    def test_cache_mode_without_dir_rejected_at_run(self):
        backend = DistributedBackend(hosts="local", cache_mode="protocol")
        with pytest.raises(ExperimentError, match="needs a cache dir"):
            backend.run([1], helpers.double)

    def test_empty_run_is_a_no_op(self):
        backend = DistributedBackend(hosts="local:2")
        assert backend.run([], helpers.double) == []
        assert backend.stats() == {}


# ---------------------------------------------------------------------------
# in-thread workers (fast paths: ordering, stealing, errors, cache modes)


def _run_inthread(
    items,
    fn,
    *,
    hosts="alpha,beta",
    labels=None,
    backend_kwargs=None,
    **run_kwargs,
):
    """Run the coordinator against worker threads in this process.

    ``launch=False`` plus the ``on_listen`` hook stands in for an
    externally-started fleet — and keeps these tests subprocess-free.
    """
    labels = list(labels if labels is not None else
                  (spec.label for spec in parse_hosts(hosts)))
    threads: list[threading.Thread] = []

    def on_listen(host, port):
        for label in labels:
            thread = threading.Thread(
                target=serve, args=((host, port), label), daemon=True
            )
            thread.start()
            threads.append(thread)

    backend = DistributedBackend(
        hosts=hosts,
        launch=False,
        bind="127.0.0.1",
        connect_timeout=10.0,
        idle_delay=0.01,
        on_listen=on_listen,
        **(backend_kwargs or {}),
    )
    try:
        out = backend.run(items, fn, **run_kwargs)
    finally:
        for thread in threads:
            thread.join(timeout=10.0)
    return backend, out


class TestInThreadWorkers:
    def test_results_come_back_in_submission_order(self):
        items = [helpers.Costed(i, delay=0.01) for i in range(8)]
        backend, out = _run_inthread(items, helpers.eval_costed)
        assert out == list(range(8))
        stats = backend.stats()
        assert sum(h["completed"] for h in stats["hosts"].values()) == 8
        assert set(stats["hosts"]) == {"alpha", "beta"}
        assert all(h["workers"] == 1 for h in stats["hosts"].values())
        assert stats["redispatched"] == 0

    def test_on_complete_fires_once_per_cell_with_outcome(self):
        seen: list[tuple[int, int]] = []
        items = [helpers.Costed(10 + i) for i in range(6)]
        _, out = _run_inthread(
            items,
            helpers.eval_costed,
            on_complete=lambda pos, outcome: seen.append((pos, outcome)),
        )
        assert sorted(seen) == [(i, 10 + i) for i in range(6)]
        assert out == [10 + i for i in range(6)]

    def test_drained_host_steals_from_most_loaded_victim(self):
        # LPT assignment gives alpha [0, 3, 5] and beta [1, 2, 4]; item 0
        # then pins alpha's only worker for ~0.4 s while beta drains its
        # queue in ~0.03 s — beta must steal alpha's queued remainder.
        costs = [10.0, 9.0, 1.0, 1.0, 1.0, 1.0]
        items = [
            helpers.Costed(i, cost=c, delay=0.4 if i == 0 else 0.01)
            for i, c in enumerate(costs)
        ]
        backend, out = _run_inthread(items, helpers.eval_costed)
        assert out == list(range(6))
        stats = backend.stats()
        assert stats["hosts"]["beta"]["steals"] >= 1
        assert sum(h["completed"] for h in stats["hosts"].values()) == 6

    def test_externally_joined_unknown_label_is_adopted(self):
        # One declared host, but a second worker joins under a label the
        # coordinator never planned for: it gets adopted and lives off
        # stealing from the declared host's queue.
        items = [helpers.Costed(i, delay=0.02) for i in range(6)]
        backend, out = _run_inthread(
            items, helpers.eval_costed,
            hosts="alpha", labels=("alpha", "gamma"),
        )
        assert out == list(range(6))
        stats = backend.stats()
        assert stats["hosts"]["gamma"]["steals"] >= 1
        assert stats["hosts"]["gamma"]["completed"] >= 1

    def test_worker_error_fails_fast_and_stops_dispatch(self, tmp_path):
        # Poisoned first item errors almost immediately; the other nine
        # each take 50 ms on one surviving slot, so a full drain would
        # touch all of them. Fail-fast must leave most untouched.
        items = [
            helpers.Costed(
                v,
                delay=0.0 if v == 0 else 0.05,
                out_dir=str(tmp_path),
                poison=0,
            )
            for v in range(10)
        ]
        with pytest.raises(ValueError, match="poisoned item 0"):
            _run_inthread(items, helpers.eval_costed)
        touched = len(list(tmp_path.glob("*.done")))
        assert touched < 9

    def test_non_scenario_items_bypass_the_cell_cache(self, tmp_path):
        # cache_dir set, but plain items: workers must not try to digest
        # them, and no cells/ directory appears.
        items = [helpers.Costed(i) for i in range(4)]
        backend, out = _run_inthread(
            items, helpers.eval_costed,
            backend_kwargs={"cache_dir": str(tmp_path)},
        )
        assert out == list(range(4))
        assert not (tmp_path / "cells").exists()
        assert backend.stats()["cache_mode"] == "shared"


def _mini_matrix(**overrides):
    kwargs = dict(
        workflows=("IA",),
        arrivals=(ArrivalSpec("constant"),),
        slo_scales=(1.0, 1.25),
        tenant_counts=(1,),
        policies=("Janus",),
        n_requests=8,
        samples=200,
        seed=23,
    )
    kwargs.update(overrides)
    return ScenarioMatrix(**kwargs)


class TestWorkerCacheModes:
    """Workers short-circuit cells another sweep already stored — through
    the shared directory or the GET/PUT protocol — and write through
    before reporting, so no host re-runs a stored cell."""

    def test_shared_mode_short_circuits_and_writes_through(self, tmp_path):
        cells = _mini_matrix().expand()
        expected = [evaluate_cell(cell) for cell in cells]
        CellCache(tmp_path).store(cells[0], expected[0].result)
        backend, out = _run_inthread(
            cells, evaluate_cell,
            backend_kwargs={"cache_dir": str(tmp_path)},
        )
        assert out[0].result == expected[0].result
        assert out[0].wall_seconds == 0.0  # fabricated from the cache hit
        assert out[1].result == expected[1].result
        stats = backend.stats()
        assert stats["cache_mode"] == "shared"
        assert sum(h["cache_hits"] for h in stats["hosts"].values()) == 1
        # Write-through: the evaluated cell landed in the shared dir too.
        assert len(list((tmp_path / "cells").iterdir())) == 2

    def test_protocol_mode_gets_and_puts_over_the_socket(self, tmp_path):
        cells = _mini_matrix().expand()
        expected = [evaluate_cell(cell) for cell in cells]
        CellCache(tmp_path).store(cells[0], expected[0].result)
        backend, out = _run_inthread(
            cells, evaluate_cell,
            backend_kwargs={
                "cache_dir": str(tmp_path), "cache_mode": "protocol",
            },
        )
        assert out[0].result == expected[0].result
        assert out[0].wall_seconds == 0.0
        assert out[1].result == expected[1].result
        stats = backend.stats()
        assert stats["cache_mode"] == "protocol"
        assert stats["protocol_cache"] == {"gets": 2, "hits": 1, "puts": 1}
        assert len(list((tmp_path / "cells").iterdir())) == 2


# ---------------------------------------------------------------------------
# handshake authentication


class TestWireAuth:
    """Token-protected fabrics HMAC-challenge every hello; peers that
    cannot answer are rejected before the pickled setup payload ships."""

    def _run_auth(self, coord_token, worker_token, items=(-1, -2, -3)):
        worker_errors: list[Exception] = []

        def on_listen(host, port):
            def target():
                try:
                    serve(
                        (host, port),
                        "local",
                        connect_timeout=5.0,
                        auth_token=worker_token,
                    )
                except Exception as exc:  # noqa: BLE001 - captured for asserts
                    worker_errors.append(exc)

            threading.Thread(target=target, daemon=True).start()

        backend = DistributedBackend(
            hosts="local",
            launch=False,
            bind="127.0.0.1",
            connect_timeout=1.5,
            idle_delay=0.01,
            on_listen=on_listen,
            auth_token=coord_token,
        )
        out = backend.run(list(items), abs)
        return out, worker_errors

    def test_digest_is_keyed_hmac_of_the_nonce(self):
        assert auth_digest("token", "nonce") == auth_digest("token", "nonce")
        assert auth_digest("token", "nonce") != auth_digest("other", "nonce")
        assert auth_digest("token", "nonce") != auth_digest("token", "n2")

    def test_matching_tokens_serve_normally(self):
        out, errors = self._run_auth("s3cret", "s3cret")
        assert out == [1, 2, 3]
        assert errors == []

    def test_wrong_token_is_rejected_with_a_clear_error(self):
        with pytest.raises(ExperimentError, match="no worker connected"):
            self._run_auth("s3cret", "wrong")

    def test_missing_worker_token_raises_actionably(self):
        with pytest.raises(ExperimentError, match="no worker connected"):
            self._run_auth("s3cret", None)

    def test_worker_rejection_messages(self):
        # Direct socket-level check of both worker-side reject paths,
        # without the coordinator timeout: fake a coordinator per case.
        from repro.scenarios.worker import _serve_socket

        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def fake_coordinator(reply_fn):
            conn, _ = listener.accept()
            hello = recv_msg(conn)
            assert hello[0] == "hello"
            reply_fn(conn)
            conn.close()

        # Missing token: the worker refuses the challenge locally.
        thread = threading.Thread(
            target=fake_coordinator,
            args=(lambda c: send_msg(c, ("challenge", "abcd")),),
            daemon=True,
        )
        thread.start()
        with pytest.raises(ExperimentError, match=AUTH_ENV):
            sock = connect_with_retry("127.0.0.1", port, timeout=5.0)
            try:
                _serve_socket(sock, "local", auth_token=None)
            finally:
                sock.close()
        thread.join(timeout=5.0)

        # Wrong token: the coordinator's reject reason reaches the worker.
        def challenge_then_reject(conn):
            send_msg(conn, ("challenge", "abcd"))
            answer = recv_msg(conn)
            assert answer[0] == "auth"
            assert answer[1] != auth_digest("right", "abcd")
            send_msg(conn, ("reject", "authentication failed: bad token"))

        thread = threading.Thread(
            target=fake_coordinator, args=(challenge_then_reject,),
            daemon=True,
        )
        thread.start()
        with pytest.raises(ExperimentError, match="authentication failed"):
            sock = connect_with_retry("127.0.0.1", port, timeout=5.0)
            try:
                _serve_socket(sock, "local", auth_token="wrong")
            finally:
                sock.close()
        thread.join(timeout=5.0)
        listener.close()

    def test_env_var_is_the_default_token(self, monkeypatch):
        monkeypatch.setenv(AUTH_ENV, "from-env")
        backend = DistributedBackend(hosts="local", launch=False)
        assert backend.auth_token == "from-env"
        monkeypatch.delenv(AUTH_ENV)
        assert DistributedBackend(
            hosts="local", launch=False
        ).auth_token is None

    def test_launch_argv_forwards_the_token(self):
        spec = parse_hosts("local")[0]
        with_auth = DistributedBackend(
            hosts="local", launch=False, auth_token="tok"
        ).launch_argv(spec, 1234)
        assert "--auth-token" in with_auth
        assert with_auth[with_auth.index("--auth-token") + 1] == "tok"
        without = DistributedBackend(hosts="local", launch=False)
        without.auth_token = None
        assert "--auth-token" not in without.launch_argv(spec, 1234)


# ---------------------------------------------------------------------------
# real subprocess workers


@pytest.fixture
def worker_env(monkeypatch):
    """Make repro and distfab_helpers importable inside launched agents."""
    monkeypatch.setenv("PYTHONPATH", WORKER_PYTHONPATH)


class TestSubprocessWorkers:
    def test_two_local_workers_end_to_end(self, worker_env):
        backend = DistributedBackend(hosts="local:2", connect_timeout=60.0)
        out = backend.run(list(range(6)), helpers.double)
        assert out == [0, 2, 4, 6, 8, 10]
        stats = backend.stats()
        assert stats["hosts"]["local"]["workers"] == 2
        assert stats["hosts"]["local"]["completed"] == 6
        assert stats["hosts"]["local"]["lost"] == 0

    def test_worker_loss_redispatches_in_flight_cell(
        self, worker_env, tmp_path
    ):
        # The marked item hard-kills (os._exit) whichever agent draws it
        # first; the survivor must pick up the re-queued cell and finish
        # the sweep with complete results.
        marker = str(tmp_path / "died.marker")
        items = [(None, 1), (marker, 2), (None, 3), (None, 4)]
        backend = DistributedBackend(hosts="local:2", connect_timeout=60.0)
        out = backend.run(items, helpers.crash_once)
        assert out == [2, 4, 6, 8]
        assert os.path.exists(marker)
        stats = backend.stats()
        assert stats["redispatched"] == 1
        assert sum(h["lost"] for h in stats["hosts"].values()) == 1
        assert sum(h["completed"] for h in stats["hosts"].values()) == 4

    def test_cell_exhausting_redispatch_budget_fails_the_sweep(
        self, worker_env, tmp_path
    ):
        # Every dispatch of the marked item kills its agent (fresh marker
        # names), so the redispatch cap must eventually give up with a
        # task-naming error instead of spinning forever.
        backend = DistributedBackend(
            hosts="local:2", connect_timeout=60.0, max_redispatch=0
        )
        marker = str(tmp_path / "always.marker")
        with pytest.raises(ExperimentError, match="lost its worker"):
            backend.run([(marker, 1), (None, 2)], helpers.crash_once)


# ---------------------------------------------------------------------------
# sweep-level integration


class TestSweepIntegration:
    def test_runner_wires_backend_options_and_stats(self, worker_env):
        matrix = _mini_matrix(n_requests=6)
        report = SweepRunner(
            backend="distributed",
            backend_options={"hosts": "local:2", "connect_timeout": 60.0},
        ).run(matrix)
        assert report.backend == "distributed"
        assert report.max_workers == 2
        assert report.backend_stats["hosts"]["local"]["completed"] == 2
        assert "host local: 2 worker(s), 2 cell(s)" in report.render()

    def test_backend_options_are_ignored_by_non_distributed_backends(self):
        # Signature filtering: a serial run with distributed options must
        # not blow up — the options simply don't reach SerialBackend.
        report = SweepRunner(
            max_workers=1,
            backend="serial",
            backend_options={"hosts": "local:2"},
        ).run(_mini_matrix(n_requests=6))
        assert report.backend == "serial"
        assert report.backend_stats == {}


class TestFourWayBitIdentity:
    """serial / pool / workstealing / distributed on faulted and replay
    matrices — the fabric joins the byte-identity contract."""

    @pytest.fixture(scope="class")
    def replay_trace(self, tmp_path_factory):
        from repro.traces.trace_file import generate_workload_trace, save_trace

        path = tmp_path_factory.mktemp("dist-trace") / "day.jsonl"
        trace = generate_workload_trace(
            ("IA", "VA"), 80,
            arrival=ArrivalSpec(kind="diurnal", rate_per_s=10.0, period_s=5.0),
            zipf_s=1.0, seed=47, name="day",
        )
        save_trace(trace, path)
        return path

    def _matrices(self, replay_trace):
        faulted = _mini_matrix(
            arrivals=(ArrivalSpec("poisson", rate_per_s=8.0),),
            slo_scales=(1.0,),
            faults=(None, parse_fault("storm@4")),
            n_requests=10,
        )
        replay = _mini_matrix(
            slo_scales=(1.0,),
            traces=(str(replay_trace),),
            n_requests=10,
        )
        return faulted, replay

    def test_identical_json_across_all_four_backends(
        self, replay_trace, worker_env
    ):
        for matrix in self._matrices(replay_trace):
            serial = SweepRunner(max_workers=1, backend="serial").run(matrix)
            for backend, options in (
                ("pool", None),
                ("workstealing", None),
                ("distributed", {"hosts": "local:2", "connect_timeout": 60.0}),
            ):
                other = SweepRunner(
                    max_workers=2, backend=backend, backend_options=options
                ).run(matrix)
                assert other.to_json() == serial.to_json(), (
                    f"{backend} diverged on {matrix}"
                )


# ---------------------------------------------------------------------------
# resume after kill (CLI, real coordinator + agents)


SWEEP_ARGS = [
    "--workflows", "IA",
    "--arrivals", "constant,poisson@6,poisson@12",
    "--slo-scales", "1.0,1.25",
    "--tenants", "1",
    "--policies", "Janus",
    "--requests", "10",
    "--samples", "200",
    "--seed", "33",
]
N_CELLS = 6


class TestResumeAfterKill:
    def _spawn_distributed(self, cache_dir, extra=()):
        env = dict(os.environ)
        env["PYTHONPATH"] = WORKER_PYTHONPATH
        argv = [
            sys.executable, "-u", "-m", "repro", "sweep", *SWEEP_ARGS,
            "--backend", "distributed", "--hosts", "local:2",
            "--cache-dir", str(cache_dir), "--progress", *extra,
        ]
        return subprocess.Popen(
            argv, env=env, cwd=os.path.dirname(TESTS_DIR),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )

    def test_killed_sweep_resumes_without_reevaluating_cached_cells(
        self, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        serial_json = tmp_path / "serial.json"
        resumed_json = tmp_path / "resumed.json"

        # Reference: an uninterrupted serial run of the same matrix.
        rc = main(
            ["sweep", *SWEEP_ARGS, "--jobs", "1", "--no-cache",
             "--json", str(serial_json)]
        )
        assert rc == 0

        # Cold distributed run, SIGKILLed after the first evaluated cell
        # lands (workers store before reporting, so it is already cached).
        proc = self._spawn_distributed(cache_dir)
        lines: queue_mod.Queue = queue_mod.Queue()

        def _pump():
            assert proc.stdout is not None
            for line in proc.stdout:
                lines.put(line)
            lines.put(None)

        threading.Thread(target=_pump, daemon=True).start()
        deadline = time.monotonic() + 120.0
        saw_completion = False
        while time.monotonic() < deadline:
            try:
                line = lines.get(timeout=5.0)
            except queue_mod.Empty:
                continue
            if line is None:
                break
            if line.startswith("[") and line.rstrip().endswith(" s"):
                saw_completion = True
                break
        proc.kill()
        proc.wait(timeout=30.0)
        assert saw_completion, "sweep never reported an evaluated cell"
        # Killing the coordinator orphans the worker agents; each finishes
        # its in-flight cell, stores it (that's the resume guarantee), and
        # exits on the dead socket. Wait for the cache to quiesce so the
        # stored count is the resume run's exact hit count.
        stored = len(list((cache_dir / "cells").iterdir()))
        stable_since = time.monotonic()
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            now = len(list((cache_dir / "cells").iterdir()))
            if now != stored:
                stored = now
                stable_since = time.monotonic()
            elif time.monotonic() - stable_since > 2.0:
                break
            time.sleep(0.2)
        assert stored >= 1

        # Resume: only the uncached remainder evaluates; the report is
        # byte-identical to the uninterrupted run.
        resumed = self._spawn_distributed(
            cache_dir, extra=["--json", str(resumed_json)]
        )
        out, _ = resumed.communicate(timeout=300.0)
        assert resumed.returncode == 0, out
        hit_lines = [l for l in out.splitlines() if l.endswith("cache hit")]
        assert len(hit_lines) == stored
        assert (
            f"cell cache: {stored} hit(s), {N_CELLS - stored} miss(es)" in out
        )
        assert resumed_json.read_bytes() == serial_json.read_bytes()

        # Warm re-run: zero evaluations, still byte-identical.
        warm_json = tmp_path / "warm.json"
        warm = self._spawn_distributed(
            cache_dir, extra=["--json", str(warm_json)]
        )
        out, _ = warm.communicate(timeout=300.0)
        assert warm.returncode == 0, out
        assert f"cell cache: {N_CELLS} hit(s), 0 miss(es)" in out
        assert warm_json.read_bytes() == serial_json.read_bytes()


# ---------------------------------------------------------------------------
# CLI surface


class TestCLI:
    def test_sweep_distributed_smoke(self, capsys, worker_env):
        rc = main(
            ["sweep", "--workflows", "IA", "--arrivals", "constant",
             "--slo-scales", "1.0", "--tenants", "1", "--policies", "Janus",
             "--requests", "6", "--samples", "200", "--no-cache",
             "--backend", "distributed", "--hosts", "local:2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "distributed backend" in out
        assert "host local: 2 worker(s)" in out

    def test_hosts_flag_requires_distributed_backend(self):
        with pytest.raises(SystemExit, match="--hosts"):
            main(
                ["sweep", "--workflows", "IA", "--arrivals", "constant",
                 "--hosts", "local:2"]
            )

    def test_cache_mode_flag_requires_distributed_backend(self):
        with pytest.raises(SystemExit, match="--cache-mode"):
            main(
                ["sweep", "--workflows", "IA", "--arrivals", "constant",
                 "--backend", "pool", "--cache-mode", "shared"]
            )


# ---------------------------------------------------------------------------
# satellite: scenario_digest memoisation


class TestDigestMemo:
    def test_digest_is_memoised_per_instance(self):
        cell = _mini_matrix().expand()[0]
        first = scenario_digest(cell)
        assert cell.__dict__["_digest_memo"][2] == first
        # Same *object* back, not just an equal string: the hash ran once.
        assert scenario_digest(cell) is first

    def test_epoch_change_invalidates_the_memo(self, monkeypatch):
        cell = _mini_matrix().expand()[0]
        base = scenario_digest(cell)
        import repro.scenarios.cache as cache_mod

        monkeypatch.setattr(cache_mod, "workflow_epoch", lambda name: 10**9)
        bumped = scenario_digest(cell)
        assert bumped != base
        monkeypatch.undo()
        assert scenario_digest(cell) == base

    def test_memo_travels_through_pickle(self):
        cell = _mini_matrix().expand()[0]
        base = scenario_digest(cell)
        clone = pickle.loads(pickle.dumps(cell))
        assert clone.__dict__["_digest_memo"] == (
            cell.__dict__["_digest_memo"]
        )
        assert scenario_digest(clone) == base

    def test_memo_does_not_affect_equality(self):
        digested = _mini_matrix().expand()[0]
        scenario_digest(digested)
        fresh = _mini_matrix().expand()[0]
        assert digested == fresh  # dataclass eq is field-based


# ---------------------------------------------------------------------------
# satellite: work-stealing fail-fast


class TestWorkStealingFailFast:
    def test_error_cancels_not_yet_started_cells(self, tmp_path):
        # The poisoned item carries the top cost estimate, so it is
        # dispatched first and errors within milliseconds; every other
        # item sleeps 250 ms and touches a sentinel. Before the fix the
        # pool __exit__ drained all 8 survivors; with cancellation only
        # the already-running few finish.
        items = [
            helpers.Costed(
                v,
                cost=100.0 if v == 0 else 1.0,
                delay=0.01 if v == 0 else 0.25,
                out_dir=str(tmp_path),
                poison=0,
            )
            for v in range(9)
        ]
        backend = WorkStealingBackend(max_workers=2)
        with pytest.raises(ValueError, match="poisoned item 0"):
            backend.run(items, helpers.eval_costed)
        touched = len(list(tmp_path.glob("*.done")))
        assert touched < 8
