"""Always-on serving: sources, event log, loop, online adaptation."""

import asyncio
import itertools

import numpy as np
import pytest

from repro.errors import ExperimentError, TraceError
from repro.rng import RngFactory
from repro.serving import (
    EventLog,
    ServingConfig,
    ServingLoop,
    arrival_source,
    read_events,
    run_service,
)
from repro.traces.trace_file import (
    generate_workload_trace,
    replay_arrivals,
    save_trace,
)
from repro.traces.workload import ArrivalSpec


def take(iterator, n):
    return list(itertools.islice(iterator, n))


def rng(*path):
    return RngFactory(7).fork("test-sources").stream(*path)


class TestArrivalSources:
    @pytest.mark.parametrize("token_kind,kwargs", [
        ("poisson", {"rate_per_s": 20.0}),
        ("burst", {"rate_per_s": 10.0}),
        ("azure", {"rate_per_s": 10.0}),
        ("diurnal", {"rate_per_s": 8.0}),
    ])
    def test_sorted_positive_unbounded(self, token_kind, kwargs):
        spec = ArrivalSpec(kind=token_kind, **kwargs)
        ts = take(arrival_source(spec, rng(token_kind)), 1000)
        arr = np.asarray(ts)
        assert np.all(arr >= 0) and np.all(np.diff(arr) >= 0)

    def test_constant_spacing_exact(self):
        spec = ArrivalSpec(kind="constant", interval_ms=25.0)
        ts = take(arrival_source(spec, rng("const")), 10)
        assert ts == [i * 25.0 for i in range(10)]

    def test_consumption_depth_does_not_change_the_stream(self):
        # The determinism contract: draw sizes are fixed constants, so
        # taking 10 then 1000 arrivals yields the same leading values.
        spec = ArrivalSpec(kind="diurnal", rate_per_s=8.0)
        short = take(arrival_source(spec, rng("d")), 10)
        long = take(arrival_source(spec, rng("d")), 1000)
        assert long[:10] == short

    def test_replay_matches_batch_replay_with_wraparound(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = generate_workload_trace(["IA", "VA"], 40, seed=5)
        save_trace(trace, path)
        spec = ArrivalSpec(kind="replay", trace=str(path))
        streamed = take(arrival_source(spec, rng("r"), workflow="IA"), 90)
        batch = replay_arrivals(trace, 90, workflow="IA")
        assert streamed == pytest.approx(list(batch))

    def test_replay_empty_substream_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(generate_workload_trace(["IA"], 10, seed=5), path)
        spec = ArrivalSpec(kind="replay", trace=str(path))
        with pytest.raises(TraceError, match="no records"):
            # _replay is a generator: validation happens on first pull.
            next(arrival_source(spec, rng("r"), workflow="VA"))


class TestEventLog:
    def test_in_memory_accumulates(self):
        log = EventLog()
        log.emit("start", policy="Janus")
        log.emit("stop")
        assert [e["kind"] for e in log.events] == ["start", "stop"]
        assert [e["seq"] for e in log.events] == [0, 1]
        assert log.count == 2

    def test_file_sink_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("decision", request_id=0, size=np.int64(1500))
            log.emit("swap", swap=1)
        assert log.events == []  # write-through, nothing retained
        records = read_events(path)
        assert len(records) == 2
        assert records[0]["size"] == 1500  # numpy scalar serialized plainly
        assert read_events(path, kind="swap") == [
            {"seq": 1, "kind": "swap", "swap": 1}
        ]

    def test_read_missing_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no event log"):
            read_events(tmp_path / "absent.jsonl")


class TestServingConfig:
    def test_unbounded_needs_opt_in(self):
        with pytest.raises(ExperimentError, match="unbounded"):
            ServingConfig()

    def test_bad_bounds_rejected(self):
        with pytest.raises(ExperimentError):
            ServingConfig(max_requests=0)
        with pytest.raises(ExperimentError):
            ServingConfig(max_seconds=0.0)
        with pytest.raises(ExperimentError):
            ServingConfig(max_requests=10, time_scale=-1.0)

    def test_workset_schedule_must_ascend(self):
        with pytest.raises(ExperimentError, match="ascend"):
            ServingConfig(
                max_requests=10, workset_schedule=((100, 2.0), (50, 3.0))
            )
        with pytest.raises(ExperimentError, match="scale"):
            ServingConfig(max_requests=10, workset_schedule=((5, 0.0),))


def small_config(**overrides):
    base = dict(
        source=ArrivalSpec(kind="poisson", rate_per_s=50.0),
        max_requests=200,
        samples=300,
        metrics_every=100,
    )
    base.update(overrides)
    return ServingConfig(**base)


class TestServingLoop:
    def test_bounded_run_completes_everything(self):
        report = run_service(small_config())
        assert report.arrivals == report.completed == 200
        assert report.dropped == 0
        snap = report.snapshot
        for key in (
            "p50", "p95", "p99", "mean", "slo_attainment",
            "slo_attainment_windowed", "violation_rate",
            "mean_allocated_millicores", "total_millicore_cost",
            "miss_rate", "swaps",
        ):
            assert key in snap
        assert snap["completed"] == 200.0

    def test_run_is_deterministic(self):
        a = run_service(small_config())
        b = run_service(small_config())
        assert a.snapshot == b.snapshot  # bit-identical replay

    def test_events_cover_the_lifecycle(self):
        loop = ServingLoop(small_config(max_requests=50, metrics_every=25))
        asyncio.run(loop.run())
        kinds = [e["kind"] for e in loop.events.events]
        assert kinds[0] == "start" and kinds[-1] == "stop"
        assert kinds.count("arrival") == 50
        assert kinds.count("decision") == 50
        # Two periodic snapshots plus the final one.
        assert kinds.count("snapshot") == 3

    def test_requests_interleave(self):
        # Cooperative stage yields: with a multi-stage chain and
        # back-to-back arrivals, completions lag ingestion, so decision
        # events appear after later arrivals' events.
        loop = ServingLoop(small_config(max_requests=30))
        asyncio.run(loop.run())
        kinds = [e["kind"] for e in loop.events.events]
        first_decision = kinds.index("decision")
        assert "arrival" in kinds[first_decision:]

    def test_non_adaptive_policy_serves(self):
        report = run_service(small_config(policy="Optimal", max_requests=60))
        assert report.completed == 60 and report.swaps == 0
        assert report.snapshot["miss_rate"] == 0.0

    def test_dag_workflow_rejected(self):
        with pytest.raises(ExperimentError, match="chain"):
            ServingLoop(small_config(workflow="media"))

    def test_snapshot_before_any_completion_raises(self):
        loop = ServingLoop(small_config())
        with pytest.raises(ExperimentError, match="no completed"):
            loop.snapshot()

    def test_snapshot_is_internally_consistent(self):
        report = run_service(small_config(max_requests=200))
        snap = report.snapshot
        assert snap["min"] <= snap["p50"] <= snap["p99"] <= snap["max"]
        # The cost counters are exact aggregates, not estimates.
        assert snap["total_millicore_cost"] == pytest.approx(
            snap["mean_allocated_millicores"] * snap["completed"]
        )
        assert snap["violation_rate"] == pytest.approx(
            1.0 - snap["slo_attainment"]
        )


DRIFT_CONFIG = dict(
    source=ArrivalSpec(kind="poisson", rate_per_s=50.0),
    max_requests=900,
    samples=400,
    metrics_every=300,
    workset_schedule=((300, 4.0),),
    miss_threshold=0.05,
    miss_window=200,
    min_samples=50,
    latency_window=256,
)


class TestOnlineAdaptation:
    def test_forced_drift_triggers_hot_swap(self, tmp_path):
        # The ISSUE acceptance test: a mid-run working-set drift must
        # trigger at least one hint hot-swap, visible in the JSONL event
        # log, with zero dropped requests.
        path = tmp_path / "drift.jsonl"
        report = run_service(
            ServingConfig(event_log=str(path), **DRIFT_CONFIG)
        )
        assert report.swaps >= 1
        assert report.arrivals == report.completed == 900
        assert report.dropped == 0
        swaps = read_events(path, kind="swap")
        assert len(swaps) == report.swaps
        # The swap happened while requests were mid-flight, and the drift
        # estimate points the right way (slower than profiled).
        assert any(s["in_flight"] >= 1 for s in swaps)
        assert all(
            ratio > 1.0
            for s in swaps
            for ratio in s["ratios"].values()
        )
        # After adaptation the recent window is healthy again.
        assert report.snapshot["miss_rate"] <= 0.05

    def test_adaptation_can_be_disabled(self):
        report = run_service(ServingConfig(adapt=False, **DRIFT_CONFIG))
        assert report.swaps == 0
        assert report.completed == 900  # still serves everything

    def test_drift_run_is_deterministic(self):
        a = run_service(ServingConfig(**DRIFT_CONFIG))
        b = run_service(ServingConfig(**DRIFT_CONFIG))
        assert a.snapshot == b.snapshot
        assert a.swaps == b.swaps


class TestServingFaults:
    def test_cluster_side_kinds_rejected(self):
        from repro.cluster.faults import parse_fault

        for token in ("preempt@2", "crash@5000", "straggler@0.25:3",
                      "contention"):
            with pytest.raises(ExperimentError, match="arrival-side"):
                small_config(faults=parse_fault(token))

    def test_storm_reshapes_the_source_and_logs_it(self):
        from repro.cluster.faults import parse_fault

        config = small_config(
            source=ArrivalSpec(kind="diurnal", rate_per_s=50.0),
            faults=parse_fault("storm@6"),
        )
        loop = ServingLoop(config)
        assert loop.effective_source.kind == "storm"
        assert loop.effective_source.storm_multiplier == 6.0
        asyncio_run(loop)
        faults = [e for e in loop.events.events if e["kind"] == "fault"]
        assert faults == [{
            "seq": faults[0]["seq"],
            "kind": "fault",
            "fault": "storm@x6~0.15",
            "fault_kind": "storm",
            "effective_source": loop.effective_source.label,
        }]

    def test_storm_run_is_deterministic_and_differs_from_clean(self):
        from repro.cluster.faults import parse_fault

        base = dict(source=ArrivalSpec(kind="diurnal", rate_per_s=50.0))
        clean = run_service(small_config(**base))
        stormy = run_service(
            small_config(**base, faults=parse_fault("storm@6"))
        )
        again = run_service(
            small_config(**base, faults=parse_fault("storm@6"))
        )
        assert stormy.snapshot == again.snapshot
        # The flash crowd compresses arrivals: same count, different times.
        assert stormy.completed == clean.completed == 200
        assert stormy.snapshot != clean.snapshot


def asyncio_run(loop):
    import asyncio

    return asyncio.run(loop.run())
