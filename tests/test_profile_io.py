"""Profile persistence and the CLI developer workflow."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ProfileError
from repro.profiling.io import (
    load_profile_set,
    profile_from_dict,
    profile_set_from_json,
    profile_set_to_json,
    profile_to_dict,
    save_profile_set,
)
from repro.profiling.profiles import ProfileSet
from tests.test_profiling import make_profile


class TestProfileRoundTrip:
    def test_single_profile(self):
        prof = make_profile("F")
        clone = profile_from_dict(profile_to_dict(prof))
        assert clone.function == "F"
        np.testing.assert_array_equal(clone.table, prof.table)
        assert clone.limits == prof.limits
        assert clone.percentiles.percentiles == prof.percentiles.percentiles

    def test_profile_set(self):
        ps = ProfileSet({"A": make_profile("A"), "B": make_profile("B")})
        clone = profile_set_from_json(profile_set_to_json(ps))
        assert set(clone.functions()) == {"A", "B"}
        np.testing.assert_array_equal(clone["A"].table, ps["A"].table)

    def test_file_round_trip(self, tmp_path):
        ps = ProfileSet({"A": make_profile("A")})
        path = tmp_path / "profiles.json"
        save_profile_set(ps, str(path))
        clone = load_profile_set(str(path))
        np.testing.assert_array_equal(clone["A"].table, ps["A"].table)

    def test_lookups_preserved(self):
        ps = ProfileSet({"A": make_profile("A")})
        clone = profile_set_from_json(profile_set_to_json(ps))
        for p in (1, 50, 99):
            for k in (1000, 2000, 3000):
                assert clone["A"].latency(p, k) == ps["A"].latency(p, k)

    def test_invalid_json_rejected(self):
        with pytest.raises(ProfileError):
            profile_set_from_json("{broken")

    def test_wrong_version_rejected(self):
        doc = json.dumps({"format_version": 999, "profiles": {}})
        with pytest.raises(ProfileError):
            profile_set_from_json(doc)

    def test_empty_profiles_rejected(self):
        doc = json.dumps({"format_version": 1, "profiles": {}})
        with pytest.raises(ProfileError):
            profile_set_from_json(doc)

    def test_missing_field_rejected(self):
        with pytest.raises(ProfileError):
            profile_from_dict({"function": "F"})


class TestCliDeveloperWorkflow:
    def test_profile_synthesize_inspect(self, tmp_path, capsys):
        prof_path = tmp_path / "va.json"
        hints_path = tmp_path / "va-hints.json"
        assert main(["profile", "VA", "--out", str(prof_path),
                     "--samples", "600"]) == 0
        assert prof_path.exists()
        assert main(["synthesize", str(prof_path), "--out", str(hints_path),
                     "--tmin", "1500", "--tmax", "2000"]) == 0
        assert hints_path.exists()
        assert main(["inspect", str(hints_path)]) == 0
        out = capsys.readouterr().out
        assert "compressed" in out and "stage 0 (FE)" in out

    def test_synthesize_custom_chain_and_exploration(self, tmp_path, capsys):
        prof_path = tmp_path / "va.json"
        hints_path = tmp_path / "hints.json"
        main(["profile", "VA", "--out", str(prof_path), "--samples", "600"])
        assert main([
            "synthesize", str(prof_path), "--out", str(hints_path),
            "--chain", "FE,ICL,ICO", "--exploration", "none",
            "--weight", "2.0",
        ]) == 0
        from repro.synthesis.hints import WorkflowHints

        hints = WorkflowHints.from_json(hints_path.read_text())
        assert hints.weight == 2.0
        assert [t.head_function for t in hints.tables] == ["FE", "ICL", "ICO"]
