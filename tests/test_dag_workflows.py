"""DAG workflow support: synthesis, policies, parallel execution.

The paper's §VII names complex workflows as future work; this suite covers
the extension: per-function hint tables over downstream critical paths,
DAG-aware policies, and the branch-parallel analytic executor.
"""

import numpy as np
import pytest

from repro.errors import PolicyError, SynthesisError
from repro.policies.dag import (
    DagFixedPolicy,
    DagGrandSLAMPolicy,
    DagJanusPolicy,
)
from repro.profiling.profiler import Profiler, ProfilerConfig
from repro.profiling.profiles import ProfileSet
from repro.rng import RngFactory
from repro.runtime.dag_executor import DagAnalyticExecutor
from repro.synthesis.dag import downstream_chain, synthesize_dag_hints
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.workflow.catalog import Workflow
from repro.workflow.dag import WorkflowDAG
from tests.conftest import make_function, small_limits, tiny_percentiles


@pytest.fixture(scope="module")
def diamond_workflow():
    """A -> (B heavy | C light) -> D diamond."""
    dag = WorkflowDAG(
        ["A", "B", "C", "D"],
        [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
    )
    functions = {
        "A": make_function("A", serial=40, parallel=260, sigma=0.08, gamma=0.2),
        "B": make_function("B", serial=80, parallel=520, sigma=0.08, gamma=0.2),
        "C": make_function("C", serial=20, parallel=120, sigma=0.08, gamma=0.2),
        "D": make_function("D", serial=40, parallel=240, sigma=0.08, gamma=0.2),
    }
    return Workflow(
        name="diamond", dag=dag, functions=functions,
        slo_ms=1450.0, limits=small_limits(),
    )


@pytest.fixture(scope="module")
def diamond_profiles(diamond_workflow):
    cfg = ProfilerConfig(
        limits=diamond_workflow.limits,
        percentiles=tiny_percentiles(),
        samples=600,
    )
    profiler = Profiler(cfg)
    factory = RngFactory(13).fork("diamond")
    return ProfileSet({
        name: profiler.profile_function(
            diamond_workflow.model(name), factory.stream(name)
        )
        for name in diamond_workflow.dag.nodes
    })


@pytest.fixture(scope="module")
def diamond_requests(diamond_workflow):
    return generate_requests(
        diamond_workflow, WorkloadConfig(n_requests=150), seed=31
    )


class TestDownstreamChain:
    def test_critical_path_through_heavy_branch(
        self, diamond_workflow, diamond_profiles
    ):
        weights = {
            n: diamond_profiles[n].latency(99, 1000)
            for n in diamond_workflow.dag.nodes
        }
        chain = downstream_chain(diamond_workflow.dag, "A", weights)
        assert chain == ["A", "B", "D"]  # B is the heavy branch

    def test_light_branch_chain(self, diamond_workflow, diamond_profiles):
        weights = {
            n: diamond_profiles[n].latency(99, 1000)
            for n in diamond_workflow.dag.nodes
        }
        assert downstream_chain(diamond_workflow.dag, "C", weights) == ["C", "D"]
        assert downstream_chain(diamond_workflow.dag, "D", weights) == ["D"]

    def test_unknown_function_rejected(self, diamond_workflow):
        with pytest.raises(SynthesisError):
            downstream_chain(diamond_workflow.dag, "Z", {})


class TestDagSynthesis:
    def test_table_per_function(self, diamond_workflow, diamond_profiles):
        hints = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        assert set(hints.tables) == {"A", "B", "C", "D"}
        assert hints.chains["A"] == ("A", "B", "D")
        assert hints.total_rows > 0
        assert hints.synthesis_seconds > 0

    def test_chain_degenerates_to_suffix_tables(
        self, small_workflow, small_profiles
    ):
        # On a chain workflow the per-function tables equal the classic
        # per-suffix tables.
        from repro.synthesis.generator import synthesize_hints

        dag_hints = synthesize_dag_hints(small_workflow, small_profiles)
        chain_hints = synthesize_hints(small_profiles, small_workflow.chain)
        for j, fname in enumerate(small_workflow.chain):
            a = dag_hints.table_for(fname)
            b = chain_hints.table_for_stage(j)
            # Same decisions wherever both tables cover the budget.
            lo = max(a.tmin_ms, b.tmin_ms)
            hi = min(a.tmax_ms, b.tmax_ms)
            for budget in np.linspace(lo, hi, 25):
                assert a.lookup(budget).size == b.lookup(budget).size

    def test_unknown_function_lookup_rejected(
        self, diamond_workflow, diamond_profiles
    ):
        hints = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        with pytest.raises(SynthesisError):
            hints.table_for("Z")

    def test_json_round_trip(self, diamond_workflow, diamond_profiles):
        from repro.synthesis.dag import DagWorkflowHints

        hints = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        restored = DagWorkflowHints.from_json(hints.to_json())
        assert set(restored.tables) == set(hints.tables)
        assert restored.chains == hints.chains
        assert restored.metadata == hints.metadata
        for name in hints.tables:
            assert restored.tables[name].rows() == hints.tables[name].rows()
            assert restored.tables[name].kmax == hints.tables[name].kmax


class TestDagHintsMemo:
    def test_memory_memo_returns_shared_object(
        self, diamond_workflow, diamond_profiles
    ):
        from repro.synthesis.dag import (
            clear_dag_hints_cache,
            dag_hints_cache_stats,
        )

        clear_dag_hints_cache()
        before = dag_hints_cache_stats()
        first = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        again = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        assert again is first
        after = dag_hints_cache_stats()
        assert after["syntheses"] == before["syntheses"] + 1
        assert after["memory_hits"] == before["memory_hits"] + 1

    def test_knobs_key_the_memo(self, diamond_workflow, diamond_profiles):
        from repro.synthesis.dag import clear_dag_hints_cache
        from repro.synthesis.generator import HeadExploration

        clear_dag_hints_cache()
        base = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        pinned = synthesize_dag_hints(
            diamond_workflow, diamond_profiles,
            exploration=HeadExploration.NONE,
        )
        assert pinned is not base

    def test_disk_layer_round_trips_without_resynthesis(
        self, diamond_workflow, diamond_profiles, tmp_path
    ):
        from repro.synthesis.dag import (
            clear_dag_hints_cache,
            dag_hints_cache_stats,
            set_dag_hints_cache_dir,
        )

        set_dag_hints_cache_dir(tmp_path)
        try:
            clear_dag_hints_cache()
            live = synthesize_dag_hints(diamond_workflow, diamond_profiles)
            assert list(tmp_path.iterdir())  # persisted
            clear_dag_hints_cache()  # cold memory, warm disk
            before = dag_hints_cache_stats()
            restored = synthesize_dag_hints(
                diamond_workflow, diamond_profiles
            )
            after = dag_hints_cache_stats()
            assert after["disk_hits"] == before["disk_hits"] + 1
            assert after["syntheses"] == before["syntheses"]
            for name in live.tables:
                assert (
                    restored.tables[name].rows() == live.tables[name].rows()
                )
        finally:
            set_dag_hints_cache_dir(None)

    def test_torn_disk_entry_is_a_miss(
        self, diamond_workflow, diamond_profiles, tmp_path
    ):
        from repro.synthesis.dag import (
            clear_dag_hints_cache,
            set_dag_hints_cache_dir,
        )

        set_dag_hints_cache_dir(tmp_path)
        try:
            clear_dag_hints_cache()
            live = synthesize_dag_hints(diamond_workflow, diamond_profiles)
            [entry] = list(tmp_path.iterdir())
            entry.write_text("{torn")
            clear_dag_hints_cache()
            healed = synthesize_dag_hints(diamond_workflow, diamond_profiles)
            for name in live.tables:
                assert healed.tables[name].rows() == live.tables[name].rows()
        finally:
            set_dag_hints_cache_dir(None)


class TestDagExecutor:
    def test_parallel_branches_overlap(self, diamond_workflow, diamond_requests):
        policy = DagFixedPolicy(
            "fixed", {n: 2000 for n in diamond_workflow.dag.nodes}
        )
        executor = DagAnalyticExecutor(diamond_workflow)
        outcome = executor.run_request(policy, diamond_requests[0])
        by_name = outcome.stage_map()
        # B and C both start when A ends.
        assert by_name["B"].start_ms == pytest.approx(by_name["A"].end_ms)
        assert by_name["C"].start_ms == pytest.approx(by_name["A"].end_ms)
        # D starts when the slower branch ends.
        assert by_name["D"].start_ms == pytest.approx(
            max(by_name["B"].end_ms, by_name["C"].end_ms)
        )

    def test_e2e_is_critical_path(self, diamond_workflow, diamond_requests):
        policy = DagFixedPolicy(
            "fixed", {n: 2000 for n in diamond_workflow.dag.nodes}
        )
        outcome = DagAnalyticExecutor(diamond_workflow).run_request(
            policy, diamond_requests[0]
        )
        by_name = outcome.stage_map()
        assert outcome.e2e_ms == pytest.approx(
            by_name["D"].end_ms - outcome.arrival_ms
        )
        # The chain-sum of all stages exceeds the critical path (overlap).
        assert outcome.e2e_ms < sum(s.execution_ms for s in outcome.stages)

    def test_missing_plan_entry_rejected(self, diamond_workflow, diamond_requests):
        policy = DagFixedPolicy("partial", {"A": 1000})
        with pytest.raises(PolicyError):
            DagAnalyticExecutor(diamond_workflow).run_request(
                policy, diamond_requests[0]
            )

    def test_empty_stream_rejected(self, diamond_workflow):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            DagAnalyticExecutor(diamond_workflow).run(
                DagFixedPolicy("f", {"A": 1000}), []
            )


class TestDagPolicies:
    def test_grandslam_dag_meets_slo(
        self, diamond_workflow, diamond_profiles, diamond_requests
    ):
        policy = DagGrandSLAMPolicy(diamond_workflow, diamond_profiles)
        result = DagAnalyticExecutor(diamond_workflow).run(
            policy, diamond_requests
        )
        assert result.violation_rate <= 0.01 + 1e-9

    def test_grandslam_dag_infeasible_rejected(
        self, diamond_workflow, diamond_profiles
    ):
        with pytest.raises(PolicyError):
            DagGrandSLAMPolicy(diamond_workflow, diamond_profiles, slo_ms=10.0)

    def test_janus_dag_meets_slo_and_saves(
        self, diamond_workflow, diamond_profiles, diamond_requests
    ):
        hints = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        janus_pol = DagJanusPolicy(diamond_workflow, hints)
        early = DagGrandSLAMPolicy(diamond_workflow, diamond_profiles)
        executor = DagAnalyticExecutor(diamond_workflow)
        janus_res = executor.run(janus_pol, diamond_requests)
        early_res = executor.run(early, diamond_requests)
        assert janus_res.violation_rate <= 0.01 + 1e-9
        assert janus_res.mean_allocated < early_res.mean_allocated
        assert janus_pol.hit_rate > 0.9

    def test_janus_dag_requires_full_tables(
        self, diamond_workflow, diamond_profiles
    ):
        hints = synthesize_dag_hints(diamond_workflow, diamond_profiles)
        del hints.tables["D"], hints.chains["D"]
        with pytest.raises(PolicyError):
            DagJanusPolicy(diamond_workflow, hints)

    def test_fixed_policy_validation(self):
        with pytest.raises(PolicyError):
            DagFixedPolicy("x", {})
        with pytest.raises(PolicyError):
            DagFixedPolicy("x", {"A": 0})
