"""End-to-end paper-shape assertions on the real IA / VA workflows.

These are the repository's headline invariants: who wins, by roughly what
factor, and that Janus never trades away the SLO. They run at moderate
scale on the shared IA/VA profile fixtures.
"""

import numpy as np
import pytest

from repro.adapter.adapter import JanusAdapter
from repro.policies.janus import janus
from repro.runtime.driver import build_policy_suite, run_policies
from repro.runtime.executor import AnalyticExecutor
from repro.synthesis.budget import BudgetRange
from repro.synthesis.generator import synthesize_hints
from repro.traces.workload import WorkloadConfig, generate_requests


@pytest.fixture(scope="module")
def ia_results(request):
    wf = request.getfixturevalue("ia_workflow")
    profiles = request.getfixturevalue("ia_profiles")
    suite = build_policy_suite(wf, profiles, budget=BudgetRange(2000, 7000))
    requests = generate_requests(wf, WorkloadConfig(n_requests=400), seed=77)
    return wf, run_policies(wf, suite, requests)


@pytest.fixture(scope="module")
def va_results(request):
    wf = request.getfixturevalue("va_workflow")
    profiles = request.getfixturevalue("va_profiles")
    suite = build_policy_suite(wf, profiles, budget=BudgetRange(1500, 2000))
    requests = generate_requests(wf, WorkloadConfig(n_requests=400), seed=78)
    return wf, run_policies(wf, suite, requests)


class TestTable1Shape:
    @pytest.mark.parametrize("which", ["ia_results", "va_results"])
    def test_ordering(self, which, request):
        _, results = request.getfixturevalue(which)
        mean = {name: r.mean_allocated for name, r in results.items()}
        # Optimal lower-bounds everything.
        assert min(mean, key=mean.get) == "Optimal"
        # Late binding beats every early binder.
        assert mean["Janus"] < mean["ORION"]
        assert mean["Janus"] < mean["GrandSLAM"]
        assert mean["Janus"] < mean["GrandSLAM+"]
        # Exploration ordering within the family.
        assert mean["Janus"] <= mean["Janus-"] * 1.02
        assert mean["Janus+"] <= mean["Janus"] * 1.02
        # Janus- still beats the early binders (paper Table I).
        assert mean["Janus-"] < mean["ORION"]

    @pytest.mark.parametrize("which", ["ia_results", "va_results"])
    def test_magnitudes(self, which, request):
        _, results = request.getfixturevalue(which)
        opt = results["Optimal"].mean_allocated
        janus_mc = results["Janus"].mean_allocated

        def red(name):
            return 100.0 * (results[name].mean_allocated - janus_mc) / opt

        # Paper: ORION ~22.6/26.9%, GrandSLAM(+) ~31-35%, Janus- ~2.9/4.7%.
        assert 10.0 <= red("ORION") <= 45.0
        assert 20.0 <= red("GrandSLAM") <= 55.0
        assert 0.0 <= red("Janus-") <= 12.0

    @pytest.mark.parametrize("which", ["ia_results", "va_results"])
    def test_slo_compliance_all_late_binders(self, which, request):
        wf, results = request.getfixturevalue(which)
        for name in ("Janus", "Janus-", "Janus+", "Optimal"):
            assert results[name].violation_rate <= 0.01 + 1e-9, name

    @pytest.mark.parametrize("which", ["ia_results", "va_results"])
    def test_janus_trades_time_for_resources(self, which, request):
        # Fig. 4: Janus runs closer to the SLO than the over-provisioned
        # early binders while staying within it.
        _, results = request.getfixturevalue(which)
        assert (
            results["Janus"].e2e_percentile(99)
            >= results["GrandSLAM"].e2e_percentile(99)
        )


class TestAdapterOnline:
    def test_full_pipeline_decisions_fast_and_hitting(
        self, ia_workflow, ia_profiles
    ):
        policy = janus(ia_workflow, ia_profiles, budget=BudgetRange(2000, 7000))
        requests = generate_requests(
            ia_workflow, WorkloadConfig(n_requests=300), seed=5
        )
        AnalyticExecutor(ia_workflow).run(policy, requests)
        adapter: JanusAdapter = policy.adapter
        lats = np.asarray(adapter.decision_latencies_ms())
        assert lats.size == 300 * 3
        assert np.percentile(lats, 99) < 3.0  # paper §V-H
        assert policy.hit_rate > 0.97

    def test_hints_survive_serialization(self, ia_workflow, ia_profiles):
        # Developer -> provider hand-off: JSON round trip preserves
        # every online decision.
        from repro.synthesis.hints import WorkflowHints

        hints = synthesize_hints(
            ia_profiles, ia_workflow.chain, BudgetRange(2000, 7000)
        )
        clone = WorkflowHints.from_json(hints.to_json())
        a = JanusAdapter(hints, ia_workflow.slo_ms)
        b = JanusAdapter(clone, ia_workflow.slo_ms)
        rng = np.random.default_rng(0)
        for _ in range(200):
            stage = int(rng.integers(0, 3))
            budget = float(rng.uniform(0, 7500))
            da, db = a.decide(stage, budget), b.decide(stage, budget)
            assert (da.size, da.hit) == (db.size, db.hit)


class TestConcurrencyPanels:
    @pytest.mark.parametrize("conc,slo", [(2, 4000.0), (3, 5000.0)])
    def test_higher_concurrency_still_compliant(self, conc, slo):
        # Fig. 4 / Fig. 5b panels at batch sizes 2 and 3.
        from repro.profiling.profiler import profile_workflow
        from repro.workflow.catalog import intelligent_assistant

        wf = intelligent_assistant(slo_ms=slo, concurrency=conc)
        profiles = profile_workflow(
            wf, seed=5, samples=600,
            concurrencies=tuple(range(1, conc + 1)),
        )
        policy = janus(wf, profiles, concurrency=conc)
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=250), seed=6
        )
        result = AnalyticExecutor(wf).run(policy, requests)
        assert result.violation_rate <= 0.01 + 1e-9
