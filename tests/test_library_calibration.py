"""Calibration of the shipped IA / VA / microbenchmark models.

Asserts the paper-anchored shape targets (loose tolerances): P99/P50
skew ratios, budget-range bracketing, batchability, and the interference
ordering. These tests pin the calibration that the experiment
reproductions rely on.
"""

import pytest

from repro.functions.library import (
    ia_functions,
    microbenchmark_functions,
    va_functions,
)
from repro.functions.model import Resource
from repro.metrics.stats import ratio_of_percentiles


class TestIAFunctions:
    def test_chain_order(self):
        assert [m.name for m in ia_functions()] == ["OD", "QA", "TS"]

    def test_all_batchable(self):
        # IA is evaluated up to concurrency 3 (paper Fig. 4).
        assert all(m.batchable for m in ia_functions())

    def test_workset_ranges_match_paper(self):
        od, qa, _ts = ia_functions()
        assert od.workset.support() == (1.0, 15.0)  # objects per COCO image
        assert qa.workset.support() == (35.0, 641.0)  # words per SQuAD text

    def test_p99_p1_variance(self, ia_profiles):
        # Fig. 1b: up to ~3.8x variance from worksets; ours should land
        # in the 1.5x-4.5x band for each function.
        for name in ("OD", "QA", "TS"):
            prof = ia_profiles[name]
            ratio = prof.latency(99, 2000) / prof.latency(1, 2000)
            assert 1.5 <= ratio <= 4.5, f"{name}: {ratio}"

    def test_slo_feasible_at_kmax(self, ia_workflow, ia_profiles):
        # GrandSLAM must be configurable at the paper's 3 s SLO.
        total = sum(
            ia_profiles[n].latency(99, 3000) for n in ia_workflow.chain
        )
        assert total <= 3000.0

    def test_budget_range_brackets_paper(self, ia_workflow, ia_profiles):
        # Eq. 3 range must fit inside the paper's configured 2-7 s table.
        tmin = sum(ia_profiles[n].latency(1, 3000) for n in ia_workflow.chain)
        tmax = sum(ia_profiles[n].latency(99, 1000) for n in ia_workflow.chain)
        assert tmin < 2000.0
        assert 3500.0 <= tmax <= 7000.0


class TestVAFunctions:
    def test_chain_order(self):
        assert [m.name for m in va_functions()] == ["FE", "ICL", "ICO"]

    def test_fe_ico_not_batchable(self):
        # Paper §V-A: FE and ICO cannot process frames in batch form.
        fe, icl, ico = va_functions()
        assert not fe.batchable and not ico.batchable
        assert icl.batchable

    def test_p99_p50_ratios(self, va_profiles, rng):
        # Paper §V-A: average P99/P50 of 1.46 / 1.56 / 1.37 for FE/ICL/ICO.
        targets = {"FE": 1.46, "ICL": 1.56, "ICO": 1.37}
        for name, target in targets.items():
            prof = va_profiles[name]
            samples = None
            ratio = prof.latency(99, 2000) / prof.latency(50, 2000)
            assert ratio == pytest.approx(target, abs=0.25), f"{name}: {ratio}"
            del samples

    def test_slo_feasible_at_kmax(self, va_workflow, va_profiles):
        total = sum(va_profiles[n].latency(99, 3000) for n in va_workflow.chain)
        assert total <= 1500.0

    def test_min_sizes_infeasible_at_slo(self, va_workflow, va_profiles):
        # The SLO must actually bind: at Kmin the P99 path exceeds 1.5 s,
        # otherwise every policy would trivially allocate the minimum.
        total = sum(va_profiles[n].latency(99, 1000) for n in va_workflow.chain)
        assert total > 1500.0


class TestMicrobenchmarks:
    def test_four_distinct_dominant_resources(self):
        resources = {m.dominant_resource for m in microbenchmark_functions()}
        assert resources == {
            Resource.CPU,
            Resource.MEMORY,
            Resource.IO,
            Resource.NETWORK,
        }

    def test_low_noise(self):
        # Microbenchmarks isolate interference; intrinsic noise stays small.
        assert all(m.sigma <= 0.15 for m in microbenchmark_functions())


class TestSkewHelper:
    def test_ratio_of_percentiles(self, rng):
        data = rng.lognormal(0.0, 1.0, 20_000)
        # lognormal sigma=1: P99/P50 = exp(2.326) ~ 10.2
        assert ratio_of_percentiles(data) == pytest.approx(10.2, rel=0.15)

    def test_ratio_requires_positive_denominator(self):
        with pytest.raises(ValueError):
            ratio_of_percentiles([0.0, 0.0, 0.0])
