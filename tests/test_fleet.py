"""Multi-region fleet tests: specs, topology, routing, sweeps, serving.

The fleet subsystem joins every determinism contract the sweep engine
pins — the chaos/property checks here cover routing conservation under
failover, bit-identity across execution backends and warm cache replays,
and the digest-separation rule that keeps fleet-free cells on their
pre-existing cache keys.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import os

import numpy as np
import pytest

from repro.cluster.faults import RegionOutage, compile_region_failover
from repro.errors import ExperimentError
from repro.fleet import (
    ROUTING_POLICIES,
    FleetConfig,
    RegionTopology,
    RoutingContext,
    StreamRouter,
    fleet_requests,
    parse_fleet,
    region_arrival,
    route_requests,
)
from repro.rng import child_seed
from repro.scenarios import (
    ScenarioMatrix,
    SweepRunner,
    parse_fault,
    scenario_digest,
    scenario_requests,
)
from repro.scenarios.registry import scenario_workflow
from repro.serving import ServingConfig, run_service
from repro.serving.sources import arrival_source, fleet_arrival_source
from repro.traces.workload import ArrivalSpec

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _fleet(**overrides) -> FleetConfig:
    kwargs = dict(
        regions=("us-east", "eu-west", "ap-south"),
        routing="spillover",
        capacity=4,
    )
    kwargs.update(overrides)
    return FleetConfig(**kwargs)


def _fleet_matrix(**overrides) -> ScenarioMatrix:
    kwargs = dict(
        workflows=("IA",),
        arrivals=(
            ArrivalSpec(kind="diurnal", rate_per_s=20.0, period_s=10.0),
        ),
        slo_scales=(1.0,),
        tenant_counts=(1,),
        policies=("Janus",),
        n_requests=24,
        samples=200,
        seed=23,
        fleets=(_fleet(),),
        faults=(None, parse_fault("region-failover@2000")),
    )
    kwargs.update(overrides)
    return ScenarioMatrix(**kwargs)


# ---------------------------------------------------------------------------
# spec grammar and topology


class TestParseFleet:
    def test_region_count_uses_default_names(self):
        fleet = parse_fleet("regions=3")
        assert fleet.regions == ("us-east", "eu-west", "ap-south")
        assert fleet.routing == "home-region"

    def test_named_regions_and_knobs(self):
        fleet = parse_fleet(
            "regions=eu:us:ap,routing=latency-aware,capacity=6,"
            "rtt=25,weights=2:1:1"
        )
        assert fleet.regions == ("eu", "us", "ap")
        assert fleet.routing == "latency-aware"
        assert fleet.capacity == 6
        assert fleet.rtt_ms == 25.0
        assert fleet.effective_weights() == (2.0, 1.0, 1.0)

    def test_label_is_count_and_routing(self):
        assert parse_fleet("regions=3,routing=spillover").label == (
            "3r:spillover"
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "regions=3,routing=nope",
            "regions=3,bogus=1",
            "regions=0",
            "regions=3,capacity=0",
            "regions=3,rtt=-5",
            "regions=3,weights=1:2",
            "regions=a:a",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ExperimentError):
            parse_fleet(bad)

    def test_default_weights_are_uniform(self):
        assert _fleet().effective_weights() == (1.0, 1.0, 1.0)


class TestRegionTopology:
    def test_ring_is_symmetric_with_zero_diagonal(self):
        topo = RegionTopology.ring(4, hop_rtt_ms=30.0)
        for a in range(4):
            assert topo.rtt_ms(a, a) == 0.0
            for b in range(4):
                assert topo.rtt_ms(a, b) == topo.rtt_ms(b, a)
        # Opposite corners of a 4-ring are two hops either way.
        assert topo.rtt_ms(0, 2) == 60.0
        assert topo.rtt_ms(0, 1) == 30.0

    @pytest.mark.parametrize(
        "rtt",
        [
            ((0.0, 1.0),),  # not square
            ((1.0, 1.0), (1.0, 0.0)),  # nonzero diagonal
            ((0.0, 1.0), (2.0, 0.0)),  # asymmetric
            ((0.0, -1.0), (-1.0, 0.0)),  # negative
        ],
    )
    def test_bad_tables_rejected(self, rtt):
        with pytest.raises(ExperimentError):
            RegionTopology(rtt=rtt)


# ---------------------------------------------------------------------------
# routing policies and the stream router


def _ctx(fleet: FleetConfig, queue_penalty_ms: float = 100.0):
    return RoutingContext(
        fleet=fleet,
        topology=fleet.topology(),
        weights=fleet.effective_weights(),
        queue_penalty_ms=queue_penalty_ms,
    )


class TestRoutingPolicies:
    def test_home_region_stays_home_until_dark(self):
        policy = ROUTING_POLICIES["home-region"]
        ctx = _ctx(_fleet())
        assert policy.choose(1, [0, 1, 2], [9, 9, 0], ctx) == 1
        # Home dark: least-loaded survivor, ties by index.
        assert policy.choose(1, [0, 2], [3, 9, 3], ctx) == 0

    def test_weighted_balances_by_weight(self):
        policy = ROUTING_POLICIES["weighted"]
        ctx = _ctx(_fleet(weights=(4.0, 1.0, 1.0)))
        # Equal raw load: the heavy region wins on load/weight.
        assert policy.choose(2, [0, 1, 2], [2, 2, 2], ctx) == 0

    def test_latency_aware_trades_rtt_against_queue(self):
        policy = ROUTING_POLICIES["latency-aware"]
        fleet = _fleet(rtt_ms=60.0)
        ctx = _ctx(fleet, queue_penalty_ms=50.0)
        # Lightly loaded home beats a free neighbour (60 ms hop).
        assert policy.choose(0, [0, 1, 2], [1, 0, 0], ctx) == 0
        # Two in-flight at home (100 ms) now lose to the 60 ms hop.
        assert policy.choose(0, [0, 1, 2], [2, 0, 0], ctx) == 1

    def test_spillover_overflows_at_capacity(self):
        policy = ROUTING_POLICIES["spillover"]
        fleet = _fleet(capacity=2)
        ctx = _ctx(fleet)
        assert policy.choose(0, [0, 1, 2], [1, 0, 0], ctx) == 0
        assert policy.choose(0, [0, 1, 2], [2, 5, 3], ctx) == 2
        # Saturated home with no peers up still serves at home.
        assert policy.choose(0, [0], [2, 0, 0], ctx) == 0


class TestStreamRouter:
    def test_conservation_every_request_served_exactly_once(self):
        fleet = _fleet(capacity=2)
        n = 200
        homes = [i % 3 for i in range(n)]
        arrivals = [float(i * 7) for i in range(n)]
        outage = RegionOutage(region_index=1, start_ms=200.0, end_ms=900.0)
        plan = route_requests(
            fleet, homes, arrivals, hold_ms=120.0, outage=outage
        )
        assert len(plan.assigned) == n
        assert sum(plan.region_counts) == n
        assert plan.failovers > 0
        remote = sum(
            1 for h, c in zip(homes, plan.assigned) if h != c
        )
        assert plan.spillovers + plan.failovers == remote
        # Nothing lands on the dark region inside the window.
        for home, t, chosen in zip(homes, arrivals, plan.assigned):
            if outage.down_at(t):
                assert chosen != 1

    def test_rtt_charged_only_off_home(self):
        fleet = _fleet(routing="home-region", rtt_ms=40.0)
        plan = route_requests(
            fleet, [0, 1, 2], [0.0, 1.0, 2.0], hold_ms=50.0
        )
        assert plan.assigned == (0, 1, 2)
        assert plan.rtt_ms == (0.0, 0.0, 0.0)
        assert plan.spillovers == plan.failovers == 0

    def test_outage_needs_two_regions(self):
        fleet = FleetConfig(regions=("solo",))
        with pytest.raises(ExperimentError, match=">= 2 regions"):
            StreamRouter(
                fleet,
                hold_ms=10.0,
                outage=RegionOutage(0, 0.0, 1.0),
            )

    def test_dark_choice_is_rejected(self):
        from repro.fleet.routing import register_routing

        if "test-always-zero" not in ROUTING_POLICIES:
            @register_routing("test-always-zero")
            class _AlwaysZero:
                def choose(self, home, up, load, ctx):
                    return 0

        fleet = _fleet(routing="test-always-zero")
        router = StreamRouter(
            fleet, hold_ms=10.0, outage=RegionOutage(0, 0.0, 100.0)
        )
        with pytest.raises(ExperimentError, match="dark region"):
            router.route(1, 50.0)


class TestRegionFailoverCompile:
    def test_deterministic_and_inside_horizon(self):
        spec = parse_fault("region-failover@2000")
        a = compile_region_failover(spec, 99, 3, 10_000.0)
        b = compile_region_failover(spec, 99, 3, 10_000.0)
        assert a == b
        assert 0 <= a.region_index < 3
        assert 0.0 <= a.start_ms
        assert a.end_ms == a.start_ms + 2000.0
        assert a.end_ms <= 10_000.0

    def test_different_seeds_can_move_the_window(self):
        spec = parse_fault("region-failover@2000")
        windows = {
            compile_region_failover(spec, seed, 3, 10_000.0)
            for seed in range(8)
        }
        assert len(windows) > 1


# ---------------------------------------------------------------------------
# request generation (common random numbers)


class TestFleetRequests:
    def test_region_zero_replays_the_single_region_sibling(self):
        matrix = _fleet_matrix(faults=(None,))
        (scenario,) = matrix.expand()
        workflow = scenario_workflow(scenario.workflow)
        slo_ms = workflow.slo_ms * scenario.slo_scale
        requests, homes = fleet_requests(workflow, scenario, slo_ms)
        sibling = dataclasses.replace(scenario, fleet=None)
        solo = scenario_requests(workflow, sibling, slo_ms)
        at_home = [
            req for req, home in zip(requests, homes) if home == 0
        ]
        assert len(at_home) == len(solo)
        for mine, theirs in zip(at_home, solo):
            assert mine.arrival_ms == theirs.arrival_ms
            assert mine.stage_dynamics == theirs.stage_dynamics

    def test_regions_get_distinct_streams_and_phases(self):
        matrix = _fleet_matrix(faults=(None,))
        (scenario,) = matrix.expand()
        arrival = scenario.effective_arrival()
        shifted = region_arrival(arrival, 1, 3)
        assert shifted.phase != arrival.phase
        assert region_arrival(arrival, 0, 3) == arrival
        # Phase-free kinds shift nothing — they differ only by seed.
        poisson = ArrivalSpec(kind="poisson", rate_per_s=8.0)
        assert region_arrival(poisson, 2, 3) == poisson
        # Per-region tenant seeds are distinct from the home path.
        assert child_seed(
            scenario.seed, "region", "eu-west", "tenant", "0"
        ) != child_seed(scenario.seed, "tenant", "0")


# ---------------------------------------------------------------------------
# sweep integration: bit-identity, warm replay, counters, digests


class TestFleetSweep:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return SweepRunner(max_workers=1, backend="serial").run(
            _fleet_matrix()
        )

    def test_bit_identical_across_backends(self, serial_report, monkeypatch):
        monkeypatch.setenv("PYTHONPATH", SRC_DIR)
        matrix = _fleet_matrix()
        for backend, options in (
            ("pool", None),
            ("workstealing", None),
            ("distributed", {"hosts": "local:2", "connect_timeout": 60.0}),
        ):
            other = SweepRunner(
                max_workers=2, backend=backend, backend_options=options
            ).run(matrix)
            assert other.to_json() == serial_report.to_json(), (
                f"{backend} diverged on the fleet matrix"
            )

    def test_warm_cache_replay_is_byte_identical(self, tmp_path):
        cold = SweepRunner(
            max_workers=1, backend="serial", cache_dir=tmp_path
        ).run(_fleet_matrix())
        warm = SweepRunner(
            max_workers=1, backend="serial", cache_dir=tmp_path
        ).run(_fleet_matrix())
        assert warm.to_json() == cold.to_json()
        assert warm.cell_cache == {"hits": 2, "misses": 0}

    def test_counters_nonzero_in_json_and_csv(
        self, serial_report, tmp_path
    ):
        payload = json.loads(serial_report.to_json())
        fault_free, faulted = payload["results"]
        extras = fault_free["extras"]["Janus"]
        assert extras["fleet_spillovers"] > 0
        assert extras["fleet_failovers"] == 0
        assert faulted["extras"]["Janus"]["fleet_failovers"] > 0
        # Per-region accounting rides in the JSON extras.
        for name in ("us-east", "eu-west", "ap-south"):
            assert f"fleet_share_{name}" in extras
            assert f"fleet_slo_{name}" in extras
        shares = [extras[f"fleet_share_{n}"]
                  for n in ("us-east", "eu-west", "ap-south")]
        assert sum(shares) == pytest.approx(1.0)
        # The fixed fleet columns are promoted to the CSV.
        csv_path = tmp_path / "fleet.csv"
        serial_report.write_csv(csv_path)
        text = csv_path.read_text()
        header = text.splitlines()[0]
        for column in (
            "fleet_spillovers",
            "fleet_failovers",
            "fleet_remote_fraction",
            "fleet_rtt_penalty_ms",
        ):
            assert column in header

    def test_executor_label_names_the_fleet(self, serial_report):
        payload = json.loads(serial_report.to_json())
        assert payload["results"][0]["executor"].startswith("Fleet[3x")

    def test_scenario_id_carries_the_fleet_label(self):
        scenarios = _fleet_matrix().expand()
        assert all(
            "/fleet 3r:spillover" in s.scenario_id for s in scenarios
        )


class TestDigestSeparation:
    def test_fleet_free_cells_keep_their_digests(self):
        base = _fleet_matrix(faults=(None,), fleets=(None,))
        legacy = ScenarioMatrix(
            workflows=("IA",),
            arrivals=(
                ArrivalSpec(kind="diurnal", rate_per_s=20.0, period_s=10.0),
            ),
            slo_scales=(1.0,),
            tenant_counts=(1,),
            policies=("Janus",),
            n_requests=24,
            samples=200,
            seed=23,
        )
        for with_axis, without in zip(base.expand(), legacy.expand()):
            assert scenario_digest(with_axis) == scenario_digest(without)
            assert with_axis.seed == without.seed

    def test_fleet_cells_get_distinct_digests_but_shared_seeds(self):
        fleet_free = _fleet_matrix(faults=(None,), fleets=(None,)).expand()
        fleeted = _fleet_matrix(faults=(None,)).expand()
        assert scenario_digest(fleeted[0]) != scenario_digest(fleet_free[0])
        # CRN: the fleet cell replays its sibling's workload seed.
        assert fleeted[0].seed == fleet_free[0].seed

    def test_zero_phase_keeps_legacy_arrival_labels(self):
        spec = ArrivalSpec(kind="diurnal", rate_per_s=8.0)
        explicit = dataclasses.replace(spec, phase=0.0)
        assert explicit.label == spec.label
        assert "+0" not in spec.label
        shifted = dataclasses.replace(spec, phase=1.5)
        assert shifted.label != spec.label

    def test_region_failover_requires_a_fleet_on_every_entry(self):
        with pytest.raises(ExperimentError, match="fleet"):
            _fleet_matrix(fleets=(None, _fleet()))
        with pytest.raises(ExperimentError, match="fleet"):
            _fleet_matrix(fleets=(None,))

    def test_streaming_rejects_fleets(self):
        with pytest.raises(ExperimentError, match="[Ss]treaming"):
            _fleet_matrix(faults=(None,), streaming=True)


# ---------------------------------------------------------------------------
# serving integration


class TestFleetServing:
    def _config(self, **overrides):
        kwargs = dict(
            workflow="IA",
            policy="Janus",
            source=ArrivalSpec(
                kind="diurnal", rate_per_s=40.0, period_s=20.0
            ),
            seed=7,
            samples=300,
            max_requests=200,
            metrics_every=100,
            fleet=_fleet(),
        )
        kwargs.update(overrides)
        return ServingConfig(**kwargs)

    def test_fleet_serve_is_deterministic_with_counters(self):
        first = run_service(self._config())
        second = run_service(self._config())
        assert first.snapshot == second.snapshot
        snap = first.snapshot
        assert snap["fleet_spillovers"] > 0
        assert 0.0 <= snap["fleet_remote_fraction"] <= 1.0
        shares = [
            snap[f"fleet_share_{name}"]
            for name in ("us-east", "eu-west", "ap-south")
        ]
        assert sum(shares) == pytest.approx(1.0)

    def test_region_failover_serving_needs_a_fleet(self):
        with pytest.raises(ExperimentError, match="fleet"):
            self._config(
                fleet=None, faults=parse_fault("region-failover@2000")
            )

    def test_cluster_kinds_still_rejected(self):
        with pytest.raises(ExperimentError, match="cluster"):
            self._config(faults=parse_fault("preempt@2"))

    def test_fleet_free_snapshot_has_no_fleet_keys(self):
        report = run_service(self._config(fleet=None))
        assert not any(k.startswith("fleet_") for k in report.snapshot)

    def test_merged_source_preserves_region_zero_stream(self):
        spec = ArrivalSpec(kind="diurnal", rate_per_s=20.0, period_s=10.0)
        specs = [region_arrival(spec, r, 2) for r in range(2)]
        merged = fleet_arrival_source(
            specs, [np.random.default_rng(5), np.random.default_rng(9)]
        )
        taken = list(itertools.islice(merged, 300))
        assert taken == sorted(taken)  # time-ordered merge
        r0 = [t for t, region in taken if region == 0]
        solo = list(
            itertools.islice(
                arrival_source(spec, np.random.default_rng(5)), len(r0)
            )
        )
        assert r0 == solo
