"""Discrete-event simulation kernel: events, processes, run loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Event, Interrupt, Simulator


class TestEvents:
    def test_timeout_fires_at_delay(self):
        sim = Simulator()
        ev = sim.timeout(10.0, value="done")
        sim.run()
        assert ev.processed and ev.value == "done"
        assert sim.now == 10.0

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_event_succeed_once(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_processed_runs_immediately(self):
        sim = Simulator()
        ev = sim.timeout(0.0)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [None]

    def test_all_of_collects_values(self):
        sim = Simulator()
        evs = [sim.timeout(i, value=i) for i in (3.0, 1.0, 2.0)]
        combined = sim.all_of(evs)
        sim.run()
        assert combined.value == [3.0, 1.0, 2.0]
        assert sim.now == 3.0

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        combined = sim.all_of([])
        sim.run()
        assert combined.processed and combined.value == []

    def test_any_of_first_wins(self):
        sim = Simulator()
        evs = [sim.timeout(5.0, value="slow"), sim.timeout(1.0, value="fast")]
        first = sim.any_of(evs)
        sim.run(until=first)
        assert first.value == "fast"

    def test_any_of_empty_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestRunLoop:
    def test_run_until_time_advances_clock(self):
        sim = Simulator()
        sim.timeout(100.0)
        sim.run(until=50.0)
        assert sim.now == 50.0

    def test_run_until_past_deadline_rejected(self):
        sim = Simulator()
        sim.run(until=10.0)
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_run_until_event_returns_value(self):
        sim = Simulator()
        ev = sim.timeout(4.0, value=17)
        assert sim.run(until=ev) == 17

    def test_run_until_event_propagates_failure(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=ev)

    def test_run_until_unreachable_event_raises(self):
        sim = Simulator()
        target = sim.event()  # never triggered
        sim.timeout(1.0)
        with pytest.raises(SimulationError):
            sim.run(until=target)

    def test_step_on_empty_heap_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(9.0)
        assert sim.peek() == 9.0

    def test_deterministic_tiebreak(self):
        # Two events at the same time process in scheduling order.
        order = []
        sim = Simulator()
        sim.timeout(5.0).add_callback(lambda e: order.append("first"))
        sim.timeout(5.0).add_callback(lambda e: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_event_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.timeout(float(i))
        sim.run()
        assert sim.processed_events == 5


class TestProcesses:
    def test_process_sequencing(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield sim.timeout(10.0)
            trace.append(("mid", sim.now))
            got = yield sim.timeout(5.0, value="payload")
            trace.append((got, sim.now))
            return "finished"

        p = sim.process(proc())
        result = sim.run(until=p)
        assert result == "finished"
        assert trace == [("start", 0.0), ("mid", 10.0), ("payload", 15.0)]

    def test_nested_processes(self):
        sim = Simulator()

        def child():
            yield sim.timeout(3.0)
            return 42

        def parent():
            value = yield sim.process(child())
            return value + 1

        assert sim.run(until=sim.process(parent())) == 43

    def test_process_exception_propagates(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("inside process")

        p = sim.process(bad())
        with pytest.raises(ValueError, match="inside process"):
            sim.run(until=p)

    def test_yield_non_event_fails_process(self):
        sim = Simulator()

        def wrong():
            yield 5  # type: ignore[misc]

        p = sim.process(wrong())
        with pytest.raises(SimulationError):
            sim.run(until=p)

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_interrupt(self):
        sim = Simulator()
        caught = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as exc:
                caught.append(exc.cause)
                return "interrupted"
            return "slept"

        p = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            p.interrupt(cause="wakeup")

        sim.process(interrupter())
        assert sim.run(until=p) == "interrupted"
        assert caught == ["wakeup"]

    def test_interrupt_finished_process_rejected(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(0.0)

        p = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_is_alive(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(5.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive
