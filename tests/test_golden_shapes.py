"""Golden regression tests: seed-pinned end-to-end ComparisonReport numbers.

These pin *exact* floats for one chain and one DAG evaluation, so any
refactor of the serving hot path (executors, sim kernel, synthesis, RNG
derivation) that changes behaviour — even in the last bit — fails loudly.
Qualitative assertions live elsewhere; this file is deliberately brittle.

If a change is *meant* to alter results (new policy logic, different
seeding), regenerate the tables with the expressions in each test and
justify the diff in the PR.
"""

import pytest

from repro.api.session import Session
from repro.scenarios.registry import scenario_workflow

#: Session.evaluate(scenario_workflow("IA"), slo_ms=3000, requests=40,
#: samples=400, seed=123, include=(...)) — exact table, pinned.
GOLDEN_CHAIN = {
    "Optimal": {
        "mean_allocated_millicores": 3097.5,
        "mean_slack": 0.09613557223752793,
        "normalized_cpu": 1.0,
        "p50_e2e_ms": 2721.9329144667754,
        "p99_e2e_ms": 2997.0040407996003,
        "violation_rate": 0.0,
    },
    "ORION": {
        "mean_allocated_millicores": 4200.0,
        "mean_slack": 0.2907602465133176,
        "normalized_cpu": 1.3559322033898304,
        "p50_e2e_ms": 2068.8147458011344,
        "p99_e2e_ms": 2806.899661461441,
        "violation_rate": 0.0,
    },
    "GrandSLAM": {
        "mean_allocated_millicores": 4500.0,
        "mean_slack": 0.3289349223126473,
        "normalized_cpu": 1.4527845036319613,
        "p50_e2e_ms": 1966.7358873773414,
        "p99_e2e_ms": 2662.897958637832,
        "violation_rate": 0.0,
    },
    "Janus": {
        "mean_allocated_millicores": 3567.5,
        "mean_slack": 0.18354688412095962,
        "normalized_cpu": 1.1517352703793382,
        "p50_e2e_ms": 2436.8589629093385,
        "p99_e2e_ms": 2881.921690730921,
        "violation_rate": 0.0,
    },
}

#: Session.evaluate(scenario_workflow("media"), requests=30, samples=400,
#: seed=123, include=("GrandSLAM", "Janus")) — exact table, pinned.
GOLDEN_DAG = {
    "GrandSLAM": {
        "mean_allocated_millicores": 4400.0,
        "mean_slack": 0.41304665367778653,
        "normalized_cpu": 1.0,
        "p50_e2e_ms": 1368.3147852294676,
        "p99_e2e_ms": 2002.987391257307,
        "violation_rate": 0.0,
    },
    "Janus": {
        "mean_allocated_millicores": 4000.0,
        "mean_slack": 0.36459916546562543,
        "normalized_cpu": 0.9090909090909091,
        "p50_e2e_ms": 1481.0532377746454,
        "p99_e2e_ms": 2168.7621027488844,
        "violation_rate": 0.0,
    },
}


def _assert_exact(actual: dict, golden: dict) -> None:
    assert list(actual) == list(golden), "policy set or order drifted"
    for policy, golden_row in golden.items():
        row = actual[policy]
        assert set(row) == set(golden_row), policy
        for metric, value in golden_row.items():
            assert row[metric] == value, (
                f"{policy}.{metric}: got {row[metric]!r}, pinned {value!r}"
            )


class TestGoldenChain:
    @pytest.fixture(scope="class")
    def report(self):
        return Session.evaluate(
            scenario_workflow("IA"), slo_ms=3000.0, requests=40,
            samples=400, seed=123,
            include=("Optimal", "ORION", "GrandSLAM", "Janus"),
        )

    def test_exact_table(self, report):
        _assert_exact(report.table, GOLDEN_CHAIN)

    def test_metadata(self, report):
        assert report.topology == "chain"
        assert report.baseline == "Optimal"
        assert report.executor == "AnalyticExecutor"


class TestGoldenDag:
    @pytest.fixture(scope="class")
    def report(self):
        return Session.evaluate(
            scenario_workflow("media"), requests=30, samples=400, seed=123,
            include=("GrandSLAM", "Janus"),
        )

    def test_exact_table(self, report):
        _assert_exact(report.table, GOLDEN_DAG)

    def test_metadata(self, report):
        assert report.topology == "dag"
        assert report.executor == "DagAnalyticExecutor"
