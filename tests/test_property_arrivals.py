"""Property tests for the arrival generators (hypothesis).

Invariants: timestamps are non-negative and sorted for every process; the
empirical rate converges to the requested (effective) rate; constant
spacing is exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import derive_rng
from repro.traces.arrivals import (
    azure_like_arrivals,
    burst_arrivals,
    constant_arrivals,
    poisson_arrivals,
)
from repro.traces.diurnal import DiurnalRate, nhpp_arrivals
from repro.traces.workload import ArrivalSpec

rates = st.floats(min_value=0.5, max_value=200.0,
                  allow_nan=False, allow_infinity=False)
seeds = st.integers(min_value=0, max_value=2**31 - 1)

#: Large-n draws so empirical-rate checks have tight sampling error
#: (exponential mean over n=6000 has ~1.3% relative std).
N_RATE = 6000


@settings(max_examples=40, deadline=None)
@given(rate=rates, seed=seeds)
def test_poisson_sorted_nonnegative_and_rate(rate, seed):
    arr = poisson_arrivals(rate, N_RATE, derive_rng(seed, "poisson"))
    assert arr.shape == (N_RATE,)
    assert np.all(arr >= 0)
    assert np.all(np.diff(arr) >= 0)
    empirical_rate = 1000.0 * N_RATE / arr[-1]
    assert empirical_rate == pytest.approx(rate, rel=0.10)


@settings(max_examples=40, deadline=None)
@given(
    base=rates,
    burst_factor=st.floats(min_value=1.0, max_value=50.0),
    fraction=st.floats(min_value=0.0, max_value=1.0),
    seed=seeds,
)
def test_burst_sorted_nonnegative_and_effective_rate(
    base, burst_factor, fraction, seed
):
    burst = base * burst_factor
    arr = burst_arrivals(base, burst, fraction, N_RATE, derive_rng(seed, "burst"))
    assert np.all(arr >= 0)
    assert np.all(np.diff(arr) >= 0)
    # Mixture mean gap: f/burst + (1-f)/base, so the effective rate is its
    # reciprocal; the draw must track it, not the base rate. The mixture's
    # gap variance peaks when a rare slow component dominates (small 1-f,
    # large burst factor), so the tolerance is looser than the pure-Poisson
    # 10% — 0.12 flaked on fresh hypothesis databases (as in CI).
    effective = 1.0 / (fraction / burst + (1.0 - fraction) / base)
    empirical_rate = 1000.0 * N_RATE / arr[-1]
    assert empirical_rate == pytest.approx(effective, rel=0.2)


@settings(max_examples=60, deadline=None)
@given(
    interval=st.floats(min_value=0.0, max_value=10_000.0,
                       allow_nan=False, allow_infinity=False),
    n=st.integers(min_value=1, max_value=500),
)
def test_constant_spacing_exact(interval, n):
    arr = constant_arrivals(interval, n)
    assert arr.shape == (n,)
    assert arr[0] == 0.0
    # Exactness guarantee: the i-th arrival is bit-exactly i * interval
    # (diffs of i*x are not representable for arbitrary floats, so the
    # closed form — not np.diff — is the invariant).
    assert np.array_equal(arr, np.arange(n, dtype=np.float64) * interval)
    assert np.all(np.diff(arr) >= 0)


@settings(max_examples=40, deadline=None)
@given(
    rate=rates,
    sigma=st.floats(min_value=0.0, max_value=1.0),
    seed=seeds,
)
def test_azure_sorted_nonnegative_and_rate(rate, sigma, seed):
    arr = azure_like_arrivals(rate, N_RATE, derive_rng(seed, "azure"), sigma=sigma)
    assert np.all(arr >= 0)
    assert np.all(np.diff(arr) >= 0)
    # The lognormal gaps are unit-mean by construction; moderate sigma keeps
    # the n=6000 sampling error of the empirical mean within ~20%.
    empirical_rate = 1000.0 * N_RATE / arr[-1]
    assert empirical_rate == pytest.approx(rate, rel=0.20)


@settings(max_examples=30, deadline=None)
@given(
    kind=st.sampled_from(["constant", "poisson", "burst", "azure", "diurnal"]),
    rate=rates,
    seed=seeds,
)
def test_arrival_spec_replays_identically(kind, rate, seed):
    spec = ArrivalSpec(kind=kind, rate_per_s=rate, interval_ms=rate)
    a = spec.timestamps(200, derive_rng(seed, "spec"))
    b = spec.timestamps(200, derive_rng(seed, "spec"))
    assert np.array_equal(a, b)
    assert spec.label  # every kind renders a stable label


# -- the NHPP thinning sampler (diurnal arrivals) ---------------------------

@settings(max_examples=40, deadline=None)
@given(
    rate=rates,
    amplitude=st.floats(min_value=0.0, max_value=1.0),
    seed=seeds,
)
def test_nhpp_sorted_nonnegative_and_mean_rate(rate, amplitude, seed):
    # Period chosen so the draw spans ~20 full cycles: the empirical rate
    # then converges to the curve's *mean*, whatever the swing.
    period_s = N_RATE / rate / 20.0
    curve = DiurnalRate.sinusoid(rate, amplitude=amplitude, period_s=period_s)
    arr = nhpp_arrivals(curve, N_RATE, derive_rng(seed, "nhpp"))
    assert arr.shape == (N_RATE,)
    assert np.all(arr >= 0)
    assert np.all(np.diff(arr) >= 0)
    empirical_rate = 1000.0 * N_RATE / arr[-1]
    assert empirical_rate == pytest.approx(curve.mean_rate, rel=0.12)


@settings(max_examples=25, deadline=None)
@given(
    low=st.floats(min_value=2.0, max_value=20.0),
    factor=st.floats(min_value=3.0, max_value=10.0),
    seed=seeds,
)
def test_nhpp_empirical_rate_tracks_piecewise_curve(low, factor, seed):
    # Two-level step schedule: the per-phase arrival counts must track
    # the phase rates — thinning is doing its job exactly when the
    # high-phase share matches the curve's integral over the observed
    # span (the stream truncates mid-period, so the expectation must
    # integrate the actual window, not assume whole cycles).
    high = low * factor
    period = 10.0
    half = period / 2.0
    curve = DiurnalRate.piecewise(((0.0, low), (half, high)), period_s=period)
    arr = nhpp_arrivals(curve, N_RATE, derive_rng(seed, "nhpp-pw"))
    phase = np.mod(arr / 1000.0, period)
    in_high = int(np.count_nonzero(phase >= half))
    span_s = arr[-1] / 1000.0
    full, rem = divmod(span_s, period)
    low_time = full * half + min(rem, half)
    high_time = full * half + max(0.0, rem - half)
    expected_share = (high * high_time) / (
        high * high_time + low * low_time
    )
    # Binomial sampling error at n=6000 is below 0.007; 0.03 is generous.
    assert in_high / arr.size == pytest.approx(expected_share, abs=0.03)


@settings(max_examples=25, deadline=None)
@given(
    rate=rates,
    amplitude=st.floats(min_value=0.0, max_value=1.0),
    period_s=st.floats(min_value=1.0, max_value=600.0),
    n=st.integers(min_value=1, max_value=2000),
    seed=seeds,
)
def test_nhpp_deterministic_under_fixed_seed(rate, amplitude, period_s, n, seed):
    curve = DiurnalRate.sinusoid(rate, amplitude=amplitude, period_s=period_s)
    a = nhpp_arrivals(curve, n, derive_rng(seed, "nhpp-det"))
    b = nhpp_arrivals(curve, n, derive_rng(seed, "nhpp-det"))
    assert np.array_equal(a, b)
    # A shifted seed must shift the draw (vanishing collision odds).
    c = nhpp_arrivals(curve, n, derive_rng(seed + 1, "nhpp-det"))
    assert not np.array_equal(a, c)
