"""Top-level callables the distributed-fabric tests ship to worker agents.

Worker agents are fresh ``python -m repro.scenarios.worker`` processes,
so a function dispatched to them must be importable by module name —
closures and test-local defs cannot cross that boundary. Tests that
launch real subprocess workers put this directory on the workers'
``PYTHONPATH`` (see ``test_distributed.py``) and reference these helpers
instead. In-thread worker tests don't need this module: same-process
unpickling resolves the test module through ``sys.modules``.
"""

from __future__ import annotations

import os
import time


def double(x: int) -> int:
    return 2 * x


def slow_double(item: tuple[float, float]) -> float:
    value, delay = item
    time.sleep(delay)
    return 2 * value


def crash_once(item: tuple[str | None, int]) -> int:
    """Die hard (``os._exit``, no cleanup) the first time the marked item
    runs; any re-dispatch — or any unmarked item — succeeds."""
    marker, value = item
    if marker and not os.path.exists(marker):
        with open(marker, "w", encoding="utf-8") as fh:
            fh.write("died here")
        os._exit(17)
    return value * 2


class Costed:
    """Item with a declared cost estimate, for dispatch-order tests."""

    def __init__(
        self,
        value: int,
        cost: float = 1.0,
        delay: float = 0.0,
        out_dir: str | None = None,
        poison: int | None = None,
    ) -> None:
        self.value = value
        self.cost = cost
        self.delay = delay
        self.out_dir = out_dir
        self.poison = poison

    def cost_estimate(self) -> float:
        return self.cost


def eval_costed(item: Costed) -> int:
    """Sleep ``delay``; raise for the poisoned value, else touch
    ``<out_dir>/<value>.done`` (when configured) and return the value.
    The sentinel files let fail-fast tests count how much of the queue
    actually evaluated after the first error."""
    time.sleep(item.delay)
    if item.poison is not None and item.value == item.poison:
        raise ValueError(f"poisoned item {item.value}")
    if item.out_dir:
        path = os.path.join(item.out_dir, f"{item.value}.done")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("ok")
    return item.value
