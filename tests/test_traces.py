"""Traces and workloads: arrivals, request streams, Azure-like trace."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.rng import make_rng
from repro.traces.arrivals import burst_arrivals, constant_arrivals, poisson_arrivals
from repro.traces.azure import generate_trace, slack_analysis
from repro.traces.workload import WorkloadConfig, generate_requests, shifted_workload


class TestArrivals:
    def test_poisson_rate(self):
        arr = poisson_arrivals(10.0, 5000, make_rng(1))
        mean_gap = np.diff(np.concatenate(([0.0], arr))).mean()
        assert mean_gap == pytest.approx(100.0, rel=0.1)  # 10/s -> 100 ms

    def test_poisson_monotone(self):
        arr = poisson_arrivals(5.0, 100, make_rng(2))
        assert np.all(np.diff(arr) >= 0)

    def test_poisson_invalid(self):
        with pytest.raises(TraceError):
            poisson_arrivals(0.0, 10, make_rng(1))
        with pytest.raises(TraceError):
            poisson_arrivals(1.0, 0, make_rng(1))

    def test_constant(self):
        arr = constant_arrivals(50.0, 4)
        assert list(arr) == [0.0, 50.0, 100.0, 150.0]

    def test_constant_invalid(self):
        with pytest.raises(TraceError):
            constant_arrivals(-1.0, 3)

    def test_burst_mixture_faster_than_base(self):
        base = poisson_arrivals(10.0, 4000, make_rng(3))
        bursty = burst_arrivals(10.0, 100.0, 0.5, 4000, make_rng(3))
        assert bursty[-1] < base[-1]

    def test_burst_invalid(self):
        with pytest.raises(TraceError):
            burst_arrivals(1.0, 2.0, 1.5, 10, make_rng(1))


class TestWorkload:
    def test_deterministic(self, small_workflow):
        a = generate_requests(small_workflow, WorkloadConfig(n_requests=20), seed=7)
        b = generate_requests(small_workflow, WorkloadConfig(n_requests=20), seed=7)
        for ra, rb in zip(a, b):
            assert ra.stage_dynamics == rb.stage_dynamics

    def test_seed_sensitivity(self, small_workflow):
        a = generate_requests(small_workflow, WorkloadConfig(n_requests=5), seed=7)
        b = generate_requests(small_workflow, WorkloadConfig(n_requests=5), seed=8)
        assert a[0].stage_dynamics != b[0].stage_dynamics

    def test_carries_all_stage_dynamics(self, small_workflow):
        reqs = generate_requests(small_workflow, WorkloadConfig(n_requests=3))
        for req in reqs:
            assert set(req.stage_dynamics) == set(small_workflow.chain)

    def test_slo_defaults_to_workflow(self, small_workflow):
        req = generate_requests(small_workflow, WorkloadConfig(n_requests=1))[0]
        assert req.slo_ms == small_workflow.slo_ms

    def test_slo_override(self, small_workflow):
        cfg = WorkloadConfig(n_requests=1, slo_ms=123.0)
        assert generate_requests(small_workflow, cfg)[0].slo_ms == 123.0

    def test_poisson_arrivals_attached(self, small_workflow):
        cfg = WorkloadConfig(n_requests=50, arrival_rate_per_s=100.0)
        reqs = generate_requests(small_workflow, cfg, seed=4)
        arrivals = [r.arrival_ms for r in reqs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_interference_draw(self, small_workflow):
        cfg = WorkloadConfig(
            n_requests=10, interference=lambda rng: 1.0 + rng.random()
        )
        reqs = generate_requests(small_workflow, cfg, seed=4)
        qs = [d.interference for r in reqs for d in r.stage_dynamics.values()]
        assert all(q >= 1.0 for q in qs)
        assert max(qs) > 1.0

    def test_workset_scale(self, small_workflow):
        plain = generate_requests(small_workflow, WorkloadConfig(n_requests=10), seed=4)
        scaled = shifted_workload(small_workflow, 10, workset_scale=2.0, seed=4)
        for a, b in zip(plain, scaled):
            for f in small_workflow.chain:
                assert b.dynamics_for(f).workset == pytest.approx(
                    2.0 * a.dynamics_for(f).workset
                )

    def test_invalid_config(self):
        with pytest.raises(TraceError):
            WorkloadConfig(n_requests=0)
        with pytest.raises(TraceError):
            WorkloadConfig(workset_scale=0.0)


class TestAzureTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(n_functions=50, n_invocations=20_000, seed=1)

    def test_dimensions(self, trace):
        assert trace.n_invocations == 20_000
        assert trace.n_functions == 50
        assert trace.durations_ms.min() > 0

    def test_zipf_popularity(self, trace):
        counts = np.bincount(trace.function_ids, minlength=50)
        order = trace.popularity_order()
        assert counts[order[0]] >= counts[order[-1]]
        # Head dominance: top-10 functions carry most traffic.
        assert counts[order[:10]].sum() / counts.sum() > 0.5

    def test_reproducible(self):
        a = generate_trace(n_functions=10, n_invocations=1000, seed=3)
        b = generate_trace(n_functions=10, n_invocations=1000, seed=3)
        np.testing.assert_array_equal(a.durations_ms, b.durations_ms)

    def test_invalid_params(self):
        with pytest.raises(TraceError):
            generate_trace(n_functions=1)
        with pytest.raises(TraceError):
            generate_trace(n_functions=10, n_invocations=5)
        with pytest.raises(TraceError):
            generate_trace(zipf_s=0.0)

    def test_slack_analysis_shape(self, trace):
        analysis = slack_analysis(trace, top_k=10)
        # Paper Fig 1a headline: heavy over-provisioning under P99 SLOs.
        assert analysis.fraction_above(0.6, "all") > 0.6
        assert analysis.popular_traffic_share > 0.5
        # Slacks are bounded above by 1 and mostly positive.
        assert analysis.all_slacks.max() <= 1.0
        assert np.mean(analysis.all_slacks > 0) > 0.9

    def test_slack_cdf_monotone(self, trace):
        analysis = slack_analysis(trace, top_k=10)
        _, cdf = analysis.cdf("all")
        assert np.all(np.diff(cdf) >= 0)

    def test_slack_invalid_params(self, trace):
        with pytest.raises(TraceError):
            slack_analysis(trace, slo_percentile=100.0)
        with pytest.raises(TraceError):
            slack_analysis(trace, top_k=0)
