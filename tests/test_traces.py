"""Traces and workloads: arrivals, request streams, Azure-like trace,
diurnal rate curves, popularity mixes, and the trace-file subsystem."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.rng import make_rng
from repro.traces.arrivals import burst_arrivals, constant_arrivals, poisson_arrivals
from repro.traces.azure import generate_trace, slack_analysis
from repro.traces.diurnal import DiurnalRate, nhpp_arrivals
from repro.traces.popularity import PopularityMix
from repro.traces.trace_file import (
    WorkloadTrace,
    cached_trace,
    generate_workload_trace,
    load_trace,
    replay_arrivals,
    save_trace,
    trace_from_requests,
)
from repro.traces.workload import (
    ArrivalSpec,
    WorkloadConfig,
    generate_requests,
    shifted_workload,
)


class TestArrivals:
    def test_poisson_rate(self):
        arr = poisson_arrivals(10.0, 5000, make_rng(1))
        mean_gap = np.diff(np.concatenate(([0.0], arr))).mean()
        assert mean_gap == pytest.approx(100.0, rel=0.1)  # 10/s -> 100 ms

    def test_poisson_monotone(self):
        arr = poisson_arrivals(5.0, 100, make_rng(2))
        assert np.all(np.diff(arr) >= 0)

    def test_poisson_invalid(self):
        with pytest.raises(TraceError):
            poisson_arrivals(0.0, 10, make_rng(1))
        with pytest.raises(TraceError):
            poisson_arrivals(1.0, 0, make_rng(1))

    def test_constant(self):
        arr = constant_arrivals(50.0, 4)
        assert list(arr) == [0.0, 50.0, 100.0, 150.0]

    def test_constant_invalid(self):
        with pytest.raises(TraceError):
            constant_arrivals(-1.0, 3)

    def test_burst_mixture_faster_than_base(self):
        base = poisson_arrivals(10.0, 4000, make_rng(3))
        bursty = burst_arrivals(10.0, 100.0, 0.5, 4000, make_rng(3))
        assert bursty[-1] < base[-1]

    def test_burst_invalid(self):
        with pytest.raises(TraceError):
            burst_arrivals(1.0, 2.0, 1.5, 10, make_rng(1))


class TestWorkload:
    def test_deterministic(self, small_workflow):
        a = generate_requests(small_workflow, WorkloadConfig(n_requests=20), seed=7)
        b = generate_requests(small_workflow, WorkloadConfig(n_requests=20), seed=7)
        for ra, rb in zip(a, b):
            assert ra.stage_dynamics == rb.stage_dynamics

    def test_seed_sensitivity(self, small_workflow):
        a = generate_requests(small_workflow, WorkloadConfig(n_requests=5), seed=7)
        b = generate_requests(small_workflow, WorkloadConfig(n_requests=5), seed=8)
        assert a[0].stage_dynamics != b[0].stage_dynamics

    def test_carries_all_stage_dynamics(self, small_workflow):
        reqs = generate_requests(small_workflow, WorkloadConfig(n_requests=3))
        for req in reqs:
            assert set(req.stage_dynamics) == set(small_workflow.chain)

    def test_slo_defaults_to_workflow(self, small_workflow):
        req = generate_requests(small_workflow, WorkloadConfig(n_requests=1))[0]
        assert req.slo_ms == small_workflow.slo_ms

    def test_slo_override(self, small_workflow):
        cfg = WorkloadConfig(n_requests=1, slo_ms=123.0)
        assert generate_requests(small_workflow, cfg)[0].slo_ms == 123.0

    def test_poisson_arrivals_attached(self, small_workflow):
        cfg = WorkloadConfig(n_requests=50, arrival_rate_per_s=100.0)
        reqs = generate_requests(small_workflow, cfg, seed=4)
        arrivals = [r.arrival_ms for r in reqs]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] > 0

    def test_interference_draw(self, small_workflow):
        cfg = WorkloadConfig(
            n_requests=10, interference=lambda rng: 1.0 + rng.random()
        )
        reqs = generate_requests(small_workflow, cfg, seed=4)
        qs = [d.interference for r in reqs for d in r.stage_dynamics.values()]
        assert all(q >= 1.0 for q in qs)
        assert max(qs) > 1.0

    def test_workset_scale(self, small_workflow):
        plain = generate_requests(small_workflow, WorkloadConfig(n_requests=10), seed=4)
        scaled = shifted_workload(small_workflow, 10, workset_scale=2.0, seed=4)
        for a, b in zip(plain, scaled):
            for f in small_workflow.chain:
                assert b.dynamics_for(f).workset == pytest.approx(
                    2.0 * a.dynamics_for(f).workset
                )

    def test_invalid_config(self):
        with pytest.raises(TraceError):
            WorkloadConfig(n_requests=0)
        with pytest.raises(TraceError):
            WorkloadConfig(workset_scale=0.0)


class TestDiurnalRate:
    def test_sinusoid_shape(self):
        curve = DiurnalRate.sinusoid(10.0, amplitude=0.5, period_s=100.0)
        assert curve.peak_rate == pytest.approx(15.0)
        assert curve.mean_rate == pytest.approx(10.0)
        # Quarter period is the sine peak; wraps periodically.
        assert curve.rate_at(25.0) == pytest.approx(15.0)
        assert curve.rate_at(125.0) == pytest.approx(15.0)
        assert curve.rate_at(75.0) == pytest.approx(5.0)

    def test_rate_at_vectorised(self):
        curve = DiurnalRate.sinusoid(10.0, amplitude=1.0, period_s=10.0)
        rates = curve.rate_at(np.linspace(0.0, 20.0, 50))
        assert rates.shape == (50,)
        assert rates.min() >= -1e-9 and rates.max() <= 20.0 + 1e-9

    def test_piecewise_steps_and_wrap(self):
        curve = DiurnalRate.piecewise(
            ((0.0, 10.0), (5.0, 100.0)), period_s=10.0
        )
        assert curve.peak_rate == 100.0
        assert curve.mean_rate == pytest.approx(55.0)
        np.testing.assert_allclose(
            curve.rate_at(np.array([0.0, 4.9, 5.0, 9.9, 10.0, 15.0])),
            [10.0, 10.0, 100.0, 100.0, 10.0, 100.0],
        )

    def test_piecewise_default_period(self):
        curve = DiurnalRate.piecewise(((0.0, 1.0), (30.0, 2.0)))
        assert curve.period_s == 60.0

    def test_invalid_curves(self):
        with pytest.raises(TraceError, match="amplitude"):
            DiurnalRate.sinusoid(10.0, amplitude=1.5)
        with pytest.raises(TraceError, match="base rate"):
            DiurnalRate.sinusoid(0.0)
        with pytest.raises(TraceError, match="period"):
            DiurnalRate.sinusoid(10.0, period_s=0.0)
        with pytest.raises(TraceError, match="t=0"):
            DiurnalRate.piecewise(((1.0, 5.0),), period_s=10.0)
        with pytest.raises(TraceError, match="ascend"):
            DiurnalRate.piecewise(((0.0, 5.0), (0.0, 6.0)), period_s=10.0)
        with pytest.raises(TraceError, match="below the period"):
            DiurnalRate.piecewise(((0.0, 5.0), (10.0, 6.0)), period_s=10.0)
        with pytest.raises(TraceError, match="positive peak"):
            DiurnalRate.piecewise(((0.0, 0.0),), period_s=10.0)

    def test_nhpp_sorted_and_deterministic(self):
        curve = DiurnalRate.sinusoid(50.0, amplitude=0.8, period_s=10.0)
        a = nhpp_arrivals(curve, 2000, make_rng(3))
        b = nhpp_arrivals(curve, 2000, make_rng(3))
        np.testing.assert_array_equal(a, b)
        assert np.all(np.diff(a) >= 0) and a[0] >= 0

    def test_nhpp_invalid_n(self):
        curve = DiurnalRate.sinusoid(10.0)
        with pytest.raises(TraceError, match="n must be > 0"):
            nhpp_arrivals(curve, 0, make_rng(1))


class TestPopularityMix:
    def test_weights_zipf_and_normalised(self):
        mix = PopularityMix(("IA", "VA", "media"), zipf_s=1.0)
        w = mix.weights()
        assert w.sum() == pytest.approx(1.0)
        assert w[0] > w[1] > w[2]
        assert w[0] / w[1] == pytest.approx(2.0)  # Zipf(1): rank ratio

    def test_share_and_unknown(self):
        mix = PopularityMix(("IA", "VA"), zipf_s=1.0)
        assert mix.share("IA") == pytest.approx(2.0 / 3.0)
        with pytest.raises(TraceError, match="unknown workflow"):
            mix.share("nope")

    def test_assign_deterministic_and_skewed(self):
        mix = PopularityMix(("IA", "VA"), zipf_s=1.0)
        a = mix.assign(4000, make_rng(7))
        b = mix.assign(4000, make_rng(7))
        np.testing.assert_array_equal(a, b)
        counts = np.bincount(a, minlength=2)
        assert counts[0] > counts[1]
        assert counts[0] / 4000 == pytest.approx(2.0 / 3.0, abs=0.05)

    def test_map_ranks_round_robin(self):
        mix = PopularityMix(("IA", "VA"), zipf_s=0.9)
        np.testing.assert_array_equal(
            mix.map_ranks(np.array([0, 1, 2, 3, 4])), [0, 1, 0, 1, 0]
        )
        with pytest.raises(TraceError, match=">= 0"):
            mix.map_ranks(np.array([-1]))

    def test_invalid_mixes(self):
        with pytest.raises(TraceError, match=">= 1 workflow"):
            PopularityMix(())
        with pytest.raises(TraceError, match="duplicate"):
            PopularityMix(("IA", "IA"))
        with pytest.raises(TraceError, match="zipf"):
            PopularityMix(("IA",), zipf_s=0.0)


@pytest.fixture()
def small_trace():
    return generate_workload_trace(
        ("IA", "VA"), 200,
        arrival=ArrivalSpec(kind="diurnal", rate_per_s=20.0, period_s=5.0),
        zipf_s=1.0, seed=11, name="small",
    )


class TestTraceFile:
    def test_generate_is_deterministic(self, small_trace):
        again = generate_workload_trace(
            ("IA", "VA"), 200,
            arrival=ArrivalSpec(kind="diurnal", rate_per_s=20.0, period_s=5.0),
            zipf_s=1.0, seed=11, name="small",
        )
        assert again.digest() == small_trace.digest()
        assert again.to_jsonl() == small_trace.to_jsonl()

    def test_generate_records_independent_of_name(self, small_trace):
        # The name labels the trace (and lands in the header/digest); it
        # must not seed the records — renaming the output is not a new
        # workload.
        renamed = generate_workload_trace(
            ("IA", "VA"), 200,
            arrival=ArrivalSpec(kind="diurnal", rate_per_s=20.0, period_s=5.0),
            zipf_s=1.0, seed=11, name="other",
        )
        np.testing.assert_array_equal(
            renamed.arrival_ms, small_trace.arrival_ms
        )
        np.testing.assert_array_equal(
            renamed.workflow_ids, small_trace.workflow_ids
        )
        assert renamed.digest() != small_trace.digest()  # header differs

    def test_jsonl_round_trip_is_byte_identical(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        # The canonical serialisation round-trips byte-for-byte, so a
        # re-save produces the identical file.
        assert loaded.to_jsonl() == small_trace.to_jsonl()
        assert path.read_text() == small_trace.to_jsonl()
        save_trace(loaded, tmp_path / "t2.jsonl")
        assert (tmp_path / "t2.jsonl").read_bytes() == path.read_bytes()
        np.testing.assert_array_equal(
            loaded.arrival_ms, small_trace.arrival_ms
        )
        np.testing.assert_array_equal(
            loaded.workflow_ids, small_trace.workflow_ids
        )

    def test_csv_round_trip_digests_identically(self, small_trace, tmp_path):
        path = tmp_path / "t.csv"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        # The digest is over the canonical JSONL form, so both encodings
        # of one trace share it.
        assert loaded.digest() == small_trace.digest()
        assert loaded.counts_by_workflow() == small_trace.counts_by_workflow()

    def test_round_trip_preserves_durations_and_metadata(self, tmp_path):
        trace = WorkloadTrace(
            name="d",
            arrival_ms=np.array([0.0, 1.5, 3.25]),
            workflow_ids=np.array([0, 1, 0]),
            workflows=("IA", "VA"),
            durations_ms=np.array([12.5, 80.0, 7.125]),
            metadata={"source": "unit-test", "k": 3},
        )
        for suffix in ("jsonl", "csv"):
            path = tmp_path / f"t.{suffix}"
            save_trace(trace, path)
            loaded = load_trace(path)
            np.testing.assert_array_equal(
                loaded.durations_ms, trace.durations_ms
            )
            assert loaded.metadata == trace.metadata
            assert loaded.digest() == trace.digest()

    def test_replay_is_byte_identical(self, small_trace, tmp_path):
        # The acceptance loop: write -> load -> replay reproduces the
        # recorded arrivals exactly.
        path = tmp_path / "t.jsonl"
        save_trace(small_trace, path)
        replayed = replay_arrivals(load_trace(path), small_trace.n_records)
        np.testing.assert_array_equal(replayed, small_trace.arrival_ms)

    def test_replay_prefix_and_wraparound(self, small_trace):
        prefix = replay_arrivals(small_trace, 10)
        np.testing.assert_array_equal(prefix, small_trace.arrival_ms[:10])
        looped = replay_arrivals(small_trace, 3 * small_trace.n_records + 5)
        assert looped.size == 3 * small_trace.n_records + 5
        assert np.all(np.diff(looped) >= 0)
        # Wrapped passes repeat the gap structure, shifted by one period.
        gaps = np.diff(small_trace.arrival_ms)
        wrapped_gaps = np.diff(
            looped[small_trace.n_records : 2 * small_trace.n_records]
        )
        np.testing.assert_allclose(wrapped_gaps, gaps)

    def test_per_workflow_substream(self, small_trace):
        ia = small_trace.arrivals_for("IA")
        va = small_trace.arrivals_for("VA")
        assert ia.size + va.size == small_trace.n_records
        merged = np.sort(np.concatenate([ia, va]))
        np.testing.assert_array_equal(merged, small_trace.arrival_ms)
        with pytest.raises(TraceError, match="no records for workflow"):
            small_trace.arrivals_for("media")

    def test_unattributed_trace_serves_any_workflow(self):
        trace = WorkloadTrace(
            name="raw",
            arrival_ms=np.array([0.0, 1.0, 2.0]),
            workflow_ids=np.array([-1, -1, -1]),
        )
        np.testing.assert_array_equal(
            trace.arrivals_for("IA"), trace.arrival_ms
        )
        assert trace.counts_by_workflow() == {}

    def test_validation_rejects_malformed_traces(self):
        with pytest.raises(TraceError, match=">= 1 record"):
            WorkloadTrace("x", np.array([]), np.array([]))
        with pytest.raises(TraceError, match="non-decreasing"):
            WorkloadTrace("x", np.array([2.0, 1.0]), np.array([-1, -1]))
        with pytest.raises(TraceError, match="finite"):
            WorkloadTrace("x", np.array([-1.0]), np.array([-1]))
        with pytest.raises(TraceError, match="index the catalog"):
            WorkloadTrace(
                "x", np.array([0.0]), np.array([2]), workflows=("IA",)
            )
        with pytest.raises(TraceError, match="ids to be -1"):
            WorkloadTrace("x", np.array([0.0]), np.array([0]))
        with pytest.raises(TraceError, match="durations"):
            WorkloadTrace(
                "x", np.array([0.0, 1.0]), np.array([-1, -1]),
                durations_ms=np.array([1.0]),
            )

    def test_single_record_stream_cannot_wrap(self):
        trace = WorkloadTrace(
            name="one",
            arrival_ms=np.array([100.0]),
            workflow_ids=np.array([0]),
            workflows=("IA",),
        )
        np.testing.assert_array_equal(replay_arrivals(trace, 1), [100.0])
        # Tiling one timestamp would invent a simultaneous burst the
        # trace never recorded.
        with pytest.raises(TraceError, match="single-record stream"):
            replay_arrivals(trace, 5)

    def test_non_utf8_file_raises_trace_error(self, tmp_path):
        path = tmp_path / "binary.jsonl"
        path.write_bytes(b"\xff\xfe\x00bogus")
        with pytest.raises(TraceError, match="not a UTF-8 text trace file"):
            load_trace(path)
        with pytest.raises(TraceError, match="not a UTF-8 text trace file"):
            cached_trace(path)

    def test_loader_rejects_bad_files(self, small_trace, tmp_path):
        missing = tmp_path / "nope.jsonl"
        with pytest.raises(TraceError, match="cannot read"):
            load_trace(missing)
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceError, match="empty trace file"):
            load_trace(empty)
        bad_header = tmp_path / "bad.jsonl"
        bad_header.write_text('{"not_a_trace": true}\n')
        with pytest.raises(TraceError, match="header"):
            load_trace(bad_header)
        # Truncation: drop the last record while the header still
        # declares the full count.
        truncated = tmp_path / "trunc.jsonl"
        lines = small_trace.to_jsonl().splitlines()
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TraceError, match="declares"):
            load_trace(truncated)
        future = tmp_path / "future.jsonl"
        future.write_text('{"janus_trace": 99, "n_records": 0}\n')
        with pytest.raises(TraceError, match="unsupported trace schema"):
            load_trace(future)

    def test_save_to_bare_filename(self, small_trace, tmp_path, monkeypatch):
        # atomic writes must cope with an empty dirname (cwd-relative
        # paths, the README idiom).
        monkeypatch.chdir(tmp_path)
        save_trace(small_trace, "bare.jsonl")
        assert load_trace("bare.jsonl").digest() == small_trace.digest()

    def test_cached_trace_sees_edits(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(small_trace, path)
        first = cached_trace(path)
        assert cached_trace(path) is first  # memoised
        edited = generate_workload_trace(
            ("IA", "VA"), 50,
            arrival=ArrivalSpec(kind="poisson", rate_per_s=5.0),
            seed=99, name="edited",
        )
        save_trace(edited, path)
        reloaded = cached_trace(path)
        assert reloaded.digest() == edited.digest()
        assert reloaded.digest() != first.digest()

    def test_cached_trace_keyed_by_content_not_stat(
        self, small_trace, tmp_path
    ):
        # A same-size rewrite inside one mtime tick must still be seen:
        # the memo keys on the file bytes, not the stat signature.
        import os

        path = tmp_path / "t.jsonl"
        save_trace(small_trace, path)
        stat = os.stat(path)
        first = cached_trace(path)
        text = path.read_text()
        assert "IA" in text
        path.write_text(text.replace('"IA"', '"XA"'))  # same byte length
        os.utime(path, ns=(stat.st_mtime_ns, stat.st_mtime_ns))
        reloaded = cached_trace(path)
        assert os.stat(path).st_size == stat.st_size
        assert reloaded.workflows != first.workflows
        assert "XA" in reloaded.workflows


class TestTraceRecording:
    def test_record_then_replay_requests(self, small_workflow):
        requests = generate_requests(
            small_workflow,
            WorkloadConfig(n_requests=25, arrival_rate_per_s=50.0),
            seed=3,
        )
        trace = trace_from_requests(requests, name="rec")
        assert trace.workflows == (small_workflow.name,)
        np.testing.assert_array_equal(
            replay_arrivals(trace, 25, small_workflow.name),
            np.array([r.arrival_ms for r in requests]),
        )

    def test_replay_spec_drives_generate_requests(
        self, small_workflow, tmp_path
    ):
        stream = generate_requests(
            small_workflow,
            WorkloadConfig(n_requests=20, arrival_rate_per_s=25.0),
            seed=5,
        )
        path = tmp_path / "rec.jsonl"
        save_trace(trace_from_requests(stream, name="rec"), path)
        replayed = generate_requests(
            small_workflow,
            WorkloadConfig(
                n_requests=20,
                arrival=ArrivalSpec(kind="replay", trace=str(path)),
            ),
            seed=999,  # arrivals come from the file, not the seed
        )
        assert [r.arrival_ms for r in replayed] == [
            r.arrival_ms for r in stream
        ]

    def test_untagged_requests_need_explicit_workflow(self, small_workflow):
        from repro.workflow.request import WorkflowRequest

        untagged = [
            WorkflowRequest(
                request_id=0, arrival_ms=0.0, slo_ms=100.0,
                stage_dynamics={"f": object()},
            )
        ]
        trace = trace_from_requests(untagged, name="raw")
        assert trace.workflows == ()
        tagged = trace_from_requests(untagged, workflow="IA")
        assert tagged.workflows == ("IA",)
        with pytest.raises(TraceError, match="empty request stream"):
            trace_from_requests([])

    def test_mixed_attribution_rejected(self, small_workflow):
        import dataclasses

        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=2), seed=1
        )
        mixed = [requests[0], dataclasses.replace(requests[1], workflow="")]
        with pytest.raises(TraceError, match="mixes workflow-tagged"):
            trace_from_requests(mixed)

    def test_workflow_override_fills_gaps_without_clobbering_tags(
        self, small_workflow
    ):
        # An explicit workflow= attributes only *untagged* requests; an
        # existing tag always wins, so recording a merged multi-workflow
        # stream can never silently collapse its popularity mix.
        import dataclasses

        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=2), seed=1
        )
        mixed = [requests[0], dataclasses.replace(requests[1], workflow="")]
        trace = trace_from_requests(mixed, workflow="other")
        assert trace.workflows == (small_workflow.name, "other")
        assert trace.counts_by_workflow() == {
            small_workflow.name: 1, "other": 1
        }


class TestAzureTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(n_functions=50, n_invocations=20_000, seed=1)

    def test_dimensions(self, trace):
        assert trace.n_invocations == 20_000
        assert trace.n_functions == 50
        assert trace.durations_ms.min() > 0

    def test_zipf_popularity(self, trace):
        counts = np.bincount(trace.function_ids, minlength=50)
        order = trace.popularity_order()
        assert counts[order[0]] >= counts[order[-1]]
        # Head dominance: top-10 functions carry most traffic.
        assert counts[order[:10]].sum() / counts.sum() > 0.5

    def test_reproducible(self):
        a = generate_trace(n_functions=10, n_invocations=1000, seed=3)
        b = generate_trace(n_functions=10, n_invocations=1000, seed=3)
        np.testing.assert_array_equal(a.durations_ms, b.durations_ms)

    def test_invalid_params(self):
        with pytest.raises(TraceError):
            generate_trace(n_functions=1)
        with pytest.raises(TraceError):
            generate_trace(n_functions=10, n_invocations=5)
        with pytest.raises(TraceError):
            generate_trace(zipf_s=0.0)

    def test_slack_analysis_shape(self, trace):
        analysis = slack_analysis(trace, top_k=10)
        # Paper Fig 1a headline: heavy over-provisioning under P99 SLOs.
        assert analysis.fraction_above(0.6, "all") > 0.6
        assert analysis.popular_traffic_share > 0.5
        # Slacks are bounded above by 1 and mostly positive.
        assert analysis.all_slacks.max() <= 1.0
        assert np.mean(analysis.all_slacks > 0) > 0.9

    def test_slack_cdf_monotone(self, trace):
        analysis = slack_analysis(trace, top_k=10)
        _, cdf = analysis.cdf("all")
        assert np.all(np.diff(cdf) >= 0)

    def test_slack_invalid_params(self, trace):
        with pytest.raises(TraceError):
            slack_analysis(trace, slo_percentile=100.0)
        with pytest.raises(TraceError):
            slack_analysis(trace, top_k=0)
