"""Function performance models and workset distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FunctionModelError
from repro.functions.model import FunctionModel, InvocationDynamics, Resource
from repro.functions.worksets import (
    FixedWorkset,
    LognormalWorkset,
    LogUniformWorkset,
    UniformIntWorkset,
)
from tests.conftest import make_function


class TestWorksets:
    def test_fixed_reference_and_sample(self, rng):
        ws = FixedWorkset(5.0)
        assert ws.reference == 5.0
        assert ws.sample(rng) == 5.0
        assert list(ws.sample(rng, size=3)) == [5.0] * 3

    def test_fixed_invalid(self):
        with pytest.raises(FunctionModelError):
            FixedWorkset(0.0)

    def test_uniform_int_bounds(self, rng):
        ws = UniformIntWorkset(1, 15)  # COCO objects per image
        samples = ws.sample(rng, size=2000)
        assert samples.min() >= 1 and samples.max() <= 15
        lo, hi = ws.support()
        assert (lo, hi) == (1.0, 15.0)

    def test_uniform_int_invalid(self):
        with pytest.raises(FunctionModelError):
            UniformIntWorkset(10, 5)

    def test_loguniform_bounds(self, rng):
        ws = LogUniformWorkset(35.0, 641.0)  # SQuAD words per passage
        samples = ws.sample(rng, size=2000)
        assert samples.min() >= 35.0 and samples.max() <= 641.0

    def test_loguniform_reference_is_geometric_mid(self):
        ws = LogUniformWorkset(10.0, 1000.0)
        assert ws.reference == pytest.approx(100.0)

    def test_loguniform_invalid(self):
        with pytest.raises(FunctionModelError):
            LogUniformWorkset(10.0, 10.0)

    def test_lognormal_clip(self, rng):
        ws = LognormalWorkset(median=1.0, sigma=0.5, clip_hi=2.0)
        samples = ws.sample(rng, size=2000)
        assert samples.max() <= 2.0

    def test_lognormal_invalid(self):
        with pytest.raises(FunctionModelError):
            LognormalWorkset(median=-1.0, sigma=0.1)
        with pytest.raises(FunctionModelError):
            LognormalWorkset(median=2.0, sigma=0.1, clip_hi=1.0)

    def test_scalar_sample_is_float(self, rng):
        for ws in (UniformIntWorkset(1, 5), LogUniformWorkset(1, 9),
                   LognormalWorkset(1.0, 0.1)):
            assert isinstance(ws.sample(rng), float)


class TestInvocationDynamics:
    def test_valid(self):
        d = InvocationDynamics(workset=2.0, noise_z=0.5, interference=1.2)
        assert d.interference == 1.2

    def test_invalid_workset(self):
        with pytest.raises(FunctionModelError):
            InvocationDynamics(workset=0.0, noise_z=0.0)

    def test_interference_below_one_rejected(self):
        with pytest.raises(FunctionModelError):
            InvocationDynamics(workset=1.0, noise_z=0.0, interference=0.5)


class TestFunctionModel:
    def test_base_time_amdahl(self):
        m = make_function(serial=100, parallel=900, sigma=0.0)
        assert m.base_time(1000) == pytest.approx(1000.0)
        assert m.base_time(3000) == pytest.approx(100 + 300)

    def test_more_cores_never_slower(self):
        m = make_function()
        dyn = InvocationDynamics(workset=50.0, noise_z=0.3)
        times = [m.execution_time(k, dyn) for k in (1000, 1500, 2000, 3000)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_interference_scales_time(self):
        m = make_function(sigma=0.0)
        base = m.execution_time(1000, InvocationDynamics(1.0, 0.0, 1.0))
        slowed = m.execution_time(1000, InvocationDynamics(1.0, 0.0, 2.0))
        assert slowed == pytest.approx(2 * base)

    def test_batch_factor(self):
        m = make_function(batch_eta=0.4)
        assert m.batch_factor(1) == 1.0
        assert m.batch_factor(3) == pytest.approx(1.8)

    def test_non_batchable_rejects_batches(self):
        m = make_function(batchable=False, batch_eta=0.0)
        with pytest.raises(FunctionModelError):
            m.batch_factor(2)

    def test_workset_factor_power_law(self):
        m = make_function(gamma=0.5, workset=FixedWorkset(4.0))
        assert m.workset_factor(16.0) == pytest.approx(2.0)

    def test_zero_gamma_ignores_workset(self):
        m = make_function(gamma=0.0)
        assert m.workset_factor(1e9) == 1.0

    def test_invalid_cores(self):
        m = make_function()
        with pytest.raises(FunctionModelError):
            m.base_time(0)

    def test_invalid_params(self):
        with pytest.raises(FunctionModelError):
            FunctionModel(name="", serial_ms=1, parallel_ms=1)
        with pytest.raises(FunctionModelError):
            FunctionModel(name="x", serial_ms=0, parallel_ms=0)
        with pytest.raises(FunctionModelError):
            FunctionModel(name="x", serial_ms=1, parallel_ms=1, sigma=-1)

    def test_sample_dynamics_deterministic_per_seed(self):
        m = make_function(gamma=0.3)
        a = m.sample_dynamics(np.random.default_rng(5))
        b = m.sample_dynamics(np.random.default_rng(5))
        assert a == b

    def test_vectorised_sampling_matches_model_statistics(self, rng):
        m = make_function(sigma=0.2)
        samples = m.sample_execution_times(2000, 5000, rng)
        # median of lognormal(log(base), 0.2) is base
        assert np.median(samples) == pytest.approx(m.base_time(2000), rel=0.05)

    def test_vectorised_sampling_rejects_bad_interference(self, rng):
        m = make_function()
        with pytest.raises(FunctionModelError):
            m.sample_execution_times(1000, 10, rng, interference=0.5)

    def test_vectorised_sampling_rejects_zero_n(self, rng):
        with pytest.raises(FunctionModelError):
            make_function().sample_execution_times(1000, 0, rng)

    def test_execution_time_batch_and_concurrency(self):
        m = make_function(sigma=0.0, batch_eta=0.5)
        dyn = InvocationDynamics(1.0, 0.0)
        assert m.execution_time(1000, dyn, concurrency=2) == pytest.approx(
            1.5 * m.execution_time(1000, dyn, concurrency=1)
        )

    @given(
        k=st.integers(min_value=100, max_value=10_000),
        z=st.floats(min_value=-3, max_value=3),
        q=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_execution_time_always_positive(self, k, z, q):
        m = make_function(sigma=0.3, gamma=0.2)
        dyn = InvocationDynamics(workset=20.0, noise_z=z, interference=q)
        assert m.execution_time(k, dyn) > 0

    @given(
        k1=st.integers(min_value=100, max_value=5000),
        k2=st.integers(min_value=100, max_value=5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_in_cores_property(self, k1, k2):
        m = make_function()
        dyn = InvocationDynamics(workset=50.0, noise_z=1.0)
        if k1 <= k2:
            assert m.execution_time(k1, dyn) >= m.execution_time(k2, dyn)

    def test_resource_enum(self):
        assert Resource.NETWORK.value == "network"
