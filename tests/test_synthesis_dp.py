"""The vectorised suffix DP — correctness against brute force."""

import itertools

import numpy as np
import pytest

from repro.errors import SynthesisError
from repro.synthesis.budget import BudgetRange, budget_range_for_chain
from repro.synthesis.dp import ChainDP
from tests.test_profiling import make_profile


def brute_force_min_cores(profiles, budget_ms, anchor=99.0):
    """Exhaustive minimum total millicores with the P99 sum <= budget."""
    grids = [p.limits.grid() for p in profiles]
    best = None
    for combo in itertools.product(*grids):
        total_time = sum(
            int(np.ceil(p.latency(anchor, int(k)))) for p, k in zip(profiles, combo)
        )
        if total_time <= budget_ms:
            total_k = sum(int(k) for k in combo)
            if best is None or total_k < best:
                best = total_k
    return best


class TestBudgetRange:
    def test_grid(self):
        b = BudgetRange(100, 105)
        assert list(b.grid()) == [100, 101, 102, 103, 104, 105]
        assert b.num_budgets == 6

    def test_contains_and_clamp(self):
        b = BudgetRange(100, 200, step_ms=10)
        assert b.contains(150) and not b.contains(99)
        assert b.clamp(154) == 150
        assert b.clamp(9999) == 200
        assert b.clamp(0) == 100

    def test_invalid_ranges(self):
        with pytest.raises(SynthesisError):
            BudgetRange(200, 100)
        with pytest.raises(SynthesisError):
            BudgetRange(-1, 100)
        with pytest.raises(SynthesisError):
            BudgetRange(0, 100, step_ms=0)

    def test_eq3_range(self):
        profiles = [make_profile("A"), make_profile("B")]
        b = budget_range_for_chain(profiles)
        expected_min = sum(p.latency(1, 3000) for p in profiles)
        expected_max = sum(p.latency(99, 1000) for p in profiles)
        assert b.tmin_ms == int(np.floor(expected_min))
        assert b.tmax_ms == int(np.ceil(expected_max))

    def test_eq3_empty_rejected(self):
        with pytest.raises(SynthesisError):
            budget_range_for_chain([])


class TestChainDP:
    @pytest.fixture(scope="class")
    def profiles(self):
        return [make_profile("A"), make_profile("B"), make_profile("C")]

    @pytest.fixture(scope="class")
    def dp(self, profiles):
        tmax = int(sum(p.latency(99, 1000) for p in profiles)) + 100
        return ChainDP(profiles, tmax)

    def test_matches_brute_force_across_budgets(self, profiles, dp):
        rng = np.random.default_rng(0)
        lo = int(sum(p.latency(99, 3000) for p in profiles))
        for budget in rng.integers(lo - 200, dp.tmax_ms, size=12):
            expected = brute_force_min_cores(profiles, int(budget))
            got = dp.min_total_cores(0, int(budget))
            if expected is None:
                assert not np.isfinite(got)
            else:
                assert got == expected

    def test_allocation_consistent_with_cost(self, profiles, dp):
        budget = dp.tmax_ms - 50
        alloc = dp.allocation(0, budget)
        assert alloc is not None
        assert sum(alloc) == dp.min_total_cores(0, budget)
        total_time = sum(
            np.ceil(p.latency(99, k)) for p, k in zip(profiles, alloc)
        )
        assert total_time <= budget

    def test_infeasible_budget(self, profiles, dp):
        assert not dp.feasible(0, 10)
        assert dp.allocation(0, 10) is None

    def test_cost_non_increasing_in_budget(self, dp):
        for j in range(3):
            cost = dp.cost_array(j)
            finite = cost[np.isfinite(cost)]
            assert np.all(np.diff(finite) <= 1e-9)

    def test_feasibility_upper_set(self, dp):
        # Once feasible, always feasible for larger budgets.
        for j in range(3):
            cost = dp.cost_array(j)
            finite_idx = np.flatnonzero(np.isfinite(cost))
            if finite_idx.size:
                assert np.all(np.isfinite(cost[finite_idx[0]:]))

    def test_resilience_of_allocation(self, profiles, dp):
        budget = dp.tmax_ms - 10
        alloc = dp.allocation(0, budget)
        expected = sum(
            p.resilience(99, k) for p, k in zip(profiles, alloc)
        )
        assert dp.total_resilience(0, budget) == pytest.approx(expected)

    def test_suffix_indices_validated(self, dp):
        with pytest.raises(SynthesisError):
            dp.min_total_cores(5, 100)
        with pytest.raises(SynthesisError):
            dp.min_total_cores(0, -1)

    def test_budget_clamped_to_tmax(self, dp):
        # Budgets beyond tmax behave like tmax (cost already minimal).
        assert dp.min_total_cores(0, dp.tmax_ms * 10) == dp.min_total_cores(
            0, dp.tmax_ms
        )

    def test_single_function_chain(self):
        prof = make_profile("solo")
        dp = ChainDP([prof], int(prof.latency(99, 1000)) + 10)
        # Budget just above the fastest P99 -> kmax; huge budget -> kmin.
        fast = int(np.ceil(prof.latency(99, 3000)))
        assert dp.allocation(0, fast) == [3000]
        assert dp.allocation(0, dp.tmax_ms) == [1000]

    def test_mixed_limits_rejected(self):
        from repro.types import ResourceLimits

        a = make_profile("A")
        b = make_profile("B", limits=ResourceLimits(1000, 2000, 500))
        with pytest.raises(SynthesisError):
            ChainDP([a, b], 1000)

    def test_empty_chain_rejected(self):
        with pytest.raises(SynthesisError):
            ChainDP([], 100)
