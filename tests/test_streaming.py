"""Bounded-memory streaming estimators (P², Welford, windowed rates)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.metrics.streaming import (
    P2Quantile,
    StreamingMoments,
    StreamingSummary,
    WindowedRate,
)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def lognormal_stream(n, seed):
    rng = np.random.default_rng(seed)
    return rng.lognormal(mean=5.0, sigma=0.6, size=n)


class TestP2Quantile:
    def test_invalid_quantile_rejected(self):
        for q in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ExperimentError):
                P2Quantile(q)

    def test_empty_raises(self):
        with pytest.raises(ExperimentError, match="no samples"):
            P2Quantile(0.5).value

    def test_small_streams_exact(self):
        # Below six samples the estimate is the exact order statistic.
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        for n in range(1, 6):
            est = P2Quantile(0.5)
            for x in samples[:n]:
                est.add(x)
            assert est.value == pytest.approx(
                float(np.percentile(samples[:n], 50.0))
            )

    def test_memory_is_constant(self):
        est = P2Quantile(0.99)
        for x in lognormal_stream(10_000, seed=7):
            est.add(x)
        assert len(est._heights) == 5  # five markers, however long the stream

    @pytest.mark.parametrize("p", [50.0, 95.0, 99.0])
    def test_50k_lognormal_within_one_percent(self, p):
        # The ISSUE acceptance bound: replayed 50k-sample heavy-tailed
        # stream, streaming percentile within 1% of the exact statistic.
        samples = lognormal_stream(50_000, seed=2025)
        est = P2Quantile(p / 100.0)
        for x in samples:
            est.add(x)
        exact = float(np.percentile(samples, p))
        assert abs(est.value - exact) / exact < 0.01

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds, q=st.sampled_from([0.5, 0.9, 0.99]))
    def test_property_converges_to_exact(self, seed, q):
        rng = np.random.default_rng(seed)
        samples = rng.exponential(100.0, size=8000)
        est = P2Quantile(q)
        for x in samples:
            est.add(x)
        exact = float(np.percentile(samples, 100.0 * q))
        assert est.value == pytest.approx(exact, rel=0.05)

    @settings(max_examples=15, deadline=None)
    @given(seed=seeds)
    def test_property_deterministic_replay(self, seed):
        samples = lognormal_stream(2000, seed)
        a, b = P2Quantile(0.95), P2Quantile(0.95)
        for x in samples:
            a.add(x)
        for x in samples:
            b.add(x)
        assert a.snapshot() == b.snapshot()  # bit-identical

    def test_estimate_brackets_extremes(self):
        samples = lognormal_stream(1000, seed=3)
        est = P2Quantile(0.5)
        for x in samples:
            est.add(x)
        assert samples.min() <= est.value <= samples.max()


class TestStreamingMoments:
    def test_empty_raises(self):
        m = StreamingMoments()
        for attr in ("mean", "variance", "min", "max"):
            with pytest.raises(ExperimentError):
                getattr(m, attr)
        with pytest.raises(ExperimentError):
            m.snapshot()

    def test_single_sample(self):
        m = StreamingMoments()
        m.add(42.0)
        assert m.mean == 42.0 and m.variance == 0.0
        assert m.min == 42.0 and m.max == 42.0 and m.total == 42.0

    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_property_matches_numpy(self, seed):
        samples = lognormal_stream(500, seed)
        m = StreamingMoments()
        for x in samples:
            m.add(x)
        assert m.mean == pytest.approx(float(np.mean(samples)))
        assert m.variance == pytest.approx(float(np.var(samples, ddof=1)))
        assert m.std == pytest.approx(float(np.std(samples, ddof=1)))
        assert m.min == float(samples.min())
        assert m.max == float(samples.max())
        assert m.total == pytest.approx(float(samples.sum()))


class TestWindowedRate:
    def test_window_validation(self):
        with pytest.raises(ExperimentError):
            WindowedRate(window=0)

    def test_empty_rates_are_zero(self):
        r = WindowedRate(window=4)
        assert r.rate == 0.0 and r.windowed_rate == 0.0

    def test_window_rolls_off(self):
        r = WindowedRate(window=4)
        for outcome in (False, False, False, False):
            r.add(outcome)
        assert r.windowed_rate == 0.0
        for outcome in (True, True, True, True):
            r.add(outcome)
        # Failures have rolled off the window; all-time rate remembers them.
        assert r.windowed_rate == 1.0
        assert r.rate == pytest.approx(0.5)

    def test_snapshot_keys(self):
        r = WindowedRate(window=8)
        r.add(True)
        assert r.snapshot() == {
            "count": 1.0, "rate": 1.0, "windowed_rate": 1.0, "window": 8.0,
        }


class TestStreamingSummary:
    def test_needs_percentiles(self):
        with pytest.raises(ExperimentError):
            StreamingSummary(())

    def test_empty_snapshot_raises(self):
        with pytest.raises(ExperimentError, match="no samples"):
            StreamingSummary().snapshot()

    def test_untracked_percentile_raises(self):
        s = StreamingSummary((50.0,))
        s.add(1.0)
        with pytest.raises(ExperimentError, match="not tracked"):
            s.percentile(99.0)

    def test_snapshot_mirrors_percentile_summary_keys(self):
        s = StreamingSummary()
        for x in lognormal_stream(200, seed=1):
            s.add(x)
        snap = s.snapshot()
        assert set(snap) == {"p50", "p95", "p99", "mean", "min", "max", "count"}
        assert snap["count"] == 200.0
        assert snap["min"] <= snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["p99"] <= snap["max"]

    def test_50k_stream_close_to_exact_summary(self):
        from repro.metrics.stats import percentile_summary

        samples = lognormal_stream(50_000, seed=2025)
        s = StreamingSummary()
        for x in samples:
            s.add(x)
        exact = percentile_summary(samples)
        snap = s.snapshot()
        for key in ("p50", "p95", "p99"):
            assert abs(snap[key] - exact[key]) / exact[key] < 0.01
        assert snap["mean"] == pytest.approx(exact["mean"])
        assert snap["min"] == exact["min"] and snap["max"] == exact["max"]

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_property_snapshot_deterministic(self, seed):
        samples = lognormal_stream(1500, seed)
        a, b = StreamingSummary(), StreamingSummary()
        for x in samples:
            a.add(x)
        for x in samples:
            b.add(x)
        assert a.snapshot() == b.snapshot()
