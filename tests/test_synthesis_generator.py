"""Hint generation (Algorithm 1): exploration modes, constraints, weights."""

import numpy as np
import pytest

from repro.errors import SynthesisError
from repro.synthesis.budget import budget_range_for_chain
from repro.synthesis.dp import ChainDP
from repro.synthesis.generator import (
    HeadExploration,
    HintSynthesizer,
    SynthesisConfig,
    synthesize_hints,
)


@pytest.fixture(scope="module")
def chain(small_profiles_module):
    return ["F0", "F1", "F2"]


@pytest.fixture(scope="module")
def small_profiles_module(request):
    # Reuse the session fixture through a module alias.
    return request.getfixturevalue("small_profiles")


@pytest.fixture(scope="module")
def budget(small_profiles_module, chain):
    return budget_range_for_chain(
        [small_profiles_module[f] for f in chain]
    )


@pytest.fixture(scope="module")
def dp(small_profiles_module, chain, budget):
    return ChainDP(
        [small_profiles_module[f] for f in chain], budget.tmax_ms
    )


class TestRawHints:
    def test_every_suffix_synthesized(self, small_profiles_module, chain, budget):
        hints = synthesize_hints(small_profiles_module, chain, budget)
        assert hints.num_stages == 3
        assert [t.head_function for t in hints.tables] == chain

    def test_head_percentiles_within_grid(
        self, small_profiles_module, chain, budget, dp
    ):
        synth = HintSynthesizer(small_profiles_module, chain)
        raw = synth.synthesize_suffix(0, dp, budget)
        feasible = raw.feasible_mask
        pcts = raw.head_percentiles[feasible]
        valid = set(small_profiles_module.percentiles.percentiles)
        assert set(np.unique(pcts)).issubset(valid)

    def test_last_suffix_pinned_to_anchor(
        self, small_profiles_module, chain, budget, dp
    ):
        synth = HintSynthesizer(small_profiles_module, chain)
        raw = synth.synthesize_suffix(2, dp, budget)
        pcts = raw.head_percentiles[raw.feasible_mask]
        assert np.all(pcts == small_profiles_module.percentiles.anchor)

    def test_janus_minus_pins_all_heads(
        self, small_profiles_module, chain, budget, dp
    ):
        synth = HintSynthesizer(
            small_profiles_module, chain,
            SynthesisConfig(exploration=HeadExploration.NONE),
        )
        for j in range(3):
            raw = synth.synthesize_suffix(j, dp, budget)
            pcts = raw.head_percentiles[raw.feasible_mask]
            assert np.all(pcts == 99.0)

    def test_expected_cost_not_above_janus_minus(
        self, small_profiles_module, chain, budget, dp
    ):
        # Exploration can only improve the Eq. 4 objective: the P99 candidate
        # set is a subset of the explored set.
        explore = HintSynthesizer(small_profiles_module, chain).synthesize_suffix(
            0, dp, budget
        )
        pinned = HintSynthesizer(
            small_profiles_module, chain,
            SynthesisConfig(exploration=HeadExploration.NONE),
        ).synthesize_suffix(0, dp, budget)
        both = explore.feasible_mask & pinned.feasible_mask
        assert np.all(
            explore.expected_cost[both] <= pinned.expected_cost[both] + 1e-6
        )

    def test_resilience_constraint_enforced(
        self, small_profiles_module, chain, budget, dp
    ):
        # Every feasible raw decision must satisfy Eq. 6 against the
        # downstream P99 allocation chosen by the DP.
        synth = HintSynthesizer(small_profiles_module, chain)
        raw = synth.synthesize_suffix(0, dp, budget)
        prof = small_profiles_module["F0"]
        idx = np.flatnonzero(raw.feasible_mask)[:: max(1, len(raw) // 50)]
        for i in idx:
            t = raw.tmin_ms + int(i)
            k = int(raw.head_sizes[i])
            p = float(raw.head_percentiles[i])
            d_head = prof.timeout(p, k)
            rest_budget = t - int(np.ceil(prof.latency(p, k)))
            rest_resil = dp.total_resilience(1, rest_budget)
            assert d_head <= rest_resil + 1e-6

    def test_budget_monotone_head_not_above_p99_plan(
        self, small_profiles_module, chain, budget, dp
    ):
        # The planned total never exceeds the pure-P99 plan's total at the
        # same budget (head exploration only relaxes the head's share).
        synth = HintSynthesizer(small_profiles_module, chain)
        raw = synth.synthesize_suffix(0, dp, budget)
        idx = np.flatnonzero(raw.feasible_mask)[::100]
        for i in idx:
            t = raw.tmin_ms + int(i)
            p99_total = dp.min_total_cores(0, t)
            assert raw.planned_total[i] <= p99_total * 2.0  # sanity bound

    def test_at_accessor(self, small_profiles_module, chain, budget, dp):
        synth = HintSynthesizer(small_profiles_module, chain)
        raw = synth.synthesize_suffix(0, dp, budget)
        first = raw.first_feasible_budget()
        assert first is not None
        assert raw.at(first) is not None
        assert raw.at(raw.tmin_ms - 10) is None

    def test_invalid_suffix_index(self, small_profiles_module, chain, budget, dp):
        synth = HintSynthesizer(small_profiles_module, chain)
        with pytest.raises(SynthesisError):
            synth.synthesize_suffix(7, dp, budget)


class TestWorkflowHintsSynthesis:
    def test_counts_and_compression(self, small_profiles_module, chain, budget):
        hints = synthesize_hints(small_profiles_module, chain, budget)
        assert hints.raw_hint_count > hints.condensed_hint_count > 0
        assert hints.compression_ratio > 0.8

    def test_synthesis_time_recorded(self, small_profiles_module, chain, budget):
        hints = synthesize_hints(small_profiles_module, chain, budget)
        assert hints.synthesis_seconds > 0

    def test_default_budget_from_eq3(self, small_profiles_module, chain):
        hints = synthesize_hints(small_profiles_module, chain)
        lo, hi = hints.metadata["budget"]
        b = budget_range_for_chain([small_profiles_module[f] for f in chain])
        assert (lo, hi) == (b.tmin_ms, b.tmax_ms)

    def test_weight_reduces_table_size(self, small_profiles_module, chain, budget):
        # Fig. 8: higher weights produce smaller hint tables.
        w1 = synthesize_hints(small_profiles_module, chain, budget, weight=1.0)
        w3 = synthesize_hints(small_profiles_module, chain, budget, weight=3.0)
        assert w3.condensed_hint_count <= w1.condensed_hint_count

    def test_janus_plus_more_expensive(self, small_profiles_module, chain, budget):
        from repro.synthesis.dp import clear_dp_cache
        from repro.synthesis.generator import clear_hints_cache

        # Fig. 6b: joint exploration costs much more synthesis time. Both
        # builds must run the cold path — the process-wide memos would
        # otherwise let the second reuse the first's DP tables (or return
        # stale timings on a re-run within one process).
        clear_dp_cache()
        clear_hints_cache()
        j = synthesize_hints(
            small_profiles_module, chain, budget,
            exploration=HeadExploration.HEAD_ONLY,
        )
        clear_dp_cache()
        clear_hints_cache()
        jp = synthesize_hints(
            small_profiles_module, chain, budget,
            exploration=HeadExploration.HEAD_PLUS_NEXT,
        )
        # The tiny 5-percentile test grid only multiplies the sweep ~5x and
        # fixed costs dominate, so assert a conservative bound; the full-grid
        # cost gap is asserted by benchmarks/bench_fig6_synthesis_cost.py.
        assert jp.synthesis_seconds > 1.2 * j.synthesis_seconds

    def test_invalid_weight(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(weight=0.0)

    def test_empty_chain_rejected(self, small_profiles_module):
        with pytest.raises(SynthesisError):
            HintSynthesizer(small_profiles_module, [])

    def test_suffix_budget_extends_down(self, small_profiles_module, chain, budget):
        synth = HintSynthesizer(small_profiles_module, chain)
        sb = synth.suffix_budget(2, budget, 1)
        assert sb.tmin_ms <= budget.tmin_ms
        assert sb.tmax_ms == budget.tmax_ms

    def test_single_function_chain(self, small_profiles_module):
        hints = synthesize_hints(small_profiles_module, ["F0"])
        assert hints.num_stages == 1
        table = hints.tables[0]
        # Generous budgets must map to the minimum size.
        assert table.lookup(table.tmax_ms).size == 1000
