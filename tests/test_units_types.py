"""Units, shared types, and RNG management."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import RngFactory, child_seed, derive_rng, make_rng
from repro.types import DEFAULT_PERCENTILES, PercentileGrid, ResourceLimits
from repro.units import (
    cores_to_millicores,
    millicores_to_cores,
    ms_to_seconds,
    seconds_to_ms,
    validate_non_negative,
    validate_positive,
)


class TestUnits:
    def test_seconds_roundtrip(self):
        assert ms_to_seconds(seconds_to_ms(3.5)) == pytest.approx(3.5)

    def test_seconds_to_ms(self):
        assert seconds_to_ms(1.5) == 1500.0

    def test_cores_roundtrip(self):
        assert millicores_to_cores(cores_to_millicores(2.5)) == pytest.approx(2.5)

    def test_cores_rounding(self):
        assert cores_to_millicores(1.0004) == 1000

    def test_validate_positive_accepts(self):
        assert validate_positive(0.1, "x") == 0.1

    def test_validate_positive_rejects_zero(self):
        with pytest.raises(ConfigError):
            validate_positive(0.0, "x")

    def test_validate_non_negative_accepts_zero(self):
        assert validate_non_negative(0.0, "x") == 0.0

    def test_validate_non_negative_rejects(self):
        with pytest.raises(ConfigError):
            validate_non_negative(-1.0, "x")


class TestResourceLimits:
    def test_default_grid_matches_paper(self):
        limits = ResourceLimits()
        grid = limits.grid()
        assert grid[0] == 1000 and grid[-1] == 3000
        assert len(grid) == 21  # 1000..3000 step 100

    def test_num_options(self):
        assert ResourceLimits(1000, 2000, 500).num_options == 3

    def test_clamp_snaps_to_grid(self):
        limits = ResourceLimits(1000, 3000, 100)
        assert limits.clamp(1049) == 1000
        assert limits.clamp(1051) == 1100
        assert limits.clamp(99999) == 3000
        assert limits.clamp(1) == 1000

    def test_contains(self):
        limits = ResourceLimits(1000, 3000, 100)
        assert limits.contains(1500)
        assert not limits.contains(1550)
        assert not limits.contains(3100)

    def test_invalid_range_rejected(self):
        with pytest.raises(ConfigError):
            ResourceLimits(kmin=2000, kmax=1000)

    def test_misaligned_step_rejected(self):
        with pytest.raises(ConfigError):
            ResourceLimits(kmin=1000, kmax=3050, step=100)

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            ResourceLimits(kmin=0, kmax=1000)


class TestPercentileGrid:
    def test_default_contains_anchor(self):
        grid = PercentileGrid()
        assert 99.0 in grid.percentiles
        assert grid.anchor == 99.0
        assert grid.percentiles == DEFAULT_PERCENTILES

    def test_default_is_paper_grid(self):
        # P1 then 5..95 step 5 then P99 anchor
        grid = PercentileGrid()
        assert grid.percentiles[0] == 1.0
        assert grid.percentiles[-1] == 99.0
        assert 50.0 in grid.percentiles

    def test_below_anchor(self):
        grid = PercentileGrid(percentiles=(1.0, 50.0, 99.0))
        assert grid.below_anchor() == (1.0, 50.0)

    def test_index_of(self):
        grid = PercentileGrid(percentiles=(1.0, 50.0, 99.0))
        assert grid.index_of(50.0) == 1
        assert grid.anchor_index == 2

    def test_index_of_unknown_raises(self):
        grid = PercentileGrid(percentiles=(1.0, 99.0))
        with pytest.raises(ConfigError):
            grid.index_of(42.0)

    def test_anchor_must_be_member(self):
        with pytest.raises(ConfigError):
            PercentileGrid(percentiles=(1.0, 50.0), anchor=99.0)

    def test_unsorted_rejected(self):
        with pytest.raises(ConfigError):
            PercentileGrid(percentiles=(50.0, 1.0, 99.0))

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            PercentileGrid(percentiles=(0.0, 99.0))
        with pytest.raises(ConfigError):
            PercentileGrid(percentiles=(1.0, 100.0), anchor=1.0)

    def test_stricter_anchor_supported(self):
        # Paper §III-B: P99.9 SLOs are supported by raising the anchor.
        grid = PercentileGrid(percentiles=(1.0, 50.0, 99.0, 99.9), anchor=99.9)
        assert grid.anchor_index == 3

    def test_as_array(self):
        grid = PercentileGrid(percentiles=(1.0, 99.0))
        np.testing.assert_allclose(grid.as_array(), [1.0, 99.0])


class TestRng:
    def test_child_seed_deterministic(self):
        assert child_seed(42, "a", "b") == child_seed(42, "a", "b")

    def test_child_seed_label_sensitive(self):
        assert child_seed(42, "a") != child_seed(42, "b")
        assert child_seed(42, "ab") != child_seed(42, "a", "b")

    def test_child_seed_seed_sensitive(self):
        assert child_seed(1, "a") != child_seed(2, "a")

    def test_derive_rng_reproducible(self):
        a = derive_rng(7, "x").standard_normal(5)
        b = derive_rng(7, "x").standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        f = RngFactory(3)
        a = f.stream("one").standard_normal(100)
        b = f.stream("two").standard_normal(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_fork_namespacing(self):
        f = RngFactory(3)
        assert f.fork("sub").seed("x") == RngFactory(f.seed("sub")).seed("x")

    def test_make_rng(self):
        assert isinstance(make_rng(1), np.random.Generator)
