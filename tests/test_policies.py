"""Sizing policies: early binders, ORION, Janus family, Optimal oracle."""

import pytest

from repro.errors import PolicyError
from repro.policies.early_binding import (
    FixedPlanPolicy,
    GrandSLAMPlusPolicy,
    GrandSLAMPolicy,
    WorstCasePolicy,
)
from repro.policies.janus import JanusPolicy, janus, janus_minus, janus_plus
from repro.policies.oracle import OraclePolicy
from repro.policies.orion import OrionPolicy
from repro.runtime.executor import AnalyticExecutor
from repro.synthesis.generator import synthesize_hints
from repro.traces.workload import WorkloadConfig, generate_requests


@pytest.fixture(scope="module")
def requests_small(request):
    wf = request.getfixturevalue("small_workflow")
    return generate_requests(wf, WorkloadConfig(n_requests=150), seed=9)


class TestFixedPlan:
    def test_constant_sizes(self, small_workflow, requests_small):
        policy = FixedPlanPolicy("fixed", [1000, 2000, 3000])
        req = requests_small[0]
        assert policy.size_for_stage(0, req, 0.0) == 1000
        assert policy.size_for_stage(2, req, 500.0) == 3000
        assert policy.total_millicores == 6000

    def test_out_of_range_stage(self, requests_small):
        policy = FixedPlanPolicy("fixed", [1000])
        with pytest.raises(PolicyError):
            policy.size_for_stage(1, requests_small[0], 0.0)

    def test_validation(self):
        with pytest.raises(PolicyError):
            FixedPlanPolicy("x", [])
        with pytest.raises(PolicyError):
            FixedPlanPolicy("x", [0])

    def test_worst_case(self, small_workflow):
        policy = WorstCasePolicy(small_workflow)
        assert policy.plan == [3000, 3000, 3000]


class TestGrandSLAM:
    def test_uniform_sizes(self, small_workflow, small_profiles):
        policy = GrandSLAMPolicy(small_workflow, small_profiles)
        assert len(set(policy.plan)) == 1  # identical sizes by construction

    def test_meets_p99_budget(self, small_workflow, small_profiles):
        policy = GrandSLAMPolicy(small_workflow, small_profiles)
        total = sum(
            small_profiles[f].latency(99, k)
            for f, k in zip(small_workflow.chain, policy.plan)
        )
        assert total <= small_workflow.slo_ms

    def test_minimal_uniform(self, small_workflow, small_profiles):
        policy = GrandSLAMPolicy(small_workflow, small_profiles)
        k = policy.plan[0]
        if k > small_workflow.limits.kmin:
            smaller = k - small_workflow.limits.step
            total = sum(
                small_profiles[f].latency(99, smaller)
                for f in small_workflow.chain
            )
            assert total > small_workflow.slo_ms

    def test_infeasible_slo_rejected(self, small_workflow, small_profiles):
        with pytest.raises(PolicyError):
            GrandSLAMPolicy(small_workflow, small_profiles, slo_ms=10.0)

    def test_plus_never_worse(self, small_workflow, small_profiles):
        gs = GrandSLAMPolicy(small_workflow, small_profiles)
        gsp = GrandSLAMPlusPolicy(small_workflow, small_profiles)
        assert gsp.total_millicores <= gs.total_millicores

    def test_plus_meets_budget(self, small_workflow, small_profiles):
        gsp = GrandSLAMPlusPolicy(small_workflow, small_profiles)
        total = sum(
            small_profiles[f].latency(99, k)
            for f, k in zip(small_workflow.chain, gsp.plan)
        )
        assert total <= small_workflow.slo_ms

    def test_plus_infeasible_rejected(self, small_workflow, small_profiles):
        with pytest.raises(PolicyError):
            GrandSLAMPlusPolicy(small_workflow, small_profiles, slo_ms=10.0)


class TestOrion:
    def test_cheaper_than_grandslam_plus(self, small_workflow, small_profiles):
        # The convolution concentrates, so ORION provisions less.
        orion = OrionPolicy(small_workflow, small_profiles, safety_margin=0.0)
        gsp = GrandSLAMPlusPolicy(small_workflow, small_profiles)
        assert orion.total_millicores <= gsp.total_millicores

    def test_meets_slo_on_common_randomness(
        self, small_workflow, small_profiles, requests_small
    ):
        orion = OrionPolicy(small_workflow, small_profiles)
        result = AnalyticExecutor(small_workflow).run(orion, requests_small)
        assert result.violation_rate <= 0.02

    def test_safety_margin_increases_allocation(
        self, small_workflow, small_profiles
    ):
        loose = OrionPolicy(small_workflow, small_profiles, safety_margin=0.0)
        tight = OrionPolicy(small_workflow, small_profiles, safety_margin=0.15)
        assert tight.total_millicores >= loose.total_millicores

    def test_invalid_margin(self, small_workflow, small_profiles):
        with pytest.raises(PolicyError):
            OrionPolicy(small_workflow, small_profiles, safety_margin=1.5)

    def test_infeasible_slo_rejected(self, small_workflow, small_profiles):
        with pytest.raises(PolicyError):
            OrionPolicy(small_workflow, small_profiles, slo_ms=10.0)


class TestOracle:
    def test_optimal_meets_slo_whenever_possible(
        self, small_workflow, requests_small
    ):
        oracle = OraclePolicy(small_workflow)
        result = AnalyticExecutor(small_workflow).run(oracle, requests_small)
        # With the calibrated workloads the SLO is always attainable.
        assert result.violation_rate == 0.0

    def test_never_more_than_worst_case(self, small_workflow, requests_small):
        executor = AnalyticExecutor(small_workflow)
        oracle = executor.run(OraclePolicy(small_workflow), requests_small)
        worst = executor.run(WorstCasePolicy(small_workflow), requests_small)
        assert oracle.mean_allocated <= worst.mean_allocated

    def test_cheapest_policy(self, small_workflow, small_profiles, requests_small):
        # The oracle lower-bounds every SLO-compliant policy on the same
        # randomness.
        executor = AnalyticExecutor(small_workflow)
        oracle = executor.run(OraclePolicy(small_workflow), requests_small)
        gsp = executor.run(
            GrandSLAMPlusPolicy(small_workflow, small_profiles), requests_small
        )
        assert oracle.mean_allocated <= gsp.mean_allocated + 1e-9

    def test_plan_is_feasible_per_request(self, small_workflow, requests_small):
        oracle = OraclePolicy(small_workflow)
        req = requests_small[0]
        oracle.begin_request(req)
        elapsed = 0.0
        for i, fname in enumerate(small_workflow.chain):
            k = oracle.size_for_stage(i, req, elapsed)
            elapsed += small_workflow.model(fname).execution_time(
                k, req.dynamics_for(fname)
            )
        assert elapsed <= req.slo_ms + len(small_workflow.chain)  # ceil slack
        oracle.end_request(req)

    def test_requires_begin_request(self, small_workflow, requests_small):
        oracle = OraclePolicy(small_workflow)
        with pytest.raises(PolicyError):
            oracle.size_for_stage(0, requests_small[0], 0.0)

    def test_end_request_clears_state(self, small_workflow, requests_small):
        oracle = OraclePolicy(small_workflow)
        req = requests_small[0]
        oracle.begin_request(req)
        oracle.end_request(req)
        with pytest.raises(PolicyError):
            oracle.size_for_stage(0, req, 0.0)


class TestJanusFamily:
    def test_janus_complies_with_slo(
        self, small_workflow, small_profiles, requests_small
    ):
        policy = janus(small_workflow, small_profiles)
        result = AnalyticExecutor(small_workflow).run(policy, requests_small)
        assert result.violation_rate <= 0.01 + 1e-9

    def test_variant_ordering(self, small_workflow, small_profiles, requests_small):
        # Janus <= Janus- in consumption; Janus+ <= Janus (within noise).
        executor = AnalyticExecutor(small_workflow)
        res = {
            name: executor.run(pol, requests_small).mean_allocated
            for name, pol in {
                "janus": janus(small_workflow, small_profiles),
                "minus": janus_minus(small_workflow, small_profiles),
                "plus": janus_plus(small_workflow, small_profiles),
            }.items()
        }
        assert res["janus"] <= res["minus"] * 1.02
        assert res["plus"] <= res["janus"] * 1.02

    def test_hit_rate_high_in_distribution(
        self, small_workflow, small_profiles, requests_small
    ):
        policy = janus(small_workflow, small_profiles)
        AnalyticExecutor(small_workflow).run(policy, requests_small)
        assert policy.hit_rate >= 0.95

    def test_stage_count_mismatch_rejected(self, small_workflow, small_profiles):
        hints = synthesize_hints(small_profiles, ["F0", "F1"])
        with pytest.raises(PolicyError):
            JanusPolicy(small_workflow, hints)

    def test_synthesis_seconds_exposed(self, small_workflow, small_profiles):
        policy = janus(small_workflow, small_profiles)
        assert policy.synthesis_seconds > 0
