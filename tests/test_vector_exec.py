"""The batched analytic path is bit-identical to the scalar reference.

The vectorised executors (``AnalyticExecutor._serve_batch``,
``DagAnalyticExecutor._serve_batch``) and every array kernel feeding them
(model evaluation, grid clamping, hint lookups, supervisor accounting) are
pure-speedup refactors: each element must equal the retained scalar path to
the last bit, not approximately. This suite pins that contract with
hypothesis property tests over random workflows/policies/streams, plus
direct tests for the new array paths (streaming chunk boundaries, the
non-vector-policy fallback loop, clamp/off-grid error handling under
batching).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapter.adapter import JanusAdapter
from repro.adapter.supervisor import HitMissSupervisor
from repro.errors import ExperimentError, FunctionModelError, ProfileError
from repro.policies.base import SizingPolicy
from repro.policies.dag import DagFixedPolicy, DagJanusPolicy
from repro.policies.early_binding import FixedPlanPolicy, WorstCasePolicy
from repro.policies.janus import janus
from repro.policies.oracle import OraclePolicy
from repro.profiling.profiler import Profiler, ProfilerConfig
from repro.profiling.profiles import ProfileSet
from repro.rng import RngFactory
from repro.runtime.dag_executor import DagAnalyticExecutor
from repro.runtime.executor import AnalyticExecutor
from repro.runtime.results import ColumnarRunResult, RunResult
from repro.synthesis.dag import synthesize_dag_hints
from repro.synthesis.hints import CondensedHintsTable
from repro.traces.workload import WorkloadConfig, generate_requests
from repro.types import ResourceLimits
from repro.workflow.catalog import Workflow
from repro.workflow.dag import WorkflowDAG
from tests.conftest import (
    make_chain_workflow,
    make_function,
    small_limits,
    tiny_percentiles,
)


def assert_outcomes_identical(got, want):
    """Field-by-field float-exact equality of two outcome lists."""
    assert len(got) == len(want)
    for a, b in zip(got, want):
        assert a.request_id == b.request_id
        assert a.arrival_ms == b.arrival_ms
        assert a.slo_ms == b.slo_ms
        assert len(a.stages) == len(b.stages)
        for sa, sb in zip(a.stages, b.stages):
            assert sa.function == sb.function
            assert sa.size == sb.size
            assert sa.start_ms == sb.start_ms
            assert sa.end_ms == sb.end_ms


def assert_run_identical(executor, make_policy, requests):
    """Batched ``run`` equals a scalar ``run_request`` replay.

    ``make_policy`` builds a fresh instance per path so stateful policies
    (adapter counters, oracle plan caches) start from the same state.
    """
    result = executor.run(make_policy(), requests)
    scalar_policy = make_policy()
    reference = [executor.run_request(scalar_policy, r) for r in requests]
    assert_outcomes_identical(result.outcomes, reference)
    ref = RunResult(policy_name=scalar_policy.name, outcomes=reference)
    assert np.array_equal(result.e2e_ms(), ref.e2e_ms())
    assert np.array_equal(result.slacks(), ref.slacks())
    assert np.array_equal(result.allocated(), ref.allocated())
    assert result.violation_rate == ref.violation_rate
    assert result.mean_millicore_ms == ref.mean_millicore_ms
    return result


class ElapsedRampPolicy(SizingPolicy):
    """Late-binding third-party-style policy: overrides only the scalar
    method, so the batched executor exercises the base-class fallback."""

    name = "elapsed-ramp"
    late_binding = True

    def __init__(self, limits: ResourceLimits, slo_ms: float) -> None:
        self._limits = limits
        self._slo = float(slo_ms)

    def size_for_node(self, node, request, elapsed_ms):
        span = self._limits.kmax - self._limits.kmin
        return self._limits.clamp(
            self._limits.kmin + int(elapsed_ms / self._slo * span)
        )


class OffGridPolicy(SizingPolicy):
    """Returns a size off every grid (for the strict error path)."""

    name = "off-grid"

    def size_for_node(self, node, request, elapsed_ms):
        return 1234


class TestChainBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(
        n_stages=st.integers(min_value=1, max_value=4),
        n_requests=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**20),
        kind=st.sampled_from(["fixed", "worst", "ramp"]),
    )
    def test_random_streams(self, n_stages, n_requests, seed, kind):
        wf = make_chain_workflow(n=n_stages)
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed
        )
        rng = np.random.default_rng(seed)
        if kind == "fixed":
            plan = [int(k) for k in rng.choice(wf.limits.grid(), n_stages)]
            make_policy = lambda: FixedPlanPolicy("fixed", plan)  # noqa: E731
        elif kind == "worst":
            make_policy = lambda: WorstCasePolicy(wf)  # noqa: E731
        else:
            make_policy = lambda: ElapsedRampPolicy(  # noqa: E731
                wf.limits, wf.slo_ms
            )
        result = assert_run_identical(
            AnalyticExecutor(wf), make_policy, requests
        )
        assert isinstance(result, ColumnarRunResult)

    def test_janus_policy(self, small_workflow, small_profiles, small_budget):
        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=80), seed=3
        )
        assert_run_identical(
            AnalyticExecutor(small_workflow),
            lambda: janus(small_workflow, small_profiles, budget=small_budget),
            requests,
        )

    def test_oracle_policy(self, small_workflow):
        requests = generate_requests(
            small_workflow, WorkloadConfig(n_requests=40), seed=8
        )
        assert_run_identical(
            AnalyticExecutor(small_workflow),
            lambda: OraclePolicy(small_workflow),
            requests,
        )

    def test_strict_off_grid_raises_under_batching(self):
        wf = make_chain_workflow(n=2)
        requests = generate_requests(wf, WorkloadConfig(n_requests=5), seed=1)
        executor = AnalyticExecutor(wf, clamp_sizes=False)
        with pytest.raises(
            ExperimentError, match="size 1234 off-grid for stage F0"
        ):
            executor.run(OffGridPolicy(), requests)

    def test_clamp_snaps_like_scalar(self):
        wf = make_chain_workflow(n=2)
        requests = generate_requests(wf, WorkloadConfig(n_requests=12), seed=2)
        assert_run_identical(AnalyticExecutor(wf), OffGridPolicy, requests)

    def test_empty_stream_rejected(self):
        wf = make_chain_workflow(n=2)
        with pytest.raises(ExperimentError, match="request stream is empty"):
            AnalyticExecutor(wf).run(WorstCasePolicy(wf), [])


class TestVectorSafeFallback:
    def test_vector_unsafe_policy_takes_scalar_path(self):
        wf = make_chain_workflow(n=2)
        requests = generate_requests(wf, WorkloadConfig(n_requests=10), seed=4)

        calls = []

        class OrderSensitive(ElapsedRampPolicy):
            vector_safe = False

            def size_for_node(self, node, request, elapsed_ms):
                calls.append((request.request_id, node))
                return super().size_for_node(node, request, elapsed_ms)

        policy = OrderSensitive(wf.limits, wf.slo_ms)
        result = AnalyticExecutor(wf).run(policy, requests)
        assert type(result) is RunResult  # scalar path, not columnar
        # Request-major order preserved: both stages of request i precede
        # any stage of request i+1.
        assert calls == [
            (r.request_id, f) for r in requests for f in wf.chain
        ]

    def test_base_fallback_loops_scalar_method(self):
        wf = make_chain_workflow(n=2)
        requests = generate_requests(wf, WorkloadConfig(n_requests=6), seed=5)
        policy = ElapsedRampPolicy(wf.limits, wf.slo_ms)
        policy.bind(wf)
        sizes = policy.sizes_for_node("F1", requests, np.full(6, 321.5))
        assert sizes.dtype == np.int64
        expected = [policy.size_for_node("F1", r, 321.5) for r in requests]
        assert sizes.tolist() == expected


class TestStreamingChunks:
    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64])
    def test_chunk_boundaries_bit_identical(self, chunk_size):
        wf = make_chain_workflow(n=3)
        requests = generate_requests(wf, WorkloadConfig(n_requests=23), seed=6)
        executor = AnalyticExecutor(wf)
        policy = WorstCasePolicy(wf)
        chunked = executor.run_streaming(
            policy, iter(requests), chunk_size=chunk_size
        )
        whole = executor.run_streaming(policy, iter(requests))
        assert chunked == whole

    def test_matches_scalar_fold(self):
        wf = make_chain_workflow(n=3)
        requests = generate_requests(wf, WorkloadConfig(n_requests=23), seed=7)
        executor = AnalyticExecutor(wf)

        class ScalarRamp(ElapsedRampPolicy):
            vector_safe = False

        vector = executor.run_streaming(
            ElapsedRampPolicy(wf.limits, wf.slo_ms),
            iter(requests),
            chunk_size=5,
        )
        scalar = executor.run_streaming(
            ScalarRamp(wf.limits, wf.slo_ms), iter(requests)
        )
        assert vector == scalar

    def test_bad_chunk_size_rejected(self):
        wf = make_chain_workflow(n=2)
        with pytest.raises(ExperimentError, match="chunk_size must be >= 1"):
            AnalyticExecutor(wf).run_streaming(
                WorstCasePolicy(wf), iter([]), chunk_size=0
            )

    def test_empty_stream_rejected(self):
        wf = make_chain_workflow(n=2)
        with pytest.raises(ExperimentError, match="request stream is empty"):
            AnalyticExecutor(wf).run_streaming(WorstCasePolicy(wf), iter([]))


@pytest.fixture(scope="module")
def diamond_workflow():
    dag = WorkflowDAG(
        ["A", "B", "C", "D"],
        [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")],
    )
    functions = {
        "A": make_function("A", serial=40, parallel=260, sigma=0.08, gamma=0.2),
        "B": make_function("B", serial=80, parallel=520, sigma=0.08, gamma=0.2),
        "C": make_function("C", serial=20, parallel=120, sigma=0.08, gamma=0.2),
        "D": make_function("D", serial=40, parallel=240, sigma=0.08, gamma=0.2),
    }
    return Workflow(
        name="diamond", dag=dag, functions=functions,
        slo_ms=1450.0, limits=small_limits(),
    )


class TestDagBitIdentity:
    @settings(max_examples=20, deadline=None)
    @given(
        n_requests=st.integers(min_value=1, max_value=30),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_fixed_plan_random_streams(self, diamond_workflow, n_requests, seed):
        wf = diamond_workflow
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed
        )
        rng = np.random.default_rng(seed)
        plan = {n: int(rng.choice(wf.limits.grid())) for n in wf.dag.nodes}
        result = assert_run_identical(
            DagAnalyticExecutor(wf),
            lambda: DagFixedPolicy("fixed-dag", plan),
            requests,
        )
        assert isinstance(result, ColumnarRunResult)

    def test_dag_janus(self, diamond_workflow):
        wf = diamond_workflow
        cfg = ProfilerConfig(
            limits=wf.limits, percentiles=tiny_percentiles(), samples=400
        )
        profiler = Profiler(cfg)
        factory = RngFactory(13).fork("diamond-vec")
        profiles = ProfileSet({
            name: profiler.profile_function(wf.model(name), factory.stream(name))
            for name in wf.dag.nodes
        })
        hints = synthesize_dag_hints(wf, profiles)
        requests = generate_requests(wf, WorkloadConfig(n_requests=40), seed=9)
        assert_run_identical(
            DagAnalyticExecutor(wf),
            lambda: DagJanusPolicy(wf, hints),
            requests,
        )

    def test_strict_off_grid_message(self, diamond_workflow):
        wf = diamond_workflow
        requests = generate_requests(wf, WorkloadConfig(n_requests=3), seed=10)
        executor = DagAnalyticExecutor(wf, clamp_sizes=False)
        with pytest.raises(ExperimentError, match=r"size 1234 off-grid for A"):
            executor.run(OffGridPolicy(), requests)

    def test_vector_unsafe_policy_takes_scalar_path(self, diamond_workflow):
        wf = diamond_workflow
        requests = generate_requests(wf, WorkloadConfig(n_requests=5), seed=11)

        class UnsafeFixed(DagFixedPolicy):
            vector_safe = False

        plan = {n: wf.limits.kmax for n in wf.dag.nodes}
        result = DagAnalyticExecutor(wf).run(UnsafeFixed("unsafe", plan), requests)
        assert type(result) is RunResult


class TestColumnarResult:
    def test_outcomes_materialise_lazily(self):
        wf = make_chain_workflow(n=3)
        requests = generate_requests(wf, WorkloadConfig(n_requests=9), seed=12)
        result = AnalyticExecutor(wf).run(WorstCasePolicy(wf), requests)
        assert isinstance(result, ColumnarRunResult)
        assert result._outcomes is None  # summary math never materialises
        result.summary()
        assert result._outcomes is None
        outcomes = result.outcomes
        assert result._outcomes is outcomes
        assert len(outcomes) == 9
        # Materialised rows carry exact Python scalars.
        assert isinstance(outcomes[0].stages[0].size, int)
        assert isinstance(outcomes[0].stages[0].start_ms, float)


class TestArrayKernels:
    def test_lookup_many_matches_scalar(self):
        table = CondensedHintsTable(
            suffix_index=0,
            head_function="F",
            starts=np.array([100, 200, 400]),
            ends=np.array([199, 399, 600]),
            sizes=np.array([3000, 2000, 1000]),
            kmax=3000,
        )
        budgets = np.array(
            [-50.0, 0.0, 99.9, 100.0, 150.0, 199.0, 200.0, 399.5, 600.0, 601.0, 1e9]
        )
        sizes, hits = table.lookup_many(budgets)
        for b, size, hit in zip(budgets.tolist(), sizes.tolist(), hits.tolist()):
            ref = table.lookup(b)
            assert (size, hit) == (ref.size, ref.hit), b

    def test_lookup_many_no_clamp_above(self):
        table = CondensedHintsTable(
            suffix_index=0,
            head_function="F",
            starts=np.array([100]),
            ends=np.array([200]),
            sizes=np.array([1500]),
            kmax=3000,
            clamp_above=False,
        )
        sizes, hits = table.lookup_many(np.array([250.0, 150.0]))
        assert sizes.tolist() == [3000, 1500]
        assert hits.tolist() == [False, True]

    @pytest.mark.parametrize("window", [None, 16])
    def test_record_many_matches_scalar(self, window):
        rng = np.random.default_rng(0)
        samples = rng.random(300) > 0.02
        bulk = HitMissSupervisor(min_samples=10, window=window)
        loop = HitMissSupervisor(min_samples=10, window=window)
        bulk.record_many(samples)
        for h in samples:
            loop.record(bool(h))
        assert bulk.hits == loop.hits
        assert bulk.misses == loop.misses
        assert bulk.miss_rate == loop.miss_rate
        assert bulk.should_regenerate == loop.should_regenerate
        assert bulk._notified == loop._notified
        if window is not None:
            assert list(bulk._recent) == list(loop._recent)

    def test_record_many_with_callback_fires_once(self):
        sup = HitMissSupervisor(miss_threshold=0.1, min_samples=5)
        fired = []
        sup.on_regenerate(lambda s: fired.append(s.total))
        sup.record_many(np.array([False] * 20))
        assert fired == [5]  # fired at the first crossing, not at the end

    def test_decide_many_latency_log_one_entry_per_decision(
        self, small_workflow, small_profiles, small_budget
    ):
        policy = janus(small_workflow, small_profiles, budget=small_budget)
        adapter: JanusAdapter = policy.adapter
        budgets = [500.0, 900.0, -10.0]
        sizes, hits = adapter.decide_many(0, np.array(budgets))
        assert sizes.shape == (3,)
        assert len(adapter.decision_latencies_ms()) == 3
        for b, size, hit in zip(budgets, sizes, hits):
            ref = adapter.hints.table_for_stage(0).lookup(b)
            assert (int(size), bool(hit)) == (ref.size, ref.hit)

    def test_profile_latencies_matches_scalar(self, small_profiles):
        prof = small_profiles["F0"]
        ks = prof.limits.grid()
        got = prof.latencies(prof.percentiles.anchor, ks)
        want = [prof.latency(prof.percentiles.anchor, int(k)) for k in ks]
        assert got.tolist() == want

    def test_profile_latencies_off_grid_rejected(self, small_profiles):
        prof = small_profiles["F0"]
        with pytest.raises(
            ProfileError, match="size 1234 not on the profiled grid"
        ):
            prof.latencies(prof.percentiles.anchor, np.array([1000, 1234]))

    def test_execution_times_validation(self):
        batchable = make_function("F")
        frozen = make_function("F", batchable=False)
        ones = np.ones(3)
        unit_conc = np.ones(3, dtype=np.int64)
        with pytest.raises(FunctionModelError, match="millicores must be > 0"):
            batchable.execution_times(
                np.array([1000, 0, 2000]), ones, ones, ones, unit_conc
            )
        with pytest.raises(FunctionModelError, match="not batchable"):
            frozen.execution_times(
                np.full(3, 1000), ones, ones, ones, np.array([1, 2, 1])
            )
        with pytest.raises(
            FunctionModelError, match="concurrency must be >= 1"
        ):
            batchable.execution_times(
                np.full(3, 1000), ones, ones, ones, np.array([1, 0, 1])
            )

    def test_clamp_and_contains_arrays_match_scalar(self):
        limits = ResourceLimits(kmin=1000, kmax=3000, step=100)
        ks = np.arange(800, 3300, 7)
        assert limits.clamp_array(ks).tolist() == [
            limits.clamp(int(k)) for k in ks
        ]
        assert limits.contains_array(ks).tolist() == [
            limits.contains(int(k)) for k in ks
        ]
