"""The Janus synthesizer: hint generation (Algorithm 1) + condensing (Algorithm 2).

Turns developer-side latency profiles into the compact
``<Tstart, Tend, size>`` hint tables the provider-side adapter consults at
runtime. See DESIGN.md §3 for the vectorisation strategy.
"""

from .budget import BudgetRange, budget_range_for_chain
from .condenser import condense
from .dag import (
    DagWorkflowHints,
    clear_dag_hints_cache,
    dag_hints_cache_stats,
    downstream_chain,
    set_dag_hints_cache_dir,
    synthesize_dag_hints,
)
from .dp import ChainDP
from .generator import (
    HeadExploration,
    HintSynthesizer,
    SynthesisConfig,
    synthesize_hints,
)
from .hints import CondensedHintsTable, LookupResult, RawHints, WorkflowHints

__all__ = [
    "BudgetRange",
    "budget_range_for_chain",
    "ChainDP",
    "condense",
    "DagWorkflowHints",
    "synthesize_dag_hints",
    "downstream_chain",
    "clear_dag_hints_cache",
    "set_dag_hints_cache_dir",
    "dag_hints_cache_stats",
    "HeadExploration",
    "SynthesisConfig",
    "HintSynthesizer",
    "synthesize_hints",
    "RawHints",
    "CondensedHintsTable",
    "LookupResult",
    "WorkflowHints",
]
