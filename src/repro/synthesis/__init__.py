"""The Janus synthesizer: hint generation (Algorithm 1) + condensing (Algorithm 2).

Turns developer-side latency profiles into the compact
``<Tstart, Tend, size>`` hint tables the provider-side adapter consults at
runtime. See DESIGN.md §3 for the vectorisation strategy.
"""

from .budget import BudgetRange, budget_range_for_chain
from .condenser import condense
from .dag import DagWorkflowHints, downstream_chain, synthesize_dag_hints
from .dp import ChainDP
from .generator import (
    HeadExploration,
    HintSynthesizer,
    SynthesisConfig,
    synthesize_hints,
)
from .hints import CondensedHintsTable, LookupResult, RawHints, WorkflowHints

__all__ = [
    "BudgetRange",
    "budget_range_for_chain",
    "ChainDP",
    "condense",
    "DagWorkflowHints",
    "synthesize_dag_hints",
    "downstream_chain",
    "HeadExploration",
    "SynthesisConfig",
    "HintSynthesizer",
    "synthesize_hints",
    "RawHints",
    "CondensedHintsTable",
    "LookupResult",
    "WorkflowHints",
]
