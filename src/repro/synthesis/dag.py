"""Hint synthesis for general DAG workflows (paper §VII future work).

The paper evaluates chains and names "support for more complex workflows"
as future work. This module extends hint synthesis to arbitrary DAGs with
branching and parallel execution:

* Every function gets its own condensed table, synthesized for the chain
  formed by that function followed by the *critical path* of its downstream
  sub-DAG (weighted by anchor-percentile execution time at ``Kmin`` — the
  latency-dominant continuation the budget must cover).
* At runtime the adapter sizes a function when all its predecessors have
  finished, using the remaining budget ``SLO - elapsed`` against the
  function's own table. Functions on parallel branches are sized
  independently — each sees the same budget, and the SLO is governed by the
  slowest branch, which is exactly the critical path the tables were built
  for.

This is conservative for off-critical-path branches (they could afford
smaller allocations than their table suggests only when their branch is
much shorter — in that case their table's generous-budget rows already
assign ``Kmin``), and exact for the critical path itself, degenerating to
the paper's per-suffix tables when the DAG is a chain.
"""

from __future__ import annotations

import time
import typing as _t
from dataclasses import dataclass, field

from ..errors import SynthesisError
from ..profiling.profiles import ProfileSet
from ..workflow.catalog import Workflow
from ..workflow.dag import WorkflowDAG
from .budget import BudgetRange, budget_range_for_chain
from .condenser import condense
from .dp import ChainDP
from .generator import HeadExploration, HintSynthesizer, SynthesisConfig
from .hints import CondensedHintsTable

__all__ = ["DagWorkflowHints", "synthesize_dag_hints", "downstream_chain"]


def downstream_chain(
    dag: WorkflowDAG,
    function: str,
    weights: _t.Mapping[str, float],
) -> list[str]:
    """``[function] +`` the heaviest path through its downstream sub-DAG."""
    if function not in dag:
        raise SynthesisError(f"unknown function {function!r}")
    # Critical path of the sub-DAG reachable from `function`.
    reachable = {function}
    frontier = [function]
    while frontier:
        node = frontier.pop()
        for succ in dag.successors(node):
            if succ not in reachable:
                reachable.add(succ)
                frontier.append(succ)
    sub = dag.subgraph(reachable)
    path = sub.critical_path({n: float(weights[n]) for n in sub.nodes})
    if path[0] != function:
        # The critical path of the reachable sub-DAG always starts at
        # `function` because every node is reachable from it.
        raise SynthesisError(
            f"internal error: critical path {path} does not start at {function!r}"
        )
    return path


@dataclass
class DagWorkflowHints:
    """Per-function condensed tables for a DAG workflow."""

    workflow_name: str
    tables: dict[str, CondensedHintsTable]
    chains: dict[str, tuple[str, ...]]
    synthesis_seconds: float = 0.0
    metadata: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tables:
            raise SynthesisError("DAG hints require at least one table")
        missing = set(self.tables) ^ set(self.chains)
        if missing:
            raise SynthesisError(f"tables/chains key mismatch: {missing}")

    def table_for(self, function: str) -> CondensedHintsTable:
        """The condensed table whose head is ``function``."""
        try:
            return self.tables[function]
        except KeyError:
            raise SynthesisError(f"no hints for function {function!r}")

    @property
    def total_rows(self) -> int:
        """Condensed rows across all functions."""
        return sum(len(t) for t in self.tables.values())

    def memory_bytes(self) -> int:
        """Bytes across all tables."""
        return sum(t.memory_bytes() for t in self.tables.values())


def synthesize_dag_hints(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    exploration: HeadExploration = HeadExploration.HEAD_ONLY,
    enforce_resilience: bool = True,
) -> DagWorkflowHints:
    """Synthesize per-function hint tables for a (possibly branching) DAG.

    For chain workflows this produces exactly the per-suffix tables of
    :func:`~repro.synthesis.generator.synthesize_hints` (one per stage).
    ``exploration`` selects the Janus variant exactly as in the chain
    synthesizer (NONE = Janus-, HEAD_ONLY = Janus, HEAD_PLUS_NEXT = Janus+);
    ``enforce_resilience`` toggles the Eq. 6 constraint as there.
    """
    start = time.perf_counter()
    dag = workflow.dag
    anchor = profiles.percentiles.anchor
    weights = {
        n: profiles[n].latency(anchor, workflow.limits.kmin, concurrency)
        for n in dag.nodes
    }
    tables: dict[str, CondensedHintsTable] = {}
    chains: dict[str, tuple[str, ...]] = {}
    for function in dag.nodes:
        chain = downstream_chain(dag, function, weights)
        chain_profiles = profiles.for_chain(chain)
        chain_budget = budget_range_for_chain(chain_profiles, concurrency)
        if budget is not None:
            chain_budget = BudgetRange(
                tmin_ms=min(chain_budget.tmin_ms, budget.tmin_ms),
                tmax_ms=max(chain_budget.tmax_ms, budget.tmax_ms),
            )
        synth = HintSynthesizer(
            profiles, chain,
            SynthesisConfig(
                weight=weight, exploration=exploration,
                enforce_resilience=enforce_resilience,
            ),
        )
        dp = ChainDP.cached(chain_profiles, chain_budget.tmax_ms, concurrency)
        raw = synth.synthesize_suffix(0, dp, chain_budget, concurrency)
        table = condense(raw, workflow.limits.kmax)
        # Re-key the table by head function (suffix index is meaningless in
        # the DAG setting; keep 0 so validation stays trivial).
        tables[function] = CondensedHintsTable(
            suffix_index=0,
            head_function=function,
            starts=table.starts,
            ends=table.ends,
            sizes=table.sizes,
            kmax=table.kmax,
            clamp_above=table.clamp_above,
        )
        chains[function] = tuple(chain)
    return DagWorkflowHints(
        workflow_name=workflow.name,
        tables=tables,
        chains=chains,
        synthesis_seconds=time.perf_counter() - start,
        metadata={
            "weight": weight,
            "concurrency": concurrency,
            "exploration": exploration.value,
        },
    )
