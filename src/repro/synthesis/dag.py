"""Hint synthesis for general DAG workflows (paper §VII future work).

The paper evaluates chains and names "support for more complex workflows"
as future work. This module extends hint synthesis to arbitrary DAGs with
branching and parallel execution:

* Every function gets its own condensed table, synthesized for the chain
  formed by that function followed by the *critical path* of its downstream
  sub-DAG (weighted by anchor-percentile execution time at ``Kmin`` — the
  latency-dominant continuation the budget must cover).
* At runtime the adapter sizes a function when all its predecessors have
  finished, using the remaining budget ``SLO - elapsed`` against the
  function's own table. Functions on parallel branches are sized
  independently — each sees the same budget, and the SLO is governed by the
  slowest branch, which is exactly the critical path the tables were built
  for.

This is conservative for off-critical-path branches (they could afford
smaller allocations than their table suggests only when their branch is
much shorter — in that case their table's generous-budget rows already
assign ``Kmin``), and exact for the critical path itself, degenerating to
the paper's per-suffix tables when the DAG is a chain.
"""

from __future__ import annotations

import json
import os
import time
import typing as _t
from dataclasses import dataclass, field

from ..errors import SynthesisError
from ..persist import DiskBackedMemo, atomic_write_bytes
from ..profiling.profiles import ProfileSet
from ..workflow.catalog import Workflow
from ..workflow.dag import WorkflowDAG
from .budget import BudgetRange, budget_range_for_chain
from .condenser import condense
from .dp import ChainDP
from .generator import HeadExploration, HintSynthesizer, SynthesisConfig
from .hints import CondensedHintsTable

__all__ = [
    "DagWorkflowHints",
    "synthesize_dag_hints",
    "downstream_chain",
    "clear_dag_hints_cache",
    "set_dag_hints_cache_dir",
    "dag_hints_cache_dir",
    "dag_hints_cache_stats",
]


def downstream_chain(
    dag: WorkflowDAG,
    function: str,
    weights: _t.Mapping[str, float],
) -> list[str]:
    """``[function] +`` the heaviest path through its downstream sub-DAG."""
    if function not in dag:
        raise SynthesisError(f"unknown function {function!r}")
    # Critical path of the sub-DAG reachable from `function`.
    reachable = {function}
    frontier = [function]
    while frontier:
        node = frontier.pop()
        for succ in dag.successors(node):
            if succ not in reachable:
                reachable.add(succ)
                frontier.append(succ)
    sub = dag.subgraph(reachable)
    path = sub.critical_path({n: float(weights[n]) for n in sub.nodes})
    if path[0] != function:
        # The critical path of the reachable sub-DAG always starts at
        # `function` because every node is reachable from it.
        raise SynthesisError(
            f"internal error: critical path {path} does not start at {function!r}"
        )
    return path


@dataclass
class DagWorkflowHints:
    """Per-function condensed tables for a DAG workflow."""

    workflow_name: str
    tables: dict[str, CondensedHintsTable]
    chains: dict[str, tuple[str, ...]]
    synthesis_seconds: float = 0.0
    metadata: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tables:
            raise SynthesisError("DAG hints require at least one table")
        missing = set(self.tables) ^ set(self.chains)
        if missing:
            raise SynthesisError(f"tables/chains key mismatch: {missing}")

    def table_for(self, function: str) -> CondensedHintsTable:
        """The condensed table whose head is ``function``."""
        try:
            return self.tables[function]
        except KeyError:
            raise SynthesisError(f"no hints for function {function!r}")

    @property
    def total_rows(self) -> int:
        """Condensed rows across all functions."""
        return sum(len(t) for t in self.tables.values())

    def memory_bytes(self) -> int:
        """Bytes across all tables."""
        return sum(t.memory_bytes() for t in self.tables.values())

    def to_json(self) -> str:
        """Serialise (developer -> provider hand-off, disk memo layer)."""
        return json.dumps(
            {
                "workflow_name": self.workflow_name,
                "tables": {
                    name: table.to_dict()
                    for name, table in self.tables.items()
                },
                "chains": {
                    name: list(chain) for name, chain in self.chains.items()
                },
                "synthesis_seconds": self.synthesis_seconds,
                "metadata": self.metadata,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "DagWorkflowHints":
        """Inverse of :meth:`to_json`."""
        doc = json.loads(text)
        return cls(
            workflow_name=doc["workflow_name"],
            tables={
                name: CondensedHintsTable.from_dict(table)
                for name, table in doc["tables"].items()
            },
            chains={
                name: tuple(chain) for name, chain in doc["chains"].items()
            },
            synthesis_seconds=doc.get("synthesis_seconds", 0.0),
            metadata=doc.get("metadata", {}),
        )


#: Process-wide memo of DAG hint tables, mirroring the chain-hints memo in
#: :mod:`repro.synthesis.generator`: keyed by every input the synthesis
#: reads (per-node profile digests, the DAG's node/edge structure, the
#: resource grid, budget, concurrency and the config knobs). DAG cells
#: previously reached the DP disk layer through ``ChainDP.cached`` but
#: re-ran the per-function suffix sweeps every time; this memo skips them.
#: The disk layer (attached by the sweep runner's ``--cache-dir`` plumbing
#: alongside the DP and chain-hints layers) and the counters live in the
#: shared :class:`~repro.persist.DiskBackedMemo` machinery.
_DAG_HINTS_MEMO = DiskBackedMemo("syntheses", max_entries=64)


def set_dag_hints_cache_dir(path: str | os.PathLike[str] | None) -> None:
    """Attach (or detach, with ``None``) the DAG-hints memo's disk layer."""
    _DAG_HINTS_MEMO.set_dir(path)


def dag_hints_cache_dir() -> str | None:
    """The currently attached disk-layer directory (``None`` = detached)."""
    return _DAG_HINTS_MEMO.dir()


def dag_hints_cache_stats() -> dict[str, int]:
    """Copy of the process-wide DAG-hints memo counters."""
    return _DAG_HINTS_MEMO.stats()


def clear_dag_hints_cache() -> None:
    """Drop all memoised DAG hints (mainly for tests and benchmarks).

    Clears the in-memory memo only — a configured disk layer keeps its
    files (delete the directory to cold-start it).
    """
    _DAG_HINTS_MEMO.clear()


def _dag_hints_key(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None,
    concurrency: int,
    weight: float,
    exploration: HeadExploration,
    enforce_resilience: bool,
) -> tuple:
    dag = workflow.dag
    return (
        workflow.name,
        tuple(dag.nodes),
        tuple(sorted(dag.edges)),
        tuple(profiles[n].digest() for n in dag.nodes),
        (workflow.limits.kmin, workflow.limits.kmax, workflow.limits.step),
        None if budget is None
        else (budget.tmin_ms, budget.tmax_ms, budget.step_ms),
        int(concurrency),
        float(weight),
        exploration.value,
        bool(enforce_resilience),
    )


def _load_disk_dag_hints(path: str) -> DagWorkflowHints | None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return DagWorkflowHints.from_json(fh.read())
    except (OSError, ValueError, KeyError, SynthesisError):
        return None  # absent or torn entry — treat as a miss


def _store_disk_dag_hints(path: str, hints: DagWorkflowHints) -> None:
    atomic_write_bytes(path, hints.to_json().encode("utf-8"))


def synthesize_dag_hints(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    exploration: HeadExploration = HeadExploration.HEAD_ONLY,
    enforce_resilience: bool = True,
) -> DagWorkflowHints:
    """Synthesize per-function hint tables for a (possibly branching) DAG.

    For chain workflows this produces exactly the per-suffix tables of
    :func:`~repro.synthesis.generator.synthesize_hints` (one per stage).
    ``exploration`` selects the Janus variant exactly as in the chain
    synthesizer (NONE = Janus-, HEAD_ONLY = Janus, HEAD_PLUS_NEXT = Janus+);
    ``enforce_resilience`` toggles the Eq. 6 constraint as there.

    Results are memoised process-wide on the full input key (profile
    digests + DAG structure + knobs), with an optional disk layer behind
    the memo (:func:`set_dag_hints_cache_dir`); hints are deployed
    read-only, so repeated calls return the shared object and
    ``synthesis_seconds`` reports the original live run.
    """
    key = _dag_hints_key(
        workflow, profiles, budget, concurrency, weight, exploration,
        enforce_resilience,
    )
    return _DAG_HINTS_MEMO.get(
        key,
        compute=lambda: _synthesize_dag_hints_live(
            workflow, profiles, budget, concurrency, weight, exploration,
            enforce_resilience,
        ),
        load=_load_disk_dag_hints,
        store=_store_disk_dag_hints,
    )


def _synthesize_dag_hints_live(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    exploration: HeadExploration = HeadExploration.HEAD_ONLY,
    enforce_resilience: bool = True,
) -> DagWorkflowHints:
    """The un-memoised synthesis (see :func:`synthesize_dag_hints`)."""
    start = time.perf_counter()
    dag = workflow.dag
    anchor = profiles.percentiles.anchor
    weights = {
        n: profiles[n].latency(anchor, workflow.limits.kmin, concurrency)
        for n in dag.nodes
    }
    tables: dict[str, CondensedHintsTable] = {}
    chains: dict[str, tuple[str, ...]] = {}
    for function in dag.nodes:
        chain = downstream_chain(dag, function, weights)
        chain_profiles = profiles.for_chain(chain)
        chain_budget = budget_range_for_chain(chain_profiles, concurrency)
        if budget is not None:
            chain_budget = BudgetRange(
                tmin_ms=min(chain_budget.tmin_ms, budget.tmin_ms),
                tmax_ms=max(chain_budget.tmax_ms, budget.tmax_ms),
            )
        synth = HintSynthesizer(
            profiles, chain,
            SynthesisConfig(
                weight=weight, exploration=exploration,
                enforce_resilience=enforce_resilience,
            ),
        )
        dp = ChainDP.cached(chain_profiles, chain_budget.tmax_ms, concurrency)
        raw = synth.synthesize_suffix(0, dp, chain_budget, concurrency)
        table = condense(raw, workflow.limits.kmax)
        # Re-key the table by head function (suffix index is meaningless in
        # the DAG setting; keep 0 so validation stays trivial).
        tables[function] = CondensedHintsTable(
            suffix_index=0,
            head_function=function,
            starts=table.starts,
            ends=table.ends,
            sizes=table.sizes,
            kmax=table.kmax,
            clamp_above=table.clamp_above,
        )
        chains[function] = tuple(chain)
    return DagWorkflowHints(
        workflow_name=workflow.name,
        tables=tables,
        chains=chains,
        synthesis_seconds=time.perf_counter() - start,
        metadata={
            "weight": weight,
            "concurrency": concurrency,
            "exploration": exploration.value,
        },
    )
