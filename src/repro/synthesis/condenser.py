"""Hints condensing — Algorithm 2 (paper §IV-B).

Raw hint tables carry one entry per millisecond of budget, but resource
adaptation is discrete (Insight-5: CPU steps of 100 millicores), so long
runs of consecutive budgets share the same head size. Condensing fuses each
run into one ``<Tstart, Tend, size>`` row and drops the non-head fields
(Insight-6), achieving the paper's ~99% compression.

The scan is vectorised: run boundaries are ``np.flatnonzero(np.diff(sizes))``
rather than the paper's element-by-element loop — identical output, O(T)
vector work.
"""

from __future__ import annotations

import numpy as np

from ..errors import SynthesisError
from ..types import Millicores
from .hints import CondensedHintsTable, RawHints

__all__ = ["condense"]


def condense(
    raw: RawHints,
    kmax: Millicores,
    clamp_above: bool = True,
) -> CondensedHintsTable:
    """Condense raw per-budget hints into interval rows.

    Only the feasible region is condensed; budgets below the first feasible
    budget become misses at lookup time (the adapter scales to ``kmax``).
    """
    mask = raw.feasible_mask
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        raise SynthesisError(
            f"no feasible budget in [{raw.tmin_ms}, {raw.tmax_ms}] for "
            f"suffix {raw.suffix_index} ({raw.head_function})"
        )
    first = int(idx[0])
    if not np.all(mask[first:]):
        # Feasibility is an upper set in the budget: once a budget admits a
        # plan, every larger budget does too. A hole indicates a broken DP.
        raise SynthesisError("feasible region is not contiguous")

    sizes = raw.head_sizes[first:]
    budgets = np.arange(raw.tmin_ms + first, raw.tmax_ms + 1, dtype=np.int64)
    # Boundaries where the head size changes between consecutive budgets.
    change = np.flatnonzero(np.diff(sizes)) + 1
    starts_idx = np.concatenate(([0], change))
    ends_idx = np.concatenate((change - 1, [sizes.size - 1]))
    return CondensedHintsTable(
        suffix_index=raw.suffix_index,
        head_function=raw.head_function,
        starts=budgets[starts_idx],
        ends=budgets[ends_idx],
        sizes=sizes[starts_idx].astype(np.int32),
        kmax=kmax,
        clamp_above=clamp_above,
    )
