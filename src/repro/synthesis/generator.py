"""Hints generation — Algorithm 1 (paper §IV-A).

For every sub-workflow (chain suffix) and every integral time budget, pick
the head function's size ``k1`` and percentile ``p`` plus downstream sizes
``k2..kN`` (pinned to the anchor percentile, Insight-2) minimising expected
consumption (Eq. 4)

    s = W*k1 + (p/100) * sum_{i>=2} k_i + (1 - p/100) * (N-1) * Kmax

subject to the latency budget (Eq. 5) and the resilience constraint
(Eq. 6): the head's potential timeout ``D1(p, k1)`` must not exceed the
downstream allocation's total resilience ``sum R_i(P99, k_i)``.

The paper's recursion is replaced by the vectorised suffix DP of
:class:`~repro.synthesis.dp.ChainDP` plus a percentile x size sweep that
updates all budgets at once (see dp.py's module docstring for the
complexity argument). Exploration modes:

* ``NONE`` — head pinned to P99 (the paper's **Janus-** baseline),
* ``HEAD_ONLY`` — head explores all percentiles (**Janus**),
* ``HEAD_PLUS_NEXT`` — head and next-to-head explore jointly (**Janus+**);
  cost multiplies by the percentile-grid size, reproducing the paper's
  order-of-magnitude synthesis slowdown (Fig. 6b).
"""

from __future__ import annotations

import enum
import math
import os
import time
import typing as _t
from dataclasses import dataclass

import numpy as np

from ..errors import SynthesisError
from ..persist import DiskBackedMemo, atomic_write_bytes
from ..profiling.profiles import ProfileSet
from .budget import BudgetRange, budget_range_for_chain
from .condenser import condense
from .dp import ChainDP
from .hints import RawHints, WorkflowHints

__all__ = [
    "HeadExploration",
    "SynthesisConfig",
    "HintSynthesizer",
    "synthesize_hints",
    "clear_hints_cache",
    "set_hints_cache_dir",
    "hints_cache_dir",
    "hints_cache_stats",
]

_EPS = 1e-9


class HeadExploration(enum.Enum):
    """Which functions of each sub-workflow explore sub-anchor percentiles."""

    NONE = "none"
    HEAD_ONLY = "head"
    HEAD_PLUS_NEXT = "head+next"


@dataclass(frozen=True)
class SynthesisConfig:
    """Synthesizer knobs (paper defaults: W=1, head-only exploration)."""

    weight: float = 1.0
    exploration: HeadExploration = HeadExploration.HEAD_ONLY
    enforce_resilience: bool = True
    clamp_above: bool = True

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise SynthesisError(f"weight must be > 0, got {self.weight}")


class HintSynthesizer:
    """Generates and condenses hint tables for one workflow chain."""

    def __init__(
        self,
        profiles: ProfileSet,
        chain: _t.Sequence[str],
        config: SynthesisConfig | None = None,
    ) -> None:
        if not chain:
            raise SynthesisError("chain may not be empty")
        self.profiles = profiles
        self.chain = list(chain)
        self.config = config or SynthesisConfig()
        self._chain_profiles = profiles.for_chain(self.chain)
        self.limits = profiles.limits
        self.percentiles = profiles.percentiles

    # ------------------------------------------------------------------
    def synthesize(
        self,
        budget: BudgetRange | None = None,
        concurrency: int = 1,
        workflow_name: str = "",
    ) -> WorkflowHints:
        """Produce condensed hint tables for every sub-workflow suffix."""
        start = time.perf_counter()
        if budget is None:
            budget = budget_range_for_chain(self._chain_profiles, concurrency)
        dp = ChainDP.cached(self._chain_profiles, budget.tmax_ms, concurrency)
        tables = []
        raw_total = 0
        condensed_total = 0
        per_suffix: list[dict[str, _t.Any]] = []
        for j in range(len(self.chain)):
            raw = self.synthesize_suffix(j, dp, budget, concurrency)
            table = condense(raw, self.limits.kmax, self.config.clamp_above)
            tables.append(table)
            raw_total += raw.num_feasible
            condensed_total += len(table)
            per_suffix.append(
                {
                    "suffix": j,
                    "head": self.chain[j],
                    "raw": raw.num_feasible,
                    "condensed": len(table),
                }
            )
        elapsed = time.perf_counter() - start
        return WorkflowHints(
            workflow_name=workflow_name or "-".join(self.chain),
            concurrency=concurrency,
            weight=self.config.weight,
            tables=tables,
            raw_hint_count=raw_total,
            condensed_hint_count=condensed_total,
            synthesis_seconds=elapsed,
            metadata={
                "per_suffix": per_suffix,
                "exploration": self.config.exploration.value,
                "budget": (budget.tmin_ms, budget.tmax_ms),
            },
        )

    # ------------------------------------------------------------------
    def suffix_budget(
        self, j: int, budget: BudgetRange, concurrency: int
    ) -> BudgetRange:
        """Budget range for suffix ``j``.

        Suffix 0 uses the configured workflow range; later suffixes extend
        down to their own achievable minimum (Eq. 3 on the suffix) because
        runtime leftover budgets shrink as stages complete.
        """
        if j == 0:
            return budget
        suffix_profiles = self._chain_profiles[j:]
        tmin = sum(
            prof.latency(self.percentiles.percentiles[0], self.limits.kmax, concurrency)
            for prof in suffix_profiles
        )
        return BudgetRange(
            tmin_ms=min(int(math.floor(tmin)), budget.tmax_ms),
            tmax_ms=budget.tmax_ms,
            step_ms=budget.step_ms,
        )

    def synthesize_suffix(
        self,
        j: int,
        dp: ChainDP,
        budget: BudgetRange,
        concurrency: int = 1,
    ) -> RawHints:
        """Raw per-budget hints for the sub-workflow starting at stage ``j``."""
        n = len(self.chain)
        if not 0 <= j < n:
            raise SynthesisError(f"suffix index {j} out of range for chain of {n}")
        if budget.step_ms != 1:
            # Raw hint arrays and the condenser index budgets at millisecond
            # granularity (the paper's "finer granularity in milliseconds",
            # §IV-A); coarser grids would mis-shape the tables.
            raise SynthesisError(
                f"hint synthesis requires a 1 ms budget grid, got step "
                f"{budget.step_ms} ms"
            )
        srange = self.suffix_budget(j, budget, concurrency)
        budgets = srange.grid()
        if j == n - 1:
            return self._single_function_suffix(j, dp, srange, budgets)
        explore = self.config.exploration
        if explore is HeadExploration.HEAD_PLUS_NEXT and n - j >= 3:
            return self._joint_exploration_suffix(j, dp, srange, budgets, concurrency)
        return self._head_exploration_suffix(j, dp, srange, budgets, concurrency)

    # -- suffix kinds ---------------------------------------------------------
    def _single_function_suffix(
        self, j: int, dp: ChainDP, srange: BudgetRange, budgets: np.ndarray
    ) -> RawHints:
        # Algorithm 1 line 6-7: min_resource(f1, t). With nothing downstream
        # to absorb a timeout, the head is pinned to the anchor percentile.
        idx = np.clip(budgets, 0, dp.tmax_ms)
        cost = dp.cost_array(j)[idx]
        head_ki = dp.head_size_array(j)[idx]
        feasible = np.isfinite(cost)
        sizes = np.where(feasible, dp.k_grid[np.clip(head_ki, 0, None)], -1)
        anchor = self.percentiles.anchor
        return RawHints(
            suffix_index=j,
            head_function=self.chain[j],
            tmin_ms=srange.tmin_ms,
            tmax_ms=srange.tmax_ms,
            head_sizes=sizes.astype(np.int32),
            head_percentiles=np.where(feasible, anchor, np.nan).astype(np.float32),
            expected_cost=np.where(feasible, self.config.weight * cost, np.inf),
            planned_total=np.where(feasible, cost, np.inf),
        )

    def _candidate_percentiles(self) -> tuple[float, ...]:
        if self.config.exploration is HeadExploration.NONE:
            return (self.percentiles.anchor,)
        # Descending order: on objective ties the safer (higher) percentile
        # wins because updates require a strict improvement.
        return tuple(sorted(self.percentiles.percentiles, reverse=True))

    def _head_exploration_suffix(
        self,
        j: int,
        dp: ChainDP,
        srange: BudgetRange,
        budgets: np.ndarray,
        concurrency: int,
    ) -> RawHints:
        n = len(self.chain)
        n_rest = n - j - 1
        kmax = float(self.limits.kmax)
        weight = self.config.weight
        next_cost = dp.cost_array(j + 1)
        next_res = dp.resilience_array(j + 1)
        prof = self._chain_profiles[j]
        k_vals = dp.k_grid.astype(np.float64)

        size = budgets.size
        best_s = np.full(size, np.inf)
        best_k = np.full(size, -1, dtype=np.int32)
        best_p = np.full(size, np.nan, dtype=np.float32)
        best_total = np.full(size, np.inf)

        for p in self._candidate_percentiles():
            pf = p / 100.0
            l_row = prof.latency_row(p, concurrency)
            d_row = np.ceil(l_row).astype(np.int64)  # (K,)
            timeout_row = prof.timeout_row(p, concurrency)  # (K,)
            rest_idx = budgets[None, :] - d_row[:, None]  # (K, T)
            valid = rest_idx >= 0
            ri = np.clip(rest_idx, 0, dp.tmax_ms)
            rc = next_cost[ri]
            feas = valid & np.isfinite(rc)
            if self.config.enforce_resilience:
                rr = next_res[ri]
                feas &= timeout_row[:, None] <= rr + _EPS
            s = weight * k_vals[:, None] + pf * rc + (1.0 - pf) * n_rest * kmax
            s = np.where(feas, s, np.inf)
            ki_best = np.argmin(s, axis=0)
            cols = np.arange(size)
            s_best = s[ki_best, cols]
            upd = s_best < best_s - _EPS
            if np.any(upd):
                best_s[upd] = s_best[upd]
                best_k[upd] = dp.k_grid[ki_best[upd]]
                best_p[upd] = p
                best_total[upd] = k_vals[ki_best[upd]] + rc[ki_best[upd], cols[upd]]

        feasible = best_k >= 0
        return RawHints(
            suffix_index=j,
            head_function=self.chain[j],
            tmin_ms=srange.tmin_ms,
            tmax_ms=srange.tmax_ms,
            head_sizes=best_k,
            head_percentiles=best_p,
            expected_cost=best_s,
            planned_total=np.where(feasible, best_total, np.inf),
        )

    def _joint_exploration_suffix(
        self,
        j: int,
        dp: ChainDP,
        srange: BudgetRange,
        budgets: np.ndarray,
        concurrency: int,
    ) -> RawHints:
        """Janus+ joint (head, next-to-head) percentile exploration.

        For each next-to-head percentile ``p2`` an intermediate table is
        built over all budgets (best ``k2`` + downstream plan), then the head
        sweep runs against it — multiplying synthesis cost by the percentile
        count, which is exactly the blow-up Fig. 6b documents.
        """
        n = len(self.chain)
        n_rest1 = n - j - 1
        n_rest2 = n - j - 2
        kmax = float(self.limits.kmax)
        weight = self.config.weight
        head_prof = self._chain_profiles[j]
        next_prof = self._chain_profiles[j + 1]
        rest_cost = dp.cost_array(j + 2)
        rest_res = dp.resilience_array(j + 2)
        anchor_res_row = next_prof.latency_row(self.percentiles.anchor, concurrency)
        anchor_res_row = anchor_res_row - anchor_res_row[-1]  # R2(P99, k2)
        k_vals = dp.k_grid.astype(np.float64)
        full = np.arange(dp.tmax_ms + 1, dtype=np.int64)

        size = budgets.size
        best_s = np.full(size, np.inf)
        best_k = np.full(size, -1, dtype=np.int32)
        best_p = np.full(size, np.nan, dtype=np.float32)
        best_total = np.full(size, np.inf)
        percentile_options = self._candidate_percentiles()

        for p2 in percentile_options:
            p2f = p2 / 100.0
            l2 = next_prof.latency_row(p2, concurrency)
            d2 = np.ceil(l2).astype(np.int64)
            t2 = next_prof.timeout_row(p2, concurrency)
            idx2 = full[None, :] - d2[:, None]
            valid2 = idx2 >= 0
            ri2 = np.clip(idx2, 0, dp.tmax_ms)
            rc2 = rest_cost[ri2]
            rr2 = rest_res[ri2]
            feas2 = valid2 & np.isfinite(rc2)
            if self.config.enforce_resilience:
                feas2 &= t2[:, None] <= rr2 + _EPS
            s2 = k_vals[:, None] + p2f * rc2 + (1.0 - p2f) * n_rest2 * kmax
            s2 = np.where(feas2, s2, np.inf)
            k2_best = np.argmin(s2, axis=0)
            cols_full = np.arange(dp.tmax_ms + 1)
            inner_cost = s2[k2_best, cols_full]  # expected downstream cost
            inner_planned = np.where(
                np.isfinite(inner_cost),
                k_vals[k2_best] + rc2[k2_best, cols_full],
                np.inf,
            )
            inner_res = np.where(
                np.isfinite(inner_cost),
                anchor_res_row[k2_best] + rr2[k2_best, cols_full],
                -np.inf,
            )

            for p1 in percentile_options:
                p1f = p1 / 100.0
                l1 = head_prof.latency_row(p1, concurrency)
                d1 = np.ceil(l1).astype(np.int64)
                t1 = head_prof.timeout_row(p1, concurrency)
                idx1 = budgets[None, :] - d1[:, None]
                valid1 = idx1 >= 0
                ri1 = np.clip(idx1, 0, dp.tmax_ms)
                ic = inner_cost[ri1]
                feas1 = valid1 & np.isfinite(ic)
                if self.config.enforce_resilience:
                    feas1 &= t1[:, None] <= inner_res[ri1] + _EPS
                s = weight * k_vals[:, None] + p1f * ic + (1.0 - p1f) * n_rest1 * kmax
                s = np.where(feas1, s, np.inf)
                ki_best = np.argmin(s, axis=0)
                cols = np.arange(size)
                s_best = s[ki_best, cols]
                upd = s_best < best_s - _EPS
                if np.any(upd):
                    best_s[upd] = s_best[upd]
                    best_k[upd] = dp.k_grid[ki_best[upd]]
                    best_p[upd] = p1
                    planned = k_vals[ki_best[upd]] + inner_planned[
                        ri1[ki_best[upd], cols[upd]]
                    ]
                    best_total[upd] = planned

        feasible = best_k >= 0
        return RawHints(
            suffix_index=j,
            head_function=self.chain[j],
            tmin_ms=srange.tmin_ms,
            tmax_ms=srange.tmax_ms,
            head_sizes=best_k,
            head_percentiles=best_p,
            expected_cost=best_s,
            planned_total=np.where(feasible, best_total, np.inf),
        )


#: Process-wide memo of synthesized hint tables, keyed by every input the
#: synthesis reads: per-function profile digests, chain, budget, concurrency
#: and the SynthesisConfig knobs. Hints are deployed read-only, so the memo
#: returns the shared object; SLO sweeps and scenario matrices that revisit
#: a configuration skip both the DP solve and the percentile sweep. The
#: optional disk layer (one JSON of condensed tables per key, shared across
#: pool workers) and the memory/disk/``syntheses`` counters live in the
#: shared :class:`~repro.persist.DiskBackedMemo` machinery.
_HINTS_MEMO = DiskBackedMemo("syntheses", max_entries=64)


def set_hints_cache_dir(path: str | os.PathLike[str] | None) -> None:
    """Attach (or detach, with ``None``) the hints memo's disk layer."""
    _HINTS_MEMO.set_dir(path)


def hints_cache_dir() -> str | None:
    """The currently attached disk-layer directory (``None`` = detached)."""
    return _HINTS_MEMO.dir()


def hints_cache_stats() -> dict[str, int]:
    """Copy of the process-wide hints memo counters."""
    return _HINTS_MEMO.stats()


def clear_hints_cache() -> None:
    """Drop all memoised hint tables (mainly for tests and benchmarks).

    Clears the in-memory memo only — a configured disk layer keeps its
    files (delete the directory to cold-start it).
    """
    _HINTS_MEMO.clear()


def _load_disk_hints(path: str) -> WorkflowHints | None:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return WorkflowHints.from_json(fh.read())
    except (OSError, ValueError, KeyError, SynthesisError):
        return None  # absent or torn entry — treat as a miss


def _store_disk_hints(path: str, hints: WorkflowHints) -> None:
    atomic_write_bytes(path, hints.to_json().encode("utf-8"))


def synthesize_hints(
    profiles: ProfileSet,
    chain: _t.Sequence[str],
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    exploration: HeadExploration = HeadExploration.HEAD_ONLY,
    enforce_resilience: bool = True,
    workflow_name: str = "",
) -> WorkflowHints:
    """Convenience one-call synthesis (profile set -> condensed tables).

    Results are memoised process-wide on the full input key (profile
    digests + knobs); a repeated call returns the same
    :class:`WorkflowHints` object, whose ``synthesis_seconds`` still reports
    the original live run.
    """
    key = (
        tuple(profiles[name].digest() for name in chain),
        tuple(chain),
        None if budget is None else (budget.tmin_ms, budget.tmax_ms, budget.step_ms),
        int(concurrency),
        float(weight),
        exploration.value,
        bool(enforce_resilience),
        workflow_name,
    )
    def compute() -> WorkflowHints:
        synth = HintSynthesizer(
            profiles,
            chain,
            SynthesisConfig(
                weight=weight,
                exploration=exploration,
                enforce_resilience=enforce_resilience,
            ),
        )
        return synth.synthesize(budget, concurrency, workflow_name)

    return _HINTS_MEMO.get(
        key, compute, load=_load_disk_hints, store=_store_disk_hints
    )
