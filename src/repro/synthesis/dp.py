"""Vectorised minimum-resource dynamic program over chain suffixes.

This is the computational core of hint generation. The naive Algorithm 1
recursion evaluates ``generate(F \\ f1, t - L1(p, k), {P99})`` for every
(budget, percentile, size) triple — O(|T| * |P| * |K|^N) scalar work. We
exploit two structural facts:

1. With non-head functions pinned to the anchor percentile (Insight-2), the
   downstream subproblem depends *only* on the remaining integral budget.
2. The budget axis is a regular 1 ms grid, so "solve for every budget" is a
   shift-and-minimum over NumPy arrays rather than a per-budget loop.

For every suffix ``(f_j, ..., f_N)`` we tabulate, over all integral budgets
``t in [0, tmax]``:

* ``cost[j][t]``  — minimum total millicores ``sum_i k_i`` such that
  ``sum_i L_i(P99, k_i) <= t`` (``inf`` when infeasible),
* ``resil[j][t]`` — total resilience ``sum_i R_i(P99, k_i)`` of that argmin
  allocation (the RHS of constraint Eq. 6),
* ``head_k[j][t]`` — the suffix head's size index in the argmin allocation,

using the recurrence ``cost[j][t] = min_k (k + cost[j+1][t - d_j(k)])`` where
``d_j(k) = ceil(L_j(P99, k))``. Each suffix costs O(|K| * tmax) vector work:
microseconds-per-budget instead of the naive exhaustive search.
"""

from __future__ import annotations

import io
import os
import typing as _t

import numpy as np

from ..errors import SynthesisError
from ..persist import DiskBackedMemo, atomic_write_bytes
from ..profiling.profiles import LatencyProfile

__all__ = [
    "ChainDP",
    "clear_dp_cache",
    "set_dp_cache_dir",
    "dp_cache_dir",
    "dp_cache_stats",
]

_INF = np.inf

#: Process-wide memo of solved DP tables, keyed by
#: ``(per-profile content digests, tmax_ms, concurrency)``. Profiles are
#: frozen and digests cover every input the solve reads, so a hit is exact;
#: the map is LRU-bounded because sweeps touch many (budget, workflow)
#: combinations. Synthesis re-runs with shared profiles (SLO sweeps, the
#: scenario matrix, repeated Session calls) skip the whole suffix solve.
#: The optional disk layer (one ``.npz`` of solved tables per key, shared
#: across pool workers through the filesystem) and the
#: memory/disk/``solves`` counters live in the shared
#: :class:`~repro.persist.DiskBackedMemo` machinery.
_DP_MEMO = DiskBackedMemo("solves", max_entries=128, suffix=".npz")


def set_dp_cache_dir(path: str | os.PathLike[str] | None) -> None:
    """Attach (or detach, with ``None``) the DP memo's disk layer."""
    _DP_MEMO.set_dir(path)


def dp_cache_dir() -> str | None:
    """The currently attached disk-layer directory (``None`` = detached)."""
    return _DP_MEMO.dir()


def dp_cache_stats() -> dict[str, int]:
    """Copy of the process-wide DP memo counters."""
    return _DP_MEMO.stats()


def clear_dp_cache() -> None:
    """Drop all memoised DP tables (mainly for tests and benchmarks).

    Clears the in-memory memo only — a configured disk layer keeps its
    files (delete the directory to cold-start it).
    """
    _DP_MEMO.clear()


class ChainDP:
    """Suffix allocation tables for one chain at one concurrency level."""

    @classmethod
    def cached(
        cls,
        profiles: _t.Sequence[LatencyProfile],
        tmax_ms: int,
        concurrency: int = 1,
    ) -> "ChainDP":
        """A solved DP for ``(profiles, tmax, concurrency)``, memoised.

        Lookup order: in-memory memo, then the optional disk layer (see
        :func:`set_dp_cache_dir`), then a live solve (which also populates
        the disk layer). The returned instance is shared — callers must
        treat its arrays as read-only, which the query API already
        requires.
        """
        key = (
            tuple(p.digest() for p in profiles),
            int(tmax_ms),
            int(concurrency),
        )

        def load(path: str) -> "ChainDP | None":
            try:
                with np.load(path) as doc:
                    tables = (doc["cost"], doc["resil"], doc["head_ki"])
            except (OSError, ValueError, KeyError):
                return None
            expected = (len(profiles), int(tmax_ms) + 1)
            if any(t.shape != expected for t in tables):
                return None  # stale layout — treat as a miss and re-solve
            return cls(profiles, tmax_ms, concurrency, _tables=tables)

        def store(path: str, dp: "ChainDP") -> None:
            buf = io.BytesIO()
            np.savez_compressed(
                buf, cost=dp._cost, resil=dp._resil, head_ki=dp._head_ki
            )
            atomic_write_bytes(path, buf.getvalue())

        return _DP_MEMO.get(
            key,
            compute=lambda: cls(profiles, tmax_ms, concurrency),
            load=load,
            store=store,
        )

    def __init__(
        self,
        profiles: _t.Sequence[LatencyProfile],
        tmax_ms: int,
        concurrency: int = 1,
        *,
        _tables: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> None:
        if not profiles:
            raise SynthesisError("chain must contain at least one function")
        if tmax_ms < 0:
            raise SynthesisError(f"tmax must be >= 0, got {tmax_ms}")
        limits = profiles[0].limits
        for prof in profiles:
            if prof.limits != limits:
                raise SynthesisError("all profiles must share one CPU grid")
        self.profiles = list(profiles)
        self.limits = limits
        self.concurrency = int(concurrency)
        self.tmax_ms = int(tmax_ms)
        self.k_grid = limits.grid()  # int64[K]
        n = len(self.profiles)
        size = self.tmax_ms + 1

        # Integral anchor-percentile durations d[j][ki] (ceil => conservative).
        anchor = profiles[0].percentiles.anchor
        self.durations = np.stack(
            [
                np.ceil(prof.latency_row(anchor, self.concurrency)).astype(np.int64)
                for prof in self.profiles
            ]
        )
        # Per-function resilience at the anchor percentile, per size.
        self.resilience_rows = np.stack(
            [
                prof.latency_row(anchor, self.concurrency)
                - prof.latency_row(anchor, self.concurrency)[-1]
                for prof in self.profiles
            ]
        )

        if _tables is not None:
            # Disk-layer restore: the solved tables are content-addressed
            # by the same inputs validated above, so only the expensive
            # `_solve` is skipped — every derived row is recomputed from
            # the live profiles.
            cost, resil, head_ki = _tables
            self._cost = np.ascontiguousarray(cost, dtype=np.float64)
            self._resil = np.ascontiguousarray(resil, dtype=np.float64)
            self._head_ki = np.ascontiguousarray(head_ki, dtype=np.int32)
            return
        self._cost = np.full((n, size), _INF, dtype=np.float64)
        self._resil = np.full((n, size), _INF, dtype=np.float64)
        self._head_ki = np.full((n, size), -1, dtype=np.int32)
        self._solve()

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        n = len(self.profiles)
        size = self.tmax_ms + 1
        k_vals = self.k_grid.astype(np.float64)

        for j in range(n - 1, -1, -1):
            d_j = self.durations[j]  # int64[K]
            r_j = self.resilience_rows[j]  # float64[K]
            if j == n - 1:
                # Base case: cheapest size meeting the budget outright.
                # Iterate sizes descending so the cheapest feasible size
                # (largest duration threshold) wins the final overwrite.
                cost = self._cost[j]
                resil = self._resil[j]
                head = self._head_ki[j]
                for ki in range(len(k_vals) - 1, -1, -1):
                    lo = d_j[ki]
                    if lo <= self.tmax_ms:
                        cost[lo:] = k_vals[ki]
                        resil[lo:] = r_j[ki]
                        head[lo:] = ki
                continue

            next_cost = self._cost[j + 1]
            next_resil = self._resil[j + 1]
            # Candidate totals for each head size: k + cost[j+1][t - d(k)].
            cand = np.full((len(k_vals), size), _INF, dtype=np.float64)
            for ki in range(len(k_vals)):
                d = int(d_j[ki])
                if d > self.tmax_ms:
                    continue
                cand[ki, d:] = k_vals[ki] + next_cost[: size - d]
            best_ki = np.argmin(cand, axis=0).astype(np.int32)
            best_cost = cand[best_ki, np.arange(size)]
            feasible = np.isfinite(best_cost)
            self._cost[j] = best_cost
            self._head_ki[j] = np.where(feasible, best_ki, -1)
            # Resilience of the argmin allocation: head's own + downstream's.
            shift = self.durations[j][best_ki]
            rest_idx = np.arange(size) - shift
            rest_idx_clipped = np.clip(rest_idx, 0, size - 1)
            rest_resil = next_resil[rest_idx_clipped]
            total_resil = self.resilience_rows[j][best_ki] + rest_resil
            self._resil[j] = np.where(feasible, total_resil, _INF)

    # -- queries -------------------------------------------------------------
    def _check(self, j: int, t: int) -> int:
        if not 0 <= j < len(self.profiles):
            raise SynthesisError(f"suffix index {j} out of range")
        if t < 0:
            raise SynthesisError(f"budget must be >= 0, got {t}")
        return min(int(t), self.tmax_ms)

    def feasible(self, j: int, t: int) -> bool:
        """True when suffix ``j`` fits in budget ``t`` at the anchor."""
        t = self._check(j, t)
        return bool(np.isfinite(self._cost[j, t]))

    def min_total_cores(self, j: int, t: int) -> float:
        """Minimum ``sum k_i`` (millicores) for suffix ``j`` within ``t``."""
        t = self._check(j, t)
        return float(self._cost[j, t])

    def total_resilience(self, j: int, t: int) -> float:
        """``sum R_i(P99, k_i)`` of the argmin allocation (Eq. 6 RHS)."""
        t = self._check(j, t)
        return float(self._resil[j, t])

    def cost_array(self, j: int) -> np.ndarray:
        """Whole ``cost[j]`` table (view; do not mutate)."""
        if not 0 <= j < len(self.profiles):
            raise SynthesisError(f"suffix index {j} out of range")
        return self._cost[j]

    def resilience_array(self, j: int) -> np.ndarray:
        """Whole ``resil[j]`` table (view; do not mutate)."""
        if not 0 <= j < len(self.profiles):
            raise SynthesisError(f"suffix index {j} out of range")
        return self._resil[j]

    def head_size_array(self, j: int) -> np.ndarray:
        """Head size *indices* of the argmin allocation per budget (view)."""
        if not 0 <= j < len(self.profiles):
            raise SynthesisError(f"suffix index {j} out of range")
        return self._head_ki[j]

    def allocation(self, j: int, t: int) -> list[int] | None:
        """Reconstruct the argmin allocation (millicores per function).

        Returns ``None`` when the budget is infeasible for the suffix.
        """
        t = self._check(j, t)
        if not np.isfinite(self._cost[j, t]):
            return None
        sizes: list[int] = []
        budget = t
        for i in range(j, len(self.profiles)):
            ki = int(self._head_ki[i, budget])
            if ki < 0:
                raise SynthesisError(
                    f"inconsistent DP state at suffix {i}, budget {budget}"
                )
            sizes.append(int(self.k_grid[ki]))
            budget -= int(self.durations[i, ki])
        return sizes
