"""Time-budget ranges and grids (paper Insight-1, Eq. 3).

The synthesizer explores "all potential runtime time budgets" between

    Tmin = sum_i L_i(P1,  Kmax)   (everything fast, maximum resources)
    Tmax = sum_i L_i(P99, Kmin)   (everything slow, minimum resources)

on a fine grid (1 ms in the paper). Budgets are represented as integral
milliseconds so table indices are exact.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

import numpy as np

from ..errors import SynthesisError
from ..profiling.profiles import LatencyProfile

__all__ = ["BudgetRange", "budget_range_for_chain"]


@dataclass(frozen=True)
class BudgetRange:
    """Inclusive integral budget range [tmin_ms, tmax_ms] with a step."""

    tmin_ms: int
    tmax_ms: int
    step_ms: int = 1

    def __post_init__(self) -> None:
        if self.tmin_ms < 0:
            raise SynthesisError(f"tmin must be >= 0, got {self.tmin_ms}")
        if self.tmax_ms < self.tmin_ms:
            raise SynthesisError(
                f"tmax {self.tmax_ms} < tmin {self.tmin_ms}"
            )
        if self.step_ms < 1:
            raise SynthesisError(f"step must be >= 1 ms, got {self.step_ms}")

    @property
    def num_budgets(self) -> int:
        """Number of grid points."""
        return (self.tmax_ms - self.tmin_ms) // self.step_ms + 1

    def grid(self) -> np.ndarray:
        """All budgets as ``int64`` milliseconds (ascending)."""
        return np.arange(
            self.tmin_ms, self.tmax_ms + 1, self.step_ms, dtype=np.int64
        )

    def contains(self, budget_ms: float) -> bool:
        """True when ``budget_ms`` falls inside the range."""
        return self.tmin_ms <= budget_ms <= self.tmax_ms

    def clamp(self, budget_ms: float) -> int:
        """Clip a budget into the range and snap down onto the grid."""
        b = min(max(budget_ms, self.tmin_ms), self.tmax_ms)
        return self.tmin_ms + int((b - self.tmin_ms) // self.step_ms) * self.step_ms


def budget_range_for_chain(
    profiles: _t.Sequence[LatencyProfile],
    concurrency: int = 1,
    step_ms: int = 1,
    low_percentile: float | None = None,
) -> BudgetRange:
    """Eq. 3 budget range for a chain of profiled functions.

    ``low_percentile`` defaults to the lowest percentile on the grid (P1).
    """
    if not profiles:
        raise SynthesisError("need at least one profile")
    grid = profiles[0].percentiles
    p_low = low_percentile if low_percentile is not None else grid.percentiles[0]
    tmin = sum(
        prof.latency(p_low, prof.limits.kmax, concurrency) for prof in profiles
    )
    tmax = sum(
        prof.latency(grid.anchor, prof.limits.kmin, concurrency)
        for prof in profiles
    )
    return BudgetRange(
        tmin_ms=int(math.floor(tmin)),
        tmax_ms=int(math.ceil(tmax)),
        step_ms=step_ms,
    )
