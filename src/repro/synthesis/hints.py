"""Hint table data structures: raw (per-budget) and condensed (intervals).

The synthesizer first produces *raw* hints — one entry per integral time
budget (Algorithm 1's ``H = {<t, {k1..kN}>}``) — and then condenses them
into ``<Tstart, Tend, size>`` interval rows keyed only by the head
function's size (Algorithm 2, Insights 5-6). The condensed table is what the
developer ships to the provider; the adapter answers lookups with one
``searchsorted`` over the interval starts.
"""

from __future__ import annotations

import json
import typing as _t
from dataclasses import dataclass, field

import numpy as np

from ..errors import SynthesisError
from ..types import Millicores

__all__ = ["RawHints", "LookupResult", "CondensedHintsTable", "WorkflowHints"]


@dataclass(frozen=True)
class RawHints:
    """Per-budget decisions for one sub-workflow (suffix).

    Arrays are indexed by ``budget - tmin_ms``; ``head_sizes`` holds -1 where
    the budget is infeasible even at the anchor percentile.
    """

    suffix_index: int
    head_function: str
    tmin_ms: int
    tmax_ms: int
    head_sizes: np.ndarray  # int32 millicores, -1 = infeasible
    head_percentiles: np.ndarray  # float32, NaN = infeasible
    expected_cost: np.ndarray  # float64, Eq. 4 value, inf = infeasible
    planned_total: np.ndarray  # float64 planned sum of millicores, inf = infeasible

    def __post_init__(self) -> None:
        n = self.tmax_ms - self.tmin_ms + 1
        for name in ("head_sizes", "head_percentiles", "expected_cost", "planned_total"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise SynthesisError(
                    f"{name} has shape {arr.shape}, expected ({n},)"
                )

    def __len__(self) -> int:
        return self.tmax_ms - self.tmin_ms + 1

    @property
    def feasible_mask(self) -> np.ndarray:
        """Boolean mask of budgets with a feasible plan."""
        return self.head_sizes >= 0

    @property
    def num_feasible(self) -> int:
        """Count of feasible budgets (raw hint count, Fig. 8 numerator)."""
        return int(np.count_nonzero(self.feasible_mask))

    def first_feasible_budget(self) -> int | None:
        """Smallest feasible budget in ms, or ``None``."""
        idx = np.flatnonzero(self.feasible_mask)
        return int(self.tmin_ms + idx[0]) if idx.size else None

    def at(self, budget_ms: int) -> tuple[int, float] | None:
        """(head size, head percentile) at a budget, or ``None``."""
        if not self.tmin_ms <= budget_ms <= self.tmax_ms:
            return None
        i = int(budget_ms) - self.tmin_ms
        if self.head_sizes[i] < 0:
            return None
        return int(self.head_sizes[i]), float(self.head_percentiles[i])


@dataclass(frozen=True)
class LookupResult:
    """Outcome of a condensed-table lookup."""

    hit: bool
    size: Millicores
    row_index: int = -1


class CondensedHintsTable:
    """Interval rows ``<Tstart, Tend, size>`` for one sub-workflow.

    Rows are ascending and contiguous over the feasible budget range. A
    lookup below the first interval is a **miss** (the adapter scales to
    ``Kmax`` to protect the SLO); a lookup above the last interval is served
    by the last row when ``clamp_above`` is set (extra slack can only help)
    and is a miss otherwise.
    """

    def __init__(
        self,
        suffix_index: int,
        head_function: str,
        starts: np.ndarray,
        ends: np.ndarray,
        sizes: np.ndarray,
        kmax: Millicores,
        clamp_above: bool = True,
    ) -> None:
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int32)
        if not (starts.shape == ends.shape == sizes.shape):
            raise SynthesisError("starts/ends/sizes must have identical shape")
        if starts.ndim != 1 or starts.size == 0:
            raise SynthesisError("condensed table must contain >= 1 row")
        if np.any(ends < starts):
            raise SynthesisError("row end before start")
        if np.any(np.diff(starts) <= 0):
            raise SynthesisError("row starts must be strictly ascending")
        if np.any(starts[1:] != ends[:-1] + 1):
            raise SynthesisError("rows must be contiguous")
        if np.any(sizes <= 0):
            raise SynthesisError("sizes must be positive millicores")
        self.suffix_index = int(suffix_index)
        self.head_function = str(head_function)
        self.starts = starts
        self.ends = ends
        self.sizes = sizes
        self.kmax = int(kmax)
        self.clamp_above = bool(clamp_above)

    def __len__(self) -> int:
        return int(self.starts.size)

    @property
    def tmin_ms(self) -> int:
        """First budget covered by the table."""
        return int(self.starts[0])

    @property
    def tmax_ms(self) -> int:
        """Last budget covered by the table."""
        return int(self.ends[-1])

    def lookup(self, budget_ms: float) -> LookupResult:
        """Resolve a runtime budget to a head size (hit) or Kmax (miss)."""
        if budget_ms < self.starts[0]:
            return LookupResult(hit=False, size=self.kmax)
        if budget_ms > self.ends[-1]:
            if self.clamp_above:
                return LookupResult(
                    hit=True,
                    size=int(self.sizes[-1]),
                    row_index=len(self) - 1,
                )
            return LookupResult(hit=False, size=self.kmax)
        i = int(np.searchsorted(self.starts, budget_ms, side="right")) - 1
        # Contiguity guarantees budget <= ends[i] here.
        return LookupResult(hit=True, size=int(self.sizes[i]), row_index=i)

    def lookup_many(
        self, budgets_ms: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`lookup` over a budget array.

        Returns ``(sizes, hits)`` — int64 millicores and a boolean hit mask,
        each element identical to the corresponding scalar lookup.
        """
        budgets = np.asarray(budgets_ms, dtype=np.float64)
        idx = np.searchsorted(self.starts, budgets, side="right") - 1
        hits = idx >= 0
        sizes = np.where(
            hits, self.sizes[np.clip(idx, 0, len(self) - 1)], self.kmax
        ).astype(np.int64)
        above = budgets > self.ends[-1]
        if self.clamp_above:
            sizes[above] = int(self.sizes[-1])
            hits[above] = True
        else:
            sizes[above] = self.kmax
            hits[above] = False
        return sizes, hits

    def rows(self) -> list[tuple[int, int, int]]:
        """All rows as ``(Tstart, Tend, size)`` tuples."""
        return [
            (int(s), int(e), int(k))
            for s, e, k in zip(self.starts, self.ends, self.sizes)
        ]

    def memory_bytes(self) -> int:
        """Bytes held by the row arrays (§V-H footprint)."""
        return int(self.starts.nbytes + self.ends.nbytes + self.sizes.nbytes)

    # -- serialization (developer -> provider hand-off) --------------------
    def to_dict(self) -> dict[str, _t.Any]:
        """JSON-serialisable representation."""
        return {
            "suffix_index": self.suffix_index,
            "head_function": self.head_function,
            "starts": self.starts.tolist(),
            "ends": self.ends.tolist(),
            "sizes": self.sizes.tolist(),
            "kmax": self.kmax,
            "clamp_above": self.clamp_above,
        }

    @classmethod
    def from_dict(cls, doc: _t.Mapping[str, _t.Any]) -> "CondensedHintsTable":
        """Inverse of :meth:`to_dict`."""
        return cls(
            suffix_index=doc["suffix_index"],
            head_function=doc["head_function"],
            starts=np.asarray(doc["starts"], dtype=np.int64),
            ends=np.asarray(doc["ends"], dtype=np.int64),
            sizes=np.asarray(doc["sizes"], dtype=np.int32),
            kmax=doc["kmax"],
            clamp_above=doc.get("clamp_above", True),
        )


@dataclass
class WorkflowHints:
    """Everything the developer submits to the provider for one workflow.

    One condensed table per sub-workflow (suffix), at one concurrency and one
    head weight. ``synthesis_seconds`` and the hint counts feed the Fig. 6b
    and Fig. 8 reproductions.
    """

    workflow_name: str
    concurrency: int
    weight: float
    tables: list[CondensedHintsTable]
    raw_hint_count: int = 0
    condensed_hint_count: int = 0
    synthesis_seconds: float = 0.0
    metadata: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.tables:
            raise SynthesisError("workflow hints require >= 1 table")
        indices = [t.suffix_index for t in self.tables]
        if indices != list(range(len(self.tables))):
            raise SynthesisError(
                f"tables must cover suffixes 0..N-1 in order, got {indices}"
            )

    @property
    def num_stages(self) -> int:
        return len(self.tables)

    def table_for_stage(self, stage_index: int) -> CondensedHintsTable:
        """Condensed table whose head is stage ``stage_index``."""
        if not 0 <= stage_index < len(self.tables):
            raise SynthesisError(f"stage index {stage_index} out of range")
        return self.tables[stage_index]

    @property
    def compression_ratio(self) -> float:
        """1 - condensed/raw (paper reports up to 99.6%)."""
        if self.raw_hint_count == 0:
            return 0.0
        return 1.0 - self.condensed_hint_count / self.raw_hint_count

    def memory_bytes(self) -> int:
        """Bytes held by all condensed tables."""
        return sum(t.memory_bytes() for t in self.tables)

    def to_json(self) -> str:
        """Serialise for the developer -> provider hand-off."""
        return json.dumps(
            {
                "workflow_name": self.workflow_name,
                "concurrency": self.concurrency,
                "weight": self.weight,
                "tables": [t.to_dict() for t in self.tables],
                "raw_hint_count": self.raw_hint_count,
                "condensed_hint_count": self.condensed_hint_count,
                "synthesis_seconds": self.synthesis_seconds,
                "metadata": self.metadata,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "WorkflowHints":
        """Inverse of :meth:`to_json`."""
        doc = json.loads(text)
        return cls(
            workflow_name=doc["workflow_name"],
            concurrency=doc["concurrency"],
            weight=doc["weight"],
            tables=[CondensedHintsTable.from_dict(t) for t in doc["tables"]],
            raw_hint_count=doc.get("raw_hint_count", 0),
            condensed_hint_count=doc.get("condensed_hint_count", 0),
            synthesis_seconds=doc.get("synthesis_seconds", 0.0),
            metadata=doc.get("metadata", {}),
        )
