"""Workflow model: DAGs, specs, requests, sub-workflows, catalog."""

from .catalog import Workflow, intelligent_assistant, video_analytics
from .chain import chain_dag
from .dag import WorkflowDAG
from .request import RequestOutcome, StageRecord, WorkflowRequest
from .spec import chain_spec, parse_spec, parse_spec_file
from .subworkflow import chain_suffixes, remaining_after, suffix_for_stage

__all__ = [
    "WorkflowDAG",
    "chain_dag",
    "parse_spec",
    "parse_spec_file",
    "chain_spec",
    "Workflow",
    "intelligent_assistant",
    "video_analytics",
    "WorkflowRequest",
    "StageRecord",
    "RequestOutcome",
    "chain_suffixes",
    "suffix_for_stage",
    "remaining_after",
]
