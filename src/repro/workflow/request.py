"""Per-request execution state and outcome records."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from ..errors import WorkflowError
from ..functions.model import InvocationDynamics
from ..types import Millicores, Milliseconds

__all__ = ["StageRecord", "WorkflowRequest", "RequestOutcome"]


@dataclass(frozen=True)
class StageRecord:
    """What happened in one stage of one request."""

    function: str
    size: Millicores
    start_ms: Milliseconds
    end_ms: Milliseconds
    cold_start_ms: Milliseconds = 0.0

    def __post_init__(self) -> None:
        if self.end_ms < self.start_ms:
            raise WorkflowError(
                f"stage {self.function}: end {self.end_ms} < start {self.start_ms}"
            )

    @property
    def execution_ms(self) -> Milliseconds:
        """Wall-clock stage duration (includes any cold start)."""
        return self.end_ms - self.start_ms


@dataclass
class WorkflowRequest:
    """One triggering event of a workflow, with its pre-drawn dynamics.

    The per-stage :class:`InvocationDynamics` are sampled when the request is
    created so that every sizing policy replays identical randomness (common
    random numbers) and the Optimal oracle can evaluate counterfactual
    allocations.
    """

    request_id: int
    arrival_ms: Milliseconds
    slo_ms: Milliseconds
    stage_dynamics: dict[str, InvocationDynamics]
    concurrency: int = 1
    #: Name of the workflow this request triggers. Informational (empty
    #: for hand-built requests): executors resolve stages through their
    #: own workflow, but recording a stream back out as a trace
    #: (:func:`repro.traces.trace_file.trace_from_requests`) needs the
    #: attribution — especially for merged multi-tenant/multi-workflow
    #: streams.
    workflow: str = ""

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise WorkflowError(f"SLO must be > 0, got {self.slo_ms}")
        if self.concurrency < 1:
            raise WorkflowError(f"concurrency must be >= 1, got {self.concurrency}")
        if not self.stage_dynamics:
            raise WorkflowError("request must carry dynamics for >= 1 stage")

    def dynamics_for(self, function: str) -> InvocationDynamics:
        """Dynamics of ``function`` for this request."""
        try:
            return self.stage_dynamics[function]
        except KeyError:
            raise WorkflowError(
                f"request {self.request_id} has no dynamics for {function!r}"
            )


@dataclass
class RequestOutcome:
    """Completed request: timings, allocations and SLO verdict."""

    request_id: int
    arrival_ms: Milliseconds
    slo_ms: Milliseconds
    stages: list[StageRecord] = field(default_factory=list)

    @property
    def e2e_ms(self) -> Milliseconds:
        """End-to-end latency from arrival to last stage completion."""
        if not self.stages:
            return 0.0
        return self.stages[-1].end_ms - self.arrival_ms

    @property
    def slo_met(self) -> bool:
        """True when the end-to-end latency is within the SLO."""
        return self.e2e_ms <= self.slo_ms

    @property
    def slack(self) -> float:
        """Paper §II-A: ``1 - l / T`` (can be negative on violation)."""
        return 1.0 - self.e2e_ms / self.slo_ms

    @property
    def allocated_millicores(self) -> Millicores:
        """Sum of per-stage allocations — the paper's CPU consumption metric."""
        return int(sum(s.size for s in self.stages))

    @property
    def millicore_ms(self) -> float:
        """Resource-time product (millicore-milliseconds) across stages."""
        return float(sum(s.size * s.execution_ms for s in self.stages))

    def sizes(self) -> list[Millicores]:
        """Per-stage allocations in execution order."""
        return [s.size for s in self.stages]

    def stage_map(self) -> dict[str, StageRecord]:
        """Stage records keyed by function name."""
        return {s.function: s for s in self.stages}


def total_allocated(outcomes: _t.Iterable[RequestOutcome]) -> float:
    """Mean allocated millicores across outcomes (paper Fig. 5 metric)."""
    outcomes = list(outcomes)
    if not outcomes:
        return 0.0
    return sum(o.allocated_millicores for o in outcomes) / len(outcomes)
