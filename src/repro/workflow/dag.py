"""Workflow DAG model.

A serverless workflow is a directed acyclic graph whose nodes are functions
and whose edges are data dependencies (paper §I). The evaluation workflows
(IA, VA) are chains; the model supports general DAGs with validation,
topological ordering, and a critical-path linearisation used to apply the
chain-based synthesis algorithms to branching workflows (paper §VII lists
complex workflows as the natural extension).
"""

from __future__ import annotations

import typing as _t

import networkx as nx

from ..errors import WorkflowError

__all__ = ["WorkflowDAG"]


class WorkflowDAG:
    """Directed acyclic graph of function names."""

    def __init__(
        self,
        nodes: _t.Iterable[str],
        edges: _t.Iterable[tuple[str, str]] = (),
    ) -> None:
        node_list = list(nodes)
        if not node_list:
            raise WorkflowError("workflow must contain at least one function")
        if len(set(node_list)) != len(node_list):
            raise WorkflowError(f"duplicate function names: {node_list}")
        g = nx.DiGraph()
        g.add_nodes_from(node_list)
        for u, v in edges:
            if u not in g or v not in g:
                raise WorkflowError(f"edge ({u!r}, {v!r}) references unknown node")
            if u == v:
                raise WorkflowError(f"self-loop on {u!r}")
            g.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise WorkflowError(f"workflow contains a cycle: {cycle}")
        self._g = g
        self._order = list(nx.topological_sort(g))

    # -- introspection ------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """Function names in topological order."""
        return list(self._order)

    @property
    def num_nodes(self) -> int:
        return self._g.number_of_nodes()

    @property
    def edges(self) -> list[tuple[str, str]]:
        return list(self._g.edges())

    def successors(self, node: str) -> list[str]:
        """Immediate downstream functions of ``node``."""
        self._check(node)
        return list(self._g.successors(node))

    def predecessors(self, node: str) -> list[str]:
        """Immediate upstream functions of ``node``."""
        self._check(node)
        return list(self._g.predecessors(node))

    def sources(self) -> list[str]:
        """Entry functions (no predecessors)."""
        return [n for n in self._order if self._g.in_degree(n) == 0]

    def sinks(self) -> list[str]:
        """Exit functions (no successors)."""
        return [n for n in self._order if self._g.out_degree(n) == 0]

    def _check(self, node: str) -> None:
        if node not in self._g:
            raise WorkflowError(f"unknown function {node!r}")

    # -- shape --------------------------------------------------------------
    @property
    def is_chain(self) -> bool:
        """True when the DAG is a simple path f1 -> f2 -> ... -> fN."""
        n = self.num_nodes
        if n == 1:
            return True
        if self._g.number_of_edges() != n - 1:
            return False
        degrees_ok = all(
            self._g.in_degree(v) <= 1 and self._g.out_degree(v) <= 1
            for v in self._g
        )
        return degrees_ok and len(self.sources()) == 1 and len(self.sinks()) == 1

    def as_chain(self) -> list[str]:
        """The node sequence when the DAG is a chain; raises otherwise."""
        if not self.is_chain:
            raise WorkflowError("workflow is not a chain; use critical_path()")
        return list(self._order)

    def critical_path(self, weights: _t.Mapping[str, float]) -> list[str]:
        """Longest path by node weight — the chain approximation for DAGs.

        ``weights`` maps every function to a representative execution time;
        the returned path is the latency-dominant chain on which the
        synthesis algorithms operate for non-chain workflows.
        """
        missing = [n for n in self._order if n not in weights]
        if missing:
            raise WorkflowError(f"missing weights for {missing}")
        if any(weights[n] < 0 for n in self._order):
            raise WorkflowError("weights must be >= 0")
        best: dict[str, tuple[float, list[str]]] = {}
        for node in self._order:  # topological order: predecessors done first
            preds = self.predecessors(node)
            if preds:
                prev_cost, prev_path = max(
                    (best[p] for p in preds), key=lambda item: item[0]
                )
            else:
                prev_cost, prev_path = 0.0, []
            best[node] = (prev_cost + float(weights[node]), prev_path + [node])
        return max(best.values(), key=lambda item: item[0])[1]

    def subgraph(self, nodes: _t.Iterable[str]) -> "WorkflowDAG":
        """Induced sub-DAG over ``nodes`` (order preserved)."""
        keep = [n for n in self._order if n in set(nodes)]
        if not keep:
            raise WorkflowError("subgraph would be empty")
        keep_set = set(keep)
        edges = [(u, v) for u, v in self._g.edges() if u in keep_set and v in keep_set]
        return WorkflowDAG(keep, edges)

    def __contains__(self, node: str) -> bool:
        return node in self._g

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkflowDAG):
            return NotImplemented
        return (
            set(self._g.nodes) == set(other._g.nodes)
            and set(self._g.edges) == set(other._g.edges)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._g.nodes), frozenset(self._g.edges)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkflowDAG(nodes={self.nodes}, edges={self.edges})"
