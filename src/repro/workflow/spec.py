"""JSON workflow-definition language (Amazon-States-Language-like).

Serverless platforms describe workflows in structured JSON (paper §II-A:
AWS Step Functions' Amazon States Language, Azure Durable Functions). This
module parses a small ASL-inspired dialect into a :class:`WorkflowDAG`:

.. code-block:: json

    {
        "Comment": "Intelligent Assistant",
        "StartAt": "OD",
        "States": {
            "OD":  {"Type": "Task", "Next": "QA"},
            "QA":  {"Type": "Task", "Next": "TS"},
            "TS":  {"Type": "Task", "End": true},
            "...": {"Type": "Parallel", "Branches": [...], "Next": "..."}
        }
    }

``Task`` states become DAG nodes; ``Parallel`` states expand their branches
as fan-out/fan-in edges through the parallel state's successors.
"""

from __future__ import annotations

import json
import typing as _t

from ..errors import WorkflowError
from .dag import WorkflowDAG

__all__ = ["parse_spec", "parse_spec_file", "chain_spec"]


def parse_spec(spec: str | _t.Mapping[str, _t.Any]) -> WorkflowDAG:
    """Parse an ASL-like JSON document (text or mapping) into a DAG."""
    if isinstance(spec, str):
        try:
            doc = json.loads(spec)
        except json.JSONDecodeError as exc:
            raise WorkflowError(f"invalid JSON workflow spec: {exc}") from exc
    else:
        doc = dict(spec)
    if not isinstance(doc, dict):
        raise WorkflowError("workflow spec must be a JSON object")
    states = doc.get("States")
    start = doc.get("StartAt")
    if not isinstance(states, dict) or not states:
        raise WorkflowError("spec requires a non-empty 'States' object")
    if start not in states:
        raise WorkflowError(f"'StartAt' ({start!r}) must name a state")

    nodes: list[str] = []
    edges: list[tuple[str, str]] = []

    def _leaf_exits(name: str) -> list[str]:
        """Node names whose completion ends state ``name``."""
        state = states[name]
        if state.get("Type", "Task") == "Parallel":
            exits: list[str] = []
            for branch in state.get("Branches", []):
                b_states = branch.get("States", {})
                exits.extend(
                    s for s, st in b_states.items() if st.get("End") or "Next" not in st
                )
            return exits
        return [name]

    def _entries(name: str) -> list[str]:
        """Node names that start executing when state ``name`` is entered."""
        state = states[name]
        if state.get("Type", "Task") == "Parallel":
            entry: list[str] = []
            for branch in state.get("Branches", []):
                b_start = branch.get("StartAt")
                if b_start is None:
                    raise WorkflowError(f"parallel branch in {name!r} lacks StartAt")
                entry.append(b_start)
            return entry
        return [name]

    def _expand(name: str, seen: set[str]) -> None:
        if name in seen:
            raise WorkflowError(f"state {name!r} visited twice (cycle?)")
        seen.add(name)
        state = states.get(name)
        if state is None:
            raise WorkflowError(f"transition to unknown state {name!r}")
        stype = state.get("Type", "Task")
        if stype == "Task":
            nodes.append(name)
        elif stype == "Parallel":
            branches = state.get("Branches")
            if not branches:
                raise WorkflowError(f"parallel state {name!r} has no branches")
            for branch in branches:
                b_states = branch.get("States", {})
                if not b_states:
                    raise WorkflowError(f"empty branch in parallel state {name!r}")
                # Branch states live in the same namespace as top-level states
                # in this dialect; register and walk them.
                for b_name, b_state in b_states.items():
                    if b_name in states and b_name not in seen:
                        pass  # already registered at top level
                    states.setdefault(b_name, b_state)
                _expand(branch["StartAt"], seen)
        else:
            raise WorkflowError(f"unsupported state type {stype!r} in {name!r}")

        nxt = state.get("Next")
        is_end = bool(state.get("End", False))
        if nxt is None and not is_end and stype == "Task":
            raise WorkflowError(f"state {name!r} has neither 'Next' nor 'End'")
        if nxt is not None:
            if nxt not in states:
                raise WorkflowError(f"state {name!r} transitions to unknown {nxt!r}")
            for exit_node in _leaf_exits(name):
                for entry_node in _entries(nxt):
                    edges.append((exit_node, entry_node))
            if nxt not in seen:
                _expand(nxt, seen)

    _expand(start, set())
    # Deduplicate while preserving order (parallel expansion may revisit).
    uniq_nodes = list(dict.fromkeys(nodes))
    uniq_edges = list(dict.fromkeys(edges))
    return WorkflowDAG(uniq_nodes, uniq_edges)


def parse_spec_file(path: str) -> WorkflowDAG:
    """Parse a workflow spec from a JSON file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_spec(fh.read())


def chain_spec(names: _t.Sequence[str], comment: str = "") -> dict[str, _t.Any]:
    """Emit the ASL-like JSON document for a simple chain (round-trip aid)."""
    if not names:
        raise WorkflowError("chain requires at least one function")
    states: dict[str, _t.Any] = {}
    for i, name in enumerate(names):
        if i + 1 < len(names):
            states[name] = {"Type": "Task", "Next": names[i + 1]}
        else:
            states[name] = {"Type": "Task", "End": True}
    return {"Comment": comment, "StartAt": names[0], "States": states}
