"""Convenience constructors for chain workflows (the paper's shape)."""

from __future__ import annotations

import typing as _t

from ..errors import WorkflowError
from .dag import WorkflowDAG

__all__ = ["chain_dag"]


def chain_dag(names: _t.Sequence[str]) -> WorkflowDAG:
    """Build the chain ``names[0] -> names[1] -> ... -> names[-1]``."""
    names = list(names)
    if not names:
        raise WorkflowError("chain requires at least one function")
    edges = list(zip(names, names[1:]))
    return WorkflowDAG(names, edges)
