"""The :class:`Workflow` facade and the two evaluation workflows.

A :class:`Workflow` bundles everything a policy needs to serve an
application: the DAG, the function models, the resource limits and the
default SLO. The catalog constructors reproduce the paper's Intelligent
Assistant and Video Analytics applications (§V-A).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from ..errors import WorkflowError
from ..functions.library import ia_functions, va_functions
from ..functions.model import FunctionModel
from ..types import Milliseconds, ResourceLimits
from .chain import chain_dag
from .dag import WorkflowDAG

__all__ = ["Workflow", "intelligent_assistant", "video_analytics"]


@dataclass(frozen=True)
class Workflow:
    """An application: DAG + function models + limits + default SLO."""

    name: str
    dag: WorkflowDAG
    functions: dict[str, FunctionModel]
    slo_ms: Milliseconds
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    max_concurrency: int = 1

    def __post_init__(self) -> None:
        missing = [n for n in self.dag.nodes if n not in self.functions]
        if missing:
            raise WorkflowError(f"{self.name}: missing function models: {missing}")
        extra = [n for n in self.functions if n not in self.dag]
        if extra:
            raise WorkflowError(f"{self.name}: models without DAG nodes: {extra}")
        if self.slo_ms <= 0:
            raise WorkflowError(f"{self.name}: SLO must be > 0, got {self.slo_ms}")
        if self.max_concurrency < 1:
            raise WorkflowError(
                f"{self.name}: max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_concurrency > 1:
            non_batchable = [
                n for n in self.dag.nodes if not self.functions[n].batchable
            ]
            if non_batchable:
                raise WorkflowError(
                    f"{self.name}: concurrency {self.max_concurrency} requires "
                    f"batchable functions, but {non_batchable} are not"
                )

    @property
    def topology(self) -> str:
        """``"chain"`` when the DAG is a simple path, ``"dag"`` otherwise.

        The single switch executors, synthesis, and the :class:`Session`
        facade key on — callers should not probe ``.dag``/``.chain`` shape
        themselves.
        """
        return "chain" if self.dag.is_chain else "dag"

    @property
    def chain(self) -> list[str]:
        """Execution order as a chain (critical path for general DAGs)."""
        if self.dag.is_chain:
            return self.dag.as_chain()
        weights = {
            n: self.functions[n].base_time(self.limits.kmin)
            for n in self.dag.nodes
        }
        return self.dag.critical_path(weights)

    @property
    def num_functions(self) -> int:
        return self.dag.num_nodes

    def models_in_order(self) -> list[FunctionModel]:
        """Function models along :attr:`chain`."""
        return [self.functions[n] for n in self.chain]

    def model(self, name: str) -> FunctionModel:
        """Model for function ``name``."""
        try:
            return self.functions[name]
        except KeyError:
            raise WorkflowError(f"{self.name}: unknown function {name!r}")

    def with_slo(self, slo_ms: Milliseconds) -> "Workflow":
        """Copy of this workflow with a different SLO."""
        return Workflow(
            name=self.name,
            dag=self.dag,
            functions=dict(self.functions),
            slo_ms=slo_ms,
            limits=self.limits,
            max_concurrency=self.max_concurrency,
        )

    def with_concurrency(self, concurrency: int) -> "Workflow":
        """Copy of this workflow with a different batch size."""
        return Workflow(
            name=self.name,
            dag=self.dag,
            functions=dict(self.functions),
            slo_ms=self.slo_ms,
            limits=self.limits,
            max_concurrency=concurrency,
        )


def _bundle(
    name: str,
    models: _t.Sequence[FunctionModel],
    slo_ms: Milliseconds,
    limits: ResourceLimits,
    max_concurrency: int,
) -> Workflow:
    dag = chain_dag([m.name for m in models])
    return Workflow(
        name=name,
        dag=dag,
        functions={m.name: m for m in models},
        slo_ms=slo_ms,
        limits=limits,
        max_concurrency=max_concurrency,
    )


def intelligent_assistant(
    slo_ms: Milliseconds = 3000.0,
    concurrency: int = 1,
    limits: ResourceLimits | None = None,
) -> Workflow:
    """The IA workflow: OD -> QA -> TS, default SLO 3 s (paper §V-A).

    The paper evaluates concurrency (batch size) 1, 2, 3 with SLOs
    3 s / 4 s / 5 s respectively.
    """
    return _bundle(
        name="IA",
        models=ia_functions(),
        slo_ms=slo_ms,
        limits=limits or ResourceLimits(),
        max_concurrency=concurrency,
    )


def video_analytics(
    slo_ms: Milliseconds = 1500.0,
    limits: ResourceLimits | None = None,
) -> Workflow:
    """The VA workflow: FE -> ICL -> ICO, default SLO 1.5 s (paper §V-A).

    Concurrency is fixed at one because FE and ICO cannot batch.
    """
    return _bundle(
        name="VA",
        models=va_functions(),
        slo_ms=slo_ms,
        limits=limits or ResourceLimits(),
        max_concurrency=1,
    )
