"""Standalone timeout / resilience metric helpers (paper §III-B, Fig. 7).

These wrap :class:`LatencyProfile` lookups with the exact equation forms
used in the paper and provide grid sweeps for the Fig. 7 reproduction.
"""

from __future__ import annotations

import numpy as np

from ..types import Millicores
from .profiles import LatencyProfile

__all__ = [
    "timeout",
    "resilience",
    "timeout_curve",
    "resilience_curve",
    "total_resilience",
]


def timeout(
    profile: LatencyProfile, p: float, k: Millicores, concurrency: int = 1
) -> float:
    """``D(p, k) = L(99, k) - L(p, k)`` (Eq. 1)."""
    return profile.timeout(p, k, concurrency)


def resilience(
    profile: LatencyProfile, p: float, k: Millicores, concurrency: int = 1
) -> float:
    """``R(p, k) = L(p, k) - L(p, Kmax)`` (Eq. 2, prose sign convention)."""
    return profile.resilience(p, k, concurrency)


def timeout_curve(
    profile: LatencyProfile, p: float, concurrency: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """(CPU grid, ``D(p, k)`` per size) — one Fig. 7a series."""
    return profile.limits.grid(), profile.timeout_row(p, concurrency)


def resilience_curve(
    profile: LatencyProfile, p: float = 99.0, concurrency: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    """(CPU grid, ``R(p, k)`` per size) — one Fig. 7b series."""
    return profile.limits.grid(), profile.resilience_row(p, concurrency)


def total_resilience(
    profiles: list[LatencyProfile],
    sizes: list[Millicores],
    p: float = 99.0,
    concurrency: int = 1,
) -> float:
    """``sum_i R_i(p, k_i)`` for an allocation — RHS of constraint Eq. 6."""
    if len(profiles) != len(sizes):
        raise ValueError(
            f"profiles ({len(profiles)}) and sizes ({len(sizes)}) mismatch"
        )
    return float(
        sum(prof.resilience(p, k, concurrency) for prof, k in zip(profiles, sizes))
    )
