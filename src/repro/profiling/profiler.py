"""The developer-side profiler (paper §III-B).

The profiler "collects the execution time of functions under varying
resources (CPU cores) and concurrency levels (batch sizes) while extracting
execution time distribution by using different percentiles". Here the
measurements come from the parametric function models: for every (k, c)
grid point we draw ``samples`` independent invocations — exactly what a real
profiling campaign does against a test deployment — and take empirical
percentiles.

Sampling is fully vectorised (one ``rng`` batch per grid point) and the
resulting tables are projected onto the monotone cone to remove
finite-sample inversions (see :meth:`LatencyProfile.enforce_monotone`).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from ..errors import ProfileError
from ..functions.model import FunctionModel
from ..rng import RngFactory
from ..types import PercentileGrid, ResourceLimits
from ..workflow.catalog import Workflow
from .profiles import LatencyProfile, ProfileSet

__all__ = ["ProfilerConfig", "Profiler", "profile_workflow"]

InterferenceSampler = _t.Callable[[np.random.Generator, int], np.ndarray]


def _no_interference(rng: np.random.Generator, n: int) -> np.ndarray:
    return np.ones(n, dtype=np.float64)


@dataclass(frozen=True)
class ProfilerConfig:
    """Profiling campaign parameters.

    ``samples`` invocations per (k, c) grid point; 2000 keeps the P99
    estimate within a few percent for the noise levels of the calibrated
    models while the whole IA campaign stays under a second.
    """

    limits: ResourceLimits = field(default_factory=ResourceLimits)
    percentiles: PercentileGrid = field(default_factory=PercentileGrid)
    concurrencies: tuple[int, ...] = (1,)
    samples: int = 2000
    enforce_monotone: bool = True

    def __post_init__(self) -> None:
        if self.samples < 100:
            raise ProfileError(
                f"at least 100 samples required for stable percentiles, "
                f"got {self.samples}"
            )
        if not self.concurrencies or self.concurrencies[0] != 1:
            raise ProfileError(
                f"concurrencies must start at 1, got {self.concurrencies}"
            )


class Profiler:
    """Runs profiling campaigns against function models."""

    def __init__(
        self,
        config: ProfilerConfig | None = None,
        interference: InterferenceSampler | None = None,
    ) -> None:
        self.config = config or ProfilerConfig()
        self._interference = interference or _no_interference

    def profile_function(
        self,
        model: FunctionModel,
        rng: np.random.Generator,
    ) -> LatencyProfile:
        """Profile one function across the full (p, k, c) grid."""
        cfg = self.config
        # Non-batchable functions (paper §V-A: FE and ICO cannot process
        # frames in batch form) are measured at concurrency 1 for every
        # requested level so the table shape stays uniform across a workflow.
        k_grid = cfg.limits.grid()
        p_grid = cfg.percentiles.as_array()
        table = np.empty(
            (len(cfg.concurrencies), len(p_grid), len(k_grid)), dtype=np.float64
        )
        for ci, c in enumerate(cfg.concurrencies):
            effective_c = c if model.batchable else 1
            for ki, k in enumerate(k_grid):
                q = self._interference(rng, cfg.samples)
                samples = model.sample_execution_times(
                    int(k),
                    cfg.samples,
                    rng,
                    concurrency=effective_c,
                    interference=q,
                )
                table[ci, :, ki] = np.percentile(samples, p_grid)
        profile = LatencyProfile(
            function=model.name,
            percentiles=cfg.percentiles,
            limits=cfg.limits,
            concurrencies=cfg.concurrencies,
            table=table,
        )
        return profile.enforce_monotone() if cfg.enforce_monotone else profile

    def profile_models(
        self,
        models: _t.Iterable[FunctionModel],
        rng_factory: RngFactory,
    ) -> ProfileSet:
        """Profile several functions with independent random streams."""
        profiles = {
            m.name: self.profile_function(m, rng_factory.stream("profiler", m.name))
            for m in models
        }
        return ProfileSet(profiles)


def profile_workflow(
    workflow: Workflow,
    seed: int = 0,
    samples: int = 2000,
    concurrencies: tuple[int, ...] | None = None,
    percentiles: PercentileGrid | None = None,
    interference: InterferenceSampler | None = None,
) -> ProfileSet:
    """One-call profiling of every function in ``workflow``.

    ``concurrencies`` defaults to ``(1, ..., workflow.max_concurrency)``.
    Every DAG node is profiled (branching workflows execute
    off-critical-path functions too); chain-order functions come first so
    ``ProfileSet.functions()`` preserves the historical chain ordering.
    """
    if concurrencies is None:
        concurrencies = tuple(range(1, workflow.max_concurrency + 1))
    cfg = ProfilerConfig(
        limits=workflow.limits,
        percentiles=percentiles or PercentileGrid(),
        concurrencies=concurrencies,
        samples=samples,
    )
    profiler = Profiler(cfg, interference=interference)
    models = workflow.models_in_order()
    if workflow.topology == "dag":
        on_chain = set(workflow.chain)
        models += [
            workflow.functions[n]
            for n in workflow.dag.nodes
            if n not in on_chain
        ]
    return profiler.profile_models(
        models, RngFactory(seed).fork("profiling", workflow.name)
    )
