"""Latency profiles: the ``L(p, k, c)`` tables at the heart of Janus.

A :class:`LatencyProfile` stores, for one function, the profiled execution
time at every (percentile ``p``, CPU size ``k``, concurrency ``c``) grid
point — the developer-side domain knowledge that the synthesizer turns into
hints (paper §III-B).

The table is a dense ``float64`` array indexed ``[c][p][k]`` so that the
synthesizer's vectorised sweeps are contiguous along the CPU axis (the axis
it scans most), per the cache-effects guidance in the hpc-parallel guides.
"""

from __future__ import annotations

import hashlib
import typing as _t
from dataclasses import dataclass

import numpy as np

from ..errors import ProfileError
from ..types import Millicores, PercentileGrid, ResourceLimits

__all__ = ["LatencyProfile", "ProfileSet"]


@dataclass(frozen=True)
class LatencyProfile:
    """Profiled execution-time distribution of one function.

    Attributes
    ----------
    function:
        Function name.
    percentiles:
        The percentile grid (must contain the anchor, P99 by default).
    limits:
        CPU-size grid.
    concurrencies:
        Batch sizes profiled (ascending, starting at 1).
    table:
        ``float64[c, p, k]`` execution times in ms.
    """

    function: str
    percentiles: PercentileGrid
    limits: ResourceLimits
    concurrencies: tuple[int, ...]
    table: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.table, dtype=np.float64)
        expected = (len(self.concurrencies), len(self.percentiles), self.limits.num_options)
        if t.shape != expected:
            raise ProfileError(
                f"{self.function}: table shape {t.shape} != expected {expected}"
            )
        if not self.concurrencies or self.concurrencies[0] != 1:
            raise ProfileError(
                f"{self.function}: concurrencies must start at 1: {self.concurrencies}"
            )
        if tuple(sorted(set(self.concurrencies))) != tuple(self.concurrencies):
            raise ProfileError(
                f"{self.function}: concurrencies must be ascending and unique"
            )
        if not np.all(np.isfinite(t)) or np.any(t <= 0):
            raise ProfileError(f"{self.function}: table must be finite and positive")
        object.__setattr__(self, "table", t)

    # -- index helpers ------------------------------------------------------
    def _c_index(self, concurrency: int) -> int:
        try:
            return self.concurrencies.index(int(concurrency))
        except ValueError:
            raise ProfileError(
                f"{self.function}: concurrency {concurrency} not profiled "
                f"(have {self.concurrencies})"
            )

    def _k_index(self, k: Millicores) -> int:
        if not self.limits.contains(k):
            raise ProfileError(
                f"{self.function}: size {k} not on the profiled grid {self.limits}"
            )
        return (int(k) - self.limits.kmin) // self.limits.step

    # -- lookups --------------------------------------------------------------
    def latency(self, p: float, k: Millicores, concurrency: int = 1) -> float:
        """``L(p, k)`` at the given concurrency (exact grid lookup)."""
        ci = self._c_index(concurrency)
        pi = self.percentiles.index_of(p)
        ki = self._k_index(k)
        return float(self.table[ci, pi, ki])

    def latencies(
        self, p: float, ks: np.ndarray, concurrency: int = 1
    ) -> np.ndarray:
        """Batched :meth:`latency` — ``L(p, k)`` for an array of sizes.

        One fancy-index gather per call; every element equals the scalar
        lookup for the same size.
        """
        ci = self._c_index(concurrency)
        pi = self.percentiles.index_of(p)
        ks = np.asarray(ks, dtype=np.int64)
        on_grid = self.limits.contains_array(ks)
        if not bool(on_grid.all()):
            bad = int(ks[~on_grid][0])
            raise ProfileError(
                f"{self.function}: size {bad} not on the profiled grid {self.limits}"
            )
        ki = (ks - self.limits.kmin) // self.limits.step
        return self.table[ci, pi, ki]

    def latency_row(self, p: float, concurrency: int = 1) -> np.ndarray:
        """``L(p, ·)`` over the whole CPU grid.

        Returns a *view* into the table (no copy — callers must not mutate),
        following the "views, not copies" guidance for hot paths.
        """
        ci = self._c_index(concurrency)
        pi = self.percentiles.index_of(p)
        return self.table[ci, pi, :]

    def anchor_row(self, concurrency: int = 1) -> np.ndarray:
        """``L(P99, ·)`` — the anchor-percentile row."""
        return self.latency_row(self.percentiles.anchor, concurrency)

    def plane(self, concurrency: int = 1) -> np.ndarray:
        """``L(·, ·)`` — the full (percentile x CPU) plane at a concurrency."""
        return self.table[self._c_index(concurrency)]

    # -- paper metrics (§III-B) -------------------------------------------
    def timeout(self, p: float, k: Millicores, concurrency: int = 1) -> float:
        """``D(p, k) = L(99, k) - L(p, k)`` — potential over-time execution."""
        return self.latency(self.percentiles.anchor, k, concurrency) - self.latency(
            p, k, concurrency
        )

    def resilience(self, p: float, k: Millicores, concurrency: int = 1) -> float:
        """``R(p, k) = L(p, k) - L(p, Kmax)`` — absorbable reduction.

        Sign convention follows the paper's prose ("achievable reduction in
        function execution time by scaling resource up to the maximum"), so
        the value is always >= 0; see DESIGN.md §1.
        """
        return self.latency(p, k, concurrency) - self.latency(
            p, self.limits.kmax, concurrency
        )

    def timeout_row(self, p: float, concurrency: int = 1) -> np.ndarray:
        """``D(p, ·)`` over the CPU grid."""
        return self.anchor_row(concurrency) - self.latency_row(p, concurrency)

    def resilience_row(self, p: float, concurrency: int = 1) -> np.ndarray:
        """``R(p, ·)`` over the CPU grid."""
        row = self.latency_row(p, concurrency)
        return row - row[-1]

    # -- bounds (paper Eq. 3) ------------------------------------------------
    def min_latency(self, concurrency: int = 1) -> float:
        """``L(P1, Kmax)`` — the fastest profiled execution."""
        return float(self.plane(concurrency)[0, -1])

    def max_latency(self, concurrency: int = 1) -> float:
        """``L(P99, Kmin)`` — the slowest profiled execution."""
        return float(self.plane(concurrency)[-1, 0])

    # -- hygiene --------------------------------------------------------------
    def enforce_monotone(self) -> "LatencyProfile":
        """Return a copy with sampling noise removed from the grid.

        Physical constraints: latency is non-increasing in CPU size and
        non-decreasing in percentile. Finite-sample percentile estimates can
        violate both by small amounts; this projects the table onto the
        monotone cone (cumulative min along k, cumulative max along p).
        """
        t = self.table.copy()
        t = np.minimum.accumulate(t, axis=2)  # non-increasing in k
        t = np.maximum.accumulate(t, axis=1)  # non-decreasing in p
        return LatencyProfile(
            function=self.function,
            percentiles=self.percentiles,
            limits=self.limits,
            concurrencies=self.concurrencies,
            table=t,
        )

    def is_monotone(self, atol: float = 1e-9) -> bool:
        """True when the table satisfies both monotonicity constraints."""
        dec_k = np.all(np.diff(self.table, axis=2) <= atol)
        inc_p = np.all(np.diff(self.table, axis=1) >= -atol)
        return bool(dec_k and inc_p)

    def memory_bytes(self) -> int:
        """Bytes held by the table (for the §V-H footprint experiment)."""
        return int(self.table.nbytes)

    def digest(self) -> str:
        """Content hash of the profile (grids + table bytes).

        Two profiles with equal digests produce identical synthesis output,
        so the digest is the memo key for cached DP tables and hints. The
        profile is frozen, so the hash is computed once and cached.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            h = hashlib.sha256()
            h.update(self.function.encode())
            h.update(repr(self.percentiles.percentiles).encode())
            h.update(repr((self.percentiles.anchor,)).encode())
            h.update(
                repr((self.limits.kmin, self.limits.kmax, self.limits.step)).encode()
            )
            h.update(repr(self.concurrencies).encode())
            h.update(np.ascontiguousarray(self.table).tobytes())
            cached = h.hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


class ProfileSet:
    """Profiles for every function of a workflow, keyed by name."""

    def __init__(self, profiles: _t.Mapping[str, LatencyProfile]) -> None:
        if not profiles:
            raise ProfileError("profile set may not be empty")
        limits = {p.limits for p in profiles.values()}
        if len(limits) != 1:
            raise ProfileError("all profiles must share one resource grid")
        grids = {p.percentiles.percentiles for p in profiles.values()}
        if len(grids) != 1:
            raise ProfileError("all profiles must share one percentile grid")
        self._profiles = dict(profiles)

    def __getitem__(self, function: str) -> LatencyProfile:
        try:
            return self._profiles[function]
        except KeyError:
            raise ProfileError(f"no profile for function {function!r}")

    def __contains__(self, function: str) -> bool:
        return function in self._profiles

    def __len__(self) -> int:
        return len(self._profiles)

    def functions(self) -> list[str]:
        """Profiled function names."""
        return list(self._profiles)

    @property
    def limits(self) -> ResourceLimits:
        """The shared CPU-size grid."""
        return next(iter(self._profiles.values())).limits

    @property
    def percentiles(self) -> PercentileGrid:
        """The shared percentile grid."""
        return next(iter(self._profiles.values())).percentiles

    def memory_bytes(self) -> int:
        """Total table bytes across functions."""
        return sum(p.memory_bytes() for p in self._profiles.values())

    def for_chain(self, chain: _t.Sequence[str]) -> list[LatencyProfile]:
        """Profiles along a chain, in order."""
        return [self[name] for name in chain]
