"""Persistence for latency profiles.

Profiling campaigns are expensive (the developer runs them against a real
deployment); the tables must survive to disk so synthesis can be re-run
with different weights/budgets without re-profiling, and so hint
regeneration (§III-D) can diff old vs. new distributions. The format is
plain JSON — the tables are small (tens of KiB) and the hand-off crosses an
organisational boundary where a self-describing format beats pickles.
"""

from __future__ import annotations

import json
import typing as _t

import numpy as np

from ..errors import ProfileError
from ..types import PercentileGrid, ResourceLimits
from .profiles import LatencyProfile, ProfileSet

__all__ = [
    "profile_to_dict",
    "profile_from_dict",
    "save_profile_set",
    "load_profile_set",
    "profile_set_to_json",
    "profile_set_from_json",
]

_FORMAT_VERSION = 1


def profile_to_dict(profile: LatencyProfile) -> dict[str, _t.Any]:
    """JSON-serialisable representation of one profile."""
    return {
        "function": profile.function,
        "percentiles": list(profile.percentiles.percentiles),
        "anchor": profile.percentiles.anchor,
        "limits": {
            "kmin": profile.limits.kmin,
            "kmax": profile.limits.kmax,
            "step": profile.limits.step,
        },
        "concurrencies": list(profile.concurrencies),
        "table": profile.table.tolist(),
    }


def profile_from_dict(doc: _t.Mapping[str, _t.Any]) -> LatencyProfile:
    """Inverse of :func:`profile_to_dict`."""
    try:
        limits = ResourceLimits(**doc["limits"])
        grid = PercentileGrid(
            percentiles=tuple(doc["percentiles"]), anchor=doc["anchor"]
        )
        return LatencyProfile(
            function=doc["function"],
            percentiles=grid,
            limits=limits,
            concurrencies=tuple(doc["concurrencies"]),
            table=np.asarray(doc["table"], dtype=np.float64),
        )
    except KeyError as exc:
        raise ProfileError(f"profile document missing field: {exc}") from exc


def profile_set_to_json(profiles: ProfileSet) -> str:
    """Serialise a whole profile set."""
    return json.dumps(
        {
            "format_version": _FORMAT_VERSION,
            "profiles": {
                name: profile_to_dict(profiles[name])
                for name in profiles.functions()
            },
        }
    )


def profile_set_from_json(text: str) -> ProfileSet:
    """Inverse of :func:`profile_set_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProfileError(f"invalid profile JSON: {exc}") from exc
    version = doc.get("format_version")
    if version != _FORMAT_VERSION:
        raise ProfileError(
            f"unsupported profile format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    profiles = doc.get("profiles")
    if not isinstance(profiles, dict) or not profiles:
        raise ProfileError("profile document contains no profiles")
    return ProfileSet(
        {name: profile_from_dict(p) for name, p in profiles.items()}
    )


def save_profile_set(profiles: ProfileSet, path: str) -> None:
    """Write a profile set to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(profile_set_to_json(profiles))


def load_profile_set(path: str) -> ProfileSet:
    """Read a profile set from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return profile_set_from_json(fh.read())
