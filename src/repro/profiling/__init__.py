"""Developer-side profiling: L(p, k, c) tables plus timeout/resilience.

Implements the Janus profiler (paper §III-B): execution-time distributions
across percentiles, CPU sizes and concurrency levels, and the two risk
metrics — timeout ``D(p, k)`` and resilience ``R(p, k)`` — that regulate
hint synthesis.
"""

from .io import (
    load_profile_set,
    profile_from_dict,
    profile_set_from_json,
    profile_set_to_json,
    profile_to_dict,
    save_profile_set,
)
from .metrics import (
    resilience,
    resilience_curve,
    timeout,
    timeout_curve,
    total_resilience,
)
from .profiler import Profiler, ProfilerConfig, profile_workflow
from .profiles import LatencyProfile, ProfileSet

__all__ = [
    "LatencyProfile",
    "ProfileSet",
    "Profiler",
    "ProfilerConfig",
    "profile_workflow",
    "timeout",
    "resilience",
    "timeout_curve",
    "resilience_curve",
    "total_resilience",
    "profile_to_dict",
    "profile_from_dict",
    "profile_set_to_json",
    "profile_set_from_json",
    "save_profile_set",
    "load_profile_set",
]
