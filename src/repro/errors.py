"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate by subsystem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "ClusterError",
    "WorkflowError",
    "FunctionModelError",
    "TraceError",
    "ProfileError",
    "SynthesisError",
    "AdapterError",
    "PolicyError",
    "ExperimentError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Invalid configuration value or combination of values."""


class SimulationError(ReproError):
    """Discrete-event simulation kernel misuse (e.g. time travel)."""


class ClusterError(ReproError):
    """Platform substrate failure (capacity exhausted, unknown pod, ...)."""


class WorkflowError(ReproError):
    """Malformed workflow DAG or specification."""


class FunctionModelError(ReproError):
    """Invalid function performance-model parameters."""


class TraceError(ReproError):
    """Trace or workload generation failure."""


class ProfileError(ReproError):
    """Profiler misuse or malformed latency profile."""


class SynthesisError(ReproError):
    """Hint synthesis failure (infeasible budgets, empty tables, ...)."""


class AdapterError(ReproError):
    """Online adapter misuse (unknown workflow, stale state, ...)."""


class PolicyError(ReproError):
    """Sizing-policy failure (infeasible SLO under early binding, ...)."""


class ExperimentError(ReproError):
    """Experiment-harness failure (unknown experiment id, bad params)."""
