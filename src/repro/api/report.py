"""The :class:`ComparisonReport` returned by :meth:`Session.evaluate`."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ExperimentError
from ..metrics.report import format_table
from ..runtime.driver import compare
from ..runtime.results import RunResult

__all__ = ["ComparisonReport"]


@dataclass
class ComparisonReport:
    """Per-policy results of one profile → synthesize → serve comparison.

    ``table`` holds each policy's headline metrics (the paper's Fig. 5 /
    Table I quantities) including ``normalized_cpu`` against ``baseline``.
    """

    workflow_name: str
    topology: str
    slo_ms: float
    executor: str
    baseline: str
    results: dict[str, RunResult]
    table: dict[str, dict[str, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.results:
            raise ExperimentError("comparison report requires results")
        if self.baseline not in self.results:
            raise ExperimentError(
                f"baseline {self.baseline!r} missing from results "
                f"{sorted(self.results)}"
            )
        if not self.table:
            self.table = compare(self.results, baseline=self.baseline)

    @property
    def policies(self) -> list[str]:
        """Compared policy names, in suite order."""
        return list(self.results)

    def result_for(self, name: str) -> RunResult:
        """The :class:`RunResult` of one policy."""
        try:
            return self.results[name]
        except KeyError:
            raise ExperimentError(
                f"no result for policy {name!r}; have {self.policies}"
            )

    def normalized_cpu(self, name: str) -> float:
        """Mean allocation of ``name`` normalised by the baseline."""
        return self.result_for(name).normalized_cpu(self.result_for(self.baseline))

    def violation_rate(self, name: str) -> float:
        """SLO violation rate of ``name``."""
        return self.result_for(name).violation_rate

    def saving_vs(self, name: str, other: str) -> float:
        """CPU saving of ``name`` against ``other`` as a fraction of ``other``."""
        a = self.result_for(name).mean_allocated
        b = self.result_for(other).mean_allocated
        if b <= 0:
            raise ExperimentError(f"{other} has zero mean allocation")
        return 1.0 - a / b

    def render(self) -> str:
        """Aligned comparison table, one row per policy (from :attr:`table`,
        the single source the programmatic accessors also reflect)."""
        rows = [
            (
                name,
                row["mean_allocated_millicores"],
                row["normalized_cpu"],
                row["p50_e2e_ms"],
                row["p99_e2e_ms"],
                row["violation_rate"],
            )
            for name, row in self.table.items()
        ]
        return format_table(
            ["policy", "mean CPU (mc)", "norm. CPU", "P50 (ms)",
             "P99 (ms)", "viol."],
            rows,
            title=(
                f"{self.workflow_name} ({self.topology}, SLO {self.slo_ms:g} ms, "
                f"executor {self.executor}, baseline {self.baseline})"
            ),
        )

    def __str__(self) -> str:
        return self.render()
