"""The :class:`Session` facade — one entry point for the whole pipeline.

The paper's developer/provider split takes six hand-wired steps (build →
profile → synthesize → policy → requests → run); a :class:`Session` owns
the intermediate artifacts and memoises the expensive ones, so the
quickstart collapses to::

    >>> from repro import Session, intelligent_assistant
    >>> report = Session.evaluate(intelligent_assistant(), slo_ms=3000)
    >>> report.normalized_cpu("Janus") < report.normalized_cpu("GrandSLAM")
    True

Everything underneath resolves through the shared registries: policies by
name via :data:`repro.policies.registry.POLICIES` and executors via
:mod:`repro.runtime.registry`, auto-selected from
:attr:`Workflow.topology`. The same ``Session`` code path therefore drives
chains and branching DAGs — a chain is a degenerate DAG.
"""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError
from ..policies.base import SizingPolicy
from ..policies.registry import (
    DEFAULT_SUITE,
    JANUS_EXPLORATIONS,
    POLICIES,
    PolicyRegistry,
)
from ..profiling.profiler import profile_workflow
from ..profiling.profiles import ProfileSet
from ..runtime.driver import assemble_suite, run_policies
from ..runtime.registry import Executor, resolve_executor
from ..synthesis.budget import BudgetRange
from ..synthesis.dag import DagWorkflowHints, synthesize_dag_hints
from ..synthesis.generator import HeadExploration, synthesize_hints
from ..synthesis.hints import WorkflowHints
from ..traces.workload import WorkloadConfig, generate_requests
from ..types import Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest

__all__ = ["Session"]

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .report import ComparisonReport

#: What ``Session.run``/``requests`` accept as a request-stream spec.
RequestSpec = _t.Union[
    None, int, WorkloadConfig, _t.Sequence[WorkflowRequest]
]

_DEFAULT_SAMPLES = 2000
_DEFAULT_SEED = 2025


class Session:
    """Owns one workflow's evaluation pipeline end to end.

    Parameters
    ----------
    workflow:
        The application under study (chain or DAG).
    slo_ms:
        Optional SLO override; the workflow's default otherwise.
    budget:
        Hint-synthesis budget range; derived from the profiles otherwise.
    samples / seed:
        Profiling-campaign size and master seed. The request stream uses
        ``seed + 1`` so workload randomness is independent of profiling.
    profiles:
        Pre-computed :class:`ProfileSet` to reuse instead of running a
        campaign — the idiom for SLO sweeps sharing one profiling pass.
    registry:
        Policy registry to resolve names through (shared default).
    executor:
        Default backend name for :meth:`run`/:meth:`evaluate`; auto-selected
        from :attr:`Workflow.topology` when ``None``.
    executor_kwargs:
        Construction options for the session's *default* backend — e.g.
        cluster knobs for ``executor="cluster"`` (``{"n_vms": 2,
        "autoscale": False}`` or a full ``{"config": ClusterConfig(...)}``).
        They apply when :meth:`run`/:meth:`compare` resolve that default
        (executor argument omitted or equal to it) and are deliberately
        *not* carried onto a different backend named at a call site —
        pass options for such overrides at the call site itself
        (``session.executor("cluster", n_vms=2)``). Ignored for prebuilt
        executor instances.
    """

    def __init__(
        self,
        workflow: Workflow,
        *,
        slo_ms: Milliseconds | None = None,
        budget: BudgetRange | None = None,
        samples: int = _DEFAULT_SAMPLES,
        seed: int = _DEFAULT_SEED,
        profiles: ProfileSet | None = None,
        registry: PolicyRegistry | None = None,
        executor: str | None = None,
        executor_kwargs: _t.Mapping[str, _t.Any] | None = None,
    ) -> None:
        if slo_ms is not None:
            workflow = workflow.with_slo(slo_ms)
        self.workflow = workflow
        self.budget = budget
        self.samples = int(samples)
        self.seed = int(seed)
        self.registry = registry if registry is not None else POLICIES
        self.executor_name = executor
        self.executor_kwargs = dict(executor_kwargs or {})
        self._profiles = profiles
        #: Synthesized tables memoised per (weight, exploration) — the two
        #: knobs that change table contents for a fixed session budget.
        self._hints_cache: dict[
            tuple[float, str], WorkflowHints | DagWorkflowHints
        ] = {}

    # -- introspection ------------------------------------------------------
    @property
    def topology(self) -> str:
        """The workflow's topology (``"chain"`` or ``"dag"``)."""
        return self.workflow.topology

    @property
    def slo_ms(self) -> float:
        """The SLO this session evaluates against."""
        return float(self.workflow.slo_ms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({self.workflow.name!r}, topology={self.topology!r}, "
            f"slo_ms={self.slo_ms:g})"
        )

    # -- developer side (offline) -------------------------------------------
    def profile(self, force: bool = False) -> ProfileSet:
        """Profile every function (memoised; ``force`` re-runs the campaign)."""
        if self._profiles is None or force:
            self._profiles = profile_workflow(
                self.workflow, seed=self.seed, samples=self.samples
            )
        return self._profiles

    def synthesize(
        self,
        weight: float = 1.0,
        exploration: HeadExploration = HeadExploration.HEAD_ONLY,
        force: bool = False,
    ) -> WorkflowHints | DagWorkflowHints:
        """Synthesize hint tables for the workflow's topology.

        Memoised per ``(weight, exploration)``: repeating a call is free,
        changing either knob synthesizes fresh tables.
        """
        key = (float(weight), exploration.value)
        if force or key not in self._hints_cache:
            profiles = self.profile()
            if self.topology == "dag":
                hints: WorkflowHints | DagWorkflowHints = synthesize_dag_hints(
                    self.workflow, profiles, budget=self.budget,
                    concurrency=self.workflow.max_concurrency,
                    weight=weight, exploration=exploration,
                )
            else:
                hints = synthesize_hints(
                    profiles, self.workflow.chain, budget=self.budget,
                    concurrency=self.workflow.max_concurrency,
                    weight=weight, exploration=exploration,
                    workflow_name=self.workflow.name,
                )
            self._hints_cache[key] = hints
        return self._hints_cache[key]

    # -- provider side (online) ---------------------------------------------
    def policy(self, name: str = "Janus", **overrides: _t.Any) -> SizingPolicy:
        """Build one named policy through the registry with session defaults.

        Janus variants deploy tables from the :meth:`synthesize` memo (keyed
        by the variant's exploration mode and the requested ``weight``), so
        inspecting tables and then deploying them — or serving the same
        variant twice — synthesizes once. Overrides the memo cannot express
        (``budget``, ``concurrency``, ``enforce_resilience``, explicit
        ``hints``) bypass it and reach the registry builder untouched.
        Profiles are passed lazily: policies that never consume them (the
        clairvoyant oracle, pre-built hints) trigger no profiling campaign.
        """
        kwargs: dict[str, _t.Any] = {
            "budget": self.budget,
            "concurrency": self.workflow.max_concurrency,
        }
        if name in JANUS_EXPLORATIONS:
            mode = JANUS_EXPLORATIONS[name]
            if overrides.get("exploration") is mode:
                # Redundant — the variant name already pins this mode.
                overrides.pop("exploration")
            # A *mismatched* exploration stays in overrides and is rejected
            # by the registry builder's own guard.
            if not (
                set(overrides)
                & {"hints", "budget", "concurrency", "enforce_resilience",
                   "exploration"}
            ):
                kwargs["hints"] = self.synthesize(
                    weight=overrides.get("weight", 1.0), exploration=mode
                )
        kwargs.update(overrides)
        return self.registry.build(name, self.workflow, self.profile, **kwargs)

    def executor(
        self, name: str | Executor | None = None, **kwargs: _t.Any
    ) -> Executor:
        """Resolve an execution backend (session default / auto when ``None``).

        The session's ``executor_kwargs`` are merged under any call-site
        ``kwargs`` — but only when resolving the session's *own* default
        backend (``name`` omitted or equal to it): overriding the backend
        per call must not drag backend-specific session options (cluster
        knobs, say) onto an executor that cannot take them. A prebuilt
        executor passes through unchanged (and takes no options, per
        :func:`resolve_executor`).
        """
        if name is None or name == self.executor_name:
            kwargs = {**self.executor_kwargs, **kwargs}
        target = name if name is not None else self.executor_name
        return resolve_executor(self.workflow, target, **kwargs)

    def requests(self, spec: RequestSpec = None) -> list[WorkflowRequest]:
        """Materialise a request stream from ``spec``.

        ``None`` → the default :class:`WorkloadConfig`; an ``int`` → that
        many requests; a :class:`WorkloadConfig` → as given; a sequence of
        :class:`WorkflowRequest` passes through unchanged.
        """
        if spec is not None and not isinstance(spec, (int, WorkloadConfig)):
            return list(spec)
        if isinstance(spec, int):
            spec = WorkloadConfig(n_requests=spec)
        return generate_requests(
            self.workflow, spec or WorkloadConfig(), seed=self.seed + 1
        )

    def run(
        self,
        policy: str | SizingPolicy = "Janus",
        requests: RequestSpec = None,
        executor: str | Executor | None = None,
    ) -> _t.Any:
        """Serve a stream under one policy and return its :class:`RunResult`."""
        if isinstance(policy, str):
            policy = self.policy(policy)
        return self.executor(executor).run(policy, self.requests(requests))

    def suite(
        self, include: _t.Sequence[str] | None = None, **kwargs: _t.Any
    ) -> dict[str, SizingPolicy]:
        """The standard policy suite (or ``include`` subset) for this session.

        Built through :meth:`policy` so Janus variants reuse the session's
        hints memo, with :func:`assemble_suite`'s shared contract: unknown
        names raise, infeasible/unsupported policies are skipped.
        """
        wanted = list(include) if include is not None else list(DEFAULT_SUITE)
        return assemble_suite(
            wanted, self.registry, lambda name: self.policy(name, **kwargs)
        )

    def compare(
        self,
        include: _t.Sequence[str] | None = None,
        requests: RequestSpec = None,
        executor: str | Executor | None = None,
        baseline: str | None = None,
        suite: _t.Mapping[str, SizingPolicy] | None = None,
    ) -> "ComparisonReport":
        """Run the whole profile → synthesize → serve → compare pipeline.

        Returns a :class:`ComparisonReport` over every buildable policy in
        the suite. ``baseline`` defaults to ``"Optimal"`` when present (the
        paper's normalisation), else the first built policy. A prebuilt
        ``suite`` (e.g. from :meth:`suite`) is served as given — ``include``
        is ignored then, and no policies are rebuilt.
        """
        from .report import ComparisonReport

        if suite is None:
            suite = self.suite(include)
        stream = self.requests(requests)
        backend = self.executor(executor)
        results = run_policies(self.workflow, suite, stream, executor=backend)
        if baseline is None:
            baseline = "Optimal" if "Optimal" in results else next(iter(results))
        elif baseline not in results:
            raise ExperimentError(
                f"baseline {baseline!r} not in suite {sorted(results)}"
            )
        # The report derives its table via the shared compare() contract.
        return ComparisonReport(
            workflow_name=self.workflow.name,
            topology=self.topology,
            slo_ms=self.slo_ms,
            executor=type(backend).__name__,
            baseline=baseline,
            results=results,
        )

    # -- the one-call entry point -------------------------------------------
    @classmethod
    def evaluate(
        cls,
        workflow: Workflow,
        *,
        slo_ms: Milliseconds | None = None,
        budget: BudgetRange | None = None,
        requests: RequestSpec = None,
        include: _t.Sequence[str] | None = None,
        samples: int = _DEFAULT_SAMPLES,
        seed: int = _DEFAULT_SEED,
        profiles: ProfileSet | None = None,
        registry: PolicyRegistry | None = None,
        executor: str | None = None,
        executor_kwargs: _t.Mapping[str, _t.Any] | None = None,
        baseline: str | None = None,
    ) -> "ComparisonReport":
        """Profile, synthesize, serve, and compare — in one call.

        ``Session.evaluate(intelligent_assistant(), slo_ms=3000)`` runs the
        full pipeline on the IA chain; pass a branching workflow and the
        same code path drives the DAG backend instead — or name the
        ``"cluster"`` backend (with ``executor_kwargs`` cluster knobs) to
        measure cold starts, co-location and autoscaling on the DES
        platform.
        """
        session = cls(
            workflow, slo_ms=slo_ms, budget=budget, samples=samples,
            seed=seed, profiles=profiles, registry=registry, executor=executor,
            executor_kwargs=executor_kwargs,
        )
        return session.compare(
            include=include, requests=requests, baseline=baseline
        )
