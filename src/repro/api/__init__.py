"""Unified high-level API: the :class:`Session` facade and its report.

One composable entry point over the chain/DAG dual machinery::

    from repro.api import Session
    report = Session.evaluate(intelligent_assistant(), slo_ms=3000)

See :mod:`repro.api.session` for the full surface.
"""

from .report import ComparisonReport
from .session import Session

__all__ = ["Session", "ComparisonReport"]
