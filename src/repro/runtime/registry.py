"""Executor protocol and registry.

An executor serves a request stream against a workflow under a sizing
policy; every backend exposes the same surface (``run(policy, requests)``)
so callers select one by *name* instead of importing per-topology classes.
The built-ins register themselves on import:

* ``"analytic"`` — sequential trace-driven replay (chains),
* ``"dag"`` — branch-parallel replay (general DAGs),
* ``"batching"`` — size-or-timeout batching front end over the chain,
* ``"cluster"`` — the DES serverless platform (cold starts, co-location
  interference, pending-pod throttling, autoscaling; chains and DAGs).

New backends (multi-tenant frontends, remote drivers, ...) plug in via
:func:`register_executor` and become addressable from
:func:`~repro.runtime.driver.run_policies`, the :class:`~repro.api.Session`
facade, the scenario sweep engine, and experiments without another
parallel API family.

:func:`resolve_executor` auto-selects by :attr:`Workflow.topology` when no
name is given — the one place the chain/DAG split is decided.
"""

from __future__ import annotations

import inspect
import typing as _t

from ..errors import ExperimentError
from ..policies.base import SizingPolicy
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .results import RunResult

__all__ = [
    "Executor",
    "register_executor",
    "executor_names",
    "executor_accepts_option",
    "get_executor",
    "resolve_executor",
]


@_t.runtime_checkable
class Executor(_t.Protocol):
    """What every execution backend must provide."""

    workflow: Workflow

    def run(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> RunResult:
        """Serve a whole stream and collect a :class:`RunResult`."""
        ...  # pragma: no cover - protocol


ExecutorFactory = _t.Callable[..., Executor]

_EXECUTORS: dict[str, ExecutorFactory] = {}


def register_executor(name: str) -> _t.Callable[[ExecutorFactory], ExecutorFactory]:
    """Class/factory decorator adding an executor under ``name``.

    The factory is called as ``factory(workflow, **kwargs)``.
    """

    def deco(factory: ExecutorFactory) -> ExecutorFactory:
        _EXECUTORS[name] = factory
        return factory

    return deco


def executor_names() -> list[str]:
    """Registered executor names, sorted."""
    return sorted(_EXECUTORS)


def executor_accepts_option(name: str, param: str) -> bool:
    """True when the factory registered under ``name`` takes ``param``.

    The capability probe callers use instead of hard-coding backend names
    — e.g. the sweep engine asks ``executor_accepts_option(name,
    "config")`` to decide which backends a :class:`ClusterConfig` may
    reach. A ``**kwargs`` factory counts as accepting everything.
    """
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown executor {name!r}; known: {executor_names()}"
        )
    sig = inspect.signature(factory)
    if param in sig.parameters:
        kind = sig.parameters[param].kind
        return kind not in (
            inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.VAR_POSITIONAL
        )
    return any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in sig.parameters.values()
    )


def get_executor(name: str, workflow: Workflow, **kwargs: _t.Any) -> Executor:
    """Instantiate the executor registered under ``name``."""
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown executor {name!r}; known: {executor_names()}"
        )
    try:
        return factory(workflow, **kwargs)
    except TypeError as exc:
        # A backend/options mismatch (cluster knobs reaching an analytic
        # factory, say) must name the executor and the offending options,
        # not surface as a bare TypeError from deep inside a constructor.
        # Without options there is nothing to mismatch — let a factory's
        # own TypeError propagate untouched rather than misattribute it.
        if not kwargs:
            raise
        raise ExperimentError(
            f"executor {name!r} rejected options {sorted(kwargs)}: {exc}"
        ) from exc


def resolve_executor(
    workflow: Workflow,
    executor: str | Executor | None = None,
    **kwargs: _t.Any,
) -> Executor:
    """Executor for ``workflow``: by name, pass-through, or auto-detected.

    ``None`` selects by :attr:`Workflow.topology` — ``"dag"`` for branching
    workflows, ``"analytic"`` for chains. An already-built executor passes
    through unchanged (``kwargs`` must then be empty).
    """
    if executor is not None and not isinstance(executor, str):
        if kwargs:
            raise ExperimentError(
                f"cannot apply options {sorted(kwargs)} to an already-built "
                f"executor {type(executor).__name__}"
            )
        return executor
    name = executor or ("dag" if workflow.topology == "dag" else "analytic")
    return get_executor(name, workflow, **kwargs)
