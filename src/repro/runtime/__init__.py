"""Execution backends and experiment drivers."""

from .driver import POLICY_ORDER, build_policy_suite, compare, run_policies
from .batching import BatchingExecutor
from .dag_executor import DagAnalyticExecutor
from .executor import AnalyticExecutor
from .results import RunResult

__all__ = [
    "AnalyticExecutor",
    "DagAnalyticExecutor",
    "BatchingExecutor",
    "RunResult",
    "build_policy_suite",
    "run_policies",
    "compare",
    "POLICY_ORDER",
]
