"""Execution backends, the executor registry, and experiment drivers."""

from .registry import (
    Executor,
    executor_names,
    get_executor,
    register_executor,
    resolve_executor,
)
from .batching import BatchingExecutor
from .dag_executor import DagAnalyticExecutor
from .executor import AnalyticExecutor
from .driver import POLICY_ORDER, build_policy_suite, compare, run_policies
from .results import RunResult, collect_policy_extras

__all__ = [
    "Executor",
    "register_executor",
    "executor_names",
    "get_executor",
    "resolve_executor",
    "AnalyticExecutor",
    "DagAnalyticExecutor",
    "BatchingExecutor",
    "RunResult",
    "collect_policy_extras",
    "build_policy_suite",
    "run_policies",
    "compare",
    "POLICY_ORDER",
]
