"""Run results: outcome collections with the paper's summary metrics."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from ..errors import ExperimentError
from ..workflow.request import RequestOutcome

__all__ = ["RunResult", "StreamingRunResult", "collect_policy_extras"]

#: Diagnostic attributes lifted off a policy into ``RunResult.extras``
#: (Janus-style policies expose hit rates / synthesis costs — keep them).
_POLICY_EXTRA_ATTRS = ("hit_rate", "synthesis_seconds")


def collect_policy_extras(policy: _t.Any) -> dict[str, _t.Any]:
    """Per-policy diagnostics every executor attaches to its result."""
    return {
        attr: getattr(policy, attr)
        for attr in _POLICY_EXTRA_ATTRS
        if hasattr(policy, attr)
    }


@dataclass
class RunResult:
    """Outcomes of serving one request stream with one policy."""

    policy_name: str
    outcomes: list[RequestOutcome]
    extras: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ExperimentError(f"{self.policy_name}: no outcomes recorded")

    # -- latency ---------------------------------------------------------------
    def e2e_ms(self) -> np.ndarray:
        """End-to-end latencies of all requests."""
        return np.asarray([o.e2e_ms for o in self.outcomes], dtype=np.float64)

    def e2e_percentile(self, p: float) -> float:
        """Percentile of the end-to-end latency distribution."""
        return float(np.percentile(self.e2e_ms(), p))

    @property
    def violation_rate(self) -> float:
        """Fraction of requests exceeding their SLO."""
        return float(np.mean([not o.slo_met for o in self.outcomes]))

    def slacks(self) -> np.ndarray:
        """Per-request slack ``1 - l/T``."""
        return np.asarray([o.slack for o in self.outcomes], dtype=np.float64)

    # -- resources ----------------------------------------------------------
    def allocated(self) -> np.ndarray:
        """Per-request total allocated millicores (the Fig. 5 metric)."""
        return np.asarray(
            [o.allocated_millicores for o in self.outcomes], dtype=np.float64
        )

    @property
    def mean_allocated(self) -> float:
        """Average allocated millicores per request."""
        return float(self.allocated().mean())

    @property
    def mean_millicore_ms(self) -> float:
        """Average resource-time product per request."""
        return float(np.mean([o.millicore_ms for o in self.outcomes]))

    def normalized_cpu(self, baseline: "RunResult") -> float:
        """Mean allocation normalised by a baseline (the paper normalises by
        Optimal)."""
        denom = baseline.mean_allocated
        if denom <= 0:
            raise ExperimentError("baseline has zero mean allocation")
        return self.mean_allocated / denom

    def reduction_vs(self, other: "RunResult", baseline: "RunResult") -> float:
        """Paper Table I metric: resource reduction of *self* vs. *other*,
        normalised by ``baseline`` (Optimal):
        ``(other - self) / baseline``, as a fraction."""
        denom = baseline.mean_allocated
        if denom <= 0:
            raise ExperimentError("baseline has zero mean allocation")
        return (other.mean_allocated - self.mean_allocated) / denom

    # -- presentation ---------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Headline metrics as a plain dict."""
        return {
            "mean_allocated_millicores": self.mean_allocated,
            "p50_e2e_ms": self.e2e_percentile(50),
            "p99_e2e_ms": self.e2e_percentile(99),
            "violation_rate": self.violation_rate,
            "mean_slack": float(self.slacks().mean()),
        }


@dataclass(frozen=True)
class StreamingRunResult:
    """Aggregate of serving one stream without retaining the outcomes.

    The bounded-memory counterpart of :class:`RunResult` for very large
    streams: per-request metrics were folded into streaming estimators
    (:mod:`repro.metrics.streaming`) as the stream was served, so only the
    aggregates survive. Percentiles are P² *estimates* (within a fraction
    of a percent of the exact order statistics at sweep-scale streams).
    Duck-types the slice of :class:`RunResult` that
    :func:`repro.runtime.driver.compare` consumes — ``summary()``,
    ``mean_allocated``, ``normalized_cpu`` — so streaming and exact
    results are interchangeable in comparison tables.
    """

    policy_name: str
    n_requests: int
    mean_allocated: float
    p50_e2e_ms: float
    p99_e2e_ms: float
    violation_rate: float
    mean_slack: float
    extras: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ExperimentError(f"{self.policy_name}: no outcomes recorded")

    def normalized_cpu(
        self, baseline: "RunResult | StreamingRunResult"
    ) -> float:
        """Mean allocation normalised by a baseline (paper: Optimal)."""
        denom = baseline.mean_allocated
        if denom <= 0:
            raise ExperimentError("baseline has zero mean allocation")
        return self.mean_allocated / denom

    def summary(self) -> dict[str, float]:
        """Headline metrics, same keys as :meth:`RunResult.summary`."""
        return {
            "mean_allocated_millicores": self.mean_allocated,
            "p50_e2e_ms": self.p50_e2e_ms,
            "p99_e2e_ms": self.p99_e2e_ms,
            "violation_rate": self.violation_rate,
            "mean_slack": self.mean_slack,
        }
