"""Run results: outcome collections with the paper's summary metrics."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from ..errors import ExperimentError
from ..workflow.request import RequestOutcome, StageRecord

__all__ = [
    "OutcomeColumns",
    "RunResult",
    "ColumnarRunResult",
    "StreamingRunResult",
    "collect_policy_extras",
]

#: Diagnostic attributes lifted off a policy into ``RunResult.extras``
#: (Janus-style policies expose hit rates / synthesis costs — keep them).
_POLICY_EXTRA_ATTRS = ("hit_rate", "synthesis_seconds")


def collect_policy_extras(policy: _t.Any) -> dict[str, _t.Any]:
    """Per-policy diagnostics every executor attaches to its result."""
    return {
        attr: getattr(policy, attr)
        for attr in _POLICY_EXTRA_ATTRS
        if hasattr(policy, attr)
    }


@dataclass
class OutcomeColumns:
    """Column-wise stage records for one served batch (the batched
    executors' native output format).

    ``functions`` holds the node names in execution (chain/topological)
    order, shared by every row; the stage axis of the 2-D arrays follows
    it. ``order`` is the per-request stable argsort of ``ends`` for DAG
    executors (whose scalar reference sorts stages by completion time);
    ``None`` for chains, where execution order *is* completion order.

    Every derived metric reproduces the corresponding
    :class:`~repro.workflow.request.RequestOutcome` property bit-exactly:
    float reductions accumulate sequentially in the scalar path's stage
    order instead of using pairwise ``np.sum``.
    """

    request_ids: np.ndarray  # int64[n]
    arrivals: np.ndarray  # float64[n]
    slos: np.ndarray  # float64[n]
    functions: tuple[str, ...]
    sizes: np.ndarray  # int64[n, S]
    starts: np.ndarray  # float64[n, S]
    ends: np.ndarray  # float64[n, S]
    order: np.ndarray | None = None  # int64[n, S] argsort of ends, or None

    @property
    def n(self) -> int:
        """Number of requests in the batch."""
        return int(self.arrivals.size)

    def e2e_ms(self) -> np.ndarray:
        """Per-request end-to-end latency (last completion - arrival)."""
        if self.order is None:
            return self.ends[:, -1] - self.arrivals
        return self.ends.max(axis=1) - self.arrivals

    def slo_met(self) -> np.ndarray:
        """Boolean mask of requests within their SLO."""
        return self.e2e_ms() <= self.slos

    def slacks(self) -> np.ndarray:
        """Per-request slack ``1 - l/T``."""
        return 1.0 - self.e2e_ms() / self.slos

    def allocated(self) -> np.ndarray:
        """Per-request total allocated millicores (int64)."""
        return self.sizes.sum(axis=1)

    def millicore_ms(self) -> np.ndarray:
        """Per-request resource-time product, accumulated sequentially in
        the scalar path's stage order (completion order for DAGs)."""
        sizes, starts, ends = self.sizes, self.starts, self.ends
        if self.order is not None:
            sizes = np.take_along_axis(sizes, self.order, axis=1)
            starts = np.take_along_axis(starts, self.order, axis=1)
            ends = np.take_along_axis(ends, self.order, axis=1)
        acc = np.zeros(self.n, dtype=np.float64)
        for j in range(len(self.functions)):
            acc = acc + sizes[:, j] * (ends[:, j] - starts[:, j])
        return acc

    def to_outcomes(self) -> list[RequestOutcome]:
        """Materialise row-wise :class:`RequestOutcome` records.

        ``.tolist()`` hands exact Python floats/ints to the records, so the
        materialised objects equal the scalar executor's output field by
        field.
        """
        ids = self.request_ids.tolist()
        arrivals = self.arrivals.tolist()
        slos = self.slos.tolist()
        sizes = self.sizes.tolist()
        starts = self.starts.tolist()
        ends = self.ends.tolist()
        order = self.order.tolist() if self.order is not None else None
        num_stages = len(self.functions)
        outcomes = []
        for i in range(self.n):
            if order is None:
                stage_js = range(num_stages)
            else:
                stage_js = order[i]
            stages = [
                StageRecord(
                    function=self.functions[j],
                    size=sizes[i][j],
                    start_ms=starts[i][j],
                    end_ms=ends[i][j],
                )
                for j in stage_js
            ]
            outcomes.append(
                RequestOutcome(
                    request_id=ids[i],
                    arrival_ms=arrivals[i],
                    slo_ms=slos[i],
                    stages=stages,
                )
            )
        return outcomes


@dataclass
class RunResult:
    """Outcomes of serving one request stream with one policy."""

    policy_name: str
    outcomes: list[RequestOutcome]
    extras: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ExperimentError(f"{self.policy_name}: no outcomes recorded")

    # -- latency ---------------------------------------------------------------
    def e2e_ms(self) -> np.ndarray:
        """End-to-end latencies of all requests."""
        return np.asarray([o.e2e_ms for o in self.outcomes], dtype=np.float64)

    def e2e_percentile(self, p: float) -> float:
        """Percentile of the end-to-end latency distribution."""
        return float(np.percentile(self.e2e_ms(), p))

    @property
    def violation_rate(self) -> float:
        """Fraction of requests exceeding their SLO."""
        return float(np.mean([not o.slo_met for o in self.outcomes]))

    def slacks(self) -> np.ndarray:
        """Per-request slack ``1 - l/T``."""
        return np.asarray([o.slack for o in self.outcomes], dtype=np.float64)

    # -- resources ----------------------------------------------------------
    def allocated(self) -> np.ndarray:
        """Per-request total allocated millicores (the Fig. 5 metric)."""
        return np.asarray(
            [o.allocated_millicores for o in self.outcomes], dtype=np.float64
        )

    @property
    def mean_allocated(self) -> float:
        """Average allocated millicores per request."""
        return float(self.allocated().mean())

    @property
    def mean_millicore_ms(self) -> float:
        """Average resource-time product per request."""
        return float(np.mean([o.millicore_ms for o in self.outcomes]))

    def normalized_cpu(self, baseline: "RunResult") -> float:
        """Mean allocation normalised by a baseline (the paper normalises by
        Optimal)."""
        denom = baseline.mean_allocated
        if denom <= 0:
            raise ExperimentError("baseline has zero mean allocation")
        return self.mean_allocated / denom

    def reduction_vs(self, other: "RunResult", baseline: "RunResult") -> float:
        """Paper Table I metric: resource reduction of *self* vs. *other*,
        normalised by ``baseline`` (Optimal):
        ``(other - self) / baseline``, as a fraction."""
        denom = baseline.mean_allocated
        if denom <= 0:
            raise ExperimentError("baseline has zero mean allocation")
        return (other.mean_allocated - self.mean_allocated) / denom

    # -- presentation ---------------------------------------------------------
    def summary(self) -> dict[str, float]:
        """Headline metrics as a plain dict."""
        return {
            "mean_allocated_millicores": self.mean_allocated,
            "p50_e2e_ms": self.e2e_percentile(50),
            "p99_e2e_ms": self.e2e_percentile(99),
            "violation_rate": self.violation_rate,
            "mean_slack": float(self.slacks().mean()),
        }


class ColumnarRunResult(RunResult):
    """A :class:`RunResult` backed by :class:`OutcomeColumns`.

    The batched executors produce columns natively; the row-wise
    ``outcomes`` list most callers never touch is materialised lazily on
    first access. All array-valued metrics read straight off the columns
    (bit-identical to the scalar reductions by construction), so summary
    statistics never pay the materialisation cost.
    """

    def __init__(
        self,
        policy_name: str,
        columns: OutcomeColumns,
        extras: dict[str, _t.Any] | None = None,
    ) -> None:
        self.policy_name = policy_name
        self.columns = columns
        self.extras = extras if extras is not None else {}
        self._outcomes: list[RequestOutcome] | None = None
        if columns.n == 0:
            raise ExperimentError(f"{self.policy_name}: no outcomes recorded")

    @property
    def outcomes(self) -> list[RequestOutcome]:  # type: ignore[override]
        if self._outcomes is None:
            self._outcomes = self.columns.to_outcomes()
        return self._outcomes

    def e2e_ms(self) -> np.ndarray:
        return self.columns.e2e_ms()

    @property
    def violation_rate(self) -> float:
        return float(np.mean(~self.columns.slo_met()))

    def slacks(self) -> np.ndarray:
        return self.columns.slacks()

    def allocated(self) -> np.ndarray:
        return self.columns.allocated().astype(np.float64)

    @property
    def mean_millicore_ms(self) -> float:
        return float(np.mean(self.columns.millicore_ms()))


@dataclass(frozen=True)
class StreamingRunResult:
    """Aggregate of serving one stream without retaining the outcomes.

    The bounded-memory counterpart of :class:`RunResult` for very large
    streams: per-request metrics were folded into streaming estimators
    (:mod:`repro.metrics.streaming`) as the stream was served, so only the
    aggregates survive. Percentiles are P² *estimates* (within a fraction
    of a percent of the exact order statistics at sweep-scale streams).
    Duck-types the slice of :class:`RunResult` that
    :func:`repro.runtime.driver.compare` consumes — ``summary()``,
    ``mean_allocated``, ``normalized_cpu`` — so streaming and exact
    results are interchangeable in comparison tables.
    """

    policy_name: str
    n_requests: int
    mean_allocated: float
    p50_e2e_ms: float
    p99_e2e_ms: float
    violation_rate: float
    mean_slack: float
    extras: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.n_requests < 1:
            raise ExperimentError(f"{self.policy_name}: no outcomes recorded")

    def normalized_cpu(
        self, baseline: "RunResult | StreamingRunResult"
    ) -> float:
        """Mean allocation normalised by a baseline (paper: Optimal)."""
        denom = baseline.mean_allocated
        if denom <= 0:
            raise ExperimentError("baseline has zero mean allocation")
        return self.mean_allocated / denom

    def summary(self) -> dict[str, float]:
        """Headline metrics, same keys as :meth:`RunResult.summary`."""
        return {
            "mean_allocated_millicores": self.mean_allocated,
            "p50_e2e_ms": self.p50_e2e_ms,
            "p99_e2e_ms": self.p99_e2e_ms,
            "violation_rate": self.violation_rate,
            "mean_slack": self.mean_slack,
        }
