"""Experiment driver: build the standard policy suite and compare them.

Both halves resolve through the shared registries: policy names go through
:data:`repro.policies.registry.POLICIES` and executors through
:mod:`repro.runtime.registry`, so custom systems and backends registered by
callers are first-class citizens of every comparison.
"""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError, PolicyError
from ..policies.base import SizingPolicy
from ..policies.registry import DEFAULT_SUITE, POLICIES, PolicyRegistry
from ..profiling.profiles import ProfileSet
from ..synthesis.budget import BudgetRange
from ..types import Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .registry import Executor, resolve_executor
from .results import RunResult

__all__ = [
    "assemble_suite",
    "build_policy_suite",
    "run_policies",
    "compare",
    "POLICY_ORDER",
]

#: Canonical policy order used in the paper's figures (a copy of the policy
#: registry's DEFAULT_SUITE, so legacy in-place edits of this list cannot
#: mutate the registry's canonical suite).
POLICY_ORDER = list(DEFAULT_SUITE)


def assemble_suite(
    wanted: _t.Sequence[str],
    registry: PolicyRegistry,
    build_one: _t.Callable[[str], SizingPolicy],
) -> dict[str, SizingPolicy]:
    """The suite-construction contract, shared by every suite builder.

    Unknown names raise :class:`ExperimentError` up front; policies whose
    builder raises :class:`PolicyError` (infeasible SLO, unsupported
    topology) are skipped, as the paper does when a baseline cannot be
    configured; an empty result is an error.
    """
    unknown = [name for name in wanted if name not in registry]
    if unknown:
        raise ExperimentError(f"unknown policies requested: {unknown}")
    suite: dict[str, SizingPolicy] = {}
    for name in wanted:
        try:
            suite[name] = build_one(name)
        except PolicyError:
            continue
    if not suite:
        raise ExperimentError("no policy could be built for this configuration")
    return suite


def build_policy_suite(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    slo_ms: Milliseconds | None = None,
    include: _t.Sequence[str] | None = None,
    registry: PolicyRegistry | None = None,
) -> dict[str, SizingPolicy]:
    """Instantiate the evaluation's seven systems (or a subset).

    Names resolve through ``registry`` (the shared :data:`POLICIES` by
    default), so suites can include custom registered policies. Policies
    whose offline planning finds the SLO infeasible — or that do not
    support the workflow's topology — are skipped with a note rather than
    aborting the whole comparison.
    """
    registry = registry if registry is not None else POLICIES
    wanted = list(include) if include is not None else list(POLICY_ORDER)
    return assemble_suite(
        wanted,
        registry,
        lambda name: registry.build(
            name, workflow, profiles,
            budget=budget, concurrency=concurrency,
            weight=weight, slo_ms=slo_ms,
        ),
    )


def run_policies(
    workflow: Workflow,
    policies: _t.Mapping[str, SizingPolicy],
    requests: _t.Sequence[WorkflowRequest],
    executor: str | Executor | None = None,
) -> dict[str, RunResult]:
    """Serve the same stream with every policy.

    ``executor`` is a registered backend name, a prebuilt executor, or
    ``None`` to auto-select from the workflow topology.
    """
    backend = resolve_executor(workflow, executor)
    return {name: backend.run(policy, requests) for name, policy in policies.items()}


def compare(
    results: _t.Mapping[str, RunResult],
    baseline: str = "Optimal",
) -> dict[str, dict[str, float]]:
    """Summaries plus CPU normalised by ``baseline`` for every policy."""
    if baseline not in results:
        raise ExperimentError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    out: dict[str, dict[str, float]] = {}
    for name, res in results.items():
        row = res.summary()
        row["normalized_cpu"] = res.normalized_cpu(base)
        out[name] = row
    return out
