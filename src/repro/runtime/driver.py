"""Experiment driver: build the standard policy suite and compare them."""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError, PolicyError
from ..policies.base import SizingPolicy
from ..policies.early_binding import GrandSLAMPlusPolicy, GrandSLAMPolicy
from ..policies.janus import janus, janus_minus, janus_plus
from ..policies.oracle import OraclePolicy
from ..policies.orion import OrionPolicy
from ..profiling.profiles import ProfileSet
from ..synthesis.budget import BudgetRange
from ..types import Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .executor import AnalyticExecutor
from .results import RunResult

__all__ = ["build_policy_suite", "run_policies", "compare"]

#: Canonical policy order used in the paper's figures.
POLICY_ORDER = [
    "Optimal",
    "ORION",
    "Janus-",
    "Janus+",
    "Janus",
    "GrandSLAM+",
    "GrandSLAM",
]


def build_policy_suite(
    workflow: Workflow,
    profiles: ProfileSet,
    budget: BudgetRange | None = None,
    concurrency: int = 1,
    weight: float = 1.0,
    slo_ms: Milliseconds | None = None,
    include: _t.Sequence[str] | None = None,
) -> dict[str, SizingPolicy]:
    """Instantiate the evaluation's seven systems (or a subset).

    Policies whose offline planning finds the SLO infeasible are skipped
    with a note rather than aborting the whole comparison.
    """
    wanted = list(include) if include is not None else list(POLICY_ORDER)
    builders: dict[str, _t.Callable[[], SizingPolicy]] = {
        "Optimal": lambda: OraclePolicy(workflow, slo_ms=slo_ms),
        "ORION": lambda: OrionPolicy(
            workflow, profiles, concurrency=concurrency, slo_ms=slo_ms
        ),
        "GrandSLAM": lambda: GrandSLAMPolicy(
            workflow, profiles, concurrency=concurrency, slo_ms=slo_ms
        ),
        "GrandSLAM+": lambda: GrandSLAMPlusPolicy(
            workflow, profiles, concurrency=concurrency, slo_ms=slo_ms
        ),
        "Janus": lambda: janus(
            workflow, profiles, budget=budget, concurrency=concurrency,
            weight=weight, slo_ms=slo_ms,
        ),
        "Janus-": lambda: janus_minus(
            workflow, profiles, budget=budget, concurrency=concurrency,
            weight=weight, slo_ms=slo_ms,
        ),
        "Janus+": lambda: janus_plus(
            workflow, profiles, budget=budget, concurrency=concurrency,
            weight=weight, slo_ms=slo_ms,
        ),
    }
    unknown = [name for name in wanted if name not in builders]
    if unknown:
        raise ExperimentError(f"unknown policies requested: {unknown}")
    suite: dict[str, SizingPolicy] = {}
    for name in wanted:
        try:
            suite[name] = builders[name]()
        except PolicyError:
            # Infeasible early-binding plan under this SLO — skip, as the
            # paper does when a baseline cannot be configured.
            continue
    if not suite:
        raise ExperimentError("no policy could be built for this configuration")
    return suite


def run_policies(
    workflow: Workflow,
    policies: _t.Mapping[str, SizingPolicy],
    requests: _t.Sequence[WorkflowRequest],
) -> dict[str, RunResult]:
    """Serve the same stream with every policy."""
    executor = AnalyticExecutor(workflow)
    return {name: executor.run(policy, requests) for name, policy in policies.items()}


def compare(
    results: _t.Mapping[str, RunResult],
    baseline: str = "Optimal",
) -> dict[str, dict[str, float]]:
    """Summaries plus CPU normalised by ``baseline`` for every policy."""
    if baseline not in results:
        raise ExperimentError(f"baseline {baseline!r} missing from results")
    base = results[baseline]
    out: dict[str, dict[str, float]] = {}
    for name, res in results.items():
        row = res.summary()
        row["normalized_cpu"] = res.normalized_cpu(base)
        out[name] = row
    return out
