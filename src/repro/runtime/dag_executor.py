"""Trace-driven execution of DAG workflows with parallel branches.

Extends the analytic backend to branching workflows (paper §VII future
work): a function starts as soon as *all* its predecessors finished, runs
concurrently with sibling branches, and the request completes when every
sink has finished. End-to-end latency is therefore the critical-path length
under the realised per-stage durations.

Sizing decisions happen at each function's start time with the elapsed
wall-clock at that moment — the same information a provider-side adapter
would have. Registered as ``"dag"`` — the auto-selected backend for
branching workflows; on a chain it degenerates to exactly the analytic
backend's sequential replay.
"""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError
from ..policies.base import SizingPolicy
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .registry import register_executor
from .results import RunResult, collect_policy_extras

__all__ = ["DagAnalyticExecutor"]


@register_executor("dag")
class DagAnalyticExecutor:
    """Replays request streams through a DAG under a sizing policy."""

    def __init__(self, workflow: Workflow, clamp_sizes: bool = True) -> None:
        self.workflow = workflow
        self.clamp_sizes = bool(clamp_sizes)

    def run_request(
        self, policy: SizingPolicy, request: WorkflowRequest
    ) -> RequestOutcome:
        """Serve one request; returns its outcome (stages sorted by end)."""
        dag = self.workflow.dag
        limits = self.workflow.limits
        policy.bind(self.workflow)
        policy.begin_request(request)
        end_times: dict[str, float] = {}
        stages: list[StageRecord] = []
        # Topological order guarantees predecessors are resolved first.
        for fname in dag.nodes:
            preds = dag.predecessors(fname)
            start_offset = max((end_times[p] for p in preds), default=0.0)
            size = policy.size_for_node(fname, request, start_offset)
            if self.clamp_sizes:
                size = limits.clamp(size)
            elif not limits.contains(size):
                raise ExperimentError(
                    f"{policy.name}: size {size} off-grid for {fname}"
                )
            model = self.workflow.model(fname)
            exec_ms = model.execution_time(
                size, request.dynamics_for(fname), request.concurrency
            )
            end_times[fname] = start_offset + exec_ms
            stages.append(
                StageRecord(
                    function=fname,
                    size=size,
                    start_ms=request.arrival_ms + start_offset,
                    end_ms=request.arrival_ms + end_times[fname],
                )
            )
        policy.end_request(request)
        stages.sort(key=lambda s: s.end_ms)
        return RequestOutcome(
            request_id=request.request_id,
            arrival_ms=request.arrival_ms,
            slo_ms=request.slo_ms,
            stages=stages,
        )

    def run(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> RunResult:
        """Serve a whole stream and collect a :class:`RunResult`."""
        if not requests:
            raise ExperimentError("request stream is empty")
        outcomes = [self.run_request(policy, r) for r in requests]
        return RunResult(
            policy_name=policy.name,
            outcomes=outcomes,
            extras=collect_policy_extras(policy),
        )
