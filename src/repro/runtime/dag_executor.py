"""Trace-driven execution of DAG workflows with parallel branches.

Extends the analytic backend to branching workflows (paper §VII future
work): a function starts as soon as *all* its predecessors finished, runs
concurrently with sibling branches, and the request completes when every
sink has finished. End-to-end latency is therefore the critical-path length
under the realised per-stage durations.

Sizing decisions happen at each function's start time with the elapsed
wall-clock at that moment — the same information a provider-side adapter
would have. Like the chain backend, the hot path is batched: each node is
evaluated across the whole request stream along topological order, with
start offsets folded as an elementwise maximum over predecessor completion
arrays; stage records are materialised column-wise with a per-request
stable completion-order permutation (the scalar reference sorts stages by
end time). Registered as ``"dag"`` — the auto-selected backend for
branching workflows; on a chain it degenerates to exactly the analytic
backend's sequential replay.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import ExperimentError
from ..policies.base import SizingPolicy
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .executor import _dynamics_columns, _request_columns, _run_hooks
from .registry import register_executor
from .results import (
    ColumnarRunResult,
    OutcomeColumns,
    RunResult,
    collect_policy_extras,
)

__all__ = ["DagAnalyticExecutor"]


@register_executor("dag")
class DagAnalyticExecutor:
    """Replays request streams through a DAG under a sizing policy."""

    def __init__(self, workflow: Workflow, clamp_sizes: bool = True) -> None:
        self.workflow = workflow
        self.clamp_sizes = bool(clamp_sizes)

    # -- scalar reference --------------------------------------------------
    def run_request(
        self, policy: SizingPolicy, request: WorkflowRequest
    ) -> RequestOutcome:
        """Serve one request; returns its outcome (stages sorted by end).

        Scalar reference implementation for the batched path (and the
        entry point for one-off serving and direct tests).
        """
        policy.bind(self.workflow)
        return self._serve_one(policy, request)

    def _serve_one(
        self, policy: SizingPolicy, request: WorkflowRequest
    ) -> RequestOutcome:
        """Scalar serving loop; assumes the policy is already bound."""
        dag = self.workflow.dag
        limits = self.workflow.limits
        policy.begin_request(request)
        end_times: dict[str, float] = {}
        stages: list[StageRecord] = []
        # Topological order guarantees predecessors are resolved first.
        for fname in dag.nodes:
            preds = dag.predecessors(fname)
            start_offset = max((end_times[p] for p in preds), default=0.0)
            size = policy.size_for_node(fname, request, start_offset)
            if self.clamp_sizes:
                size = limits.clamp(size)
            elif not limits.contains(size):
                raise ExperimentError(
                    f"{policy.name}: size {size} off-grid for {fname}"
                )
            model = self.workflow.model(fname)
            exec_ms = model.execution_time(
                size, request.dynamics_for(fname), request.concurrency
            )
            end_times[fname] = start_offset + exec_ms
            stages.append(
                StageRecord(
                    function=fname,
                    size=size,
                    start_ms=request.arrival_ms + start_offset,
                    end_ms=request.arrival_ms + end_times[fname],
                )
            )
        policy.end_request(request)
        stages.sort(key=lambda s: s.end_ms)
        return RequestOutcome(
            request_id=request.request_id,
            arrival_ms=request.arrival_ms,
            slo_ms=request.slo_ms,
            stages=stages,
        )

    # -- batched core ------------------------------------------------------
    def _serve_batch(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> OutcomeColumns:
        """Serve a batch node-by-node along topological order."""
        dag = self.workflow.dag
        limits = self.workflow.limits
        n = len(requests)
        _run_hooks(policy, requests, "begin_request")
        ids, arrivals, slos, concurrencies = _request_columns(requests)
        nodes = tuple(dag.nodes)
        sizes = np.empty((n, len(nodes)), dtype=np.int64)
        starts = np.empty((n, len(nodes)), dtype=np.float64)
        ends = np.empty((n, len(nodes)), dtype=np.float64)
        end_offsets: dict[str, np.ndarray] = {}
        for j, fname in enumerate(nodes):
            preds = dag.predecessors(fname)
            if preds:
                start_offset = end_offsets[preds[0]]
                for p in preds[1:]:
                    start_offset = np.maximum(start_offset, end_offsets[p])
            else:
                start_offset = np.zeros(n, dtype=np.float64)
            ks = np.asarray(
                policy.sizes_for_node(fname, requests, start_offset),
                dtype=np.int64,
            )
            if self.clamp_sizes:
                ks = limits.clamp_array(ks)
            else:
                on_grid = limits.contains_array(ks)
                if not bool(on_grid.all()):
                    bad = int(ks[np.flatnonzero(~on_grid)[0]])
                    raise ExperimentError(
                        f"{policy.name}: size {bad} off-grid for {fname}"
                    )
            worksets, noise_zs, interferences = _dynamics_columns(
                requests, fname
            )
            exec_ms = self.workflow.model(fname).execution_times(
                ks, worksets, noise_zs, interferences, concurrencies
            )
            end_offset = start_offset + exec_ms
            end_offsets[fname] = end_offset
            sizes[:, j] = ks
            starts[:, j] = arrivals + start_offset
            ends[:, j] = arrivals + end_offset
        _run_hooks(policy, requests, "end_request")
        # Stable argsort matches the scalar reference's stable stage sort
        # (ties keep topological order).
        order = np.argsort(ends, axis=1, kind="stable")
        return OutcomeColumns(
            request_ids=ids,
            arrivals=arrivals,
            slos=slos,
            functions=nodes,
            sizes=sizes,
            starts=starts,
            ends=ends,
            order=order,
        )

    # -- public API --------------------------------------------------------
    def run(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> RunResult:
        """Serve a whole stream and collect a :class:`RunResult`."""
        if not requests:
            raise ExperimentError("request stream is empty")
        policy.bind(self.workflow)
        if not policy.vector_safe:
            outcomes = [self._serve_one(policy, r) for r in requests]
            return RunResult(
                policy_name=policy.name,
                outcomes=outcomes,
                extras=collect_policy_extras(policy),
            )
        return ColumnarRunResult(
            policy_name=policy.name,
            columns=self._serve_batch(policy, requests),
            extras=collect_policy_extras(policy),
        )
