"""Dynamic request batching in front of a workflow.

The paper's concurrency dimension (batch sizes 1-3, Fig. 4/5b) assumes a
batching front end like GrandSLAM's [41] or BATCH's [29]: requests arriving
close together coalesce into one batch that traverses the chain as a unit,
trading queueing delay for per-request efficiency. This module implements
that front end for the analytic backend:

* a batch dispatches when it reaches ``max_batch`` requests or when its
  oldest member has waited ``max_wait_ms`` (classic size-or-timeout rule);
* each stage of a batch runs once at the batch's concurrency; its duration
  is the *slowest member's* execution time (the batch completes together);
* sizing decisions see the *oldest* member's elapsed time — the most
  SLO-constrained request governs the allocation;
* per-request end-to-end latency includes the queue wait, and per-request
  resource accounting amortises the batch's allocation over its members.
"""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError
from ..policies.base import SizingPolicy
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .registry import register_executor
from .results import RunResult, collect_policy_extras

__all__ = ["BatchingExecutor"]


@register_executor("batching")
class BatchingExecutor:
    """Analytic executor with a size-or-timeout batching front end."""

    def __init__(
        self,
        workflow: Workflow,
        max_batch: int | None = None,
        max_wait_ms: float = 200.0,
    ) -> None:
        max_batch = int(
            max_batch if max_batch is not None else workflow.max_concurrency
        )
        if max_batch < 1:
            raise ExperimentError(f"max_batch must be >= 1, got {max_batch}")
        if max_batch > 1:
            non_batchable = [
                n for n in workflow.chain if not workflow.model(n).batchable
            ]
            if non_batchable:
                raise ExperimentError(
                    f"batching requires batchable functions; {non_batchable} "
                    f"are not (paper: VA is pinned to concurrency 1)"
                )
        if max_wait_ms < 0:
            raise ExperimentError(f"max_wait must be >= 0, got {max_wait_ms}")
        self.workflow = workflow
        self.max_batch = max_batch
        self.max_wait_ms = float(max_wait_ms)

    # ------------------------------------------------------------------
    def form_batches(
        self, requests: _t.Sequence[WorkflowRequest]
    ) -> list[list[WorkflowRequest]]:
        """Greedy size-or-timeout batching over the arrival sequence."""
        ordered = sorted(requests, key=lambda r: r.arrival_ms)
        batches: list[list[WorkflowRequest]] = []
        current: list[WorkflowRequest] = []
        for req in ordered:
            if not current:
                current = [req]
                continue
            window_closes = current[0].arrival_ms + self.max_wait_ms
            if len(current) < self.max_batch and req.arrival_ms <= window_closes:
                current.append(req)
            else:
                batches.append(current)
                current = [req]
        if current:
            batches.append(current)
        return batches

    def _run_batch(
        self, policy: SizingPolicy, batch: list[WorkflowRequest]
    ) -> list[RequestOutcome]:
        chain = self.workflow.chain
        limits = self.workflow.limits
        policy.bind(self.workflow)
        oldest = batch[0]
        # Dispatch when full, or when the oldest member's wait expires.
        if len(batch) == self.max_batch:
            dispatch = max(r.arrival_ms for r in batch)
        else:
            dispatch = oldest.arrival_ms + self.max_wait_ms

        for req in batch:
            policy.begin_request(req)
        elapsed = dispatch - oldest.arrival_ms  # oldest member's clock
        stage_records: list[list[StageRecord]] = [[] for _ in batch]
        now = dispatch
        for fname in chain:
            size = limits.clamp(policy.size_for_node(fname, oldest, elapsed))
            model = self.workflow.model(fname)
            # The batch finishes a stage when its slowest member does.
            exec_ms = max(
                model.execution_time(
                    size, req.dynamics_for(fname), concurrency=len(batch)
                )
                for req in batch
            )
            for records in stage_records:
                records.append(
                    StageRecord(
                        function=fname, size=size,
                        start_ms=now, end_ms=now + exec_ms,
                    )
                )
            now += exec_ms
            elapsed += exec_ms
        for req in batch:
            policy.end_request(req)
        return [
            RequestOutcome(
                request_id=req.request_id,
                arrival_ms=req.arrival_ms,
                slo_ms=req.slo_ms,
                stages=records,
            )
            for req, records in zip(batch, stage_records)
        ]

    def run(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> RunResult:
        """Serve a stream through the batching front end."""
        if not requests:
            raise ExperimentError("request stream is empty")
        batches = self.form_batches(requests)
        outcomes: list[RequestOutcome] = []
        amortized: list[float] = []
        for batch in batches:
            batch_outcomes = self._run_batch(policy, batch)
            outcomes.extend(batch_outcomes)
            share = batch_outcomes[0].allocated_millicores / len(batch)
            amortized.extend([share] * len(batch))
        outcomes.sort(key=lambda o: o.request_id)
        mean_batch = len(requests) / len(batches)
        return RunResult(
            policy_name=policy.name,
            outcomes=outcomes,
            extras={
                **collect_policy_extras(policy),
                "mean_batch_size": mean_batch,
                "num_batches": len(batches),
                "mean_amortized_millicores": sum(amortized) / len(amortized),
            },
        )
