"""Trace-driven (analytic) execution backend.

Serves a request stream against a workflow under a sizing policy. Every
request's stage randomness was drawn when the stream was generated, so the
backend is deterministic given (workflow, requests) and every policy sees
identical dynamics — the apples-to-apples comparison the paper's evaluation
relies on.

The hot path is batched: :meth:`AnalyticExecutor.run` evaluates each chain
stage across the *whole* request stream with one vectorised policy lookup
(:meth:`~repro.policies.base.SizingPolicy.sizes_for_node`) and one array
latency-model evaluation, materialising stage records column-wise
(:class:`~repro.runtime.results.OutcomeColumns`). The scalar
:meth:`~AnalyticExecutor.run_request` survives as the reference
implementation — the batched path is pinned bit-identical to it by the
property suite in ``tests/test_vector_exec.py``. Policies whose decisions
depend on call interleaving across requests set ``vector_safe = False`` to
keep the request-major scalar order.

This backend models per-request latency exactly and resource consumption as
the per-stage allocations (the paper's CPU-millicore metric); queueing and
co-location effects are the domain of the DES cluster backend
(:mod:`repro.cluster`). Registered as ``"analytic"`` — the auto-selected
backend for chain workflows.
"""

from __future__ import annotations

import itertools
import typing as _t

import numpy as np

from ..errors import ExperimentError
from ..metrics.streaming import StreamingMoments, StreamingSummary
from ..policies.base import SizingPolicy
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .registry import register_executor
from .results import (
    ColumnarRunResult,
    OutcomeColumns,
    RunResult,
    StreamingRunResult,
    collect_policy_extras,
)

__all__ = ["AnalyticExecutor", "DEFAULT_STREAM_CHUNK"]

#: Requests per batch on the streaming path: large enough to amortise the
#: per-stage vector dispatch, small enough to keep memory O(1) in the
#: stream length.
DEFAULT_STREAM_CHUNK = 2048


def _dynamics_columns(
    requests: _t.Sequence[WorkflowRequest], fname: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-invocation dynamics of one stage as aligned arrays."""
    dyns = [r.dynamics_for(fname) for r in requests]
    return (
        np.asarray([d.workset for d in dyns], dtype=np.float64),
        np.asarray([d.noise_z for d in dyns], dtype=np.float64),
        np.asarray([d.interference for d in dyns], dtype=np.float64),
    )


def _request_columns(
    requests: _t.Sequence[WorkflowRequest],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(ids, arrivals, slos, concurrencies) of a batch as arrays."""
    return (
        np.asarray([r.request_id for r in requests], dtype=np.int64),
        np.asarray([r.arrival_ms for r in requests], dtype=np.float64),
        np.asarray([r.slo_ms for r in requests], dtype=np.float64),
        np.asarray([r.concurrency for r in requests], dtype=np.int64),
    )


def _run_hooks(
    policy: SizingPolicy,
    requests: _t.Sequence[WorkflowRequest],
    hook: str,
) -> None:
    """Fire begin/end hooks for a batch, skipping un-overridden no-ops."""
    if getattr(type(policy), hook) is getattr(SizingPolicy, hook):
        return
    bound = getattr(policy, hook)
    for request in requests:
        bound(request)


@register_executor("analytic")
class AnalyticExecutor:
    """Replays request streams under a policy, stage-batched across requests."""

    def __init__(self, workflow: Workflow, clamp_sizes: bool = True) -> None:
        self.workflow = workflow
        self.clamp_sizes = bool(clamp_sizes)

    # -- scalar reference --------------------------------------------------
    def run_request(
        self, policy: SizingPolicy, request: WorkflowRequest
    ) -> RequestOutcome:
        """Serve one request; returns its outcome record.

        This is the scalar reference implementation the batched path is
        pinned against (and the entry point for one-off serving, e.g. the
        batching executor and direct tests).
        """
        policy.bind(self.workflow)
        return self._serve_one(policy, request)

    def _serve_one(
        self, policy: SizingPolicy, request: WorkflowRequest
    ) -> RequestOutcome:
        """Scalar serving loop; assumes the policy is already bound."""
        chain = self.workflow.chain
        limits = self.workflow.limits
        policy.begin_request(request)
        elapsed = 0.0
        stages: list[StageRecord] = []
        for fname in chain:
            size = policy.size_for_node(fname, request, elapsed)
            if self.clamp_sizes:
                size = limits.clamp(size)
            elif not limits.contains(size):
                raise ExperimentError(
                    f"{policy.name}: size {size} off-grid for stage {fname}"
                )
            model = self.workflow.model(fname)
            exec_ms = model.execution_time(
                size, request.dynamics_for(fname), request.concurrency
            )
            start = request.arrival_ms + elapsed
            stages.append(
                StageRecord(
                    function=fname,
                    size=size,
                    start_ms=start,
                    end_ms=start + exec_ms,
                )
            )
            elapsed += exec_ms
        policy.end_request(request)
        return RequestOutcome(
            request_id=request.request_id,
            arrival_ms=request.arrival_ms,
            slo_ms=request.slo_ms,
            stages=stages,
        )

    # -- batched core ------------------------------------------------------
    def _serve_batch(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> OutcomeColumns:
        """Serve a batch with per-stage vector policy/model evaluation.

        Assumes the policy is bound and ``vector_safe``. Hooks fire
        begin-all / stage-major / end-all; for order-free policies this is
        indistinguishable from the scalar request-major order.
        """
        chain = self.workflow.chain
        limits = self.workflow.limits
        n = len(requests)
        _run_hooks(policy, requests, "begin_request")
        ids, arrivals, slos, concurrencies = _request_columns(requests)
        num_stages = len(chain)
        sizes = np.empty((n, num_stages), dtype=np.int64)
        starts = np.empty((n, num_stages), dtype=np.float64)
        ends = np.empty((n, num_stages), dtype=np.float64)
        elapsed = np.zeros(n, dtype=np.float64)
        for j, fname in enumerate(chain):
            ks = np.asarray(
                policy.sizes_for_node(fname, requests, elapsed), dtype=np.int64
            )
            if self.clamp_sizes:
                ks = limits.clamp_array(ks)
            else:
                on_grid = limits.contains_array(ks)
                if not bool(on_grid.all()):
                    bad = int(ks[np.flatnonzero(~on_grid)[0]])
                    raise ExperimentError(
                        f"{policy.name}: size {bad} off-grid for stage {fname}"
                    )
            worksets, noise_zs, interferences = _dynamics_columns(
                requests, fname
            )
            exec_ms = self.workflow.model(fname).execution_times(
                ks, worksets, noise_zs, interferences, concurrencies
            )
            start = arrivals + elapsed
            sizes[:, j] = ks
            starts[:, j] = start
            ends[:, j] = start + exec_ms
            elapsed = elapsed + exec_ms
        _run_hooks(policy, requests, "end_request")
        return OutcomeColumns(
            request_ids=ids,
            arrivals=arrivals,
            slos=slos,
            functions=tuple(chain),
            sizes=sizes,
            starts=starts,
            ends=ends,
        )

    # -- public API --------------------------------------------------------
    def run(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> RunResult:
        """Serve a whole stream and collect a :class:`RunResult`."""
        if not requests:
            raise ExperimentError("request stream is empty")
        policy.bind(self.workflow)
        if not policy.vector_safe:
            outcomes = [self._serve_one(policy, r) for r in requests]
            return RunResult(
                policy_name=policy.name,
                outcomes=outcomes,
                extras=collect_policy_extras(policy),
            )
        return ColumnarRunResult(
            policy_name=policy.name,
            columns=self._serve_batch(policy, requests),
            extras=collect_policy_extras(policy),
        )

    def run_streaming(
        self,
        policy: SizingPolicy,
        requests: _t.Iterable[WorkflowRequest],
        chunk_size: int = DEFAULT_STREAM_CHUNK,
    ) -> StreamingRunResult:
        """Serve a stream folding each outcome into streaming estimators.

        The bounded-memory path for very large ``n_requests``: requests are
        served in fixed-size chunks through the batched core (O(chunk)
        memory, vector throughput) and only the streaming aggregates
        survive. Estimators consume per-request values in arrival order, so
        the result is bit-identical to the per-request scalar fold. Latency
        percentiles in the result are P² estimates (see
        :mod:`repro.metrics.streaming`).
        """
        if chunk_size < 1:
            raise ExperimentError(f"chunk_size must be >= 1, got {chunk_size}")
        policy.bind(self.workflow)
        latency = StreamingSummary((50.0, 99.0))
        cost = StreamingMoments()
        slack = StreamingMoments()
        violations = 0
        n = 0
        if policy.vector_safe:
            iterator = iter(requests)
            while True:
                chunk = list(itertools.islice(iterator, chunk_size))
                if not chunk:
                    break
                columns = self._serve_batch(policy, chunk)
                mets = columns.slo_met().tolist()
                for e2e, alloc, slk, met in zip(
                    columns.e2e_ms().tolist(),
                    columns.allocated().tolist(),
                    columns.slacks().tolist(),
                    mets,
                ):
                    latency.add(e2e)
                    cost.add(alloc)
                    slack.add(slk)
                    violations += not met
                n += len(chunk)
        else:
            for request in requests:
                outcome = self._serve_one(policy, request)
                latency.add(outcome.e2e_ms)
                cost.add(outcome.allocated_millicores)
                slack.add(outcome.slack)
                violations += not outcome.slo_met
                n += 1
        if n == 0:
            raise ExperimentError("request stream is empty")
        return StreamingRunResult(
            policy_name=policy.name,
            n_requests=n,
            mean_allocated=cost.mean,
            p50_e2e_ms=latency.percentile(50.0),
            p99_e2e_ms=latency.percentile(99.0),
            violation_rate=violations / n,
            mean_slack=slack.mean,
            extras=collect_policy_extras(policy),
        )
