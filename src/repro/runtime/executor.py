"""Trace-driven (analytic) execution backend.

Serves a request stream against a workflow under a sizing policy. Every
request's stage randomness was drawn when the stream was generated, so the
backend is deterministic given (workflow, requests) and every policy sees
identical dynamics — the apples-to-apples comparison the paper's evaluation
relies on.

This backend models per-request latency exactly and resource consumption as
the per-stage allocations (the paper's CPU-millicore metric); queueing and
co-location effects are the domain of the DES cluster backend
(:mod:`repro.cluster`). Registered as ``"analytic"`` — the auto-selected
backend for chain workflows.
"""

from __future__ import annotations

import typing as _t

from ..errors import ExperimentError
from ..metrics.streaming import StreamingMoments, StreamingSummary
from ..policies.base import SizingPolicy
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .registry import register_executor
from .results import RunResult, StreamingRunResult, collect_policy_extras

__all__ = ["AnalyticExecutor"]


@register_executor("analytic")
class AnalyticExecutor:
    """Replays request streams under a policy, stage by stage."""

    def __init__(self, workflow: Workflow, clamp_sizes: bool = True) -> None:
        self.workflow = workflow
        self.clamp_sizes = bool(clamp_sizes)

    def run_request(
        self, policy: SizingPolicy, request: WorkflowRequest
    ) -> RequestOutcome:
        """Serve one request; returns its outcome record."""
        chain = self.workflow.chain
        limits = self.workflow.limits
        policy.bind(self.workflow)
        policy.begin_request(request)
        elapsed = 0.0
        stages: list[StageRecord] = []
        for fname in chain:
            size = policy.size_for_node(fname, request, elapsed)
            if self.clamp_sizes:
                size = limits.clamp(size)
            elif not limits.contains(size):
                raise ExperimentError(
                    f"{policy.name}: size {size} off-grid for stage {fname}"
                )
            model = self.workflow.model(fname)
            exec_ms = model.execution_time(
                size, request.dynamics_for(fname), request.concurrency
            )
            start = request.arrival_ms + elapsed
            stages.append(
                StageRecord(
                    function=fname,
                    size=size,
                    start_ms=start,
                    end_ms=start + exec_ms,
                )
            )
            elapsed += exec_ms
        policy.end_request(request)
        return RequestOutcome(
            request_id=request.request_id,
            arrival_ms=request.arrival_ms,
            slo_ms=request.slo_ms,
            stages=stages,
        )

    def run(
        self, policy: SizingPolicy, requests: _t.Sequence[WorkflowRequest]
    ) -> RunResult:
        """Serve a whole stream and collect a :class:`RunResult`."""
        if not requests:
            raise ExperimentError("request stream is empty")
        outcomes = [self.run_request(policy, r) for r in requests]
        return RunResult(
            policy_name=policy.name,
            outcomes=outcomes,
            extras=collect_policy_extras(policy),
        )

    def run_streaming(
        self, policy: SizingPolicy, requests: _t.Iterable[WorkflowRequest]
    ) -> StreamingRunResult:
        """Serve a stream folding each outcome into streaming estimators.

        The bounded-memory path for very large ``n_requests``: outcomes
        are never retained, so memory stays O(1) in the stream length.
        Latency percentiles in the result are P² estimates (see
        :mod:`repro.metrics.streaming`).
        """
        latency = StreamingSummary((50.0, 99.0))
        cost = StreamingMoments()
        slack = StreamingMoments()
        violations = 0
        n = 0
        for request in requests:
            outcome = self.run_request(policy, request)
            latency.add(outcome.e2e_ms)
            cost.add(outcome.allocated_millicores)
            slack.add(outcome.slack)
            violations += not outcome.slo_met
            n += 1
        if n == 0:
            raise ExperimentError("request stream is empty")
        return StreamingRunResult(
            policy_name=policy.name,
            n_requests=n,
            mean_allocated=cost.mean,
            p50_e2e_ms=latency.percentile(50.0),
            p99_e2e_ms=latency.percentile(99.0),
            violation_rate=violations / n,
            mean_slack=slack.mean,
            extras=collect_policy_extras(policy),
        )
