"""Shared value types used across subsystems.

These are deliberately small frozen dataclasses: they cross subsystem
boundaries (profiler -> synthesizer -> adapter) and benefit from being
hashable and immutable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import ConfigError

__all__ = [
    "Millicores",
    "Milliseconds",
    "ResourceLimits",
    "PercentileGrid",
    "DEFAULT_PERCENTILES",
]

#: CPU allocation expressed in millicores (1000 = one core).
Millicores = int

#: Durations and budgets, in milliseconds.
Milliseconds = float


@dataclass(frozen=True)
class ResourceLimits:
    """Allowed CPU sizes for a function instance.

    Mirrors the paper's testbed: functions may be sized from ``kmin`` to
    ``kmax`` millicores in multiples of ``step`` (default 1000..3000 step
    100).
    """

    kmin: Millicores = 1000
    kmax: Millicores = 3000
    step: Millicores = 100

    def __post_init__(self) -> None:
        if self.kmin <= 0 or self.kmax <= 0 or self.step <= 0:
            raise ConfigError(f"resource limits must be positive: {self}")
        if self.kmin > self.kmax:
            raise ConfigError(f"kmin {self.kmin} > kmax {self.kmax}")
        if (self.kmax - self.kmin) % self.step != 0:
            raise ConfigError(
                f"kmax - kmin ({self.kmax - self.kmin}) must be a multiple "
                f"of step ({self.step})"
            )

    @property
    def num_options(self) -> int:
        """Number of discrete sizes in the grid."""
        return (self.kmax - self.kmin) // self.step + 1

    def grid(self) -> np.ndarray:
        """All permissible sizes as an ``int64`` array (ascending)."""
        return np.arange(self.kmin, self.kmax + self.step, self.step, dtype=np.int64)

    def clamp(self, k: Millicores) -> Millicores:
        """Snap ``k`` onto the grid (round to nearest step, clip to range)."""
        snapped = self.kmin + round((k - self.kmin) / self.step) * self.step
        return int(min(self.kmax, max(self.kmin, snapped)))

    def contains(self, k: Millicores) -> bool:
        """True when ``k`` is exactly one of the grid sizes."""
        return (
            self.kmin <= k <= self.kmax and (k - self.kmin) % self.step == 0
        )

    def clamp_array(self, ks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`clamp` (``np.rint`` rounds half-to-even like
        Python's ``round``, so each element matches the scalar exactly)."""
        ks = np.asarray(ks, dtype=np.float64)
        snapped = self.kmin + np.rint((ks - self.kmin) / self.step) * self.step
        return np.clip(snapped, self.kmin, self.kmax).astype(np.int64)

    def contains_array(self, ks: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` — boolean mask over ``ks``."""
        ks = np.asarray(ks, dtype=np.int64)
        return (
            (ks >= self.kmin)
            & (ks <= self.kmax)
            & ((ks - self.kmin) % self.step == 0)
        )


def _default_percentiles() -> tuple[float, ...]:
    # Paper §III-B: "percentiles ranging from 1% to 99% with a step of 5%".
    # We take 1, 5, 10, ..., 95 plus the P99 anchor used for SLO math.
    return (1.0,) + tuple(float(p) for p in range(5, 100, 5)) + (99.0,)


DEFAULT_PERCENTILES: tuple[float, ...] = _default_percentiles()


@dataclass(frozen=True)
class PercentileGrid:
    """Ordered set of percentiles used by the profiler and synthesizer.

    Always contains the anchor percentile (P99 by default) used for SLO
    calculations; the anchor can be raised (e.g. 99.9) for stricter SLOs as
    described in paper §III-B.
    """

    percentiles: tuple[float, ...] = field(default_factory=_default_percentiles)
    anchor: float = 99.0

    def __post_init__(self) -> None:
        ps = tuple(float(p) for p in self.percentiles)
        if not ps:
            raise ConfigError("percentile grid may not be empty")
        if any(not (0.0 < p < 100.0) for p in ps):
            raise ConfigError(f"percentiles must lie in (0, 100): {ps}")
        if tuple(sorted(ps)) != ps:
            raise ConfigError("percentiles must be strictly ascending")
        if len(set(ps)) != len(ps):
            raise ConfigError("percentiles must be unique")
        if self.anchor not in ps:
            raise ConfigError(
                f"anchor percentile {self.anchor} must be in the grid"
            )
        object.__setattr__(self, "percentiles", ps)

    def __len__(self) -> int:
        return len(self.percentiles)

    def __iter__(self):
        return iter(self.percentiles)

    def index_of(self, p: float) -> int:
        """Index of percentile ``p`` in the grid (exact match required)."""
        try:
            return self.percentiles.index(float(p))
        except ValueError:
            raise ConfigError(f"percentile {p} not in grid {self.percentiles}")

    @property
    def anchor_index(self) -> int:
        """Index of the anchor (SLO) percentile."""
        return self.index_of(self.anchor)

    def below_anchor(self) -> tuple[float, ...]:
        """Percentiles strictly below the anchor (candidates for heads)."""
        return tuple(p for p in self.percentiles if p < self.anchor)

    def as_array(self) -> np.ndarray:
        """Grid as a float64 array."""
        return np.asarray(self.percentiles, dtype=np.float64)
