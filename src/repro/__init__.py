"""Janus: bilaterally engaged runtime resource adaptation for serverless
workflows — a full reproduction of the IPDPS 2025 paper.

Quickstart
----------
The :class:`Session` facade runs the whole developer/provider pipeline —
profile → synthesize → policy → serve → compare — in one call, for chains
and branching DAGs alike:

>>> from repro import Session, intelligent_assistant
>>> report = Session.evaluate(intelligent_assistant(), slo_ms=3000)
>>> report.violation_rate("Janus") <= 0.01
True
>>> report.normalized_cpu("Janus") < report.normalized_cpu("GrandSLAM")
True

Step-by-step control over the same pipeline:

>>> session = Session(intelligent_assistant(), slo_ms=3000)
>>> profiles = session.profile()
>>> hints = session.synthesize()
>>> result = session.run("Janus", requests=500)
>>> result.violation_rate <= 0.01
True

New systems plug into the shared registries instead of spawning parallel
API families: policies by name through :data:`POLICIES`
(``POLICIES.register("MyPolicy")(builder)``) and execution backends through
:func:`register_executor` (``analytic``, ``dag``, ``batching`` and the DES
``cluster`` platform ship built in; the analytic pair is auto-selected
from :attr:`Workflow.topology`).

The package splits along the paper's developer/provider boundary:

* developer side (offline): :mod:`repro.profiling`, :mod:`repro.synthesis`
* provider side (online): :mod:`repro.adapter`, :mod:`repro.cluster`
* shared substrate: :mod:`repro.workflow`, :mod:`repro.functions`,
  :mod:`repro.traces`, :mod:`repro.sim`
* evaluation: :mod:`repro.policies`, :mod:`repro.runtime`,
  :mod:`repro.metrics`, :mod:`repro.experiments`, :mod:`repro.scenarios`
* high-level facade: :mod:`repro.api`

Broad scenario coverage goes through :class:`ScenarioMatrix` /
:class:`SweepRunner` — a declarative arrival x topology x SLO x tenant
product executed on a process pool with bit-reproducible results.
"""

import typing as _t
import warnings as _warnings

from .adapter import AdapterService, HitMissSupervisor, JanusAdapter
from .api import ComparisonReport, Session
from .cluster import (
    ClusterConfig,
    InterferenceModel,
    MultiTenantPlatform,
    ServerlessPlatform,
    TenantJob,
)
from .errors import ReproError
from .functions import FunctionModel, InvocationDynamics, Resource
from .profiling import (
    LatencyProfile,
    Profiler,
    ProfilerConfig,
    ProfileSet,
    load_profile_set,
    profile_workflow,
    save_profile_set,
)
from .policies import (
    DEFAULT_SUITE,
    GrandSLAMPlusPolicy,
    GrandSLAMPolicy,
    JanusPolicy,
    OraclePolicy,
    OrionPolicy,
    POLICIES,
    PolicyRegistry,
    SizingPolicy,
    janus,
    janus_minus,
    janus_plus,
)
from .runtime import (
    AnalyticExecutor,
    BatchingExecutor,
    Executor,
    RunResult,
    build_policy_suite,
    compare,
    executor_names,
    get_executor,
    register_executor,
    resolve_executor,
    run_policies,
)
from .scenarios import (
    Scenario,
    ScenarioMatrix,
    SweepReport,
    SweepRunner,
    run_scenario,
)
from .synthesis import (
    BudgetRange,
    CondensedHintsTable,
    HeadExploration,
    HintSynthesizer,
    SynthesisConfig,
    WorkflowHints,
    synthesize_hints,
)
from .traces import (
    ArrivalSpec,
    DiurnalRate,
    PopularityMix,
    WorkloadConfig,
    WorkloadTrace,
    generate_requests,
    generate_workload_trace,
    load_trace,
    save_trace,
    trace_from_requests,
)
from .types import PercentileGrid, ResourceLimits
from .workflow import (
    RequestOutcome,
    Workflow,
    WorkflowDAG,
    WorkflowRequest,
    chain_dag,
    intelligent_assistant,
    parse_spec,
    video_analytics,
)

__version__ = "1.2.0"

#: Pre-unification names kept importable from the top level. Accessing one
#: emits a DeprecationWarning pointing at the unified replacement; the
#: aliases are scheduled for removal two minor releases out (see
#: CHANGES.md). The canonical classes remain importable from their
#: submodules without a warning. Deliberately absent from ``__all__`` so a
#: ``from repro import *`` of non-deprecated names stays warning-free.
_DEPRECATED_ALIASES: dict[str, tuple[str, str, str]] = {
    # name -> (module, attribute, replacement hint)
    "DagAnalyticExecutor": (
        "repro.runtime.dag_executor", "DagAnalyticExecutor",
        'get_executor("dag", workflow) or Session(...).executor()',
    ),
    "DagSizingPolicy": (
        "repro.policies.dag", "DagSizingPolicy",
        "the unified repro.SizingPolicy (override size_for_node)",
    ),
    "DagJanusPolicy": (
        "repro.policies.dag", "DagJanusPolicy",
        'POLICIES.build("Janus", workflow, profiles) or Session.policy("Janus")',
    ),
    "DagGrandSLAMPolicy": (
        "repro.policies.dag", "DagGrandSLAMPolicy",
        'POLICIES.build("GrandSLAM", workflow, profiles)',
    ),
    "DagWorkflowHints": (
        "repro.synthesis.dag", "DagWorkflowHints",
        "Session.synthesize() (topology-dispatched)",
    ),
    "synthesize_dag_hints": (
        "repro.synthesis.dag", "synthesize_dag_hints",
        "Session.synthesize() (topology-dispatched)",
    ),
}


def __getattr__(name: str) -> _t.Any:
    try:
        module, attr, replacement = _DEPRECATED_ALIASES[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    _warnings.warn(
        f"repro.{name} is deprecated since the Session/registry unification "
        f"(1.1.0) and will be removed in 1.3.0; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module), attr)


__all__ = [
    "__version__",
    "ReproError",
    # facade
    "Session",
    "ComparisonReport",
    # workflow
    "Workflow",
    "WorkflowDAG",
    "chain_dag",
    "parse_spec",
    "intelligent_assistant",
    "video_analytics",
    "WorkflowRequest",
    "RequestOutcome",
    # functions
    "FunctionModel",
    "InvocationDynamics",
    "Resource",
    # profiling
    "LatencyProfile",
    "ProfileSet",
    "Profiler",
    "ProfilerConfig",
    "profile_workflow",
    "save_profile_set",
    "load_profile_set",
    # synthesis
    "BudgetRange",
    "HintSynthesizer",
    "SynthesisConfig",
    "HeadExploration",
    "WorkflowHints",
    "CondensedHintsTable",
    "synthesize_hints",
    # adapter
    "JanusAdapter",
    "AdapterService",
    "HitMissSupervisor",
    # policies
    "SizingPolicy",
    "PolicyRegistry",
    "POLICIES",
    "DEFAULT_SUITE",
    "JanusPolicy",
    "janus",
    "janus_minus",
    "janus_plus",
    "OraclePolicy",
    "OrionPolicy",
    "GrandSLAMPolicy",
    "GrandSLAMPlusPolicy",
    # runtime
    "Executor",
    "register_executor",
    "executor_names",
    "get_executor",
    "resolve_executor",
    "AnalyticExecutor",
    "BatchingExecutor",
    "RunResult",
    "build_policy_suite",
    "run_policies",
    "compare",
    # cluster
    "ServerlessPlatform",
    "MultiTenantPlatform",
    "TenantJob",
    "ClusterConfig",
    "InterferenceModel",
    # scenarios
    "Scenario",
    "ScenarioMatrix",
    "SweepRunner",
    "SweepReport",
    "run_scenario",
    # traces
    "DiurnalRate",
    "PopularityMix",
    "WorkloadTrace",
    "generate_workload_trace",
    "load_trace",
    "save_trace",
    "trace_from_requests",
    "generate_requests",
    "WorkloadConfig",
    "ArrivalSpec",
    # types
    "ResourceLimits",
    "PercentileGrid",
]
