"""Janus: bilaterally engaged runtime resource adaptation for serverless
workflows — a full reproduction of the IPDPS 2025 paper.

Quickstart
----------
>>> from repro import (
...     intelligent_assistant, profile_workflow, BudgetRange,
...     synthesize_hints, JanusPolicy, generate_requests, AnalyticExecutor,
... )
>>> wf = intelligent_assistant()
>>> profiles = profile_workflow(wf, seed=1)
>>> hints = synthesize_hints(profiles, wf.chain, BudgetRange(2000, 7000))
>>> policy = JanusPolicy(wf, hints)
>>> result = AnalyticExecutor(wf).run(policy, generate_requests(wf))
>>> result.violation_rate <= 0.01
True

The package splits along the paper's developer/provider boundary:

* developer side (offline): :mod:`repro.profiling`, :mod:`repro.synthesis`
* provider side (online): :mod:`repro.adapter`, :mod:`repro.cluster`
* shared substrate: :mod:`repro.workflow`, :mod:`repro.functions`,
  :mod:`repro.traces`, :mod:`repro.sim`
* evaluation: :mod:`repro.policies`, :mod:`repro.runtime`,
  :mod:`repro.metrics`, :mod:`repro.experiments`
"""

from .adapter import AdapterService, HitMissSupervisor, JanusAdapter
from .cluster import (
    ClusterConfig,
    InterferenceModel,
    MultiTenantPlatform,
    ServerlessPlatform,
    TenantJob,
)
from .errors import ReproError
from .functions import FunctionModel, InvocationDynamics, Resource
from .profiling import (
    LatencyProfile,
    Profiler,
    ProfilerConfig,
    ProfileSet,
    load_profile_set,
    profile_workflow,
    save_profile_set,
)
from .policies import (
    DagGrandSLAMPolicy,
    DagJanusPolicy,
    DagSizingPolicy,
    GrandSLAMPlusPolicy,
    GrandSLAMPolicy,
    JanusPolicy,
    OraclePolicy,
    OrionPolicy,
    SizingPolicy,
    janus,
    janus_minus,
    janus_plus,
)
from .runtime import (
    AnalyticExecutor,
    BatchingExecutor,
    DagAnalyticExecutor,
    RunResult,
    build_policy_suite,
    compare,
    run_policies,
)
from .synthesis import (
    BudgetRange,
    CondensedHintsTable,
    DagWorkflowHints,
    HeadExploration,
    HintSynthesizer,
    SynthesisConfig,
    WorkflowHints,
    synthesize_dag_hints,
    synthesize_hints,
)
from .traces import WorkloadConfig, generate_requests
from .types import PercentileGrid, ResourceLimits
from .workflow import (
    RequestOutcome,
    Workflow,
    WorkflowDAG,
    WorkflowRequest,
    chain_dag,
    intelligent_assistant,
    parse_spec,
    video_analytics,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # workflow
    "Workflow",
    "WorkflowDAG",
    "chain_dag",
    "parse_spec",
    "intelligent_assistant",
    "video_analytics",
    "WorkflowRequest",
    "RequestOutcome",
    # functions
    "FunctionModel",
    "InvocationDynamics",
    "Resource",
    # profiling
    "LatencyProfile",
    "ProfileSet",
    "Profiler",
    "ProfilerConfig",
    "profile_workflow",
    "save_profile_set",
    "load_profile_set",
    # synthesis
    "BudgetRange",
    "HintSynthesizer",
    "SynthesisConfig",
    "HeadExploration",
    "WorkflowHints",
    "CondensedHintsTable",
    "synthesize_hints",
    "DagWorkflowHints",
    "synthesize_dag_hints",
    # adapter
    "JanusAdapter",
    "AdapterService",
    "HitMissSupervisor",
    # policies
    "SizingPolicy",
    "JanusPolicy",
    "janus",
    "janus_minus",
    "janus_plus",
    "OraclePolicy",
    "OrionPolicy",
    "DagSizingPolicy",
    "DagJanusPolicy",
    "DagGrandSLAMPolicy",
    "GrandSLAMPolicy",
    "GrandSLAMPlusPolicy",
    # runtime
    "AnalyticExecutor",
    "DagAnalyticExecutor",
    "BatchingExecutor",
    "RunResult",
    "build_policy_suite",
    "run_policies",
    "compare",
    # cluster
    "ServerlessPlatform",
    "MultiTenantPlatform",
    "TenantJob",
    "ClusterConfig",
    "InterferenceModel",
    # traces
    "generate_requests",
    "WorkloadConfig",
    # types
    "ResourceLimits",
    "PercentileGrid",
]
