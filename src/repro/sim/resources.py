"""Shared-resource primitives for the simulation kernel.

:class:`CapacityResource` models a divisible resource (e.g. a VM's
millicores) with FIFO granting; :class:`Store` models a pool of discrete
items (e.g. warm pods). Both integrate with the event system: acquisition
returns an event the caller yields on.
"""

from __future__ import annotations

import collections
import typing as _t

from ..errors import SimulationError
from .events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

__all__ = ["CapacityResource", "Store"]


class CapacityResource:
    """A divisible resource with fixed total capacity and FIFO queueing."""

    def __init__(self, sim: "Simulator", capacity: float) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity}")
        self.sim = sim
        self.capacity = float(capacity)
        self._in_use = 0.0
        self._waiters: collections.deque[tuple[float, Event]] = collections.deque()

    @property
    def in_use(self) -> float:
        """Currently granted amount."""
        return self._in_use

    @property
    def available(self) -> float:
        """Remaining ungranted capacity."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending acquisition requests."""
        return len(self._waiters)

    def acquire(self, amount: float) -> Event:
        """Request ``amount`` of the resource; yields when granted."""
        if amount <= 0:
            raise SimulationError(f"acquire amount must be > 0, got {amount}")
        if amount > self.capacity:
            raise SimulationError(
                f"requested {amount} exceeds total capacity {self.capacity}"
            )
        ev = Event(self.sim)
        self._waiters.append((float(amount), ev))
        self._grant()
        return ev

    def release(self, amount: float) -> None:
        """Return ``amount`` previously acquired."""
        if amount <= 0:
            raise SimulationError(f"release amount must be > 0, got {amount}")
        if amount > self._in_use + 1e-9:
            raise SimulationError(
                f"releasing {amount} but only {self._in_use} in use"
            )
        self._in_use = max(0.0, self._in_use - float(amount))
        self._grant()

    def _grant(self) -> None:
        # Strict FIFO: head-of-line blocking is intentional (matches how a
        # kubelet admits pods on a node in request order).
        while self._waiters:
            amount, ev = self._waiters[0]
            if amount > self.available + 1e-9:
                break
            self._waiters.popleft()
            self._in_use += amount
            ev.succeed(value=amount)


class Store:
    """FIFO store of discrete items (e.g. warm function pods)."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._items: collections.deque[_t.Any] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: _t.Any) -> None:
        """Add an item, waking the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(value=item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event yielding the next item (immediately if one is stocked)."""
        ev = Event(self.sim)
        if self._items:
            ev.succeed(value=self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> _t.Any | None:
        """Non-blocking pop: an item or ``None`` when empty."""
        return self._items.popleft() if self._items else None
