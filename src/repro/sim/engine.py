"""The discrete-event simulator: clock + event heap + run loop.

Design notes (hpc-parallel guide: "make it work, make it right, then profile
the bottleneck"): the run loop is a plain binary-heap pop loop with no
per-event allocation beyond the heap entry tuple; a monotonically increasing
sequence number breaks ties deterministically, which makes every simulation
bit-reproducible for a given seed.

The run loops bind ``heapq.heappop`` and the heap list to locals and pop
events inline rather than calling :meth:`step` per event — attribute lookups
and the defensive time check are hoisted out of the hot loop (the heap
invariant already guarantees non-decreasing pop times, because every push
happens at ``now + delay`` with ``delay >= 0``). :meth:`step` keeps the
checked, one-event-at-a-time semantics for debugging and tests.
"""

from __future__ import annotations

import heapq
import typing as _t

from ..errors import SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Simulator"]


class Simulator:
    """Event-driven simulation engine with millisecond float time."""

    __slots__ = ("_now", "_heap", "_seq", "_event_count")

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._event_count = 0

    # -- time ---------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time (ms)."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (for diagnostics)."""
        return self._event_count

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires ``delay`` ms from now."""
        return Timeout(self, delay, value=value)

    def all_of(self, events: _t.Sequence[Event]) -> AllOf:
        """Composite event: fires when all of ``events`` fired."""
        return AllOf(self, events)

    def any_of(self, events: _t.Sequence[Event]) -> AnyOf:
        """Composite event: fires when any of ``events`` fired."""
        return AnyOf(self, events)

    def process(self, generator: _t.Generator[Event, _t.Any, _t.Any]) -> Process:
        """Launch a generator-based process (it starts at the current time)."""
        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        heapq.heappush(self._heap, (self._now + delay, self._seq, event))
        self._seq += 1

    # -- run loop -------------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event; raise if the heap is empty."""
        if not self._heap:
            raise SimulationError("no scheduled events")
        t, _, event = heapq.heappop(self._heap)
        if t < self._now:
            raise SimulationError(f"time went backwards: {t} < {self._now}")
        self._now = t
        self._event_count += 1
        event._process()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: float | Event | None = None) -> _t.Any:
        """Run events until exhaustion, a deadline, or an event fires.

        Parameters
        ----------
        until:
            ``None`` runs until no events remain. A ``float`` runs until the
            clock would pass that time (the clock is then advanced to it).
            An :class:`Event` runs until that event has been processed and
            returns its value (raising its exception if it failed).
        """
        # Event._process is inlined into each loop body (no Event subclass
        # overrides it): the method-call frame per event is the single
        # largest constant in the pop loop.
        heap = self._heap
        pop = heapq.heappop
        count = 0
        if until is None:
            try:
                while heap:
                    t, _, event = pop(heap)
                    self._now = t
                    count += 1
                    event._processed = True
                    callbacks = event.callbacks
                    if callbacks is not None:
                        event.callbacks = None
                        for cb in callbacks:
                            cb(event)
            finally:
                self._event_count += count
            return None
        if isinstance(until, Event):
            stop = until
            try:
                while not stop._processed:
                    if not heap:
                        raise SimulationError(
                            "simulation ran out of events before target event fired"
                        )
                    t, _, event = pop(heap)
                    self._now = t
                    count += 1
                    event._processed = True
                    callbacks = event.callbacks
                    if callbacks is not None:
                        event.callbacks = None
                        for cb in callbacks:
                            cb(event)
            finally:
                self._event_count += count
            if not stop.ok:
                raise stop.value
            return stop.value
        deadline = float(until)
        if deadline < self._now:
            raise SimulationError(
                f"run deadline {deadline} is before current time {self._now}"
            )
        try:
            while heap and heap[0][0] <= deadline:
                t, _, event = pop(heap)
                self._now = t
                count += 1
                event._processed = True
                callbacks = event.callbacks
                if callbacks is not None:
                    event.callbacks = None
                    for cb in callbacks:
                        cb(event)
        finally:
            self._event_count += count
        self._now = deadline
        return None
