"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-list design (as used by SimPy and most
HPC network/cluster simulators): an :class:`Event` is a one-shot triggerable
object carrying a value; callbacks registered on an event run when the
simulator pops it off the event heap.

Hot-path notes: every simulated request churns through many short-lived
events, so the per-event footprint matters. The callback list is allocated
lazily (most events carry zero or one listener), and the composite events
dispatch through bound methods plus an index table instead of allocating one
closure per child event.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush as _heappush

from ..errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]


class Event:
    """A one-shot occurrence inside a simulation.

    Lifecycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran). An event may only be triggered once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_processed", "_ok")

    def __init__(self, sim: "Simulator") -> None:
        # NOTE: these field initialisations are mirrored (inlined) in
        # Timeout.__init__ — a new field or invariant here must be added
        # there too, or every Timeout is born with a missing slot.
        self.sim = sim
        #: Listener callables, or ``None`` while no listener registered.
        self.callbacks: list[_t.Callable[["Event"], None]] | None = None
        self._value: _t.Any = None
        self._triggered = False
        self._processed = False
        self._ok = True

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (see :meth:`fail`)."""
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The payload the event was triggered with."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: _t.Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-time units."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as a failure carrying ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def _process(self) -> None:
        """Run callbacks; invoked by the simulator only."""
        self._processed = True
        callbacks = self.callbacks
        if callbacks is not None:
            self.callbacks = None
            for cb in callbacks:
                cb(self)

    def add_callback(self, cb: _t.Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event is processed.

        If the event was already processed the callback runs immediately,
        so late subscribers never deadlock.
        """
        if self._processed:
            cb(self)
        elif self.callbacks is None:
            self.callbacks = [cb]
        else:
            self.callbacks.append(cb)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        # Timeouts are born triggered; the fields are assigned inline instead
        # of going through Event.__init__ + succeed, and the heap push is
        # inlined past Simulator._schedule (whose negative-delay guard is
        # the check above) — one call frame per timeout each, the single
        # hottest allocation path in cluster runs.
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._triggered = True
        self._processed = False
        self._ok = True
        self.delay = delay = float(delay)
        _heappush(sim._heap, (sim._now + delay, sim._seq, self))
        sim._seq += 1


class AllOf(Event):
    """Composite event that triggers when all child events have processed."""

    __slots__ = ("_pending", "_results", "_slots", "_children")

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed(value=[])
            return
        self._results: list[_t.Any] = [None] * len(events)
        # Result slot per child, keyed by identity; a child passed twice
        # holds a stack of slots, one popped per completion. Keeping the
        # children referenced pins their ids for the composite's lifetime.
        self._children = events
        slots: dict[int, list[int]] = {}
        for i, ev in enumerate(events):
            slots.setdefault(id(ev), []).append(i)
        self._slots = slots
        for ev in events:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        self._results[self._slots[id(ev)].pop()] = ev.value
        self._pending -= 1
        if self._pending == 0 and not self._triggered:
            self.succeed(value=self._results)


class AnyOf(Event):
    """Composite event that triggers when any child event processes."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in events:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if not self._triggered:
            self.succeed(value=ev.value)
