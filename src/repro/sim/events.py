"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-list design (as used by SimPy and most
HPC network/cluster simulators): an :class:`Event` is a one-shot triggerable
object carrying a value; callbacks registered on an event run when the
simulator pops it off the event heap.
"""

from __future__ import annotations

import typing as _t

from ..errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]


class Event:
    """A one-shot occurrence inside a simulation.

    Lifecycle: *pending* -> *triggered* (scheduled on the heap) ->
    *processed* (callbacks ran). An event may only be triggered once.
    """

    __slots__ = ("sim", "callbacks", "_value", "_triggered", "_processed", "_ok")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[_t.Callable[["Event"], None]] = []
        self._value: _t.Any = None
        self._triggered = False
        self._processed = False
        self._ok = True

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._processed

    @property
    def ok(self) -> bool:
        """False when the event carries a failure (see :meth:`fail`)."""
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The payload the event was triggered with."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: _t.Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully after ``delay`` sim-time units."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as a failure carrying ``exception``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay)
        return self

    def _process(self) -> None:
        """Run callbacks; invoked by the simulator only."""
        self._processed = True
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def add_callback(self, cb: _t.Callable[["Event"], None]) -> None:
        """Register ``cb`` to run when the event is processed.

        If the event was already processed the callback runs immediately,
        so late subscribers never deadlock.
        """
        if self._processed:
            cb(self)
        else:
            self.callbacks.append(cb)


class Timeout(Event):
    """An event that triggers automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim)
        self.delay = float(delay)
        self.succeed(value=value, delay=delay)


class AllOf(Event):
    """Composite event that triggers when all child events have processed."""

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed(value=[])
            return
        results: list[_t.Any] = [None] * len(events)

        def _make(idx: int) -> _t.Callable[[Event], None]:
            def _cb(ev: Event) -> None:
                results[idx] = ev.value
                self._pending -= 1
                if self._pending == 0 and not self.triggered:
                    self.succeed(value=results)

            return _cb

        for i, ev in enumerate(events):
            ev.add_callback(_make(i))


class AnyOf(Event):
    """Composite event that triggers when any child event processes."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: _t.Sequence[Event]) -> None:
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")

        def _cb(ev: Event) -> None:
            if not self.triggered:
                self.succeed(value=ev.value)

        for ev in events:
            ev.add_callback(_cb)
