"""Discrete-event simulation kernel.

A minimal, deterministic, generator-based DES engine in the style of SimPy,
built from scratch for this reproduction (the paper's testbed is replaced by
simulation, see DESIGN.md §2). Public surface:

- :class:`Simulator` — clock, event heap, run loop
- :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`
- :class:`Process`, :class:`Interrupt` — generator coroutines
- :class:`CapacityResource`, :class:`Store` — shared resources
- :class:`TimeSeries`, :class:`Counter` — measurement
"""

from .engine import Simulator
from .events import AllOf, AnyOf, Event, Timeout
from .monitor import Counter, TimeSeries
from .process import Interrupt, Process
from .resources import CapacityResource, Store

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Process",
    "Interrupt",
    "CapacityResource",
    "Store",
    "TimeSeries",
    "Counter",
]
