"""Measurement helpers for simulations: time series and time-weighted stats."""

from __future__ import annotations

import numpy as np

from ..errors import SimulationError

__all__ = ["TimeSeries", "Counter"]


class TimeSeries:
    """Step-function time series of (time, value) samples.

    Used for resource-usage accounting: record the value whenever it changes
    and integrate the step function for averages (millicore-seconds etc.).
    """

    def __init__(self) -> None:
        self._times: list[float] = []
        self._values: list[float] = []

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time: float, value: float) -> None:
        """Append a sample; time must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise SimulationError(
                f"non-monotonic sample time {time} < {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    def times(self) -> np.ndarray:
        """Sample timestamps."""
        return np.asarray(self._times, dtype=np.float64)

    def values(self) -> np.ndarray:
        """Sample values."""
        return np.asarray(self._values, dtype=np.float64)

    def integral(self, until: float | None = None) -> float:
        """Integral of the step function from the first sample to ``until``."""
        if not self._times:
            return 0.0
        t = self.times()
        v = self.values()
        end = float(until) if until is not None else t[-1]
        if end < t[0]:
            return 0.0
        # widths between consecutive samples, last segment runs to `end`
        edges = np.append(t, end)
        widths = np.clip(np.diff(edges), 0.0, None)
        return float(np.dot(widths, v))

    def time_weighted_mean(self, until: float | None = None) -> float:
        """Time-weighted mean value over the observation window."""
        if not self._times:
            return 0.0
        t0 = self._times[0]
        end = float(until) if until is not None else self._times[-1]
        span = end - t0
        if span <= 0:
            return float(self._values[-1])
        return self.integral(until=end) / span


class Counter:
    """A named monotone event counter with a rate helper."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0

    def increment(self, by: int = 1) -> None:
        """Add ``by`` (must be positive) to the counter."""
        if by <= 0:
            raise SimulationError(f"counter increment must be > 0, got {by}")
        self.count += by

    def rate(self, elapsed: float) -> float:
        """Counts per unit time over ``elapsed`` (0 when no time passed)."""
        return self.count / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.count})"
