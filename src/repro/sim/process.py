"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects; the process suspends until each yielded event fires, receiving the
event's value at the ``yield`` expression. The process itself is an event
that fires with the generator's return value, so processes compose (a parent
may ``yield`` a child process).
"""

from __future__ import annotations

import typing as _t

from ..errors import SimulationError
from .events import Event

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Simulator

__all__ = ["Process"]


class Process(Event):
    """An event wrapping a running generator coroutine."""

    __slots__ = ("_generator", "_resume_cb")

    def __init__(
        self, sim: "Simulator", generator: _t.Generator[Event, _t.Any, _t.Any]
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process requires a generator, got {type(generator).__name__}"
            )
        self._generator = generator
        # One bound method reused for every resume — accessing self._resume
        # afresh would allocate a new bound-method object per yielded event.
        self._resume_cb = self._resume
        # Kick off at the current simulation time via an immediate event.
        start = Event(sim)
        start.add_callback(self._resume_cb)
        start.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the trigger's value (or exception).

        This is the kernel's hottest callback (once per yielded event), so
        it reads the trigger's slots directly instead of going through the
        ``ok``/``value`` properties and inlines ``target.add_callback``.
        """
        try:
            if trigger._ok:
                target = self._generator.send(trigger._value)
            else:
                target = self._generator.throw(trigger._value)
        except StopIteration as stop:
            self.succeed(value=stop.value)
            return
        except BaseException as exc:  # propagate through the process event
            self.fail(exc)
            return
        if isinstance(target, Event):
            if target._processed:
                self._resume(target)
            elif target.callbacks is None:
                target.callbacks = [self._resume_cb]
            else:
                target.callbacks.append(self._resume_cb)
            return
        # Misuse: close the generator and surface a clear error.
        self._generator.close()
        self.fail(
            SimulationError(
                f"process yielded {type(target).__name__}, expected Event"
            )
        )

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        ev = Event(self.sim)
        ev.add_callback(self._resume)
        ev.fail(Interrupt(cause))


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: _t.Any = None) -> None:
        super().__init__(cause)
        self.cause = cause
