"""Always-on serving: the live counterpart of the batch experiments.

The paper's Janus runs as a *service*: requests arrive continuously, the
adapter sizes each stage online, and a supervisor watches the miss rate
for distribution drift. The batch layers reproduce the figures; this
package closes the loop into a long-running process:

* :mod:`repro.serving.sources` — unbounded arrival streams (NHPP on a
  diurnal curve, trace replay with wrap-around, Poisson, ...).
* :mod:`repro.serving.events` — a structured JSONL event log (arrivals,
  decisions, hot-swaps, snapshots) so runs are replayable and testable.
* :mod:`repro.serving.loop` — the asyncio :class:`ServingLoop`: ingest,
  size, record hit/miss, stream metrics at O(1) memory, and re-synthesize
  hints when the windowed miss rate crosses the threshold — hot-swapping
  tables without dropping in-flight requests.
"""

from .events import EventLog, read_events
from .loop import ServingConfig, ServingLoop, ServingReport, run_service
from .sources import arrival_source, fleet_arrival_source

__all__ = [
    "EventLog",
    "read_events",
    "ServingConfig",
    "ServingLoop",
    "ServingReport",
    "run_service",
    "arrival_source",
    "fleet_arrival_source",
]
