"""Structured JSONL event log for serving runs.

One JSON object per line, each carrying a monotonically increasing
``seq`` and a ``kind`` (``start``, ``arrival``, ``decision``, ``swap``,
``snapshot``, ``stop``). With a path the log is write-through — nothing
is retained in memory, preserving the loop's O(1) footprint; without a
path events accumulate in :attr:`EventLog.events` for tests and
interactive use.
"""

from __future__ import annotations

import json
import typing as _t
from pathlib import Path

from ..errors import ExperimentError

__all__ = ["EventLog", "read_events"]


def _jsonable(obj: _t.Any) -> _t.Any:
    # numpy scalars (sizes, rates) serialize as their Python values.
    if hasattr(obj, "item"):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


class EventLog:
    """Append-only event sink, JSONL on disk or a list in memory."""

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.events: list[dict[str, _t.Any]] = []
        self._seq = 0
        self._fh: _t.TextIO | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w", encoding="utf-8")

    def emit(self, kind: str, **fields: _t.Any) -> dict[str, _t.Any]:
        """Record one event; returns the record that was written."""
        record: dict[str, _t.Any] = {"seq": self._seq, "kind": kind}
        record.update(fields)
        self._seq += 1
        if self._fh is not None:
            self._fh.write(json.dumps(record, default=_jsonable) + "\n")
        else:
            self.events.append(record)
        return record

    @property
    def count(self) -> int:
        """Events emitted so far."""
        return self._seq

    def close(self) -> None:
        """Flush and close the file sink (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: _t.Any) -> None:
        self.close()


def read_events(
    path: str | Path, kind: str | None = None
) -> list[dict[str, _t.Any]]:
    """Load a JSONL event log back, optionally filtered by ``kind``."""
    p = Path(path)
    if not p.exists():
        raise ExperimentError(f"no event log at {p}")
    out = []
    with p.open(encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if kind is None or record.get("kind") == kind:
                out.append(record)
    return out
