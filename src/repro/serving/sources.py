"""Unbounded arrival sources for the serving loop.

The batch generators in :mod:`repro.traces` answer "give me *n* arrivals";
an always-on service does not know *n* up front. Each source here is an
infinite iterator of arrival timestamps (milliseconds since service
start), built from the same declarative :class:`~repro.traces.workload.
ArrivalSpec` the sweep engine uses — so ``diurnal@8`` means the same
process in a sweep cell and in ``janus-repro serve``.

Determinism contract: chunk sizes are fixed constants (never dependent on
how much of the stream a consumer happened to drain), so a fixed seed
replays the identical timestamp stream however far it is consumed.
"""

from __future__ import annotations

import heapq
import typing as _t

import numpy as np

from ..errors import TraceError
from ..traces.diurnal import DiurnalRate, FlashCrowdRate
from ..traces.trace_file import cached_trace
from ..traces.workload import ArrivalSpec

__all__ = ["arrival_source", "fleet_arrival_source", "CHUNK"]

#: Candidates drawn per RNG round. A fixed constant — part of the
#: determinism contract above.
CHUNK = 512


def _poisson_gaps(
    rate_per_s: float, rng: np.random.Generator
) -> _t.Iterator[float]:
    t = 0.0
    mean_gap_ms = 1000.0 / rate_per_s
    while True:
        for gap in rng.exponential(mean_gap_ms, size=CHUNK):
            t += float(gap)
            yield t


def _constant(interval_ms: float) -> _t.Iterator[float]:
    i = 0
    while True:
        yield i * interval_ms
        i += 1


def _burst(
    base_rate: float,
    burst_rate: float,
    fraction: float,
    rng: np.random.Generator,
) -> _t.Iterator[float]:
    t = 0.0
    while True:
        in_burst = rng.random(CHUNK) < fraction
        rates = np.where(in_burst, burst_rate, base_rate)
        for gap in rng.exponential(1000.0 / rates):
            t += float(gap)
            yield t


def _azure(
    rate_per_s: float, sigma: float, rng: np.random.Generator
) -> _t.Iterator[float]:
    t = 0.0
    mean_gap_ms = 1000.0 / rate_per_s
    while True:
        z = rng.standard_normal(CHUNK)
        gaps = np.exp(sigma * z - 0.5 * sigma * sigma) * mean_gap_ms
        for gap in gaps:
            t += float(gap)
            yield t


def _nhpp(curve: DiurnalRate, rng: np.random.Generator) -> _t.Iterator[float]:
    # Lewis-Shedler thinning, as in :func:`repro.traces.diurnal.
    # nhpp_arrivals` but with the fixed CHUNK so the draw order does not
    # depend on how many arrivals the consumer eventually takes.
    peak = curve.peak_rate
    t_ms = 0.0
    while True:
        gaps_ms = rng.exponential(1000.0 / peak, size=CHUNK)
        candidates = t_ms + np.cumsum(gaps_ms)
        u = rng.random(CHUNK)
        accepted = candidates[u * peak < curve.rate_at(candidates / 1000.0)]
        t_ms = float(candidates[-1])
        for ts in accepted:
            yield float(ts)


def _replay(trace_path: str, workflow: str | None) -> _t.Iterator[float]:
    # Same wrap-around law as :func:`repro.traces.trace_file.
    # replay_arrivals`: each full pass shifts by the span plus one mean
    # gap, so the recorded gap structure repeats forever.
    trace = cached_trace(trace_path)
    arrivals = trace.arrivals_for(workflow)
    if arrivals.size == 0:
        raise TraceError(
            f"trace {trace.name!r} has no records"
            + (f" for workflow {workflow!r}" if workflow else "")
        )
    m = int(arrivals.size)
    if m == 1:
        raise TraceError(
            f"cannot serve forever from the single-record trace "
            f"{trace.name!r} — wrap-around needs >= 2 records"
        )
    span = float(arrivals[-1] - arrivals[0])
    period = span + span / (m - 1)
    i = 0
    while True:
        yield float(arrivals[i % m]) + (i // m) * period
        i += 1


def arrival_source(
    spec: ArrivalSpec,
    rng: np.random.Generator,
    workflow: str | None = None,
) -> _t.Iterator[float]:
    """Infinite arrival-timestamp stream (ms) for ``spec``.

    ``workflow`` only matters for replay specs (sub-stream selection), as
    for :meth:`ArrivalSpec.timestamps`.
    """
    if spec.kind == "constant":
        return _constant(spec.interval_ms)
    if spec.kind == "poisson":
        return _poisson_gaps(spec.rate_per_s, rng)
    if spec.kind == "burst":
        burst_rate = (
            spec.burst_rate_per_s
            if spec.burst_rate_per_s is not None
            else 10.0 * spec.rate_per_s
        )
        return _burst(spec.rate_per_s, burst_rate, spec.burst_fraction, rng)
    if spec.kind == "azure":
        return _azure(spec.rate_per_s, spec.sigma, rng)
    if spec.kind == "diurnal":
        curve = DiurnalRate.sinusoid(
            spec.rate_per_s, spec.amplitude, spec.period_s, spec.phase
        )
        return _nhpp(curve, rng)
    if spec.kind == "replay":
        assert spec.trace is not None  # ArrivalSpec.__post_init__ guarantees
        return _replay(spec.trace, workflow)
    if spec.kind == "storm":
        crowd = FlashCrowdRate(
            DiurnalRate.sinusoid(
                spec.rate_per_s, spec.amplitude, spec.period_s, spec.phase
            ),
            spec.storm_multiplier,
            spec.storm_fraction,
        )
        return _nhpp(crowd, rng)
    raise TraceError(f"unknown arrival kind {spec.kind!r}")


def fleet_arrival_source(
    specs: _t.Sequence[ArrivalSpec],
    rngs: "_t.Sequence[np.random.Generator]",
    workflow: str | None = None,
) -> _t.Iterator[tuple[float, int]]:
    """Merged ``(arrival_ms, home_region)`` stream over per-region sources.

    One infinite :func:`arrival_source` per region (``specs[r]`` drawn
    with ``rngs[r]``), lazily heap-merged in timestamp order with the
    region index as the deterministic tie-break — the streaming
    counterpart of the sweep's merged fleet stream. Each region's own
    stream is untouched by how far the merge is drained, so the
    determinism contract above carries over region by region.
    """
    if len(specs) != len(rngs):
        raise TraceError(
            f"fleet source wants one rng per region, got {len(specs)} "
            f"spec(s) and {len(rngs)} rng(s)"
        )

    def _tag(
        stream: _t.Iterator[float], region: int
    ) -> _t.Iterator[tuple[float, int]]:
        for t in stream:
            yield t, region

    return heapq.merge(
        *(
            _tag(arrival_source(spec, rng, workflow), region)
            for region, (spec, rng) in enumerate(zip(specs, rngs))
        )
    )
