"""The asyncio serving loop: ingest, size, observe, adapt.

:class:`ServingLoop` is the live counterpart of :class:`~repro.runtime.
executor.AnalyticExecutor.run`: the same per-stage sizing walk, but over
an *unbounded* arrival stream, with bounded-memory metrics
(:mod:`repro.metrics.streaming`) instead of retained outcome lists, and
with the paper's §III-D regeneration loop running online — when the
supervisor's sliding miss-rate window crosses the threshold, the loop
re-profiles from its recent latency window, re-synthesizes hints (through
the :func:`~repro.synthesis.generator.synthesize_hints` disk memo) and
hot-swaps the adapter's tables. The adapter is stateless per request, so
in-flight requests finish against whichever tables their next stage
finds — none are dropped.

Scheduling is cooperative and deterministic: each request is an asyncio
task that yields between stages, so requests interleave like a real
service while a fixed seed and ``time_scale=0`` (no wall-clock pacing)
replay bit-identically. ``time_scale > 0`` paces arrivals and stage
executions against the wall clock (1.0 = real time, 60.0 = a minute of
trace per second).
"""

from __future__ import annotations

import asyncio
import time
import typing as _t
from collections import deque
from dataclasses import dataclass, field

from ..cluster.faults import FaultSpec, compile_region_failover
from ..errors import ExperimentError
from ..fleet.routing import StreamRouter
from ..fleet.runner import region_arrival
from ..fleet.topology import FleetConfig
from ..metrics.streaming import StreamingMoments, StreamingSummary, WindowedRate
from ..adapter.supervisor import HitMissSupervisor
from ..policies.registry import JANUS_EXPLORATIONS, POLICIES
from ..profiling.profiles import LatencyProfile, ProfileSet
from ..profiling.profiler import profile_workflow
from ..rng import RngFactory, child_seed
from ..scenarios.registry import scenario_workflow
from ..synthesis.generator import HeadExploration, synthesize_hints
from ..traces.workload import ArrivalSpec
from ..workflow.catalog import Workflow
from ..workflow.request import RequestOutcome, StageRecord, WorkflowRequest
from .events import EventLog
from .sources import arrival_source, fleet_arrival_source

__all__ = ["ServingConfig", "ServingLoop", "ServingReport", "run_service"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of one serving run.

    ``source`` is an :class:`ArrivalSpec` (build one with
    :func:`repro.scenarios.matrix.parse_arrival` from tokens like
    ``diurnal@8`` or ``replay@trace.jsonl``). ``time_scale=0`` disables
    wall-clock pacing — the stream is served as fast as the machine
    allows, which is what bounded CI runs want. ``workset_schedule``
    deterministically drifts the workload mid-run: ``((after_n, scale),
    ...)`` multiplies drawn working sets by ``scale`` from request index
    ``after_n`` on — the forcing function for adaptation tests.
    """

    workflow: str = "IA"
    policy: str = "Janus"
    source: ArrivalSpec = field(
        default_factory=lambda: ArrivalSpec(kind="poisson", rate_per_s=50.0)
    )
    seed: int = 0
    samples: int = 2000
    slo_scale: float = 1.0
    max_requests: int | None = None
    max_seconds: float | None = None
    time_scale: float = 0.0
    metrics_every: int = 500
    percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)
    slo_window: int = 1000
    miss_threshold: float = 0.01
    miss_window: int = 200
    min_samples: int = 50
    adapt: bool = True
    latency_window: int = 512
    workset_schedule: tuple[tuple[int, float], ...] = ()
    event_log: str | None = None
    #: Arrival-side fault injection: a ``storm`` :class:`FaultSpec`
    #: superimposes a flash crowd on the declared ``source`` (multiplied
    #: rate inside a window around the diurnal peak), and a
    #: ``region-failover`` spec darkens one fleet region for a window of
    #: the first source period (fleet runs only). Cluster-side kinds
    #: (preempt/crash/straggler/contention) need the DES platform — run
    #: them through a sweep with ``--executor cluster`` instead.
    faults: FaultSpec | None = None
    #: Serve a multi-region fleet instead of one stream: per-region
    #: phase-offset sources heap-merge into one arrival stream, each
    #: arrival is routed by the fleet's :class:`~repro.fleet.routing
    #: .RoutingPolicy` under the live occupancy proxy, and remote-served
    #: requests pay the topology RTT on their latency. Fleet counters
    #: (spillovers/failovers/shares) join every metrics snapshot.
    fleet: FleetConfig | None = None

    def __post_init__(self) -> None:
        if self.max_requests is not None and self.max_requests < 1:
            raise ExperimentError(
                f"max_requests must be >= 1, got {self.max_requests}"
            )
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ExperimentError(
                f"max_seconds must be > 0, got {self.max_seconds}"
            )
        if self.max_requests is None and self.max_seconds is None:
            raise ExperimentError(
                "an unbounded run needs an explicit opt-in: set "
                "max_requests and/or max_seconds (use max_seconds=inf "
                "for a true always-on service)"
            )
        if self.time_scale < 0:
            raise ExperimentError(
                f"time_scale must be >= 0, got {self.time_scale}"
            )
        if self.metrics_every < 1:
            raise ExperimentError(
                f"metrics_every must be >= 1, got {self.metrics_every}"
            )
        if self.slo_scale <= 0:
            raise ExperimentError(
                f"slo_scale must be > 0, got {self.slo_scale}"
            )
        if self.latency_window < 1:
            raise ExperimentError(
                f"latency_window must be >= 1, got {self.latency_window}"
            )
        last = -1
        for after_n, scale in self.workset_schedule:
            if after_n <= last:
                raise ExperimentError(
                    f"workset_schedule indices must ascend: "
                    f"{self.workset_schedule}"
                )
            if scale <= 0:
                raise ExperimentError(
                    f"workset scale must be > 0, got {scale}"
                )
            last = after_n
        if self.faults is not None and self.faults.kind == "region-failover":
            if self.fleet is None or len(self.fleet.regions) < 2:
                raise ExperimentError(
                    f"fault {self.faults.label!r} needs a fleet with >= 2 "
                    f"regions to drain to — pass fleet=FleetConfig(...) "
                    f"(CLI: --fleet regions=3,...)"
                )
        elif self.faults is not None and self.faults.kind != "storm":
            raise ExperimentError(
                f"serving injects arrival-side faults only (storm, plus "
                f"region-failover on a fleet); fault kind "
                f"{self.faults.kind!r} needs the DES cluster platform — "
                f"run it through a sweep with --executor cluster"
            )


@dataclass(frozen=True)
class ServingReport:
    """What a bounded serving run amounted to."""

    workflow: str
    policy: str
    source: str
    arrivals: int
    completed: int
    dropped: int
    swaps: int
    snapshot: dict[str, float]
    wall_seconds: float


class ServingLoop:
    """Always-on request sizing over an unbounded arrival stream."""

    def __init__(
        self,
        config: ServingConfig,
        workflow: Workflow | None = None,
        profiles: ProfileSet | None = None,
    ) -> None:
        self.config = config
        self.workflow = workflow or scenario_workflow(config.workflow)
        if self.workflow.topology != "chain":
            raise ExperimentError(
                f"serving supports chain workflows, got topology "
                f"{self.workflow.topology!r} ({self.workflow.name})"
            )
        self.slo_ms = float(self.workflow.slo_ms) * config.slo_scale
        self.profiles = profiles or profile_workflow(
            self.workflow, seed=config.seed, samples=config.samples
        )
        self.policy = POLICIES.build(
            config.policy,
            self.workflow,
            self.profiles,
            slo_ms=self.slo_ms,
        )
        self.policy.bind(self.workflow)

        # Wire drift detection into the policy's adapter when it has one
        # (the Janus family); other policies serve without adaptation.
        self.adapter = getattr(self.policy, "adapter", None)
        self._drift_flagged = False
        if self.adapter is not None:
            supervisor = HitMissSupervisor(
                miss_threshold=config.miss_threshold,
                min_samples=config.min_samples,
                window=config.miss_window,
            )
            supervisor.on_regenerate(self._flag_drift)
            self.adapter.supervisor = supervisor

        # A storm fault reshapes the declared source into its flash-crowd
        # counterpart; everything downstream (labels in the start event,
        # the report) keeps the declared source so runs stay comparable.
        self.effective_source = config.source
        if config.faults is not None and config.faults.kind == "storm":
            from ..scenarios.matrix import storm_arrival

            self.effective_source = storm_arrival(
                config.source, config.faults
            )
        factory = RngFactory(config.seed).fork("serving", self.workflow.name)
        self.fleet = config.fleet
        self.router: StreamRouter | None = None
        # ``self._arrivals`` is always an iterator of ``(arrival_ms,
        # home_region)`` — home is region 0 for a fleet-free run, drawn
        # from the exact pre-fleet stream path.
        if self.fleet is None:
            self._arrivals = (
                (t, 0)
                for t in arrival_source(
                    self.effective_source,
                    factory.stream("arrivals"),
                    workflow=self.workflow.name,
                )
            )
        else:
            # One phase-offset source per region. Region 0 keeps the
            # fleet-free stream path byte for byte (common random
            # numbers: turning on a fleet replays the single-region run's
            # arrivals at home); the rest fork fresh per-region streams.
            n_regions = len(self.fleet.regions)
            specs = [
                region_arrival(self.effective_source, r, n_regions)
                for r in range(n_regions)
            ]
            rngs = [
                factory.stream("arrivals")
                if r == 0
                else factory.stream("region", name, "arrivals")
                for r, name in enumerate(self.fleet.regions)
            ]
            self._arrivals = fleet_arrival_source(
                specs, rngs, workflow=self.workflow.name
            )
            outage = None
            if (
                config.faults is not None
                and config.faults.kind == "region-failover"
            ):
                # The dark window lands inside the first source period —
                # the serving analogue of the sweep's traffic-span
                # horizon, well-defined even for an unbounded run.
                outage = compile_region_failover(
                    config.faults,
                    child_seed(
                        config.seed, "faults", config.faults.label
                    ),
                    n_regions,
                    self.effective_source.period_s * 1000.0,
                )
            self.router = StreamRouter(
                self.fleet, hold_ms=self.slo_ms, outage=outage
            )
        self._stage_rngs = {
            name: factory.stream("dynamics", name)
            for name in self.workflow.dag.nodes
        }

        # Streaming state — all O(1) or bounded-window memory.
        self.latency = StreamingSummary(config.percentiles)
        self.slo = WindowedRate(window=config.slo_window)
        self.cost = StreamingMoments()
        self.slack = StreamingMoments()
        self._lat_windows: dict[str, deque[tuple[float, int]]] = {
            name: deque(maxlen=config.latency_window)
            for name in self.workflow.chain
        }
        self.events = EventLog(config.event_log)
        self.arrivals = 0
        self.completed = 0
        self.swaps = 0
        self._in_flight: set[asyncio.Task[None]] = set()
        self._workset_scale = 1.0

    # -- request construction ----------------------------------------------
    def _flag_drift(self, _supervisor: HitMissSupervisor) -> None:
        self._drift_flagged = True

    def _scale_for(self, index: int) -> float:
        scale = 1.0
        for after_n, s in self.config.workset_schedule:
            if index >= after_n:
                scale = s
        return scale

    def _make_request(self, index: int, arrival_ms: float) -> WorkflowRequest:
        # Mirrors :func:`repro.traces.workload.generate_requests`: dynamics
        # are drawn per request in arrival order from per-stage streams, so
        # the stream is identical however the loop is paced or adapted.
        self._workset_scale = self._scale_for(index)
        dynamics = {}
        for name in self.workflow.dag.nodes:
            model = self.workflow.model(name)
            dyn = model.sample_dynamics(self._stage_rngs[name])
            if self._workset_scale != 1.0:
                dyn = type(dyn)(
                    workset=dyn.workset * self._workset_scale,
                    noise_z=dyn.noise_z,
                    interference=dyn.interference,
                )
            dynamics[name] = dyn
        return WorkflowRequest(
            request_id=index,
            arrival_ms=arrival_ms,
            slo_ms=self.slo_ms,
            stage_dynamics=dynamics,
            concurrency=1,
            workflow=self.workflow.name,
        )

    # -- serving ------------------------------------------------------------
    async def _serve(
        self, request: WorkflowRequest, rtt_ms: float = 0.0
    ) -> None:
        chain = self.workflow.chain
        limits = self.workflow.limits
        self.policy.begin_request(request)
        elapsed = 0.0
        stages: list[StageRecord] = []
        for fname in chain:
            size = self.policy.size_for_node(fname, request, elapsed)
            size = limits.clamp(size)
            model = self.workflow.model(fname)
            exec_ms = model.execution_time(
                size, request.dynamics_for(fname), request.concurrency
            )
            # A remote-routed request pays the cross-region hop as a
            # timeline shift (same law as the batch fleet evaluator):
            # e2e latency grows by exactly the RTT while the sizing walk
            # — like the executors in a sweep cell — never sees it.
            start = request.arrival_ms + rtt_ms + elapsed
            stages.append(
                StageRecord(
                    function=fname, size=size, start_ms=start,
                    end_ms=start + exec_ms,
                )
            )
            elapsed += exec_ms
            self._lat_windows[fname].append((exec_ms, size))
            if self.config.time_scale > 0:
                await asyncio.sleep(
                    exec_ms / 1000.0 / self.config.time_scale
                )
            else:
                # Cooperative yield: other requests advance one stage per
                # scheduler round, so the service genuinely interleaves.
                await asyncio.sleep(0)
        self.policy.end_request(request)
        outcome = RequestOutcome(
            request_id=request.request_id,
            arrival_ms=request.arrival_ms,
            slo_ms=request.slo_ms,
            stages=stages,
        )
        self._on_complete(outcome)

    def _on_complete(self, outcome: RequestOutcome) -> None:
        self.completed += 1
        self.latency.add(outcome.e2e_ms)
        self.slo.add(outcome.slo_met)
        self.cost.add(outcome.allocated_millicores)
        self.slack.add(outcome.slack)
        self.events.emit(
            "decision",
            request_id=outcome.request_id,
            e2e_ms=round(outcome.e2e_ms, 3),
            slo_met=outcome.slo_met,
            allocated_millicores=outcome.allocated_millicores,
            sizes=outcome.sizes(),
        )
        if self._drift_flagged and self.config.adapt:
            self._resynthesize()
        if self.completed % self.config.metrics_every == 0:
            self.events.emit("snapshot", **self.snapshot())

    # -- adaptation ----------------------------------------------------------
    def _drift_ratios(self) -> dict[str, float]:
        """Per-function latency multiplier vs the deployed profiles.

        Estimated from the recent (exec_ms, size) window as the mean
        ratio against the profile's median latency at the same size — a
        stand-in for the developer re-profiling on representative drifted
        inputs (paper §III-D).
        """
        ratios = {}
        for fname in self.workflow.chain:
            window = self._lat_windows[fname]
            prof = self.profiles[fname]
            samples = []
            for exec_ms, size in window:
                expected = prof.latency(50.0, size)
                if expected > 0:
                    samples.append(exec_ms / expected)
            ratios[fname] = (
                sum(samples) / len(samples) if samples else 1.0
            )
        return ratios

    def _resynthesize(self) -> None:
        self._drift_flagged = False
        if self.adapter is None:
            return
        ratios = self._drift_ratios()
        scaled = {}
        for fname in self.workflow.chain:
            prof = self.profiles[fname]
            scaled[fname] = LatencyProfile(
                function=prof.function,
                percentiles=prof.percentiles,
                limits=prof.limits,
                concurrencies=prof.concurrencies,
                table=prof.table * ratios[fname],
            )
        exploration = JANUS_EXPLORATIONS.get(
            self.config.policy, HeadExploration.HEAD_ONLY
        )
        # budget=None: the Eq. 3 feasible range is recomputed from the
        # drifted tables, which is what moves the covered budgets back
        # over the traffic (the disk memo absorbs repeat synthesis).
        new_hints = synthesize_hints(
            ProfileSet(scaled),
            self.workflow.chain,
            budget=None,
            exploration=exploration,
            workflow_name=self.workflow.name,
        )
        in_flight = max(0, len(self._in_flight) - 1)  # minus the completer
        self.adapter.replace_hints(new_hints)  # resets the supervisor
        self.profiles = ProfileSet(
            {**{f: self.profiles[f] for f in self.profiles.functions()},
             **scaled}
        )
        # Fresh windows: the next estimate (if drift persists) should be
        # measured against the tables just deployed, not diluted by
        # samples that predate the swap.
        for window in self._lat_windows.values():
            window.clear()
        self.swaps += 1
        self.events.emit(
            "swap",
            swap=self.swaps,
            completed=self.completed,
            in_flight=in_flight,
            ratios={f: round(r, 4) for f, r in ratios.items()},
        )

    # -- metrics -------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Live metrics as a plain dict (percentile_summary-compatible
        latency keys plus SLO attainment, cost and miss-rate counters)."""
        if self.completed == 0:
            raise ExperimentError("no completed requests to snapshot yet")
        out = self.latency.snapshot()
        out["arrivals"] = float(self.arrivals)
        out["completed"] = float(self.completed)
        out["in_flight"] = float(len(self._in_flight))
        out["slo_attainment"] = self.slo.rate
        out["slo_attainment_windowed"] = self.slo.windowed_rate
        out["violation_rate"] = 1.0 - self.slo.rate
        out["mean_allocated_millicores"] = self.cost.mean
        out["total_millicore_cost"] = self.cost.total
        out["mean_slack"] = self.slack.mean
        out["swaps"] = float(self.swaps)
        if self.adapter is not None:
            sup = self.adapter.supervisor
            out["miss_rate"] = sup.miss_rate
            out["cumulative_miss_rate"] = sup.cumulative_miss_rate
        else:
            out["miss_rate"] = 0.0
        if self.router is not None and self.router.routed:
            # Fleet accounting, mirroring the sweep extras' fixed keys.
            router = self.router
            out["fleet_spillovers"] = float(router.spillovers)
            out["fleet_failovers"] = float(router.failovers)
            out["fleet_remote_fraction"] = (
                (router.spillovers + router.failovers) / router.routed
            )
            out["fleet_rtt_penalty_ms"] = (
                router.rtt_total_ms / router.routed
            )
            for region, name in enumerate(self.fleet.regions):
                out[f"fleet_share_{name}"] = (
                    router.region_counts[region] / router.routed
                )
        return out

    # -- main loop -----------------------------------------------------------
    async def run(self) -> ServingReport:
        """Serve until a bound trips; returns the final report."""
        cfg = self.config
        t0 = time.perf_counter()
        start_fields: dict[str, _t.Any] = dict(
            workflow=self.workflow.name,
            policy=self.policy.name,
            source=cfg.source.label,
            slo_ms=self.slo_ms,
            seed=cfg.seed,
            time_scale=cfg.time_scale,
        )
        if self.fleet is not None:
            start_fields["fleet"] = self.fleet.label
            start_fields["routing"] = self.fleet.routing
        self.events.emit("start", **start_fields)
        if cfg.faults is not None:
            self.events.emit(
                "fault",
                fault=cfg.faults.label,
                fault_kind=cfg.faults.kind,
                effective_source=self.effective_source.label,
            )
        try:
            for arrival_ms, home in self._arrivals:
                if (
                    cfg.max_requests is not None
                    and self.arrivals >= cfg.max_requests
                ):
                    break
                if (
                    cfg.max_seconds is not None
                    and time.perf_counter() - t0 >= cfg.max_seconds
                ):
                    break
                if cfg.time_scale > 0:
                    target = t0 + arrival_ms / 1000.0 / cfg.time_scale
                    delay = target - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                rtt_ms = 0.0
                served = home
                if self.router is not None:
                    served, rtt_ms = self.router.route(home, arrival_ms)
                request = self._make_request(self.arrivals, arrival_ms)
                self.arrivals += 1
                if self.fleet is not None:
                    self.events.emit(
                        "arrival",
                        request_id=request.request_id,
                        arrival_ms=round(arrival_ms, 3),
                        workset_scale=self._workset_scale,
                        home=self.fleet.regions[home],
                        served=self.fleet.regions[served],
                        rtt_ms=rtt_ms,
                    )
                else:
                    self.events.emit(
                        "arrival",
                        request_id=request.request_id,
                        arrival_ms=round(arrival_ms, 3),
                        workset_scale=self._workset_scale,
                    )
                task = asyncio.ensure_future(self._serve(request, rtt_ms))
                self._in_flight.add(task)
                task.add_done_callback(self._in_flight.discard)
                await asyncio.sleep(0)
            # Drain: no request is dropped — every ingested arrival
            # completes, including those mid-flight during a hot swap.
            while self._in_flight:
                await asyncio.gather(*list(self._in_flight))
            snapshot = self.snapshot()
            self.events.emit("snapshot", **snapshot)
            wall = time.perf_counter() - t0
            self.events.emit(
                "stop",
                arrivals=self.arrivals,
                completed=self.completed,
                swaps=self.swaps,
                wall_seconds=round(wall, 3),
            )
            return ServingReport(
                workflow=self.workflow.name,
                policy=self.policy.name,
                source=cfg.source.label,
                arrivals=self.arrivals,
                completed=self.completed,
                dropped=self.arrivals - self.completed,
                swaps=self.swaps,
                snapshot=snapshot,
                wall_seconds=wall,
            )
        finally:
            self.events.close()


def run_service(
    config: ServingConfig,
    workflow: Workflow | None = None,
    profiles: ProfileSet | None = None,
) -> ServingReport:
    """Build a :class:`ServingLoop` and run it to completion."""
    loop = ServingLoop(config, workflow=workflow, profiles=profiles)
    return asyncio.run(loop.run())
