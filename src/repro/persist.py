"""Shared helpers for the content-addressed disk caches.

Three modules persist derived artifacts under a cache directory — solved
DP tables (:mod:`repro.synthesis.dp`), condensed hints
(:mod:`repro.synthesis.generator`) and sweep cells
(:mod:`repro.scenarios.cache`). They share two invariants, implemented
once here:

* filenames are version-salted content digests, so a package upgrade
  invalidates every entry wholesale without any schema negotiation;
* writes are temp-file + :func:`os.replace`, so concurrent pool workers
  and interrupted runs can never leave a torn entry for a later reader.

This module sits at the package root because both the synthesis and the
scenarios layers need it and scenarios already imports synthesis (the
reverse import would cycle).
"""

from __future__ import annotations

import hashlib
import os
import tempfile

__all__ = ["version_salted_digest", "atomic_write_bytes"]


def version_salted_digest(key: object) -> str:
    """SHA-256 of ``repr(key)`` salted with ``repro.__version__``.

    ``key`` must have a stable, content-complete ``repr`` (tuples of
    digests, ints and strings do). The version salt makes solver or
    synthesizer changes invalidate old entries by construction.
    """
    import repro  # lazy: this module is imported during package init

    return hashlib.sha256(
        repr((repro.__version__, key)).encode("utf-8")
    ).hexdigest()


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` without ever exposing a torn file."""
    directory = os.path.dirname(path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
