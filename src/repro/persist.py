"""Shared helpers for the content-addressed disk caches.

Three modules persist derived artifacts under a cache directory — solved
DP tables (:mod:`repro.synthesis.dp`), condensed hints
(:mod:`repro.synthesis.generator`) and sweep cells
(:mod:`repro.scenarios.cache`). They share two invariants, implemented
once here:

* filenames are version-salted content digests, so a package upgrade
  invalidates every entry wholesale without any schema negotiation;
* writes are temp-file + :func:`os.replace`, so concurrent pool workers
  and interrupted runs can never leave a torn entry for a later reader.

This module sits at the package root because both the synthesis and the
scenarios layers need it and scenarios already imports synthesis (the
reverse import would cycle).
"""

from __future__ import annotations

import collections
import hashlib
import os
import tempfile
import typing as _t

__all__ = [
    "content_digest",
    "version_salted_digest",
    "atomic_write_bytes",
    "DiskBackedMemo",
]


def content_digest(data: bytes) -> str:
    """Plain SHA-256 of ``data`` — *not* version-salted.

    For artifacts whose identity is their content alone (e.g. workload
    trace files): the same bytes must digest identically across package
    versions, because the digest names the data, not a derived result.
    Derived caches should keep using :func:`version_salted_digest`.
    """
    return hashlib.sha256(data).hexdigest()


def version_salted_digest(key: object) -> str:
    """SHA-256 of ``repr(key)`` salted with ``repro.__version__``.

    ``key`` must have a stable, content-complete ``repr`` (tuples of
    digests, ints and strings do). The version salt makes solver or
    synthesizer changes invalidate old entries by construction.
    """
    import repro  # lazy: this module is imported during package init

    return hashlib.sha256(
        repr((repro.__version__, key)).encode("utf-8")
    ).hexdigest()


class DiskBackedMemo:
    """Bounded in-memory LRU memo with an optional disk layer behind it.

    The shared shape of the three synthesis-artifact caches (solved DP
    tables, chain hints, DAG hints): a process-wide ``OrderedDict`` memo
    in front of an optional directory of version-salted content-digest
    files, with ``memory_hits`` / ``disk_hits`` / miss counters and
    write-through so a memo warmed before the disk layer was attached
    still persists for pool workers to share.

    Serialisation stays with the caller: :meth:`get` takes ``load(path)``
    (return the value or ``None`` for an absent/torn entry — swallow your
    own format's exceptions) and ``store(path, value)`` (use
    :func:`atomic_write_bytes`) callbacks alongside the ``compute``
    thunk.
    """

    def __init__(
        self,
        miss_counter: str,
        max_entries: int = 64,
        suffix: str = ".json",
    ) -> None:
        self._cache: "collections.OrderedDict[tuple, _t.Any]" = (
            collections.OrderedDict()
        )
        self._max = int(max_entries)
        self._suffix = suffix
        self._dir: str | None = None
        self._miss_counter = miss_counter
        self._stats = {"memory_hits": 0, "disk_hits": 0, miss_counter: 0}

    def set_dir(self, path: str | os.PathLike[str] | None) -> None:
        """Attach (or detach, with ``None``) the disk layer."""
        self._dir = None if path is None else os.fspath(path)

    def dir(self) -> str | None:
        """The attached disk-layer directory (``None`` = detached)."""
        return self._dir

    def stats(self) -> dict[str, int]:
        """Copy of the process-wide hit/miss counters."""
        return dict(self._stats)

    def clear(self) -> None:
        """Drop the in-memory memo (a configured disk layer keeps its
        files — delete the directory to cold-start it)."""
        self._cache.clear()

    def _path(self, key: tuple) -> str:
        assert self._dir is not None
        return os.path.join(
            self._dir, f"{version_salted_digest(key)}{self._suffix}"
        )

    def get(
        self,
        key: tuple,
        compute: _t.Callable[[], _t.Any],
        load: _t.Callable[[str], _t.Any] | None = None,
        store: _t.Callable[[str, _t.Any], None] | None = None,
    ) -> _t.Any:
        """The memoised value for ``key``: memory, then disk, then live.

        A live ``compute`` also populates the disk layer; a memory hit
        write-through-persists when its file is missing. Values are
        shared objects — callers must treat them as read-only.
        """
        value = self._cache.get(key)
        if value is not None:
            self._stats["memory_hits"] += 1
            self._cache.move_to_end(key)
            if (
                self._dir is not None
                and store is not None
                and not os.path.exists(self._path(key))
            ):
                store(self._path(key), value)
            return value
        if self._dir is not None and load is not None:
            value = load(self._path(key))
        if value is None:
            value = compute()
            self._stats[self._miss_counter] += 1
            if self._dir is not None and store is not None:
                store(self._path(key), value)
        else:
            self._stats["disk_hits"] += 1
        self._cache[key] = value
        if len(self._cache) > self._max:
            self._cache.popitem(last=False)
        return value


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` without ever exposing a torn file."""
    # A bare filename has an empty dirname; mkstemp and makedirs both
    # need the concrete current directory instead.
    directory = os.path.dirname(path) or os.curdir
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
