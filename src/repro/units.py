"""Unit conventions and conversion helpers.

The whole library uses two base units:

* **time** — milliseconds, as ``float`` (the paper's hint tables use a 1 ms
  budget grid, so milliseconds keep the grid integral);
* **CPU** — millicores, as ``int`` (Kubernetes-style: 1000 millicores = 1
  physical core; the paper sweeps 1000..3000 in steps of 100).

Helpers here are intentionally tiny and total: they validate their input and
raise :class:`~repro.errors.ConfigError` rather than silently producing
nonsense.
"""

from __future__ import annotations

from .errors import ConfigError

__all__ = [
    "MS_PER_SECOND",
    "MILLICORES_PER_CORE",
    "seconds_to_ms",
    "ms_to_seconds",
    "cores_to_millicores",
    "millicores_to_cores",
    "validate_positive",
    "validate_non_negative",
]

MS_PER_SECOND: float = 1000.0
MILLICORES_PER_CORE: int = 1000


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) * MS_PER_SECOND


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return float(ms) / MS_PER_SECOND


def cores_to_millicores(cores: float) -> int:
    """Convert (possibly fractional) cores to integral millicores."""
    return int(round(float(cores) * MILLICORES_PER_CORE))


def millicores_to_cores(millicores: int) -> float:
    """Convert millicores to fractional cores."""
    return float(millicores) / MILLICORES_PER_CORE


def validate_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ConfigError``."""
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")
    return value


def validate_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ``ConfigError``."""
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {value!r}")
    return value
