"""Fig. 9 — resource consumption under varying SLOs.

Paper claims: sweeping the SLO (IA 3-7 s, VA 1.5-2.0 s), Janus outperforms
ORION by 16.1% / 22.2% and GrandSLAM by 24.1% / 27.7% on average (normalised
by Optimal), with the gains narrowing at loose SLOs where every system
approaches the 1000-millicore floor.

The sweep itself is now a thin :class:`~repro.scenarios.ScenarioMatrix`
per workflow — absolute SLOs become multipliers on the workflow's default
SLO and the scenario engine owns seeding, profiling reuse, and (optionally
parallel) execution; this module only reshapes the sweep report into the
figure's series.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError
from ..metrics.report import format_table
from ..scenarios.matrix import ScenarioMatrix
from ..scenarios.runner import SweepRunner
from ..traces.workload import ArrivalSpec
from ..workflow.catalog import intelligent_assistant, video_analytics
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, IA_SETTINGS, VA_BUDGET

__all__ = ["Fig9Result", "run", "render"]

SYSTEMS = ["Optimal", "ORION", "GrandSLAM", "Janus"]


@dataclass(frozen=True)
class Fig9Result:
    """Normalised CPU per (workflow, SLO, system)."""

    series: dict[str, dict[float, dict[str, float]]]  # wf -> slo_s -> system -> norm CPU

    def mean_gain_pct(self, workflow: str, baseline: str) -> float:
        """Mean (over SLOs) reduction of Janus vs ``baseline``, % of Optimal."""
        gains = []
        for per_system in self.series[workflow].values():
            if baseline in per_system and "Janus" in per_system:
                gains.append(100.0 * (per_system[baseline] - per_system["Janus"]))
        return sum(gains) / len(gains) if gains else float("nan")


def run(
    ia_slos_s: tuple[float, ...] = (3.0, 3.25, 3.5, 3.75, 4.0, 4.5, 5.0, 6.0, 7.0),
    va_slos_s: tuple[float, ...] = (1.5, 1.6, 1.7, 1.8, 1.9, 2.0),
    n_requests: int = 400,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    max_workers: int | None = 1,
) -> Fig9Result:
    """SLO sweeps for IA and VA with the Fig. 9 systems.

    ``max_workers`` > 1 runs each workflow's matrix on a process pool;
    results are bit-identical to the serial run (the sweep engine's
    determinism contract).
    """
    runner = SweepRunner(max_workers=max_workers)
    base_slo = {
        "IA": float(intelligent_assistant().slo_ms),
        "VA": float(video_analytics().slo_ms),
    }
    # The paper's pinned per-workflow budget ranges (§V-A); the scenario
    # runner extends tmax to the cell's SLO exactly as ia_setup/va_setup do.
    budgets = {
        "IA": (IA_SETTINGS[1][1].tmin_ms, IA_SETTINGS[1][1].tmax_ms),
        "VA": (VA_BUDGET.tmin_ms, VA_BUDGET.tmax_ms),
    }
    series: dict[str, dict[float, dict[str, float]]] = {"IA": {}, "VA": {}}
    for wf_name, slos in (("IA", ia_slos_s), ("VA", va_slos_s)):
        matrix = ScenarioMatrix(
            workflows=(wf_name,),
            arrivals=(ArrivalSpec(kind="constant"),),
            slo_scales=tuple(s * 1000.0 / base_slo[wf_name] for s in slos),
            policies=tuple(SYSTEMS),
            # Pin the paper's normalisation: if Optimal is ever infeasible
            # in a cell, the cell dies and trips the 1:1 guard below rather
            # than silently renormalising by the first surviving system.
            baseline="Optimal",
            n_requests=n_requests,
            samples=samples,
            seed=seed,
            budgets=budgets,
        )
        report = runner.run(matrix)
        # Expansion order is the slo_scales order, so surviving cells map
        # 1:1 to SLOs — but only if no cell was skipped; a dropped cell
        # would silently shift the pairing, so it is a hard error here.
        if len(report.results) != len(slos):
            raise ExperimentError(
                f"fig9 {wf_name}: {len(slos)} SLOs but "
                f"{len(report.results)} evaluated cells "
                f"(skipped: {sorted(report.skipped)})"
            )
        for slo_s, cell in zip(slos, report.results):
            series[wf_name][slo_s] = {
                name: cell.metric(name, "normalized_cpu") for name in cell.table
            }
    return Fig9Result(series=series)


def render(result: Fig9Result) -> str:
    """Normalised CPU per SLO for both workflows."""
    blocks = []
    for wf_name, per_slo in result.series.items():
        systems = sorted({s for d in per_slo.values() for s in d})
        rows = [
            tuple([slo] + [per_slo[slo].get(s, float("nan")) for s in systems])
            for slo in sorted(per_slo)
        ]
        blocks.append(
            format_table(
                ["SLO (s)"] + systems,
                rows,
                title=f"Fig 9: {wf_name} CPU normalised by Optimal",
            )
        )
        blocks.append(
            f"mean Janus gain vs ORION: "
            f"{result.mean_gain_pct(wf_name, 'ORION'):.1f}% "
            f"(paper: {'16.1' if wf_name == 'IA' else '22.2'}%); "
            f"vs GrandSLAM: {result.mean_gain_pct(wf_name, 'GrandSLAM'):.1f}% "
            f"(paper: {'24.1' if wf_name == 'IA' else '27.7'}%)"
        )
    return "\n\n".join(blocks)
