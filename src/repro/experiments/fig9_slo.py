"""Fig. 9 — resource consumption under varying SLOs.

Paper claims: sweeping the SLO (IA 3-7 s, VA 1.5-2.0 s), Janus outperforms
ORION by 16.1% / 22.2% and GrandSLAM by 24.1% / 27.7% on average (normalised
by Optimal), with the gains narrowing at loose SLOs where every system
approaches the 1000-millicore floor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..runtime.driver import build_policy_suite, run_policies
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["Fig9Result", "run", "render"]

SYSTEMS = ["Optimal", "ORION", "GrandSLAM", "Janus"]


@dataclass(frozen=True)
class Fig9Result:
    """Normalised CPU per (workflow, SLO, system)."""

    series: dict[str, dict[float, dict[str, float]]]  # wf -> slo_s -> system -> norm CPU

    def mean_gain_pct(self, workflow: str, baseline: str) -> float:
        """Mean (over SLOs) reduction of Janus vs ``baseline``, % of Optimal."""
        gains = []
        for per_system in self.series[workflow].values():
            if baseline in per_system and "Janus" in per_system:
                gains.append(100.0 * (per_system[baseline] - per_system["Janus"]))
        return sum(gains) / len(gains) if gains else float("nan")


def run(
    ia_slos_s: tuple[float, ...] = (3.0, 3.25, 3.5, 3.75, 4.0, 4.5, 5.0, 6.0, 7.0),
    va_slos_s: tuple[float, ...] = (1.5, 1.6, 1.7, 1.8, 1.9, 2.0),
    n_requests: int = 400,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Fig9Result:
    """SLO sweeps for IA and VA with the Fig. 9 systems."""
    series: dict[str, dict[float, dict[str, float]]] = {"IA": {}, "VA": {}}
    for wf_name, slos in (("IA", ia_slos_s), ("VA", va_slos_s)):
        for slo_s in slos:
            if wf_name == "IA":
                wf, profiles, budget = ia_setup(
                    slo_ms=slo_s * 1000.0, samples=samples, seed=seed
                )
            else:
                wf, profiles, budget = va_setup(
                    slo_ms=slo_s * 1000.0, samples=samples, seed=seed
                )
            suite = build_policy_suite(
                wf, profiles, budget=budget, include=SYSTEMS
            )
            requests = generate_requests(
                wf,
                WorkloadConfig(n_requests=n_requests),
                seed=seed + int(slo_s * 10),
            )
            results = run_policies(wf, suite, requests)
            optimal = results["Optimal"]
            series[wf_name][slo_s] = {
                name: res.normalized_cpu(optimal) for name, res in results.items()
            }
    return Fig9Result(series=series)


def render(result: Fig9Result) -> str:
    """Normalised CPU per SLO for both workflows."""
    blocks = []
    for wf_name, per_slo in result.series.items():
        systems = sorted({s for d in per_slo.values() for s in d})
        rows = [
            tuple([slo] + [per_slo[slo].get(s, float("nan")) for s in systems])
            for slo in sorted(per_slo)
        ]
        blocks.append(
            format_table(
                ["SLO (s)"] + systems,
                rows,
                title=f"Fig 9: {wf_name} CPU normalised by Optimal",
            )
        )
        blocks.append(
            f"mean Janus gain vs ORION: "
            f"{result.mean_gain_pct(wf_name, 'ORION'):.1f}% "
            f"(paper: {'16.1' if wf_name == 'IA' else '22.2'}%); "
            f"vs GrandSLAM: {result.mean_gain_pct(wf_name, 'GrandSLAM'):.1f}% "
            f"(paper: {'24.1' if wf_name == 'IA' else '27.7'}%)"
        )
    return "\n\n".join(blocks)
