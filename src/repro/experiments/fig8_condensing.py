"""Fig. 8 + §V-F — effectiveness of hints condensing.

Paper claims: after condensing, IA carries fewer than 147 hints (across the
three concurrency levels) and VA fewer than 96 — compression ratios up to
99.6% / 98.2% — and table sizes shrink as the head weight grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..synthesis.generator import synthesize_hints
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["Fig8Result", "run", "render"]


@dataclass(frozen=True)
class Fig8Result:
    """Hint counts per (workflow, concurrency, weight)."""

    counts: dict[tuple[str, int, float], int]  # condensed hint rows
    raw_counts: dict[tuple[str, int, float], int]
    compression: dict[tuple[str, int, float], float]


def run(
    weights: tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0),
    ia_concurrencies: tuple[int, ...] = (1, 2, 3),
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Fig8Result:
    """Synthesize tables for every (workflow, concurrency, weight)."""
    counts: dict[tuple[str, int, float], int] = {}
    raw: dict[tuple[str, int, float], int] = {}
    comp: dict[tuple[str, int, float], float] = {}

    def record(key, hints) -> None:
        counts[key] = hints.condensed_hint_count
        raw[key] = hints.raw_hint_count
        comp[key] = hints.compression_ratio

    for conc in ia_concurrencies:
        wf, profiles, budget = ia_setup(
            concurrency=conc, samples=samples, seed=seed
        )
        for w in weights:
            hints = synthesize_hints(
                profiles, wf.chain, budget=budget, concurrency=conc, weight=w,
                workflow_name="IA",
            )
            record(("IA", conc, w), hints)
    wf, profiles, budget = va_setup(samples=samples, seed=seed)
    for w in weights:
        hints = synthesize_hints(
            profiles, wf.chain, budget=budget, weight=w, workflow_name="VA"
        )
        record(("VA", 1, w), hints)
    return Fig8Result(counts=counts, raw_counts=raw, compression=comp)


def render(result: Fig8Result) -> str:
    """Hint counts and compression ratios."""
    rows = [
        (wf, conc, w, result.raw_counts[key], result.counts[key],
         result.compression[key])
        for key in sorted(result.counts)
        for wf, conc, w in [key]
    ]
    table = format_table(
        ["workflow", "conc", "weight", "raw hints", "condensed", "compression"],
        rows,
        title="Fig 8: hint counts before/after condensing",
    )
    ia_total = {
        w: sum(
            result.counts[k] for k in result.counts
            if k[0] == "IA" and k[2] == w
        )
        for w in sorted({k[2] for k in result.counts})
    }
    va_total = {
        w: sum(
            result.counts[k] for k in result.counts
            if k[0] == "VA" and k[2] == w
        )
        for w in sorted({k[2] for k in result.counts})
    }
    return table + (
        f"\nIA condensed totals by weight: {ia_total} (paper: < 147)"
        f"\nVA condensed totals by weight: {va_total} (paper: < 96)"
    )
