"""Extension experiment — branching (DAG) workflows (paper §VII).

Compares Janus-DAG (per-function hint tables over downstream critical
paths) against uniform early binding on a diamond-shaped media workflow,
verifying the late-binding advantage carries over to parallel branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..functions.model import FunctionModel, Resource
from ..functions.worksets import LogUniformWorkset
from ..metrics.report import format_table
from ..policies.registry import POLICIES
from ..profiling.profiler import Profiler, ProfilerConfig
from ..profiling.profiles import ProfileSet
from ..rng import RngFactory
from ..runtime.registry import resolve_executor
from ..traces.workload import WorkloadConfig, generate_requests
from ..workflow.catalog import Workflow
from ..workflow.dag import WorkflowDAG
from .common import DEFAULT_SAMPLES, DEFAULT_SEED

__all__ = ["DagExtensionResult", "run", "render", "diamond_workflow"]


def diamond_workflow(slo_ms: float = 2400.0) -> Workflow:
    """Ingest -> (Vision heavy | Audio light) -> Publish."""
    dag = WorkflowDAG(
        ["Ingest", "Vision", "Audio", "Publish"],
        [("Ingest", "Vision"), ("Ingest", "Audio"),
         ("Vision", "Publish"), ("Audio", "Publish")],
    )
    clips = LogUniformWorkset(5.0, 120.0)
    functions = {
        "Ingest": FunctionModel(
            name="Ingest", serial_ms=50, parallel_ms=250, sigma=0.08,
            workset=clips, workset_gamma=0.25, dominant_resource=Resource.IO,
        ),
        "Vision": FunctionModel(
            name="Vision", serial_ms=120, parallel_ms=680, sigma=0.10,
            workset=clips, workset_gamma=0.35, dominant_resource=Resource.CPU,
        ),
        "Audio": FunctionModel(
            name="Audio", serial_ms=40, parallel_ms=180, sigma=0.08,
            workset=clips, workset_gamma=0.20, dominant_resource=Resource.CPU,
        ),
        "Publish": FunctionModel(
            name="Publish", serial_ms=60, parallel_ms=260, sigma=0.08,
            workset=clips, workset_gamma=0.15,
            dominant_resource=Resource.NETWORK,
        ),
    }
    return Workflow(name="media", dag=dag, functions=functions, slo_ms=slo_ms)


@dataclass(frozen=True)
class DagExtensionResult:
    """Per-policy metrics on the diamond workflow."""

    rows: list[tuple[str, float, float, float]]  # (name, cpu, p99, viol)
    hit_rate: float
    critical_path: tuple[str, ...]
    saving_pct: float


def run(
    n_requests: int = 500,
    slo_ms: float = 2000.0,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> DagExtensionResult:
    """Run Janus-DAG vs uniform early binding on the diamond."""
    workflow = diamond_workflow(slo_ms)
    cfg = ProfilerConfig(limits=workflow.limits, samples=samples)
    profiler = Profiler(cfg)
    factory = RngFactory(seed).fork("ext-dag")
    profiles = ProfileSet({
        name: profiler.profile_function(
            workflow.model(name), factory.stream(name)
        )
        for name in workflow.dag.nodes
    })
    # Topology-aware registry dispatch: "Janus"/"GrandSLAM" resolve to the
    # per-function-table and uniform-critical-path DAG variants here; this
    # experiment labels them with the topology suffix its report uses.
    janus_pol = POLICIES.build("Janus", workflow, profiles, label="Janus-DAG")
    early_pol = POLICIES.build(
        "GrandSLAM", workflow, profiles, label="GrandSLAM-DAG"
    )
    requests = generate_requests(
        workflow, WorkloadConfig(n_requests=n_requests), seed=seed + 1
    )
    executor = resolve_executor(workflow)
    rows = []
    results = {}
    for policy in (janus_pol, early_pol):
        res = executor.run(policy, requests)
        results[policy.name] = res
        rows.append(
            (policy.name, res.mean_allocated, res.e2e_percentile(99),
             res.violation_rate)
        )
    saving = 1.0 - (
        results["Janus-DAG"].mean_allocated
        / results["GrandSLAM-DAG"].mean_allocated
    )
    return DagExtensionResult(
        rows=rows,
        hit_rate=janus_pol.hit_rate,
        critical_path=tuple(workflow.chain),
        saving_pct=100.0 * saving,
    )


def render(result: DagExtensionResult) -> str:
    """DAG extension comparison table."""
    table = format_table(
        ["policy", "mean CPU (mc)", "P99 E2E (ms)", "viol."],
        result.rows,
        title=(
            "Extension: branching workflow (critical path "
            f"{' -> '.join(result.critical_path)})"
        ),
    )
    return table + (
        f"\nJanus-DAG saves {result.saving_pct:.1f}% CPU "
        f"(hit rate {result.hit_rate:.1%})"
    )
