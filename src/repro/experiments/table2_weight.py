"""Table II + §V-E — impact of the head-function weight.

Paper claims: with a higher head weight (3 vs 1) Janus decreases both the
head function's allocation (1442.9 -> 1228.6 millicores) and its chosen
percentile (94.4 -> 91.3%); under tight SLOs the moderate weight (1) is
cheaper overall, under loose SLOs the higher weight wins slightly.

The paper sweeps SLOs 4-10 s; with this reproduction's calibration the IA
sizing problem becomes trivial (all functions at Kmin) above ~4.5 s, so the
sweep covers the non-trivial 3-4 s band instead — the head decisions the
table reports are only meaningful while the SLO binds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.report import format_table
from ..policies.janus import janus
from ..runtime.registry import resolve_executor
from ..synthesis.dp import ChainDP
from ..synthesis.generator import HintSynthesizer, SynthesisConfig
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["Table2Result", "run", "render"]


@dataclass(frozen=True)
class Table2Result:
    """Head-function size/percentile and total CPU per weight and SLO."""

    weights: tuple[float, ...]
    slos_s: tuple[float, ...]
    head_cpu: dict[float, float]  # weight -> mean head millicores
    head_percentile: dict[float, float]  # weight -> mean head percentile
    total_cpu: dict[float, dict[float, float]]  # weight -> slo -> mean CPU


def run(
    weights: tuple[float, ...] = (1.0, 3.0),
    slos_s: tuple[float, ...] = (3.0, 3.2, 3.4, 3.6, 3.8, 4.0),
    n_requests: int = 300,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Table2Result:
    """Sweep SLOs for each weight; collect head decisions and total CPU."""
    head_cpu: dict[float, list[float]] = {w: [] for w in weights}
    head_pct: dict[float, list[float]] = {w: [] for w in weights}
    total: dict[float, dict[float, float]] = {w: {} for w in weights}
    for slo_s in slos_s:
        wf, profiles, budget = ia_setup(
            slo_ms=slo_s * 1000.0, samples=samples, seed=seed
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed + int(slo_s)
        )
        executor = resolve_executor(wf)
        dp = ChainDP(profiles.for_chain(wf.chain), budget.tmax_ms)
        for w in weights:
            synth = HintSynthesizer(
                profiles, wf.chain, SynthesisConfig(weight=w)
            )
            raw0 = synth.synthesize_suffix(0, dp, budget)
            entry = raw0.at(int(wf.slo_ms))
            if entry is not None:
                size, pct = entry
                head_cpu[w].append(size)
                head_pct[w].append(pct)
            pol = janus(wf, profiles, budget=budget, weight=w)
            res = executor.run(pol, requests)
            total[w][slo_s] = res.mean_allocated
    return Table2Result(
        weights=tuple(weights),
        slos_s=tuple(slos_s),
        head_cpu={w: float(np.mean(v)) for w, v in head_cpu.items()},
        head_percentile={w: float(np.mean(v)) for w, v in head_pct.items()},
        total_cpu=total,
    )


def render(result: Table2Result) -> str:
    """Table II analogue plus the per-SLO totals."""
    rows = [
        (
            f"weight={w:g}",
            result.head_cpu[w],
            result.head_percentile[w],
        )
        for w in result.weights
    ]
    t2 = format_table(
        ["config", "head CPU (millicores)", "head percentile (%)"],
        rows,
        title="Table II: head-function decisions (mean over SLO sweep)",
        float_fmt="{:.1f}",
    )
    sweep_rows = [
        tuple([f"{slo:.1f}"] + [result.total_cpu[w][slo] for w in result.weights])
        for slo in result.slos_s
    ]
    sweep = format_table(
        ["SLO (s)"] + [f"CPU w={w:g}" for w in result.weights],
        sweep_rows,
        title="§V-E: total CPU vs SLO per weight",
        float_fmt="{:.0f}",
    )
    return t2 + "\n\n" + sweep
