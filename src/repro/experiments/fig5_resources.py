"""Table I + Fig. 5 — resource consumption of all systems.

Paper claims:

* Table I (concurrency 1): Janus reduces resources, normalised by Optimal,
  by 22.6% vs ORION, 31.3% vs GrandSLAM(+), 2.9% vs Janus-, ~0% vs Janus+
  on IA; 26.9 / 35.2 / 32.4 / 4.7 / -0.2% on VA.
* Fig. 5a: absolute millicore consumption per system for IA and VA.
* Fig. 5b: at concurrency 2 and 3 (SLOs 4/5 s), early binders over-allocate
  by up to 1.75x (normalised by Optimal) while Janus tracks Optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..runtime.driver import build_policy_suite, run_policies
from ..runtime.results import RunResult
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["Fig5Result", "run", "render"]

BASELINES_TABLE1 = ["ORION", "GrandSLAM+", "GrandSLAM", "Janus-", "Janus+"]


@dataclass(frozen=True)
class Fig5Result:
    """Per-(panel, policy) run results."""

    panels: dict[tuple[str, int], dict[str, RunResult]]

    def reduction_table(
        self, panel: tuple[str, int]
    ) -> dict[str, float]:
        """Table I row: Janus's reduction vs each baseline, % of Optimal."""
        results = self.panels[panel]
        optimal = results["Optimal"]
        janus_res = results["Janus"]
        out = {}
        for name in BASELINES_TABLE1:
            if name in results:
                out[name] = 100.0 * janus_res.reduction_vs(results[name], optimal)
        return out

    def normalized(self, panel: tuple[str, int]) -> dict[str, float]:
        """Fig. 5 series: mean CPU normalised by Optimal."""
        results = self.panels[panel]
        optimal = results["Optimal"]
        return {
            name: res.normalized_cpu(optimal) for name, res in results.items()
        }


def run(
    n_requests: int = 1000,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    concurrencies: tuple[int, ...] = (1, 2, 3),
) -> Fig5Result:
    """Run the suite on IA (each concurrency) and VA (concurrency 1)."""
    panels: dict[tuple[str, int], dict[str, RunResult]] = {}
    for conc in concurrencies:
        wf, profiles, budget = ia_setup(
            concurrency=conc, samples=samples, seed=seed
        )
        suite = build_policy_suite(wf, profiles, budget=budget, concurrency=conc)
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed + conc
        )
        panels[("IA", conc)] = run_policies(wf, suite, requests)
    wf, profiles, budget = va_setup(samples=samples, seed=seed)
    suite = build_policy_suite(wf, profiles, budget=budget)
    requests = generate_requests(
        wf, WorkloadConfig(n_requests=n_requests), seed=seed + 7
    )
    panels[("VA", 1)] = run_policies(wf, suite, requests)
    return Fig5Result(panels=panels)


def render(result: Fig5Result) -> str:
    """Table I plus the Fig. 5a/5b consumption tables."""
    blocks = []

    # Table I: reductions at concurrency 1.
    paper = {
        "IA": {"ORION": 22.6, "GrandSLAM+": 31.3, "GrandSLAM": 31.3,
               "Janus-": 2.9, "Janus+": 0.0},
        "VA": {"ORION": 26.9, "GrandSLAM+": 35.2, "GrandSLAM": 32.4,
               "Janus-": 4.7, "Janus+": -0.2},
    }
    rows = []
    for wf_name in ("IA", "VA"):
        panel = (wf_name, 1)
        if panel not in result.panels:
            continue
        reductions = result.reduction_table(panel)
        for base, measured in reductions.items():
            rows.append((wf_name, base, measured, paper[wf_name].get(base)))
    blocks.append(
        format_table(
            ["workflow", "baseline", "measured red. (%)", "paper red. (%)"],
            rows,
            title="Table I: Janus resource reduction vs baselines (normalised by Optimal)",
            float_fmt="{:.1f}",
        )
    )

    # Fig. 5a/5b: mean consumption per panel.
    for panel, results in result.panels.items():
        wf_name, conc = panel
        norm = result.normalized(panel)
        rows = [
            (name, res.mean_allocated, norm[name], res.violation_rate)
            for name, res in results.items()
        ]
        blocks.append(
            format_table(
                ["system", "mean CPU (millicores)", "norm. by Optimal", "viol."],
                rows,
                title=f"Fig 5: {wf_name} concurrency={conc}",
            )
        )
    return "\n\n".join(blocks)
