"""Extension experiment — keep-alive caching vs. runtime adaptation (§VII).

The paper's closing future-work item asks how runtime resource adaptation
interacts with function caching strategies. This experiment sweeps the
keep-alive TTL on the DES platform while Janus serves IA under Poisson
load, quantifying the classic caching trade-off (longer TTL -> fewer cold
starts but more idle reserved millicores) and one interaction specific to
late binding: Janus *resizes* parked pods on reuse, so warm hits stay
useful even though consecutive requests want different sizes — a fixed-size
cache would miss on every size change.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..policies.janus import janus
from ..runtime.registry import get_executor
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["KeepAliveResult", "run", "render"]


@dataclass(frozen=True)
class KeepAliveResult:
    """Per-TTL cold-start/idle-cost/latency metrics."""

    rows: list[tuple[str, float, float, float, float]]
    # (ttl label, cold rate, idle core-s, P99 s, viol)


def run(
    ttls_ms: tuple[float | None, ...] = (0.0, 1000.0, 5000.0, 20_000.0, None),
    n_requests: int = 200,
    arrival_rate_per_s: float = 1.0,
    slo_ms: float = 6000.0,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> KeepAliveResult:
    """Sweep the keep-alive TTL with Janus serving IA on the cluster.

    The SLO is set to 6 s (vs. the paper's 3 s) because offline profiles do
    not include cold-start delays: at TTL 0 every stage pays one, adding
    ~2.4 s to the chain. The caching trade-off — not SLO tuning — is the
    signal here.
    """
    wf, profiles, budget = ia_setup(slo_ms=slo_ms, samples=samples, seed=seed)
    requests = generate_requests(
        wf,
        WorkloadConfig(n_requests=n_requests, arrival_rate_per_s=arrival_rate_per_s),
        seed=seed + 3,
    )
    rows = []
    for ttl in ttls_ms:
        # The serving loop is the registered "cluster" executor — the same
        # backend `janus-repro sweep --executor cluster` and Session use.
        platform = get_executor(
            "cluster", wf,
            n_vms=4, vm_capacity_millicores=13_000,
            warm_pool_size=4, autoscale=False, keepalive_ms=ttl,
        )
        policy = janus(wf, profiles, budget=budget)
        result = platform.run(policy, requests)
        label = "inf" if ttl is None else f"{ttl / 1000:g}s"
        rows.append(
            (
                label,
                result.extras["cold_start_rate"],
                result.extras["idle_millicore_ms"] / 1e6,  # core-seconds
                result.e2e_percentile(99) / 1000.0,
                result.violation_rate,
            )
        )
    return KeepAliveResult(rows=rows)


def render(result: KeepAliveResult) -> str:
    """TTL sweep table."""
    table = format_table(
        ["keep-alive", "cold-start rate", "idle core-s", "P99 E2E (s)", "viol."],
        result.rows,
        title="Extension: keep-alive caching vs runtime adaptation (IA, Janus)",
    )
    return table + (
        "\nLonger TTLs trade idle reserved cores for fewer cold starts; "
        "Janus's\nin-place pod resizing keeps warm hits useful across "
        "size changes."
    )
