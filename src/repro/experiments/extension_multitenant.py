"""Extension experiment — multi-tenant shared-cluster serving (§III-A).

IA and VA belong to different tenants and share one cluster; hints are
managed per tenant. The experiment verifies tenant isolation of the hint
pipelines and reports per-tenant latency/violations plus cluster-level
statistics under concurrent Poisson load.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.interference import InterferenceModel
from ..cluster.multi import MultiTenantPlatform, TenantJob
from ..cluster.platform import ClusterConfig
from ..metrics.report import format_table
from ..policies.janus import janus
from ..profiling.profiler import Profiler, ProfilerConfig
from ..profiling.profiles import ProfileSet
from ..rng import RngFactory
from ..scenarios.matrix import ScenarioMatrix
from ..scenarios.runner import scenario_requests
from ..traces.workload import ArrivalSpec
from ..workflow.catalog import Workflow
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["MultiTenantResult", "run", "render"]

#: Expected same-tenant co-location mix at the experiment's load.
COLOCATION_MIX = {1: 0.70, 2: 0.25, 3: 0.05}


def _platform_aware_profiles(
    workflow: Workflow,
    interference: InterferenceModel,
    samples: int,
    seed: int,
) -> ProfileSet:
    """Profile with the interference mix the shared cluster will inflict.

    The paper's developer profiles on the platform itself, so measured
    distributions include typical co-location; only tail spikes remain for
    the adapter's miss path.
    """
    factory = RngFactory(seed).fork("ext-multitenant", workflow.name)
    profiles = {}
    for name in workflow.chain:
        model = workflow.model(name)
        sampler = interference.profiling_sampler(
            model.dominant_resource, COLOCATION_MIX
        )
        cfg = ProfilerConfig(limits=workflow.limits, samples=samples)
        profiles[name] = Profiler(cfg, interference=sampler).profile_function(
            model, factory.stream(name)
        )
    return ProfileSet(profiles)


@dataclass(frozen=True)
class MultiTenantResult:
    """Per-tenant serving metrics on the shared cluster."""

    rows: list[tuple[str, str, float, float, float]]
    # (tenant, workflow, mean CPU, P99 s, viol)
    cold_start_rate: float
    mean_cluster_millicores: float


def run(
    n_requests: int = 200,
    arrival_rate_per_s: float = 1.0,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> MultiTenantResult:
    """Serve IA and VA tenants concurrently with per-tenant Janus hints.

    SLOs are set to 4 s (IA) and 2.5 s (VA) — looser than the single-tenant
    evaluation because the shared cluster adds co-location interference and
    occasional cold starts that a production SLA would have to absorb.

    The tenant workloads are one :class:`ScenarioMatrix` cell per tenant
    (Poisson arrivals at the shared rate), so the streams carry the sweep
    engine's derived seeding; single-backend cluster cells are available
    directly from the sweep engine via ``executors=("cluster",)``. What
    this experiment adds is *sharing*: both tenants contend on one set of
    VMs, served concurrently by :class:`MultiTenantPlatform`, whose
    per-request serving loop is the registered ``"cluster"`` executor's
    core with tenant-namespaced pool keys.
    """
    ia_wf, _, ia_budget = ia_setup(slo_ms=4000.0, samples=samples, seed=seed)
    va_wf, _, va_budget = va_setup(slo_ms=2500.0, samples=samples, seed=seed)
    interference = InterferenceModel()
    ia_profiles = _platform_aware_profiles(ia_wf, interference, samples, seed)
    va_profiles = _platform_aware_profiles(va_wf, interference, samples, seed)
    # Cluster interference widens the distributions; the paper's budget
    # ranges are extended upward accordingly.
    from ..synthesis.budget import BudgetRange

    ia_budget = BudgetRange(ia_budget.tmin_ms, int(ia_budget.tmax_ms * 1.5))
    va_budget = BudgetRange(va_budget.tmin_ms, int(va_budget.tmax_ms * 1.5))

    # The matrix contributes the sweep engine's workload derivation only:
    # per-tenant seeds (hashed off the master seed) and the arrival shape.
    # SLOs, profiles and budgets stay with this experiment — the cluster
    # backend, not the analytic scenario runner, serves the requests — so
    # the cells' slo_scale/samples fields are not consulted below.
    matrix = ScenarioMatrix(
        workflows=("IA", "VA"),
        arrivals=(ArrivalSpec(kind="poisson", rate_per_s=arrival_rate_per_s),),
        policies=("Janus",),
        n_requests=n_requests,
        samples=samples,
        seed=seed,
    )
    cells = {cell.workflow: cell for cell in matrix.expand()}
    tenant_setup = {
        "tenant-ia": (ia_wf, ia_profiles, ia_budget, cells["IA"]),
        "tenant-va": (va_wf, va_profiles, va_budget, cells["VA"]),
    }
    platform = MultiTenantPlatform(
        {"tenant-ia": ia_wf, "tenant-va": va_wf},
        ClusterConfig(
            n_vms=4, vm_capacity_millicores=13_000,
            warm_pool_size=4, autoscale=False,
        ),
        interference=interference,
    )
    jobs = [
        TenantJob(
            tenant=tenant,
            policy=janus(wf, profiles, budget=budget),
            requests=tuple(
                scenario_requests(wf, cell, float(wf.slo_ms))
            ),
        )
        for tenant, (wf, profiles, budget, cell) in tenant_setup.items()
    ]
    results = platform.run(jobs)
    rows = []
    for tenant, wf in (("tenant-ia", ia_wf), ("tenant-va", va_wf)):
        res = results[tenant]
        rows.append(
            (
                tenant,
                wf.name,
                res.mean_allocated,
                res.e2e_percentile(99) / 1000.0,
                res.violation_rate,
            )
        )
    any_result = next(iter(results.values()))
    return MultiTenantResult(
        rows=rows,
        cold_start_rate=any_result.extras["cold_start_rate"],
        mean_cluster_millicores=any_result.extras["mean_cluster_allocated"],
    )


def render(result: MultiTenantResult) -> str:
    """Per-tenant table plus cluster stats."""
    table = format_table(
        ["tenant", "workflow", "mean CPU (mc)", "P99 E2E (s)", "viol."],
        result.rows,
        title="Extension: multi-tenant shared cluster (per-tenant Janus hints)",
    )
    return table + (
        f"\ncold-start rate {result.cold_start_rate:.1%}, "
        f"mean cluster allocation "
        f"{result.mean_cluster_millicores:.0f} millicores"
    )
