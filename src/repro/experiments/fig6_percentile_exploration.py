"""Fig. 6 — effectiveness of moderate percentile exploration.

Paper claims (IA, SLOs 3-7 s): extending percentile exploration to the
next-to-head function (Janus+) lowers resource consumption by merely ~0.6%
on average, but inflates hint-synthesis time by up to ~107x. Janus's own
synthesis cost grows only marginally with the SLO.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..policies.janus import janus, janus_plus
from ..runtime.registry import resolve_executor
from ..synthesis.dp import clear_dp_cache
from ..synthesis.generator import clear_hints_cache
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["Fig6Result", "run", "render"]


@dataclass(frozen=True)
class Fig6Result:
    """Consumption + synthesis cost per SLO for Janus and Janus+."""

    slos_s: list[float]
    cpu_janus: list[float]
    cpu_janus_plus: list[float]
    synth_janus_s: list[float]
    synth_janus_plus_s: list[float]

    @property
    def mean_cpu_gain_pct(self) -> float:
        """Mean % consumption reduction of Janus+ over Janus."""
        gains = [
            100.0 * (j - jp) / j
            for j, jp in zip(self.cpu_janus, self.cpu_janus_plus)
        ]
        return sum(gains) / len(gains)

    @property
    def max_time_ratio(self) -> float:
        """Max synthesis-time ratio Janus+ / Janus."""
        return max(
            p / j for j, p in zip(self.synth_janus_s, self.synth_janus_plus_s)
        )


def run(
    slos_s: tuple[float, ...] = (3.0, 4.0, 5.0, 6.0, 7.0),
    n_requests: int = 400,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Fig6Result:
    """Sweep the SLO, comparing Janus and Janus+ on cost and synth time."""
    cpu_j, cpu_jp, ts_j, ts_jp = [], [], [], []
    for slo_s in slos_s:
        wf, profiles, budget = ia_setup(
            slo_ms=slo_s * 1000.0, samples=samples, seed=seed
        )
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed + int(slo_s)
        )
        executor = resolve_executor(wf)
        # This experiment *measures* synthesis cost, so both variants must
        # pay the full cold path: drop the process-wide DP/hints memos
        # before each timed build or the second variant would reuse the
        # first's DP tables (and repeat runs would report stale timings).
        clear_dp_cache()
        clear_hints_cache()
        pol_j = janus(wf, profiles, budget=budget)
        clear_dp_cache()
        clear_hints_cache()
        pol_jp = janus_plus(wf, profiles, budget=budget)
        res_j = executor.run(pol_j, requests)
        res_jp = executor.run(pol_jp, requests)
        cpu_j.append(res_j.mean_allocated)
        cpu_jp.append(res_jp.mean_allocated)
        ts_j.append(pol_j.synthesis_seconds)
        ts_jp.append(pol_jp.synthesis_seconds)
    return Fig6Result(
        slos_s=list(slos_s),
        cpu_janus=cpu_j,
        cpu_janus_plus=cpu_jp,
        synth_janus_s=ts_j,
        synth_janus_plus_s=ts_jp,
    )


def render(result: Fig6Result) -> str:
    """CPU + synthesis time per SLO."""
    rows = [
        (slo, cj, cjp, tj, tjp, tjp / tj)
        for slo, cj, cjp, tj, tjp in zip(
            result.slos_s,
            result.cpu_janus,
            result.cpu_janus_plus,
            result.synth_janus_s,
            result.synth_janus_plus_s,
        )
    ]
    table = format_table(
        ["SLO (s)", "Janus CPU", "Janus+ CPU", "Janus synth (s)",
         "Janus+ synth (s)", "time ratio"],
        rows,
        title="Fig 6: moderate percentile exploration (IA)",
    )
    return table + (
        f"\nmean Janus+ CPU gain: {result.mean_cpu_gain_pct:.2f}% "
        f"(paper: ~0.6%); max synthesis-time ratio: "
        f"{result.max_time_ratio:.1f}x (paper: up to 107.2x)"
    )
