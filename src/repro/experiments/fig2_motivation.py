"""Fig. 2 — motivation: early binding vs late binding on a real workflow.

Paper claim: per-request runtime adaptation (late binding) reduces CPU
consumption by up to 42.2% against an early-binding (GrandSLAM-style)
configuration while keeping every request within the SLO. The figure plots,
for ~50 requests, the end-to-end latency of both approaches against the SLO
and the CPU consumption normalised by the exhaustive-search optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.report import format_table
from ..policies.early_binding import GrandSLAMPolicy
from ..policies.janus import janus
from ..policies.oracle import OraclePolicy
from ..runtime.registry import resolve_executor
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["Fig2Result", "run", "render"]


@dataclass(frozen=True)
class Fig2Result:
    """Per-request series for the motivation plot."""

    request_ids: np.ndarray
    e2e_early_s: np.ndarray
    e2e_late_s: np.ndarray
    cpu_early_norm: np.ndarray  # normalised by per-request optimal
    cpu_late_norm: np.ndarray
    slo_s: float
    max_cpu_reduction: float
    late_violations: int


def run(
    n_requests: int = 50,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Fig2Result:
    """Serve the same requests with early binding, late binding, optimal."""
    wf, profiles, budget = ia_setup(samples=samples, seed=seed)
    requests = generate_requests(
        wf, WorkloadConfig(n_requests=n_requests), seed=seed + 1
    )
    executor = resolve_executor(wf)
    early = executor.run(GrandSLAMPolicy(wf, profiles), requests)
    late = executor.run(janus(wf, profiles, budget=budget), requests)
    optimal = executor.run(OraclePolicy(wf), requests)

    opt_alloc = optimal.allocated()
    cpu_early = early.allocated() / opt_alloc
    cpu_late = late.allocated() / opt_alloc
    reduction = 1.0 - late.allocated().sum() / early.allocated().sum()
    return Fig2Result(
        request_ids=np.arange(n_requests),
        e2e_early_s=early.e2e_ms() / 1000.0,
        e2e_late_s=late.e2e_ms() / 1000.0,
        cpu_early_norm=cpu_early,
        cpu_late_norm=cpu_late,
        slo_s=wf.slo_ms / 1000.0,
        max_cpu_reduction=float(reduction),
        late_violations=int(np.sum(late.e2e_ms() > wf.slo_ms)),
    )


def render(result: Fig2Result) -> str:
    """Per-request series (subsampled) plus the headline reduction."""
    step = max(1, len(result.request_ids) // 10)
    rows = [
        (
            int(result.request_ids[i]),
            float(result.e2e_early_s[i]),
            float(result.e2e_late_s[i]),
            float(result.cpu_early_norm[i]),
            float(result.cpu_late_norm[i]),
        )
        for i in range(0, len(result.request_ids), step)
    ]
    table = format_table(
        ["request", "E2E early (s)", "E2E late (s)", "CPU early (norm)", "CPU late (norm)"],
        rows,
        title=f"Fig 2: early vs late binding (SLO {result.slo_s:g} s)",
    )
    return table + (
        f"\nmean CPU reduction from late binding: "
        f"{result.max_cpu_reduction:.1%} (paper: up to 42.2%), "
        f"late-binding SLO violations: {result.late_violations}"
    )
