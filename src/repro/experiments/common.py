"""Shared experiment setup: workflows, profiles, budgets (paper §V-A/§V-F).

The paper's configuration, reproduced here:

* IA: SLO 3 s at concurrency 1 (budget range 2-7 s), SLO 4 s at concurrency
  2 (3-7 s), SLO 5 s at concurrency 3 (4-10 s).
* VA: SLO 1.5 s at concurrency 1 (budget range 1.5-2 s).
* Profiling: CPU 1000..3000 millicores step 100; percentiles P1..P99 step 5;
  1 ms hint granularity; miss threshold 1%; weight 1 unless stated.

Profiles are memoised per (workflow, concurrency set, samples, seed): several
experiments share the same campaign and profiling is the slowest offline
step.
"""

from __future__ import annotations

import functools

from ..profiling.profiler import profile_workflow
from ..profiling.profiles import ProfileSet
from ..synthesis.budget import BudgetRange
from ..workflow.catalog import Workflow, intelligent_assistant, video_analytics

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_SAMPLES",
    "IA_SETTINGS",
    "VA_BUDGET",
    "ia_setup",
    "va_setup",
    "cached_profiles",
]

DEFAULT_SEED = 2025
DEFAULT_SAMPLES = 2000

#: Paper settings per IA concurrency: (SLO ms, budget range).
IA_SETTINGS: dict[int, tuple[float, BudgetRange]] = {
    1: (3000.0, BudgetRange(2000, 7000)),
    2: (4000.0, BudgetRange(3000, 7000)),
    3: (5000.0, BudgetRange(4000, 10000)),
}

VA_BUDGET = BudgetRange(1500, 2000)


@functools.lru_cache(maxsize=32)
def _cached_profiles(
    workflow_name: str,
    concurrencies: tuple[int, ...],
    samples: int,
    seed: int,
) -> ProfileSet:
    if workflow_name == "IA":
        wf = intelligent_assistant(concurrency=max(concurrencies))
    elif workflow_name == "VA":
        wf = video_analytics()
    else:  # pragma: no cover - guarded by callers
        raise ValueError(f"unknown cached workflow {workflow_name!r}")
    return profile_workflow(
        wf, seed=seed, samples=samples, concurrencies=concurrencies
    )


def cached_profiles(
    workflow: Workflow,
    concurrencies: tuple[int, ...] = (1,),
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> ProfileSet:
    """Profile (or reuse) the standard campaign for a catalog workflow."""
    if workflow.name in ("IA", "VA"):
        return _cached_profiles(workflow.name, tuple(concurrencies), samples, seed)
    return profile_workflow(
        workflow, seed=seed, samples=samples, concurrencies=concurrencies
    )


def ia_setup(
    concurrency: int = 1,
    slo_ms: float | None = None,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> tuple[Workflow, ProfileSet, BudgetRange]:
    """IA workflow + profiles + budget range at a paper concurrency level."""
    if concurrency not in IA_SETTINGS:
        raise ValueError(f"IA concurrency must be 1..3, got {concurrency}")
    default_slo, budget = IA_SETTINGS[concurrency]
    wf = intelligent_assistant(
        slo_ms=slo_ms if slo_ms is not None else default_slo,
        concurrency=concurrency,
    )
    profiles = cached_profiles(
        wf, concurrencies=tuple(range(1, concurrency + 1)), samples=samples, seed=seed
    )
    if slo_ms is not None and slo_ms > budget.tmax_ms:
        budget = BudgetRange(budget.tmin_ms, int(slo_ms))
    return wf, profiles, budget


def va_setup(
    slo_ms: float | None = None,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> tuple[Workflow, ProfileSet, BudgetRange]:
    """VA workflow + profiles + budget range (concurrency fixed at 1)."""
    wf = video_analytics(slo_ms=slo_ms if slo_ms is not None else 1500.0)
    profiles = cached_profiles(wf, concurrencies=(1,), samples=samples, seed=seed)
    budget = VA_BUDGET
    if slo_ms is not None and slo_ms > budget.tmax_ms:
        budget = BudgetRange(budget.tmin_ms, int(slo_ms))
    return wf, profiles, budget
