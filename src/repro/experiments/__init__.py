"""Paper-evaluation experiments: one module per table/figure.

See DESIGN.md §4 for the experiment index. Use
:func:`repro.experiments.run_experiment` or the ``janus-repro`` CLI to
regenerate any artifact.
"""

from .registry import EXPERIMENTS, Experiment, list_experiments, run_experiment

__all__ = ["EXPERIMENTS", "Experiment", "list_experiments", "run_experiment"]
