"""Extension experiment — stricter SLO targets via higher anchors (§III-B).

Paper: "Janus can accommodate more stringent SLO targets (e.g., at P99.9)
by instructing the profiler and synthesizer to use higher percentiles."
This experiment profiles IA with a P99.9-anchored grid, synthesizes hints
against it, and compares violation rates with the default P99 anchor on the
same request stream: the stricter anchor must cut the violation rate by
roughly an order of magnitude at some extra resource cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..policies.janus import JanusPolicy
from ..profiling.profiler import profile_workflow
from ..runtime.registry import resolve_executor
from ..synthesis.generator import synthesize_hints
from ..traces.workload import WorkloadConfig, generate_requests
from ..types import DEFAULT_PERCENTILES, PercentileGrid
from ..workflow.catalog import intelligent_assistant
from .common import DEFAULT_SEED

__all__ = ["StrictSloResult", "run", "render", "strict_grid"]


def strict_grid() -> PercentileGrid:
    """The default grid extended with a P99.9 anchor."""
    return PercentileGrid(
        percentiles=DEFAULT_PERCENTILES + (99.9,), anchor=99.9
    )


@dataclass(frozen=True)
class StrictSloResult:
    """Violation/consumption per anchor percentile."""

    rows: list[tuple[str, float, float, float]]
    # (anchor, viol rate, P99.9 E2E s, mean CPU)


def run(
    n_requests: int = 4000,
    slo_ms: float = 3000.0,
    samples: int = 8000,
    seed: int = DEFAULT_SEED,
) -> StrictSloResult:
    """Compare P99- and P99.9-anchored Janus on a long request stream.

    ``samples`` defaults higher than other experiments: estimating P99.9
    needs several thousand samples per grid point, and measuring a 0.1%
    violation rate needs thousands of requests.
    """
    wf = intelligent_assistant(slo_ms=slo_ms)
    requests = generate_requests(
        wf, WorkloadConfig(n_requests=n_requests), seed=seed + 9
    )
    executor = resolve_executor(wf)
    rows = []
    for label, grid in (
        ("P99", PercentileGrid()),
        ("P99.9", strict_grid()),
    ):
        profiles = profile_workflow(
            wf, seed=seed, samples=samples, percentiles=grid
        )
        hints = synthesize_hints(profiles, wf.chain, workflow_name=wf.name)
        policy = JanusPolicy(wf, hints, name=f"Janus@{label}")
        result = executor.run(policy, requests)
        rows.append(
            (
                label,
                result.violation_rate,
                result.e2e_percentile(99.9) / 1000.0,
                result.mean_allocated,
            )
        )
    return StrictSloResult(rows=rows)


def render(result: StrictSloResult) -> str:
    """Anchor comparison table."""
    table = format_table(
        ["anchor", "violation rate", "P99.9 E2E (s)", "mean CPU (mc)"],
        result.rows,
        title="Extension: stricter SLO targets via higher anchor (IA, SLO 3 s)",
        float_fmt="{:.4f}",
    )
    p99_viol = result.rows[0][1]
    p999_viol = result.rows[1][1]
    return table + (
        f"\nP99.9 anchor cuts violations {p99_viol:.3%} -> {p999_viol:.3%} "
        f"(a P99.9 SLO tolerates 0.1%)"
    )
