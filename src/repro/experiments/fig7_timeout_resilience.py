"""Fig. 7 — timeout and resilience of the TS function.

Paper claims: (a) timeout ``D(p, k)`` decreases as percentile or CPU
allocation increases; (b) resilience ``R(P99, k)`` shrinks marginally with
more provisioned cores (diminishing Amdahl returns) and grows with
concurrency (heavier batches are more resource-sensitive).

The ``faults`` knob re-expresses the original "what if the node degrades"
sensitivity study over the scenario fault axis
(:mod:`repro.cluster.faults`): a ``straggler`` spec scales both curve
families by its slowdown (a transiently slow VM stretches every execution
uniformly), and a ``contention`` spec scales them by the cross-function
interference factor of the profiled function's dominant resource
(:meth:`~repro.cluster.interference.InterferenceModel.cross_slowdown`
with one equally-sized contender). Event-level kinds (preempt/crash/storm)
have no closed-form curve and are rejected — run them through the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.faults import FaultSpec, parse_fault
from ..cluster.interference import InterferenceModel
from ..errors import ExperimentError
from ..metrics.report import format_table
from ..profiling.metrics import resilience_curve, timeout_curve
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["Fig7Result", "run", "render"]

#: Fault kinds with a closed-form effect on the profile curves.
_CURVE_FAULTS = ("straggler", "contention")


@dataclass(frozen=True)
class Fig7Result:
    """Timeout curves (by percentile) and resilience curves (by conc.)."""

    k_grid: np.ndarray
    timeout_by_percentile: dict[int, np.ndarray]  # {25, 50, 75} -> D(p, k)
    resilience_by_concurrency: dict[int, np.ndarray]  # {1,2,3} -> R(99, k)
    function: str
    #: Fault label the curves were scaled under (``None`` = fault-free).
    fault: str | None = None


def _fault_factor(
    spec: FaultSpec, workflow: "object", function: str
) -> float:
    """Uniform latency multiplier a curve-shaped fault applies."""
    if spec.kind == "straggler":
        return float(spec.slowdown)
    if spec.kind == "contention":
        resource = workflow.model(function).dominant_resource
        return InterferenceModel().cross_slowdown(
            resource, 1, 1, scale=spec.scale
        )
    raise ExperimentError(
        f"fig7 scales curves for {_CURVE_FAULTS} faults only; "
        f"{spec.kind!r} is event-level — run it through "
        f"'janus-repro sweep --faults {spec.label} --executor cluster'"
    )


def run(
    function: str = "TS",
    percentiles: tuple[int, ...] = (25, 50, 75),
    concurrencies: tuple[int, ...] = (1, 2, 3),
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    faults: FaultSpec | str | None = None,
) -> Fig7Result:
    """Extract the Fig. 7 curves from the IA profiles.

    ``faults`` accepts a :class:`FaultSpec` or a spec token
    (``straggler@0.25:3``, ``contention@0.5``); the default ``None``
    reproduces the paper's fault-free figure bit-identically.
    """
    if isinstance(faults, str):
        faults = parse_fault(faults)
    wf, profiles, _ = ia_setup(
        concurrency=max(concurrencies), samples=samples, seed=seed
    )
    prof = profiles[function]
    k_grid = prof.limits.grid()
    factor = 1.0 if faults is None else _fault_factor(faults, wf, function)
    timeouts = {
        p: timeout_curve(prof, float(p))[1] for p in percentiles
    }
    resiliences = {
        c: resilience_curve(prof, 99.0, concurrency=c)[1] for c in concurrencies
    }
    if factor != 1.0:
        timeouts = {p: curve * factor for p, curve in timeouts.items()}
        resiliences = {c: curve * factor for c, curve in resiliences.items()}
    return Fig7Result(
        k_grid=k_grid,
        timeout_by_percentile=timeouts,
        resilience_by_concurrency=resiliences,
        function=function,
        fault=None if faults is None else faults.label,
    )


def render(result: Fig7Result) -> str:
    """Both curve families, sampled every few grid points."""
    idx = range(0, len(result.k_grid), 4)
    t_rows = [
        tuple(
            [int(result.k_grid[i])]
            + [float(result.timeout_by_percentile[p][i]) / 1000.0
               for p in sorted(result.timeout_by_percentile)]
        )
        for i in idx
    ]
    r_rows = [
        tuple(
            [int(result.k_grid[i])]
            + [float(result.resilience_by_concurrency[c][i]) / 1000.0
               for c in sorted(result.resilience_by_concurrency)]
        )
        for i in idx
    ]
    suffix = f" ({result.fault})" if result.fault else ""
    t_table = format_table(
        ["CPU (mc)"] + [f"D(P{p}) s" for p in sorted(result.timeout_by_percentile)],
        t_rows,
        title=f"Fig 7a: timeout of {result.function} vs CPU{suffix}",
    )
    r_table = format_table(
        ["CPU (mc)"]
        + [f"R(P99) conc={c} s" for c in sorted(result.resilience_by_concurrency)],
        r_rows,
        title=f"Fig 7b: resilience of {result.function} vs CPU{suffix}",
    )
    return t_table + "\n\n" + r_table
