"""Fig. 7 — timeout and resilience of the TS function.

Paper claims: (a) timeout ``D(p, k)`` decreases as percentile or CPU
allocation increases; (b) resilience ``R(P99, k)`` shrinks marginally with
more provisioned cores (diminishing Amdahl returns) and grows with
concurrency (heavier batches are more resource-sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.report import format_table
from ..profiling.metrics import resilience_curve, timeout_curve
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["Fig7Result", "run", "render"]


@dataclass(frozen=True)
class Fig7Result:
    """Timeout curves (by percentile) and resilience curves (by conc.)."""

    k_grid: np.ndarray
    timeout_by_percentile: dict[int, np.ndarray]  # {25, 50, 75} -> D(p, k)
    resilience_by_concurrency: dict[int, np.ndarray]  # {1,2,3} -> R(99, k)
    function: str


def run(
    function: str = "TS",
    percentiles: tuple[int, ...] = (25, 50, 75),
    concurrencies: tuple[int, ...] = (1, 2, 3),
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Fig7Result:
    """Extract the Fig. 7 curves from the IA profiles."""
    _, profiles, _ = ia_setup(
        concurrency=max(concurrencies), samples=samples, seed=seed
    )
    prof = profiles[function]
    k_grid = prof.limits.grid()
    timeouts = {
        p: timeout_curve(prof, float(p))[1] for p in percentiles
    }
    resiliences = {
        c: resilience_curve(prof, 99.0, concurrency=c)[1] for c in concurrencies
    }
    return Fig7Result(
        k_grid=k_grid,
        timeout_by_percentile=timeouts,
        resilience_by_concurrency=resiliences,
        function=function,
    )


def render(result: Fig7Result) -> str:
    """Both curve families, sampled every few grid points."""
    idx = range(0, len(result.k_grid), 4)
    t_rows = [
        tuple(
            [int(result.k_grid[i])]
            + [float(result.timeout_by_percentile[p][i]) / 1000.0
               for p in sorted(result.timeout_by_percentile)]
        )
        for i in idx
    ]
    r_rows = [
        tuple(
            [int(result.k_grid[i])]
            + [float(result.resilience_by_concurrency[c][i]) / 1000.0
               for c in sorted(result.resilience_by_concurrency)]
        )
        for i in idx
    ]
    t_table = format_table(
        ["CPU (mc)"] + [f"D(P{p}) s" for p in sorted(result.timeout_by_percentile)],
        t_rows,
        title=f"Fig 7a: timeout of {result.function} vs CPU",
    )
    r_table = format_table(
        ["CPU (mc)"]
        + [f"R(P99) conc={c} s" for c in sorted(result.resilience_by_concurrency)],
        r_rows,
        title=f"Fig 7b: resilience of {result.function} vs CPU",
    )
    return t_table + "\n\n" + r_table
