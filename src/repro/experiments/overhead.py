"""§V-H — system overhead: adaptation latency and memory footprint.

Paper claims: online adaptation decisions take under 3 ms regardless of SLO
or weight; the adapter's memory footprint stays near 12 MB (IA) / 11 MB
(VA), and offline generation is similarly lightweight.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..adapter.adapter import JanusAdapter
from ..metrics.report import format_table
from ..policies.janus import janus
from ..runtime.registry import resolve_executor
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["OverheadResult", "run", "render"]


@dataclass(frozen=True)
class OverheadResult:
    """Decision-latency stats and footprint per workflow."""

    decision_ms: dict[str, dict[str, float]]  # wf -> {mean, p99, max}
    table_bytes: dict[str, int]
    profile_bytes: dict[str, int]
    hit_rates: dict[str, float]


def run(
    n_requests: int = 500,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> OverheadResult:
    """Serve both workflows with Janus; measure adapter-side costs."""
    decision: dict[str, dict[str, float]] = {}
    table_bytes: dict[str, int] = {}
    profile_bytes: dict[str, int] = {}
    hit_rates: dict[str, float] = {}
    for wf_name in ("IA", "VA"):
        if wf_name == "IA":
            wf, profiles, budget = ia_setup(samples=samples, seed=seed)
        else:
            wf, profiles, budget = va_setup(samples=samples, seed=seed)
        policy = janus(wf, profiles, budget=budget)
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed
        )
        resolve_executor(wf).run(policy, requests)
        adapter: JanusAdapter = policy.adapter
        lat = np.asarray(adapter.decision_latencies_ms())
        decision[wf_name] = {
            "mean": float(lat.mean()),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        }
        table_bytes[wf_name] = policy.hints.memory_bytes()
        profile_bytes[wf_name] = profiles.memory_bytes()
        hit_rates[wf_name] = policy.hit_rate
    return OverheadResult(
        decision_ms=decision,
        table_bytes=table_bytes,
        profile_bytes=profile_bytes,
        hit_rates=hit_rates,
    )


def render(result: OverheadResult) -> str:
    """Decision latencies and footprints."""
    rows = [
        (
            wf,
            stats["mean"],
            stats["p99"],
            stats["max"],
            result.table_bytes[wf] / 1024.0,
            result.profile_bytes[wf] / 1024.0,
            result.hit_rates[wf],
        )
        for wf, stats in result.decision_ms.items()
    ]
    table = format_table(
        ["workflow", "mean (ms)", "P99 (ms)", "max (ms)",
         "tables (KiB)", "profiles (KiB)", "hit rate"],
        rows,
        title="§V-H: online adaptation overhead (paper: < 3 ms, ~12 MB)",
    )
    worst = max(s["max"] for s in result.decision_ms.values())
    return table + f"\nworst decision latency: {worst:.3f} ms (paper bound: 3 ms)"
