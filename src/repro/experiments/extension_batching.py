"""Extension experiment — batching front end under queueing.

The paper's concurrency panels (Fig. 4/5b) assume batches already formed;
this extension adds the GrandSLAM/BATCH-style size-or-timeout batcher and
measures how Janus behaves when queue wait consumes part of the budget
before the first sizing decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..policies.registry import POLICIES
from ..runtime.registry import get_executor
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["BatchingExtensionResult", "run", "render"]


@dataclass(frozen=True)
class BatchingExtensionResult:
    """Per-(policy, arrival-rate) batching metrics."""

    rows: list[tuple[str, float, float, float, float, float]]
    # (policy, rate/s, mean batch, amortized CPU, p99 s, viol)


def run(
    rates_per_s: tuple[float, ...] = (5.0, 20.0, 50.0),
    n_requests: int = 400,
    max_wait_ms: float = 150.0,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> BatchingExtensionResult:
    """IA at concurrency 2 (SLO 4 s) behind the batcher, rate sweep."""
    wf, profiles, budget = ia_setup(concurrency=2, samples=samples, seed=seed)
    rows = []
    for rate in rates_per_s:
        requests = generate_requests(
            wf,
            WorkloadConfig(
                n_requests=n_requests, arrival_rate_per_s=rate, concurrency=2
            ),
            seed=seed + int(rate),
        )
        executor = get_executor(
            "batching", wf, max_batch=2, max_wait_ms=max_wait_ms
        )
        for policy in (
            POLICIES.build("Janus", wf, profiles, budget=budget, concurrency=2),
            POLICIES.build("GrandSLAM", wf, profiles, concurrency=2),
        ):
            res = executor.run(policy, requests)
            rows.append(
                (
                    policy.name,
                    rate,
                    res.extras["mean_batch_size"],
                    res.extras["mean_amortized_millicores"],
                    res.e2e_percentile(99) / 1000.0,
                    res.violation_rate,
                )
            )
    return BatchingExtensionResult(rows=rows)


def render(result: BatchingExtensionResult) -> str:
    """Rate-sweep table."""
    return format_table(
        ["policy", "rate (req/s)", "mean batch", "amortized CPU (mc)",
         "P99 E2E (s)", "viol."],
        result.rows,
        title="Extension: size-or-timeout batching front end (IA, conc 2, SLO 4 s)",
    )
