"""Fig. 1a — slack CDF of function invocations in production-like traces.

Paper claim: with per-function SLOs at P99 latency, more than 60% of
invocations carry slack above 0.6; among the top-100 most popular functions
(~80% of traffic) only ~20% of invocations have slack below 0.4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.report import format_table
from ..traces.azure import generate_trace, slack_analysis

__all__ = ["Fig1aResult", "run", "render"]


@dataclass(frozen=True)
class Fig1aResult:
    """Slack CDF series for all vs. popular functions."""

    grid: np.ndarray
    cdf_all: np.ndarray
    cdf_popular: np.ndarray
    frac_all_above_060: float
    frac_popular_below_040: float
    popular_traffic_share: float


def run(
    n_functions: int = 200,
    n_invocations: int = 100_000,
    top_k: int = 100,
    seed: int = 0,
) -> Fig1aResult:
    """Generate the trace and compute both slack CDFs."""
    trace = generate_trace(
        n_functions=n_functions, n_invocations=n_invocations, seed=seed
    )
    analysis = slack_analysis(trace, top_k=top_k)
    grid = np.linspace(0.0, 1.0, 21)
    _, cdf_all = analysis.cdf("all", grid)
    _, cdf_pop = analysis.cdf("popular", grid)
    return Fig1aResult(
        grid=grid,
        cdf_all=cdf_all,
        cdf_popular=cdf_pop,
        frac_all_above_060=analysis.fraction_above(0.6, "all"),
        frac_popular_below_040=1.0 - analysis.fraction_above(0.4, "popular"),
        popular_traffic_share=analysis.popular_traffic_share,
    )


def render(result: Fig1aResult) -> str:
    """Print the CDF series and the paper's headline fractions."""
    rows = [
        (f"{x:.2f}", float(a), float(p))
        for x, a, p in zip(result.grid, result.cdf_all, result.cdf_popular)
    ]
    table = format_table(
        ["slack", "CDF(all)", "CDF(popular)"],
        rows,
        title="Fig 1a: slack CDF (per-function SLO = own P99)",
    )
    summary = (
        f"\ninvocations with slack > 0.6 (all): "
        f"{result.frac_all_above_060:.1%} (paper: >60%)\n"
        f"popular invocations with slack < 0.4: "
        f"{result.frac_popular_below_040:.1%} (paper: ~20%)\n"
        f"popular functions' traffic share: "
        f"{result.popular_traffic_share:.1%} (paper: 81.6%)"
    )
    return table + summary
