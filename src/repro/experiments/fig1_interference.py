"""Fig. 1c — performance interference from co-locating homogeneous
function instances.

Paper claim: running 1..6 co-located instances of microbenchmarks dominant
on CPU / memory / IO / network prolongs execution up to 8.1x, ordered
CPU < memory < IO < network.

The measurement replicates the paper's loop on the DES platform: a single
VM, ``n`` simultaneously busy instances of the same function, normalised
mean latency vs. running alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.interference import InterferenceModel
from ..cluster.platform import ClusterConfig, ServerlessPlatform
from ..functions.library import microbenchmark_functions
from ..metrics.report import format_table
from ..rng import derive_rng
from ..workflow.catalog import Workflow
from ..workflow.chain import chain_dag

__all__ = ["Fig1cResult", "run", "render"]


@dataclass(frozen=True)
class Fig1cResult:
    """Normalised latency per (function, co-location level)."""

    colocation_levels: list[int]
    series: dict[str, list[float]]  # function -> normalised latency per level
    max_slowdown: float


def run(
    max_colocated: int = 6,
    samples_per_level: int = 200,
    size_millicores: int = 1000,
    seed: int = 0,
) -> Fig1cResult:
    """Measure normalised latency for each microbenchmark.

    ``samples_per_level`` counts microbenchmark repetitions per co-location
    level — deliberately not named ``samples`` so the CLI's ``--samples``
    knob (profiling-campaign size, default 2000) does not map onto it.
    """
    models = microbenchmark_functions()
    wf = Workflow(
        name="micro",
        dag=chain_dag([m.name for m in models]),
        functions={m.name: m for m in models},
        slo_ms=10_000.0,
    )
    platform = ServerlessPlatform(
        wf,
        ClusterConfig(n_vms=1, vm_capacity_millicores=24_000, autoscale=False),
        interference=InterferenceModel(),
    )
    levels = list(range(1, max_colocated + 1))
    series: dict[str, list[float]] = {}
    for model in models:
        rng = derive_rng(seed, "fig1c", model.name)
        means = []
        for n in levels:
            times = platform.colocation_experiment(
                model.name, n, size_millicores, samples_per_level, rng
            )
            means.append(float(np.mean(times)))
        series[model.name] = [m / means[0] for m in means]
    return Fig1cResult(
        colocation_levels=levels,
        series=series,
        max_slowdown=max(max(v) for v in series.values()),
    )


def render(result: Fig1cResult) -> str:
    """Normalised-latency table, one column per microbenchmark."""
    names = list(result.series)
    rows = [
        tuple([n] + [result.series[name][i] for name in names])
        for i, n in enumerate(result.colocation_levels)
    ]
    table = format_table(
        ["co-located"] + names,
        rows,
        title="Fig 1c: normalised latency vs co-located instances",
        float_fmt="{:.2f}",
    )
    return table + (
        f"\nmax slowdown: {result.max_slowdown:.1f}x (paper: up to 8.1x, "
        f"network-dominant worst)"
    )
