"""Ablation — the resilience constraint (paper Insight-3, Eq. 6).

DESIGN.md §5 calls this design choice out for ablation: dropping the
"timeout must fit within downstream resilience" constraint lets the
synthesizer pick arbitrarily low head percentiles, improving nominal
resource efficiency but removing the SLO safety net. The experiment serves
the same stream with the constraint on and off and compares violation rates
and consumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..policies.janus import janus
from ..runtime.registry import resolve_executor
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["AblationResult", "run", "render"]


@dataclass(frozen=True)
class AblationResult:
    """Violation/consumption with and without the Eq. 6 constraint."""

    rows: list[tuple[str, str, float, float]]  # (wf, variant, viol, cpu)


def run(
    n_requests: int = 800,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> AblationResult:
    """Compare Janus with/without the resilience constraint on IA and VA."""
    rows: list[tuple[str, str, float, float]] = []
    for wf_name in ("IA", "VA"):
        if wf_name == "IA":
            wf, profiles, budget = ia_setup(samples=samples, seed=seed)
        else:
            wf, profiles, budget = va_setup(samples=samples, seed=seed)
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed + 5
        )
        executor = resolve_executor(wf)
        for enforce, label in ((True, "with Eq.6"), (False, "without Eq.6")):
            policy = janus(
                wf, profiles, budget=budget, enforce_resilience=enforce
            )
            res = executor.run(policy, requests)
            rows.append((wf_name, label, res.violation_rate, res.mean_allocated))
    return AblationResult(rows=rows)


def render(result: AblationResult) -> str:
    """Ablation table."""
    return format_table(
        ["workflow", "variant", "violation rate", "mean CPU (millicores)"],
        result.rows,
        title="Ablation: resilience constraint (Insight-3)",
    )
