"""Ablation — the resilience constraint (paper Insight-3, Eq. 6).

DESIGN.md §5 calls this design choice out for ablation: dropping the
"timeout must fit within downstream resilience" constraint lets the
synthesizer pick arbitrarily low head percentiles, improving nominal
resource efficiency but removing the SLO safety net. The experiment serves
the same stream with the constraint on and off and compares violation rates
and consumption.

The ``faults`` knob re-runs the ablation under adverse cluster dynamics
from the scenario fault axis (:mod:`repro.cluster.faults`): both variants
serve through the DES cluster platform with the same deterministic,
seed-derived fault schedule, so the comparison isolates what Eq. 6 buys
when VMs preempt, crash, straggle or contend — exactly where a safety
margin should matter. The default (``faults=None``) keeps the original
analytic run bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster import ClusterConfig, cluster_executor
from ..cluster.faults import CLUSTER_FAULT_KINDS, FaultSpec, parse_fault
from ..errors import ExperimentError
from ..metrics.report import format_table
from ..policies.janus import janus
from ..rng import child_seed
from ..runtime.registry import resolve_executor
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["AblationResult", "run", "render"]


@dataclass(frozen=True)
class AblationResult:
    """Violation/consumption with and without the Eq. 6 constraint."""

    rows: list[tuple[str, str, float, float]]  # (wf, variant, viol, cpu)
    #: Fault label the streams were served under (``None`` = fault-free
    #: analytic serving, the paper's configuration).
    fault: str | None = None


def run(
    n_requests: int = 800,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    faults: FaultSpec | str | None = None,
    cluster: ClusterConfig | None = None,
) -> AblationResult:
    """Compare Janus with/without the resilience constraint on IA and VA.

    ``faults`` accepts a cluster-side :class:`FaultSpec` or spec token
    (``preempt@2``, ``crash@5000``, ``straggler@0.25:3``,
    ``contention``); when set, both variants run on the DES cluster
    platform (``cluster`` overrides its :class:`ClusterConfig`) under the
    same seed-derived fault schedule. ``storm`` is arrival-side — run it
    through the sweep's faults axis instead.
    """
    if isinstance(faults, str):
        faults = parse_fault(faults)
    if faults is not None and faults.kind not in CLUSTER_FAULT_KINDS:
        raise ExperimentError(
            f"ablation injects cluster-side faults {CLUSTER_FAULT_KINDS}; "
            f"{faults.kind!r} reshapes arrivals — use "
            f"'janus-repro sweep --faults {faults.label}'"
        )
    rows: list[tuple[str, str, float, float]] = []
    for wf_name in ("IA", "VA"):
        if wf_name == "IA":
            wf, profiles, budget = ia_setup(samples=samples, seed=seed)
        else:
            wf, profiles, budget = va_setup(samples=samples, seed=seed)
        requests = generate_requests(
            wf, WorkloadConfig(n_requests=n_requests), seed=seed + 5
        )
        if faults is None and cluster is None:
            executor = resolve_executor(wf)
        else:
            fault_seed = (
                child_seed(seed, "faults", faults.label)
                if faults is not None
                else 0
            )
            executor = cluster_executor(
                wf, config=cluster, faults=faults, fault_seed=fault_seed
            )
        for enforce, label in ((True, "with Eq.6"), (False, "without Eq.6")):
            policy = janus(
                wf, profiles, budget=budget, enforce_resilience=enforce
            )
            res = executor.run(policy, requests)
            rows.append((wf_name, label, res.violation_rate, res.mean_allocated))
    return AblationResult(
        rows=rows, fault=None if faults is None else faults.label
    )


def render(result: AblationResult) -> str:
    """Ablation table."""
    suffix = f" under {result.fault}" if result.fault else ""
    return format_table(
        ["workflow", "variant", "violation rate", "mean CPU (millicores)"],
        result.rows,
        title=f"Ablation: resilience constraint (Insight-3){suffix}",
    )
