"""Fig. 1b — function latency variance caused by varying input worksets.

Paper claim: across OD, QA and TS the spread between P1 and P99 execution
time reaches up to ~3.8x under varying working sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["Fig1bResult", "run", "render"]


@dataclass(frozen=True)
class Fig1bResult:
    """P1/P99 latency per IA function at a reference allocation."""

    rows: list[tuple[str, float, float, float]]  # (fn, P1 s, P99 s, ratio)
    reference_millicores: int
    max_ratio: float


def run(
    reference_millicores: int = 2000,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> Fig1bResult:
    """Profile the IA functions and extract the P1-P99 spread."""
    _, profiles, _ = ia_setup(samples=samples, seed=seed)
    rows = []
    for fname in ("OD", "QA", "TS"):
        prof = profiles[fname]
        p1 = prof.latency(1, reference_millicores) / 1000.0
        p99 = prof.latency(99, reference_millicores) / 1000.0
        rows.append((fname, p1, p99, p99 / p1))
    return Fig1bResult(
        rows=rows,
        reference_millicores=reference_millicores,
        max_ratio=max(r[3] for r in rows),
    )


def render(result: Fig1bResult) -> str:
    """Per-function P1/P99 table."""
    table = format_table(
        ["function", "P1 (s)", "P99 (s)", "P99/P1"],
        result.rows,
        title=(
            f"Fig 1b: workset-driven latency variance at "
            f"{result.reference_millicores} millicores"
        ),
    )
    return table + (
        f"\nmax P99/P1 ratio: {result.max_ratio:.2f}x (paper: up to 3.8x)"
    )
