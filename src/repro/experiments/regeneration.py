"""Extension experiment — asynchronous hints regeneration (paper §III-D).

Not a numbered figure, but a core mechanism: when runtime dynamics drift
away from the profiled distribution, misses accumulate; once the miss rate
crosses the threshold (1%) the supervisor notifies the developer, the
profiler/synthesizer re-run on the drifted distribution, and the adapter
swaps tables in without downtime. This experiment drifts the working-set
distribution, observes the trigger, regenerates, and verifies recovery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adapter.service import AdapterService
from ..metrics.report import format_kv
from ..policies.janus import JanusPolicy
from ..profiling.profiles import LatencyProfile, ProfileSet
from ..runtime.registry import resolve_executor
from ..synthesis.generator import synthesize_hints
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup

__all__ = ["RegenerationResult", "run", "render"]


@dataclass(frozen=True)
class RegenerationResult:
    """Miss rates before/after drift and after regeneration."""

    miss_rate_before_drift: float
    miss_rate_under_drift: float
    regeneration_triggered: bool
    miss_rate_after_regen: float
    violation_rate_after_regen: float


def _drifted_profiles(
    profiles: ProfileSet, chain: list[str], gamma_by_fn: dict[str, float],
    workset_scale: float,
) -> ProfileSet:
    """Profiles of the drifted population.

    A uniform working-set scale ``s`` multiplies every latency by
    ``s**gamma`` under the power-law workset model, so the drifted profile
    is an exact rescaling of the original table — which is what a developer
    re-profiling on representative new inputs would measure.
    """
    out = {}
    for name in chain:
        prof = profiles[name]
        factor = workset_scale ** gamma_by_fn[name]
        out[name] = LatencyProfile(
            function=prof.function,
            percentiles=prof.percentiles,
            limits=prof.limits,
            concurrencies=prof.concurrencies,
            table=prof.table * factor,
        )
    return ProfileSet(out)


def run(
    workset_scale: float = 4.0,
    n_requests: int = 400,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
) -> RegenerationResult:
    """Drift the workload, trip the supervisor, regenerate, recover."""
    wf, profiles, budget = ia_setup(samples=samples, seed=seed)
    service = AdapterService(miss_threshold=0.01, min_samples=50)
    hints = synthesize_hints(profiles, wf.chain, budget=budget, workflow_name="IA")
    adapter = service.register("tenant-a", "IA", hints, wf.slo_ms)
    policy = JanusPolicy(wf, hints)
    policy.adapter = adapter  # route decisions through the service's adapter

    executor = resolve_executor(wf)

    # Phase 1: in-distribution traffic.
    in_dist = generate_requests(
        wf, WorkloadConfig(n_requests=n_requests), seed=seed + 1
    )
    executor.run(policy, in_dist)
    miss_before = adapter.supervisor.miss_rate

    # Phase 2: drifted traffic (larger inputs -> slower stages -> leftover
    # budgets below the tables' covered range -> misses).
    drifted = generate_requests(
        wf,
        WorkloadConfig(n_requests=n_requests, workset_scale=workset_scale),
        seed=seed + 2,
    )
    executor.run(policy, drifted)
    miss_drift = adapter.supervisor.miss_rate
    triggered = ("tenant-a", "IA") in service.pending_regenerations()

    # Phase 3: the developer re-profiles on the drifted inputs and submits
    # fresh tables; the service swaps them in (supervisor resets).
    gamma_by_fn = {name: wf.model(name).workset_gamma for name in wf.chain}
    new_profiles = _drifted_profiles(profiles, wf.chain, gamma_by_fn, workset_scale)
    new_hints = synthesize_hints(new_profiles, wf.chain, workflow_name="IA")
    service.register("tenant-a", "IA", new_hints, wf.slo_ms)

    more_drifted = generate_requests(
        wf,
        WorkloadConfig(n_requests=n_requests, workset_scale=workset_scale),
        seed=seed + 4,
    )
    result = executor.run(policy, more_drifted)
    return RegenerationResult(
        miss_rate_before_drift=miss_before,
        miss_rate_under_drift=miss_drift,
        regeneration_triggered=triggered,
        miss_rate_after_regen=adapter.supervisor.miss_rate,
        violation_rate_after_regen=result.violation_rate,
    )


def render(result: RegenerationResult) -> str:
    """Regeneration loop summary."""
    return format_kv(
        {
            "miss rate (in-distribution)": result.miss_rate_before_drift,
            "miss rate (after drift)": result.miss_rate_under_drift,
            "regeneration triggered": result.regeneration_triggered,
            "miss rate (after regeneration)": result.miss_rate_after_regen,
            "violation rate (after regeneration)": result.violation_rate_after_regen,
        },
        title="Extension: asynchronous hints regeneration (paper §III-D)",
    )
