"""Experiment registry: every paper artifact behind one uniform interface.

Each experiment module exposes ``run(**params) -> result`` and
``render(result) -> str``; the registry maps stable experiment ids (the
paper's figure/table numbers) to those pairs so the CLI and the benchmark
harness can drive them generically.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from ..errors import ExperimentError
from . import (
    ablation_resilience,
    extension_batching,
    extension_dag,
    extension_keepalive,
    extension_multitenant,
    extension_strict_slo,
    fig1_interference,
    fig1_slack,
    fig1_worksets,
    fig2_motivation,
    fig4_latency_cdf,
    fig5_resources,
    fig6_percentile_exploration,
    fig7_timeout_resilience,
    fig8_condensing,
    fig9_slo,
    overhead,
    regeneration,
    table2_weight,
)

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "list_experiments"]


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: id, description, run/render callables."""

    exp_id: str
    description: str
    run: _t.Callable[..., _t.Any]
    render: _t.Callable[[_t.Any], str]


def _reg(exp_id: str, description: str, module) -> tuple[str, Experiment]:
    return exp_id, Experiment(exp_id, description, module.run, module.render)


EXPERIMENTS: dict[str, Experiment] = dict(
    [
        _reg("fig1a", "Slack CDF on Azure-like traces", fig1_slack),
        _reg("fig1b", "Workset-driven latency variance (OD/QA/TS)", fig1_worksets),
        _reg("fig1c", "Co-location interference (4 microbenchmarks)", fig1_interference),
        _reg("fig2", "Early vs late binding motivation", fig2_motivation),
        _reg("fig4", "E2E latency CDFs, all systems", fig4_latency_cdf),
        _reg("fig5", "Resource consumption + Table I", fig5_resources),
        _reg("fig6", "Moderate percentile exploration cost/benefit", fig6_percentile_exploration),
        _reg("fig7", "Timeout and resilience curves (TS)", fig7_timeout_resilience),
        _reg("table2", "Head-function weight impact", table2_weight),
        _reg("fig8", "Hints condensing effectiveness", fig8_condensing),
        _reg("fig9", "Resource consumption vs SLO", fig9_slo),
        _reg("overhead", "Online adaptation overhead (§V-H)", overhead),
        _reg("regeneration", "Asynchronous hints regeneration (§III-D)", regeneration),
        _reg("ablation-resilience", "Resilience-constraint ablation", ablation_resilience),
        _reg("ext-dag", "Branching-workflow extension (§VII)", extension_dag),
        _reg("ext-batching", "Batching front-end extension", extension_batching),
        _reg("ext-multitenant", "Multi-tenant shared cluster (§III-A)", extension_multitenant),
        _reg("ext-strict-slo", "P99.9 SLO targets via higher anchor (§III-B)", extension_strict_slo),
        _reg("ext-keepalive", "Keep-alive caching interplay (§VII)", extension_keepalive),
    ]
)


def list_experiments() -> list[tuple[str, str]]:
    """(id, description) pairs in registration order."""
    return [(e.exp_id, e.description) for e in EXPERIMENTS.values()]


def run_experiment(exp_id: str, **params: _t.Any) -> str:
    """Run one experiment and return its rendered report."""
    try:
        exp = EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ExperimentError(f"unknown experiment {exp_id!r}; known: {known}")
    result = exp.run(**params)
    return exp.render(result)
