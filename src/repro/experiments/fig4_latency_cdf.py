"""Fig. 4 — end-to-end latency distribution of all seven systems.

Paper claim: Janus fulfils the SLO in all cases despite running closer to
the deadline than the over-provisioned baselines (it "trades in time for
resource efficiency"). The figure shows E2E CDFs for IA at concurrency 1, 2
and 3 (SLOs 3/4/5 s) and VA at concurrency 1 (SLO 1.5 s).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics.report import format_table
from ..runtime.driver import build_policy_suite, run_policies
from ..runtime.results import RunResult
from ..traces.workload import WorkloadConfig, generate_requests
from .common import DEFAULT_SAMPLES, DEFAULT_SEED, ia_setup, va_setup

__all__ = ["Fig4Result", "run", "render"]

#: (workflow, concurrency) panels of the figure.
PANELS = [("IA", 1), ("VA", 1), ("IA", 2), ("IA", 3)]


@dataclass(frozen=True)
class Fig4Result:
    """Latency percentiles per panel and policy."""

    panels: dict[tuple[str, int], dict[str, RunResult]]
    slos_ms: dict[tuple[str, int], float]


def run(
    n_requests: int = 1000,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    panels: list[tuple[str, int]] | None = None,
) -> Fig4Result:
    """Serve each panel's stream with the full policy suite."""
    out: dict[tuple[str, int], dict[str, RunResult]] = {}
    slos: dict[tuple[str, int], float] = {}
    for wf_name, conc in panels or PANELS:
        if wf_name == "IA":
            wf, profiles, budget = ia_setup(
                concurrency=conc, samples=samples, seed=seed
            )
        else:
            wf, profiles, budget = va_setup(samples=samples, seed=seed)
        suite = build_policy_suite(wf, profiles, budget=budget, concurrency=conc)
        requests = generate_requests(
            wf,
            WorkloadConfig(n_requests=n_requests, concurrency=conc),
            seed=seed + 10 * conc,
        )
        out[(wf_name, conc)] = run_policies(wf, suite, requests)
        slos[(wf_name, conc)] = wf.slo_ms
    return Fig4Result(panels=out, slos_ms=slos)


def render(result: Fig4Result) -> str:
    """Latency percentiles + violation rate table per panel."""
    blocks = []
    for key, results in result.panels.items():
        wf_name, conc = key
        slo = result.slos_ms[key]
        rows = []
        for name, res in results.items():
            rows.append(
                (
                    name,
                    res.e2e_percentile(50) / 1000.0,
                    res.e2e_percentile(90) / 1000.0,
                    res.e2e_percentile(99) / 1000.0,
                    res.e2e_percentile(99.9) / 1000.0,
                    res.violation_rate,
                )
            )
        blocks.append(
            format_table(
                ["system", "P50 (s)", "P90 (s)", "P99 (s)", "P99.9 (s)", "viol."],
                rows,
                title=(
                    f"Fig 4: {wf_name} conc={conc} E2E latency "
                    f"(SLO {slo / 1000:g} s; P99 SLO allows viol. <= 0.01)"
                ),
            )
        )
    return "\n\n".join(blocks)
