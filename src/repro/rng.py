"""Deterministic random-number management.

Experiments must be reproducible and *comparable*: when two sizing policies
are evaluated on "the same" request stream they must see identical working
sets and noise draws (common random numbers). We achieve this by deriving
independent child generators from a root seed with
:class:`numpy.random.SeedSequence`, keyed by stable string labels.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["child_seed", "make_rng", "derive_rng", "RngFactory"]


def child_seed(root_seed: int, *labels: str) -> int:
    """Derive a deterministic 63-bit child seed from a root seed and labels.

    The derivation hashes the labels so that streams keyed by different
    labels are statistically independent and insensitive to ordering of
    unrelated streams.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode())
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode())
    return int.from_bytes(h.digest()[:8], "little") >> 1


def make_rng(seed: int) -> np.random.Generator:
    """Construct a PCG64 generator from an integer seed."""
    return np.random.default_rng(int(seed))


def derive_rng(root_seed: int, *labels: str) -> np.random.Generator:
    """Generator for the stream identified by ``labels`` under ``root_seed``."""
    return make_rng(child_seed(root_seed, *labels))


class RngFactory:
    """Factory producing independent named random streams from one seed.

    Example
    -------
    >>> f = RngFactory(42)
    >>> a = f.stream("arrivals")
    >>> b = f.stream("worksets", "OD")
    """

    def __init__(self, root_seed: int) -> None:
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        return self._root_seed

    def stream(self, *labels: str) -> np.random.Generator:
        """Return a fresh generator for the given label path."""
        return derive_rng(self._root_seed, *labels)

    def seed(self, *labels: str) -> int:
        """Return the derived integer seed for the given label path."""
        return child_seed(self._root_seed, *labels)

    def fork(self, *labels: str) -> "RngFactory":
        """A child factory rooted at the derived seed for ``labels``."""
        return RngFactory(self.seed(*labels))
