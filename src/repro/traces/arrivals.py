"""Request arrival processes."""

from __future__ import annotations

import numpy as np

from ..errors import TraceError
from .diurnal import DiurnalRate, FlashCrowdRate, nhpp_arrivals

__all__ = [
    "poisson_arrivals",
    "constant_arrivals",
    "burst_arrivals",
    "azure_like_arrivals",
    "storm_arrivals",
]


def poisson_arrivals(
    rate_per_s: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """``n`` Poisson arrival timestamps (ms), starting at the first event."""
    if rate_per_s <= 0:
        raise TraceError(f"rate must be > 0, got {rate_per_s}")
    if n <= 0:
        raise TraceError(f"n must be > 0, got {n}")
    gaps_ms = rng.exponential(1000.0 / rate_per_s, size=n)
    return np.cumsum(gaps_ms)


def constant_arrivals(interval_ms: float, n: int) -> np.ndarray:
    """``n`` evenly spaced arrivals (closed-loop style)."""
    if interval_ms < 0:
        raise TraceError(f"interval must be >= 0, got {interval_ms}")
    if n <= 0:
        raise TraceError(f"n must be > 0, got {n}")
    return np.arange(n, dtype=np.float64) * interval_ms


def burst_arrivals(
    base_rate_per_s: float,
    burst_rate_per_s: float,
    burst_fraction: float,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Two-phase arrivals: alternating base and burst intensity.

    Reproduces the bursty serverless traffic motivating BATCH [29]; each
    request independently belongs to the burst regime with probability
    ``burst_fraction``.
    """
    if not 0.0 <= burst_fraction <= 1.0:
        raise TraceError(f"burst fraction must be in [0, 1]: {burst_fraction}")
    if base_rate_per_s <= 0 or burst_rate_per_s <= 0:
        raise TraceError("rates must be > 0")
    if n <= 0:
        raise TraceError(f"n must be > 0, got {n}")
    in_burst = rng.random(n) < burst_fraction
    rates = np.where(in_burst, burst_rate_per_s, base_rate_per_s)
    gaps_ms = rng.exponential(1000.0 / rates)
    return np.cumsum(gaps_ms)


def storm_arrivals(
    rate_per_s: float,
    multiplier: float,
    window_fraction: float,
    n: int,
    rng: np.random.Generator,
    amplitude: float = 0.0,
    period_s: float = 60.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Flash-crowd arrivals: a diurnal base with a storm window at the peak.

    The cold-start-storm scenario — ``multiplier`` x traffic during
    ``window_fraction`` of every period, landing on the busy hour of a
    sinusoidal base curve (``amplitude = 0`` storms a flat Poisson base;
    ``phase`` shifts the base so fleet regions storm at their own local
    busy hours). Sampled by the same deterministic thinning loop as plain
    diurnal arrivals, so a fixed seed replays bit-identically.
    """
    base = DiurnalRate.sinusoid(rate_per_s, amplitude, period_s, phase)
    crowd = FlashCrowdRate(base, multiplier, window_fraction)
    return nhpp_arrivals(crowd, n, rng)


def azure_like_arrivals(
    rate_per_s: float,
    n: int,
    rng: np.random.Generator,
    sigma: float = 1.5,
) -> np.ndarray:
    """Heavy-tailed arrivals replaying the Azure-trace gap shape.

    Production serverless traces ([23], [40] in :mod:`repro.traces.azure`)
    show lognormal-like inter-arrival gaps with P99/P50 ratios of 10-100x;
    ``sigma`` is the log-std of the gap distribution (1.0 ≈ 10x, 2.0 ≈
    100x). Gaps are normalised to unit mean before scaling, so the
    empirical rate converges to ``rate_per_s`` while individual gaps span
    orders of magnitude — the replay-style stress the Poisson process
    cannot produce.
    """
    if rate_per_s <= 0:
        raise TraceError(f"rate must be > 0, got {rate_per_s}")
    if n <= 0:
        raise TraceError(f"n must be > 0, got {n}")
    if sigma < 0:
        raise TraceError(f"sigma must be >= 0, got {sigma}")
    # E[exp(sigma z - sigma^2/2)] = 1, so the mean gap is exactly 1000/rate.
    z = rng.standard_normal(n)
    gaps_ms = np.exp(sigma * z - 0.5 * sigma * sigma) * (1000.0 / rate_per_s)
    return np.cumsum(gaps_ms)
