"""Zipf popularity mixes over registered catalog workflows.

The paper's Fig. 1a substrate (:mod:`repro.traces.azure`) draws function
popularity from a Zipf law. :class:`PopularityMix` lifts that skew from
anonymous function ids to *named workflows*: rank 0 (the most popular) is
the first workflow in the tuple, and an invocation stream assigns each
arrival a workflow with Zipf(``zipf_s``) probabilities — turning a single
arrival process into a realistic multi-workflow stream whose per-workflow
sub-streams a scenario cell can replay individually.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from ..errors import TraceError

__all__ = ["PopularityMix"]


@dataclass(frozen=True)
class PopularityMix:
    """Zipf(``zipf_s``) popularity over an ordered tuple of workflows.

    ``workflows[0]`` is rank 1 (heaviest traffic); weights decay as
    ``rank ** -zipf_s`` and are normalised to sum to one.
    """

    workflows: tuple[str, ...]
    zipf_s: float = 0.9

    def __post_init__(self) -> None:
        if not self.workflows:
            raise TraceError("popularity mix requires >= 1 workflow")
        if len(set(self.workflows)) != len(self.workflows):
            raise TraceError(f"duplicate workflows: {list(self.workflows)}")
        if self.zipf_s <= 0:
            raise TraceError(f"zipf exponent must be > 0, got {self.zipf_s}")

    def weights(self) -> np.ndarray:
        """Normalised popularity weights, one per workflow (rank order)."""
        ranks = np.arange(1, len(self.workflows) + 1, dtype=np.float64)
        w = ranks ** (-self.zipf_s)
        return w / w.sum()

    def share(self, workflow: str) -> float:
        """Traffic share of one workflow."""
        try:
            rank = self.workflows.index(workflow)
        except ValueError:
            raise TraceError(
                f"unknown workflow {workflow!r}; mix covers "
                f"{list(self.workflows)}"
            )
        return float(self.weights()[rank])

    def assign(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Workflow index (rank position) for each of ``n`` invocations."""
        if n <= 0:
            raise TraceError(f"n must be > 0, got {n}")
        return rng.choice(
            len(self.workflows), size=n, p=self.weights()
        ).astype(np.int64)

    def map_ranks(self, function_ranks: np.ndarray) -> np.ndarray:
        """Map trace function popularity ranks onto workflow indices.

        Rank ``r`` (0 = most popular function) lands on workflow
        ``r % len(workflows)``, so the heaviest trace functions spread
        round-robin across the catalog in popularity order — the bridge
        from an :class:`~repro.traces.azure.AzureLikeTrace`'s anonymous
        functions to registered workflows.
        """
        ranks = np.asarray(function_ranks, dtype=np.int64)
        if ranks.size and ranks.min() < 0:
            raise TraceError("function ranks must be >= 0")
        return ranks % len(self.workflows)

    def names_for(self, indices: np.ndarray) -> _t.List[str]:
        """Workflow names for an index array (from :meth:`assign`)."""
        return [self.workflows[int(i)] for i in indices]
