"""Synthetic Azure-Functions-like invocation trace (Fig. 1a substrate).

The paper's Fig. 1a analyses the Microsoft Azure Functions 2019 dataset:
with per-function SLOs set at the P99 latency, more than 60% of invocations
have slack above 0.6, and even among the top-100 most popular functions
(81.6% of traffic) only ~20% of invocations have slack below 0.4.

The public dataset is not redistributable here, so this module synthesises a
trace with the documented *shape*: Zipf-distributed function popularity and
heavy-tailed lognormal per-invocation durations (production studies [23],
[40] report P99/P50 ratios of 10-100x). The slack analysis then runs on the
synthetic trace exactly as it would on the real one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TraceError
from ..rng import derive_rng

__all__ = ["AzureLikeTrace", "generate_trace", "slack_analysis", "SlackAnalysis"]


@dataclass(frozen=True)
class AzureLikeTrace:
    """Synthetic invocation trace.

    Attributes
    ----------
    function_ids:
        ``int64[n_invocations]`` — which function each invocation belongs to.
    durations_ms:
        ``float64[n_invocations]`` — invocation latency.
    medians_ms / sigmas:
        Per-function lognormal parameters (diagnostics).
    """

    function_ids: np.ndarray
    durations_ms: np.ndarray
    medians_ms: np.ndarray
    sigmas: np.ndarray

    @property
    def n_invocations(self) -> int:
        return int(self.function_ids.size)

    @property
    def n_functions(self) -> int:
        return int(self.medians_ms.size)

    def popularity_order(self) -> np.ndarray:
        """Function indices sorted by invocation count, descending."""
        counts = np.bincount(self.function_ids, minlength=self.n_functions)
        return np.argsort(counts)[::-1]


def generate_trace(
    n_functions: int = 200,
    n_invocations: int = 100_000,
    zipf_s: float = 0.95,
    seed: int = 0,
) -> AzureLikeTrace:
    """Synthesise a trace with Zipf popularity and lognormal durations."""
    if n_functions < 2:
        raise TraceError(f"need >= 2 functions, got {n_functions}")
    if n_invocations < n_functions:
        raise TraceError("need at least one invocation per function on average")
    if zipf_s <= 0:
        raise TraceError(f"zipf exponent must be > 0, got {zipf_s}")
    rng = derive_rng(seed, "azure-trace")

    ranks = np.arange(1, n_functions + 1, dtype=np.float64)
    weights = ranks ** (-zipf_s)
    weights /= weights.sum()
    function_ids = rng.choice(n_functions, size=n_invocations, p=weights)

    # Median execution times span sub-ms to tens of seconds (log-uniform),
    # matching the wide spread in production serverless traces [23].
    medians_ms = np.exp(rng.uniform(np.log(1.0), np.log(20_000.0), n_functions))
    # Per-function skew: log-std between 0.3 (stable) and 1.5 (wild); the
    # Huawei study [23] reports P99/P50 up to 100x, i.e. sigma ~ ln(100)/2.33.
    # Skew correlates inversely with popularity: heavily-invoked functions
    # are typically optimised, cache-warm and stable (paper Fig. 1a shows
    # popular functions with markedly more low-slack invocations, which a
    # lognormal only produces at low sigma). Rank 0 is the most popular.
    rank_frac = np.arange(n_functions) / max(1, n_functions - 1)
    lo = 0.30 + 0.50 * rank_frac   # popular ~0.3, tail ~0.8
    hi = 0.60 + 0.90 * rank_frac   # popular ~0.6, tail ~1.5
    sigmas = rng.uniform(lo, hi)

    z = rng.standard_normal(n_invocations)
    durations = medians_ms[function_ids] * np.exp(sigmas[function_ids] * z)
    return AzureLikeTrace(
        function_ids=function_ids.astype(np.int64),
        durations_ms=durations,
        medians_ms=medians_ms,
        sigmas=sigmas,
    )


@dataclass(frozen=True)
class SlackAnalysis:
    """Slack CDF inputs for Fig. 1a."""

    all_slacks: np.ndarray
    popular_slacks: np.ndarray
    popular_traffic_share: float

    def cdf(self, which: str = "all", grid: np.ndarray | None = None):
        """(x, F(x)) CDF points for ``which`` in {"all", "popular"}."""
        data = self.all_slacks if which == "all" else self.popular_slacks
        if grid is None:
            grid = np.linspace(0.0, 1.0, 101)
        frac = np.searchsorted(np.sort(data), grid, side="right") / data.size
        return grid, frac

    def fraction_above(self, threshold: float, which: str = "all") -> float:
        """Fraction of invocations with slack above ``threshold``."""
        data = self.all_slacks if which == "all" else self.popular_slacks
        return float(np.mean(data > threshold))


def slack_analysis(
    trace: AzureLikeTrace,
    slo_percentile: float = 99.0,
    top_k: int = 100,
) -> SlackAnalysis:
    """Per-invocation slack with per-function SLOs at ``slo_percentile``.

    Slack is ``1 - l / T`` (paper §II-A) where ``T`` is the function's own
    P99 latency — the early-binding SLO a developer would configure.
    """
    if not 0.0 < slo_percentile < 100.0:
        raise TraceError(f"percentile must be in (0, 100): {slo_percentile}")
    if top_k < 1:
        raise TraceError(f"top_k must be >= 1, got {top_k}")
    n_func = trace.n_functions
    slos = np.empty(n_func)
    for f in range(n_func):
        durations = trace.durations_ms[trace.function_ids == f]
        slos[f] = (
            np.percentile(durations, slo_percentile) if durations.size else np.nan
        )
    slack = 1.0 - trace.durations_ms / slos[trace.function_ids]

    popular = set(trace.popularity_order()[:top_k].tolist())
    popular_mask = np.isin(trace.function_ids, list(popular))
    return SlackAnalysis(
        all_slacks=slack,
        popular_slacks=slack[popular_mask],
        popular_traffic_share=float(np.mean(popular_mask)),
    )
