"""Versioned on-disk workload traces: record, validate, load, replay.

A :class:`WorkloadTrace` is the package's workload interchange format —
the bridge between real production traces (Azure-style invocation logs),
synthetically generated workloads, and sweep cells. One trace holds an
arrival-ordered record stream, each record carrying its timestamp, an
optional workflow attribution and an optional observed duration.

Two storage encodings share one logical schema (``TRACE_SCHEMA``):

* **JSONL** — a header object on the first line (schema version, name,
  workflow catalog, record count, metadata) followed by one compact JSON
  object per record. This is also the *canonical* serialisation: a
  trace's :meth:`~WorkloadTrace.digest` is the SHA-256 of these bytes
  (via :func:`repro.persist.content_digest`), so the digest names the
  content regardless of which encoding sits on disk.
* **CSV** — ``#key=value`` header comment lines, then a standard CSV
  table. Round-trips losslessly to the JSONL form (floats are written
  with ``repr``, the shortest exact representation).

Loaders validate shape invariants (sorted arrivals, attribution within
the catalog, record counts matching the header) so a torn or hand-edited
file fails at load time with a :class:`~repro.errors.TraceError` naming
the problem — never as a silent workload distortion mid-sweep.
"""

from __future__ import annotations

import collections as _collections
import csv
import io
import json
import os
import typing as _t
from dataclasses import dataclass, field

import numpy as np

from ..errors import TraceError
from ..persist import atomic_write_bytes, content_digest
from ..rng import RngFactory
from .popularity import PopularityMix

if _t.TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workflow.request import WorkflowRequest

__all__ = [
    "TRACE_SCHEMA",
    "WorkloadTrace",
    "save_trace",
    "load_trace",
    "cached_trace",
    "generate_workload_trace",
    "trace_from_requests",
    "replay_arrivals",
]

#: On-disk schema version; bumped on incompatible format changes. Loaders
#: reject newer schemas instead of misreading them.
TRACE_SCHEMA = 1

#: Record columns, in canonical order.
_FIELDS = ("arrival_ms", "workflow", "duration_ms")


@dataclass(frozen=True, eq=False)
class WorkloadTrace:
    """An arrival-ordered invocation trace.

    ``workflow_ids`` indexes into the ``workflows`` catalog; ``-1`` marks
    an unattributed record and is only legal when the catalog is empty
    (a pure arrival trace). ``durations_ms`` is optional — replay ignores
    it, but ingested production traces can carry observed latencies for
    analysis.
    """

    name: str
    arrival_ms: np.ndarray
    workflow_ids: np.ndarray
    workflows: tuple[str, ...] = ()
    durations_ms: np.ndarray | None = None
    metadata: dict[str, _t.Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        arrivals = np.asarray(self.arrival_ms, dtype=np.float64)
        ids = np.asarray(self.workflow_ids, dtype=np.int64)
        object.__setattr__(self, "arrival_ms", arrivals)
        object.__setattr__(self, "workflow_ids", ids)
        if arrivals.ndim != 1 or arrivals.size == 0:
            raise TraceError("trace requires >= 1 record")
        if ids.shape != arrivals.shape:
            raise TraceError(
                f"workflow_ids shape {ids.shape} != arrivals {arrivals.shape}"
            )
        if np.any(arrivals < 0) or not np.all(np.isfinite(arrivals)):
            raise TraceError("arrival timestamps must be finite and >= 0")
        if np.any(np.diff(arrivals) < 0):
            raise TraceError("arrival timestamps must be non-decreasing")
        if len(set(self.workflows)) != len(self.workflows):
            raise TraceError(f"duplicate workflows: {list(self.workflows)}")
        if self.workflows:
            if ids.min() < 0 or ids.max() >= len(self.workflows):
                raise TraceError(
                    f"workflow ids must index the catalog "
                    f"{list(self.workflows)}"
                )
        elif np.any(ids != -1):
            raise TraceError(
                "an empty workflow catalog requires all ids to be -1"
            )
        if self.durations_ms is not None:
            durations = np.asarray(self.durations_ms, dtype=np.float64)
            object.__setattr__(self, "durations_ms", durations)
            if durations.shape != arrivals.shape:
                raise TraceError(
                    f"durations shape {durations.shape} != arrivals "
                    f"{arrivals.shape}"
                )
            if np.any(durations < 0) or not np.all(np.isfinite(durations)):
                raise TraceError("durations must be finite and >= 0")

    # -- introspection ------------------------------------------------------
    @property
    def n_records(self) -> int:
        return int(self.arrival_ms.size)

    @property
    def span_ms(self) -> float:
        """Time between the first and last arrival."""
        return float(self.arrival_ms[-1] - self.arrival_ms[0])

    def counts_by_workflow(self) -> dict[str, int]:
        """Record count per catalog workflow (popularity order as stored)."""
        if not self.workflows:
            return {}
        counts = np.bincount(self.workflow_ids, minlength=len(self.workflows))
        return {wf: int(c) for wf, c in zip(self.workflows, counts)}

    def arrivals_for(self, workflow: str | None = None) -> np.ndarray:
        """Arrival timestamps, optionally filtered to one workflow.

        ``None`` — and any ``workflow`` when the trace carries no
        attribution — returns the full stream. A named workflow absent
        from a *attributed* trace raises: silently replaying the whole
        trace would misrepresent the recorded popularity mix.
        """
        if workflow is None or not self.workflows:
            return self.arrival_ms.copy()
        try:
            rank = self.workflows.index(workflow)
        except ValueError:
            raise TraceError(
                f"trace {self.name!r} has no records for workflow "
                f"{workflow!r} (catalog: {list(self.workflows)})"
            )
        return self.arrival_ms[self.workflow_ids == rank].copy()

    # -- canonical serialisation -------------------------------------------
    def _header(self) -> dict[str, _t.Any]:
        return {
            "janus_trace": TRACE_SCHEMA,
            "name": self.name,
            "workflows": list(self.workflows),
            "n_records": self.n_records,
            "metadata": self.metadata,
        }

    def to_jsonl(self) -> str:
        """The canonical encoding: header line + one record per line."""
        lines = [json.dumps(self._header(), sort_keys=True,
                            separators=(",", ":"))]
        has_durations = self.durations_ms is not None
        for i in range(self.n_records):
            record: dict[str, _t.Any] = {
                "arrival_ms": float(self.arrival_ms[i])
            }
            if self.workflows:
                record["workflow"] = self.workflows[int(self.workflow_ids[i])]
            if has_durations:
                record["duration_ms"] = float(self.durations_ms[i])
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n"

    def to_csv(self) -> str:
        """CSV encoding: ``#key=value`` header block + record table."""
        for label, value in (("name", self.name), *(
            ("workflow", wf) for wf in self.workflows
        )):
            if any(ch in value for ch in (",", "\n", "=")):
                raise TraceError(
                    f"{label} {value!r} cannot be CSV-encoded "
                    f"(contains ',', '=' or a newline); use JSONL"
                )
        buf = io.StringIO()
        buf.write(f"#janus-trace={TRACE_SCHEMA}\n")
        buf.write(f"#name={self.name}\n")
        buf.write(f"#workflows={','.join(self.workflows)}\n")
        buf.write(f"#n-records={self.n_records}\n")
        buf.write(
            "#metadata="
            + json.dumps(self.metadata, sort_keys=True, separators=(",", ":"))
            + "\n"
        )
        writer = csv.writer(buf, lineterminator="\n")
        writer.writerow(_FIELDS)
        has_durations = self.durations_ms is not None
        for i in range(self.n_records):
            writer.writerow([
                repr(float(self.arrival_ms[i])),
                self.workflows[int(self.workflow_ids[i])]
                if self.workflows else "",
                repr(float(self.durations_ms[i])) if has_durations else "",
            ])
        return buf.getvalue()

    def digest(self) -> str:
        """SHA-256 over the canonical JSONL bytes.

        Encoding-independent: a trace saved as CSV digests identically to
        its JSONL twin. The sweep cell cache folds this into its key, so
        editing a trace file cold-starts exactly the cells replaying it.
        Memoised — the instance is frozen, and cached sweeps consult the
        digest once per replay-cell lookup and store.
        """
        cached = getattr(self, "_digest", None)
        if cached is None:
            cached = content_digest(self.to_jsonl().encode("utf-8"))
            object.__setattr__(self, "_digest", cached)
        return cached


# ---------------------------------------------------------------------------
# Writers / loaders
# ---------------------------------------------------------------------------

def save_trace(trace: WorkloadTrace, path: str | os.PathLike[str]) -> str:
    """Write ``trace`` to ``path`` (CSV for ``.csv``, JSONL otherwise).

    Atomic (temp file + rename), so a concurrent reader never observes a
    torn trace. Returns the trace's content digest.
    """
    path = os.fspath(path)
    text = trace.to_csv() if path.endswith(".csv") else trace.to_jsonl()
    atomic_write_bytes(path, text.encode("utf-8"))
    return trace.digest()


def _records_to_trace(
    header: _t.Mapping[str, _t.Any],
    records: list[dict[str, _t.Any]],
    path: str,
) -> WorkloadTrace:
    schema = header.get("janus_trace")
    if schema != TRACE_SCHEMA:
        raise TraceError(
            f"{path}: unsupported trace schema {schema!r} "
            f"(this build reads schema {TRACE_SCHEMA})"
        )
    declared = header.get("n_records")
    if declared is not None and int(declared) != len(records):
        raise TraceError(
            f"{path}: header declares {declared} records, found "
            f"{len(records)} (truncated or hand-edited file?)"
        )
    workflows = tuple(header.get("workflows", ()))
    try:
        arrivals = np.array(
            [float(r["arrival_ms"]) for r in records], dtype=np.float64
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceError(f"{path}: malformed arrival_ms record: {exc}")
    if workflows:
        index = {wf: i for i, wf in enumerate(workflows)}
        try:
            ids = np.array(
                [index[r["workflow"]] for r in records], dtype=np.int64
            )
        except KeyError as exc:
            raise TraceError(
                f"{path}: record names workflow {exc} outside the header "
                f"catalog {list(workflows)}"
            )
    else:
        ids = np.full(len(records), -1, dtype=np.int64)
    durations = None
    if any("duration_ms" in r and r["duration_ms"] not in ("", None)
           for r in records):
        try:
            durations = np.array(
                [float(r["duration_ms"]) for r in records], dtype=np.float64
            )
        except (KeyError, TypeError, ValueError):
            raise TraceError(
                f"{path}: duration_ms must be present on every record "
                f"or on none"
            )
    try:
        return WorkloadTrace(
            name=str(header.get("name", os.path.basename(path))),
            arrival_ms=arrivals,
            workflow_ids=ids,
            workflows=workflows,
            durations_ms=durations,
            metadata=dict(header.get("metadata", {})),
        )
    except TraceError as exc:
        raise TraceError(f"{path}: {exc}")


def _load_jsonl(text: str, path: str) -> WorkloadTrace:
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceError(f"{path}: empty trace file")
    try:
        header = json.loads(lines[0])
        records = [json.loads(line) for line in lines[1:]]
    except ValueError as exc:
        raise TraceError(f"{path}: invalid JSONL: {exc}")
    if not isinstance(header, dict) or "janus_trace" not in header:
        raise TraceError(
            f"{path}: first line is not a janus_trace header object"
        )
    return _records_to_trace(header, records, path)


def _load_csv(text: str, path: str) -> WorkloadTrace:
    header: dict[str, _t.Any] = {}
    body_lines = []
    for line in text.splitlines():
        if line.startswith("#"):
            key, sep, value = line[1:].partition("=")
            if not sep:
                raise TraceError(
                    f"{path}: malformed header comment {line!r}"
                )
            header[key.strip()] = value
        elif line.strip():
            body_lines.append(line)
    try:
        doc: dict[str, _t.Any] = {
            "janus_trace": int(header["janus-trace"]),
            "name": header.get("name", os.path.basename(path)),
            "workflows": [
                wf for wf in header.get("workflows", "").split(",") if wf
            ],
            "metadata": json.loads(header.get("metadata", "{}")),
        }
        if "n-records" in header:
            doc["n_records"] = int(header["n-records"])
    except (KeyError, ValueError) as exc:
        raise TraceError(f"{path}: invalid CSV trace header: {exc}")
    rows = list(csv.reader(body_lines))
    if not rows or tuple(rows[0]) != _FIELDS:
        raise TraceError(
            f"{path}: expected CSV column header {list(_FIELDS)}"
        )
    records = [dict(zip(_FIELDS, row)) for row in rows[1:]]
    for record in records:
        if not record.get("workflow"):
            record.pop("workflow", None)
        if record.get("duration_ms", "") == "":
            record.pop("duration_ms", None)
    return _records_to_trace(doc, records, path)


def _parse_trace(text: str, path: str) -> WorkloadTrace:
    stripped = text.lstrip()
    if not stripped:
        raise TraceError(f"{path}: empty trace file")
    if stripped.startswith("{"):
        return _load_jsonl(text, path)
    return _load_csv(text, path)


def load_trace(path: str | os.PathLike[str]) -> WorkloadTrace:
    """Load a trace file, sniffing the encoding from its first byte."""
    path = os.fspath(path)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {path!r}: {exc}")
    except UnicodeDecodeError as exc:
        # Binary/compressed/wrong-codec input must surface as the
        # module's own error type so callers (the matrix's traces-axis
        # validation) can attribute it to the offending file.
        raise TraceError(f"{path}: not a UTF-8 text trace file ({exc})")
    return _parse_trace(text, path)


#: Parsed-trace memo behind :func:`cached_trace`, keyed by *file content*:
#: ``{abspath: (raw-bytes digest, parsed trace)}``, LRU-bounded.
_TRACE_MEMO: "_collections.OrderedDict[str, tuple[str, WorkloadTrace]]" = (
    _collections.OrderedDict()
)
_TRACE_MEMO_MAX = 32


def cached_trace(path: str | os.PathLike[str]) -> WorkloadTrace:
    """Memoised :func:`load_trace`, invalidated when the content changes.

    The file's bytes are re-read and re-hashed on every call — cheap next
    to parsing — and the parse is reused only on a digest match, so sweep
    cells replaying one trace parse it once per process while an edited
    file is *always* re-parsed, however quickly it was rewritten (an
    mtime-based key would miss same-size rewrites inside one timestamp
    tick). This is the property the cell cache's trace-digest
    invalidation rests on.
    """
    abspath = os.path.abspath(os.fspath(path))
    try:
        with open(abspath, "rb") as fh:
            raw = fh.read()
    except OSError as exc:
        raise TraceError(f"cannot read trace file {abspath!r}: {exc}")
    digest = content_digest(raw)
    entry = _TRACE_MEMO.get(abspath)
    if entry is not None and entry[0] == digest:
        _TRACE_MEMO.move_to_end(abspath)
        return entry[1]
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise TraceError(f"{abspath}: not a UTF-8 text trace file ({exc})")
    trace = _parse_trace(text, abspath)
    _TRACE_MEMO[abspath] = (digest, trace)
    if len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
        _TRACE_MEMO.popitem(last=False)
    return trace


# ---------------------------------------------------------------------------
# Producers
# ---------------------------------------------------------------------------

def generate_workload_trace(
    workflows: _t.Sequence[str],
    n_records: int,
    arrival: _t.Any = None,
    zipf_s: float = 0.9,
    seed: int = 2025,
    name: str = "synthetic",
) -> WorkloadTrace:
    """Synthesise a trace: one arrival process, Zipf workflow popularity.

    ``arrival`` is an :class:`~repro.traces.workload.ArrivalSpec` (default:
    a diurnal curve at 8 req/s); each arrival is attributed to a workflow
    drawn from :class:`PopularityMix` over ``workflows`` in rank order.
    Deterministic under ``seed``.
    """
    from .workload import ArrivalSpec  # lazy: workload imports this module

    if n_records <= 0:
        raise TraceError(f"n_records must be > 0, got {n_records}")
    if arrival is None:
        arrival = ArrivalSpec(kind="diurnal", rate_per_s=8.0)
    # The name labels the trace, it does not seed it: regenerating with
    # the same parameters under a different name (or output filename)
    # must reproduce the same records.
    factory = RngFactory(seed).fork("workload-trace")
    arrivals = arrival.timestamps(n_records, factory.stream("arrivals"))
    mix = PopularityMix(tuple(workflows), zipf_s=zipf_s)
    ids = mix.assign(n_records, factory.stream("popularity"))
    return WorkloadTrace(
        name=name,
        arrival_ms=np.asarray(arrivals, dtype=np.float64),
        workflow_ids=ids,
        workflows=tuple(workflows),
        metadata={
            "arrival": arrival.label,
            "zipf_s": float(zipf_s),
            "seed": int(seed),
        },
    )


def trace_from_requests(
    requests: _t.Sequence["WorkflowRequest"],
    name: str = "recorded",
    workflow: str | None = None,
    metadata: _t.Mapping[str, _t.Any] | None = None,
) -> WorkloadTrace:
    """Record a generated request stream back out as a trace.

    Attribution comes from each request's ``workflow`` tag (streams built
    by :func:`~repro.traces.workload.generate_requests` carry it);
    ``workflow`` fills in only *untagged* requests — an existing tag
    always wins, so recording a merged multi-workflow stream can never
    silently collapse its popularity mix. The result replays the
    stream's exact arrivals — the record-then-replay loop the sweep
    cache's bit-identity tests close.
    """
    if not requests:
        raise TraceError("cannot record an empty request stream")
    names = [getattr(req, "workflow", "") or workflow or ""
             for req in requests]
    catalog: tuple[str, ...] = ()
    if all(names):
        catalog = tuple(dict.fromkeys(names))
        index = {wf: i for i, wf in enumerate(catalog)}
        ids = np.array([index[n] for n in names], dtype=np.int64)
    elif any(names):
        raise TraceError(
            "request stream mixes workflow-tagged and untagged requests; "
            "pass workflow= to attribute the untagged ones"
        )
    else:
        ids = np.full(len(requests), -1, dtype=np.int64)
    return WorkloadTrace(
        name=name,
        arrival_ms=np.array(
            [req.arrival_ms for req in requests], dtype=np.float64
        ),
        workflow_ids=ids,
        workflows=catalog,
        metadata=dict(metadata or {}),
    )


def replay_arrivals(
    trace: WorkloadTrace, n: int, workflow: str | None = None
) -> np.ndarray:
    """``n`` arrival timestamps replayed from ``trace``.

    Fewer requests than records takes the stream prefix; more wraps
    around, shifting each pass by the trace span plus one mean gap so the
    gap structure repeats without overlapping arrivals. Deterministic —
    replay consumes no randomness.
    """
    if n <= 0:
        raise TraceError(f"n must be > 0, got {n}")
    arrivals = trace.arrivals_for(workflow)
    if arrivals.size == 0:
        raise TraceError(
            f"trace {trace.name!r} has no records"
            + (f" for workflow {workflow!r}" if workflow else "")
        )
    m = int(arrivals.size)
    if n <= m:
        return arrivals[:n]
    if m == 1:
        # No gap structure to repeat: tiling one timestamp would invent
        # an n-wide simultaneous burst the trace never recorded.
        raise TraceError(
            f"cannot extend the single-record stream of trace "
            f"{trace.name!r}"
            + (f" (workflow {workflow!r})" if workflow else "")
            + f" to {n} arrivals — wrap-around needs >= 2 records"
        )
    span = float(arrivals[-1] - arrivals[0])
    mean_gap = span / (m - 1)
    period = span + mean_gap
    idx = np.arange(n, dtype=np.int64)
    return arrivals[idx % m] + (idx // m) * period
