"""Workload builders: request streams with pre-drawn dynamics.

Requests carry their per-stage :class:`InvocationDynamics` so that all
policies replay identical randomness (common random numbers) — the paper's
evaluation likewise serves the same 1000 requests to every system.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from ..errors import TraceError
from ..rng import RngFactory
from ..types import Milliseconds
from ..workflow.catalog import Workflow
from ..workflow.request import WorkflowRequest
from .arrivals import constant_arrivals, poisson_arrivals

__all__ = ["WorkloadConfig", "generate_requests", "shifted_workload"]

InterferenceDraw = _t.Callable[[np.random.Generator], float]


class WorkloadConfig:
    """Parameters of a request stream.

    ``interference`` optionally draws a per-stage slowdown factor (>= 1),
    modelling co-location effects in the trace-driven (analytic) backend;
    the cluster backend derives interference from actual co-location instead.
    ``workset_scale`` multiplies every drawn working set — used to shift the
    runtime distribution away from the profiled one (the hints-regeneration
    experiment).
    """

    def __init__(
        self,
        n_requests: int = 1000,
        arrival_rate_per_s: float | None = None,
        interference: InterferenceDraw | None = None,
        workset_scale: float = 1.0,
        slo_ms: Milliseconds | None = None,
        concurrency: int | None = None,
    ) -> None:
        if n_requests <= 0:
            raise TraceError(f"n_requests must be > 0, got {n_requests}")
        if workset_scale <= 0:
            raise TraceError(f"workset_scale must be > 0, got {workset_scale}")
        self.n_requests = int(n_requests)
        self.arrival_rate_per_s = arrival_rate_per_s
        self.interference = interference
        self.workset_scale = float(workset_scale)
        self.slo_ms = slo_ms
        self.concurrency = concurrency


def generate_requests(
    workflow: Workflow,
    config: WorkloadConfig | None = None,
    seed: int = 0,
) -> list[WorkflowRequest]:
    """Build a deterministic request stream for ``workflow``."""
    cfg = config or WorkloadConfig()
    factory = RngFactory(seed).fork("workload", workflow.name)
    arrival_rng = factory.stream("arrivals")
    if cfg.arrival_rate_per_s is None:
        arrivals = constant_arrivals(0.0, cfg.n_requests)
    else:
        arrivals = poisson_arrivals(
            cfg.arrival_rate_per_s, cfg.n_requests, arrival_rng
        )
    slo = float(cfg.slo_ms if cfg.slo_ms is not None else workflow.slo_ms)
    concurrency = int(
        cfg.concurrency if cfg.concurrency is not None else workflow.max_concurrency
    )

    # All DAG nodes get dynamics (branching workflows execute
    # off-critical-path functions too).
    stage_rngs = {
        name: factory.stream("dynamics", name) for name in workflow.dag.nodes
    }
    interference_rng = factory.stream("interference")

    requests: list[WorkflowRequest] = []
    for i in range(cfg.n_requests):
        dynamics = {}
        for name in workflow.dag.nodes:
            model = workflow.model(name)
            q = (
                cfg.interference(interference_rng)
                if cfg.interference is not None
                else 1.0
            )
            dyn = model.sample_dynamics(stage_rngs[name], interference=q)
            if cfg.workset_scale != 1.0:
                dyn = type(dyn)(
                    workset=dyn.workset * cfg.workset_scale,
                    noise_z=dyn.noise_z,
                    interference=dyn.interference,
                )
            dynamics[name] = dyn
        requests.append(
            WorkflowRequest(
                request_id=i,
                arrival_ms=float(arrivals[i]),
                slo_ms=slo,
                stage_dynamics=dynamics,
                concurrency=concurrency,
            )
        )
    return requests


def shifted_workload(
    workflow: Workflow,
    n_requests: int,
    workset_scale: float,
    seed: int = 0,
) -> list[WorkflowRequest]:
    """A workload whose inputs drifted from the profiled distribution.

    Used to provoke hint-table misses and exercise the supervisor's
    regeneration loop (paper §III-D).
    """
    return generate_requests(
        workflow,
        WorkloadConfig(n_requests=n_requests, workset_scale=workset_scale),
        seed=seed,
    )
